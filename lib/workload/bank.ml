(* A bank-transfer workload: the classic serializability check.

   N accounts, each seeded with the same balance; every transaction
   moves a random amount between two random accounts.  Whatever the
   interleaving, strict two-phase locking must preserve the total —
   tests and the quickstart example both rely on [total]. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Rng = Asset_util.Rng

let account i = Oid.of_int i

let setup store ~accounts ~balance =
  Asset_storage.Heap_store.populate store ~n:accounts ~value:(fun _ -> Value.of_int balance)

(* A transfer body: subtract from one account, add to the other.  The
   [yield] between the two writes exposes the window a non-atomic
   implementation would corrupt.

   This is the read-modify-write variant: each side takes a Read lock
   and upgrades it to Write, so colliding transfers deadlock — the
   deadlock-detector tests and the E13/E14 baselines rely on exactly
   that behaviour (and the scheduler's golden-trace test pins its
   schedule byte for byte).  The semantic variants below are the
   contention-free counterparts. *)
let transfer ?(yield = true) db ~from_ ~to_ ~amount () =
  let debit v = Value.incr_int (Option.value v ~default:(Value.of_int 0)) (-amount) in
  let credit v = Value.incr_int (Option.value v ~default:(Value.of_int 0)) amount in
  E.modify db (account from_) debit;
  if yield then Asset_sched.Scheduler.yield ();
  E.modify db (account to_) credit

(* ------------------------------------------------------------------ *)
(* Semantic paths (section-5 typed-object modes)                       *)

(* A deposit is a pure commuting increment: concurrent deposits to the
   same hot account never block each other and never deadlock. *)
let deposit db ~to_ ~amount = E.increment db (account to_) amount

(* A withdrawal is an escrow decrement bounded below by zero: it
   commits only if the balance provably cannot be overdrawn whatever
   concurrent in-flight withdrawals and deposits do.  An
   [Escrow_violation] abort is transient (retryable) — headroom
   returns as in-flight deltas resolve. *)
let withdraw db ~from_ ~amount = E.escrow db (account from_) (-amount) ~lo:0 ~hi:max_int

(* A semantic transfer: escrow debit (no overdraft) plus commuting
   credit.  Both lock modes are self-compatible, so semantic transfers
   never deadlock each other — contrast [transfer]. *)
let transfer_semantic ?(yield = true) db ~from_ ~to_ ~amount () =
  withdraw db ~from_ ~amount;
  if yield then Asset_sched.Scheduler.yield ();
  deposit db ~to_ ~amount

let random_transfer ?yield db ~accounts ~rng () =
  let from_ = 1 + Rng.int rng accounts in
  let to_ = 1 + Rng.int rng accounts in
  let amount = 1 + Rng.int rng 100 in
  transfer ?yield db ~from_ ~to_ ~amount ()

let total db ~accounts =
  let store = E.store db in
  let sum = ref 0 in
  for i = 1 to accounts do
    match Asset_storage.Store.read store (account i) with
    | Some v -> sum := !sum + Value.to_int v
    | None -> ()
  done;
  !sum

(* Run [n_txns] concurrent random transfers; returns (committed,
   aborted).  Aborts come from deadlock-victim selection. *)
let run_transfers ?(seed = 7) db ~accounts ~n_txns =
  let rng = Rng.create seed in
  let bodies = List.init n_txns (fun _ -> random_transfer db ~accounts ~rng) in
  Workload.run_bodies db bodies

(* The same random mix over the semantic paths.  Aborts can only come
   from escrow-bound violations (there are no deadlocks to fall
   victim to), so with per-account balances comfortably above the
   maximum amount they are rare — and retryable. *)
let run_semantic_transfers ?(seed = 7) db ~accounts ~n_txns =
  let rng = Rng.create seed in
  let bodies =
    List.init n_txns (fun _ ->
        let from_ = 1 + Rng.int rng accounts in
        let to_ = 1 + Rng.int rng accounts in
        let amount = 1 + Rng.int rng 100 in
        transfer_semantic db ~from_ ~to_ ~amount)
  in
  Workload.run_bodies db bodies
