(** Crash-recovery torture harness.

    Runs a deterministic bank-transfer workload over the fully
    persistent stack (slotted pages + buffer pool + file WAL) with a
    failpoint armed, simulates power loss when it fires (all volatile
    state discarded, files reopened, {!Asset_wal.Recovery.recover}),
    and checks the durability invariants: acknowledged commits durable,
    loser effects invisible, bank balance conserved, and (optionally)
    recovery idempotent. *)

module Recovery = Asset_wal.Recovery
module Tid = Asset_util.Id.Tid

val site_op : Asset_fault.Fault.site
(** Application-level failpoint fired at the top of every transfer body
    — the transient-failure source for the retry workload. *)

type spec = {
  accounts : int;
  balance : int;
  n_txns : int;
  seed : int;  (** drives the transfer plan and every random choice *)
  group_commit_size : int;
  page_size : int;
  pool_capacity : int;
}

val default_spec : spec

type transfer = { src : int; dst : int; amount : int }

val plan : spec -> transfer array
(** The scripted transfer plan, deterministic in [spec.seed]. *)

type outcome = {
  crashed : string option;  (** failpoint site of the simulated power loss *)
  acked : bool array;  (** per transaction: [E.commit] returned true *)
  tids : Tid.t array;
  report : Recovery.report;
  recovery_s : float;
  log_length : int;  (** records in the recovered log *)
  failures : string list;  (** violated durability invariants; empty = pass *)
}

val run_once : ?arm:(unit -> unit) -> ?check_idempotent:bool -> spec -> outcome
(** One torture run: set up a clean bank in fresh temp files, call
    [arm] (e.g. [Fault.arm_name "wal.append" (Crash_nth 5)]), run the
    workload, simulate power loss if a crash fires, recover, check
    invariants, clean up.  All failpoints are reset before and at
    power-off. *)

type sweep = {
  boundaries : int;  (** WAL records in the fault-free reference run *)
  crashes : int;  (** runs that actually lost power *)
  runs : int;
  sweep_failures : (string * string list) list;
      (** (schedule label, violated invariants) per failing run *)
  total_recovery_s : float;
}

val crash_at_every_boundary : ?check_idempotent:bool -> spec -> sweep
(** Crash at the k-th WAL append for every k in the fault-free run's
    record count — the exhaustive boundary sweep. *)

val random_crash_schedule :
  ?check_idempotent:bool -> schedule_seed:int -> spec -> string * outcome
(** One seeded schedule: site, hit count and group-commit size drawn
    from [schedule_seed]; the workload seed varies alongside. *)

val random_crash_schedules : ?check_idempotent:bool -> n:int -> spec -> sweep

type retry_outcome = {
  committed : int;
  retries : int;
  gave_up : int;
  aborts : int;
  duration_s : float;
  conserved : bool;  (** bank total intact after close + recovery *)
}

val run_retry_workload : ?fault_rate:float -> ?max_retries:int -> spec -> retry_outcome
(** The transfer workload under a transient-failure rate
    ("workload.op" armed with a seeded probability policy) and the
    bounded-retry combinator; closes cleanly, recovers, verifies
    conservation. *)
