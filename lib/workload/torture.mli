(** Crash-recovery torture harness.

    Runs a deterministic bank-transfer workload over the fully
    persistent stack (slotted pages + buffer pool + file WAL) with a
    failpoint armed, simulates power loss when it fires (all volatile
    state discarded, files reopened, {!Asset_wal.Recovery.recover}),
    and checks the durability invariants: acknowledged commits durable,
    loser effects invisible, bank balance conserved, and (optionally)
    recovery idempotent. *)

module Recovery = Asset_wal.Recovery
module Tid = Asset_util.Id.Tid

val site_op : Asset_fault.Fault.site
(** Application-level failpoint fired at the top of every transfer body
    — the transient-failure source for the retry workload. *)

type spec = {
  accounts : int;
  balance : int;
  n_txns : int;
  seed : int;  (** drives the transfer plan and every random choice *)
  group_commit_size : int;
  page_size : int;
  pool_capacity : int;
  segment_bytes : int;
      (** > 0: use a segment-directory WAL with this rotation size
          (0, the default, keeps the single-file WAL) *)
  checkpoint_log_bytes : int;
      (** > 0: the engine's commit-path fuzzy-checkpoint trigger
          (0, the default, disables it) *)
  recovery_domains : int;
      (** > 1: parallel redo across this many domains, with a
          serial-replay shadow oracle asserting zero divergence
          (1, the default, is serial) *)
}

val default_spec : spec

type transfer = { src : int; dst : int; amount : int }

val plan : spec -> transfer array
(** The scripted transfer plan, deterministic in [spec.seed]. *)

type outcome = {
  crashed : string option;  (** failpoint site of the simulated power loss *)
  acked : bool array;  (** per transaction: [E.commit] returned true *)
  tids : Tid.t array;
  report : Recovery.report;
  recovery_s : float;
  recovery_crashes : int;
      (** power losses that fired {e during} recovery (sites armed by
          [arm_recovery]); each one is retried from a fresh load *)
  log_length : int;  (** records in the recovered log *)
  failures : string list;  (** violated durability invariants; empty = pass *)
}

val run_once :
  ?arm:(unit -> unit) -> ?arm_recovery:(unit -> unit) -> ?check_idempotent:bool -> spec -> outcome
(** One torture run: set up a clean bank in fresh temp files, call
    [arm] (e.g. [Fault.arm_name "wal.append" (Crash_nth 5)]), run the
    workload, simulate power loss if a crash fires, recover, check
    invariants, clean up.  All failpoints are reset before and at
    power-off; [arm_recovery] runs after power-off to arm faults at
    recovery-only sites ("recovery.domain.*") — a crash during
    recovery is retried as another full power loss (up to 3 times).
    With [spec.recovery_domains > 1] the run also replays the log
    serially into a shadow of the pre-recovery store and fails on any
    divergence from the parallel result. *)

type sweep = {
  boundaries : int;  (** WAL records in the fault-free reference run *)
  crashes : int;  (** runs that actually lost power *)
  runs : int;
  sweep_failures : (string * string list) list;
      (** (schedule label, violated invariants) per failing run *)
  total_recovery_s : float;
}

val crash_at_every_boundary : ?check_idempotent:bool -> spec -> sweep
(** Crash at the k-th WAL append for every k in the fault-free run's
    record count — the exhaustive boundary sweep. *)

val random_crash_schedule :
  ?check_idempotent:bool -> schedule_seed:int -> spec -> string * outcome
(** One seeded schedule: site, hit count and group-commit size drawn
    from [schedule_seed]; the workload seed varies alongside. *)

val random_crash_schedules : ?check_idempotent:bool -> n:int -> spec -> sweep

val durability_sites : string array
(** The crash windows specific to fuzzy checkpoints ("wal.ckpt.*"),
    segment retirement ("wal.retire.*") and parallel replay
    ("recovery.domain.*"). *)

val random_durability_schedule :
  ?check_idempotent:bool -> schedule_seed:int -> spec -> string * outcome
(** One seeded schedule over {!durability_sites}: a segmented WAL with
    an aggressive checkpoint trigger and 1–3 recovery domains, crashing
    at the drawn site's n-th hit.  Recovery-side sites are armed after
    power-off so they fire during recovery itself. *)

val random_durability_schedules : ?check_idempotent:bool -> n:int -> spec -> sweep

type sustained = {
  s_rounds : int;
  s_txns : int;
  s_checkpoints : int;  (** fuzzy checkpoints the commit path triggered *)
  s_segments_created : int;
  s_segments_retired : int;
  s_segments_live : int;
  s_failures : string list;  (** empty = log stayed bounded and consistent *)
}

val sustained_run : ?rounds:int -> spec -> sustained
(** [rounds] transfer batches against one long-lived segmented WAL with
    the commit-path checkpoint trigger on: asserts checkpoints fired,
    segments were retired, the live segment count stayed within the
    un-checkpointed window's bound, and a final crash + recovery
    preserves every acknowledged transfer.  [spec.segment_bytes] and
    [spec.checkpoint_log_bytes] default to 1024 / 2048 when unset. *)

type retry_outcome = {
  committed : int;
  retries : int;
  gave_up : int;
  aborts : int;
  duration_s : float;
  conserved : bool;  (** bank total intact after close + recovery *)
}

val run_retry_workload : ?fault_rate:float -> ?max_retries:int -> spec -> retry_outcome
(** The transfer workload under a transient-failure rate
    ("workload.op" armed with a seeded probability policy) and the
    bounded-retry combinator; closes cleanly, recovers, verifies
    conservation. *)
