(** The bank-transfer workload: the classic serializability check.
    Random transfers between accounts; whatever the interleaving,
    strict two-phase locking must preserve {!total}. *)

module E = Asset_core.Engine

val account : int -> Asset_util.Id.Oid.t

val setup : Asset_storage.Store.t -> accounts:int -> balance:int -> unit

val transfer : ?yield:bool -> E.t -> from_:int -> to_:int -> amount:int -> unit -> unit
(** A read-modify-write transfer body; the yield between the debit and
    the credit exposes the window a non-atomic implementation would
    corrupt.  Colliding transfers deadlock (Read -> Write upgrades) —
    the deadlock-detection tests and E13/E14 baselines depend on
    that. *)

val deposit : E.t -> to_:int -> amount:int -> unit
(** A commuting increment: concurrent deposits to the same hot account
    never block each other. *)

val withdraw : E.t -> from_:int -> amount:int -> unit
(** An escrow decrement bounded below by zero: commits only if the
    balance provably cannot be overdrawn whatever in-flight escrow
    deltas do; otherwise aborts with [Engine.Escrow_violation]
    (transient, retryable). *)

val transfer_semantic : ?yield:bool -> E.t -> from_:int -> to_:int -> amount:int -> unit -> unit
(** Escrow debit plus commuting credit: semantic transfers never
    deadlock each other. *)

val random_transfer : ?yield:bool -> E.t -> accounts:int -> rng:Asset_util.Rng.t -> unit -> unit

val run_transfers : ?seed:int -> E.t -> accounts:int -> n_txns:int -> int * int
(** Run concurrent random transfers; returns (committed,
    deadlock-victims).  Must run inside a runtime fiber. *)

val run_semantic_transfers : ?seed:int -> E.t -> accounts:int -> n_txns:int -> int * int
(** The same random mix over {!transfer_semantic}; aborts can only be
    escrow-bound violations.  Must run inside a runtime fiber. *)

val total : E.t -> accounts:int -> int
(** Sum of balances, read directly from the store. *)
