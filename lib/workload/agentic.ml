(* Agentic tool-use transactions: see agentic.mli.

   The runner is the Atomix mapping, built directly on the engine
   primitives so each construct's transaction ids can be captured for
   the conformance contract:

   - a compensable tool call is one committing transaction per
     attempt, with a registered compensation transaction run (and
     retried) during rollback — saga semantics with the typed-retry
     loop of [Workload.run_bodies_with_retry] folded in;
   - speculative calls form pairwise EXC dependencies (the declarative
     contingent-transaction translation) and are tried in order;
   - handoff initiates a sub-agent transaction that performs the work
     and then [delegate]s everything — locks, logged updates, escrow
     reservations — to the adopting step transaction;
   - gathering runs on a read-only multi-version snapshot.

   Determinism: everything is driven by the caller's RNG, so a seeded
   run replays exactly under the seeded scheduler. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Tid = Asset_util.Id.Tid
module Rng = Asset_util.Rng
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Sched = Asset_sched.Scheduler

let site_tool = Asset_fault.Fault.register "agentic.tool"

exception Tool_failed of string
(* A non-retryable tool error: the model's "the API said no", as
   opposed to transient contention.  [Workload.retryable] returns
   false for it, so the saga rolls back instead of retrying. *)

let budget = Oid.of_int 1
let audit = Oid.of_int 2
let doc d = Oid.of_int (10 + d)

let setup store ~docs ~budget0 =
  Store.write store budget (Value.of_int budget0);
  Store.write store audit (Value.of_queue []);
  for d = 0 to docs - 1 do
    Store.write store (doc d) (Value.of_int 0)
  done

type step =
  | Call of { tool : string; cost : int; d : int }
  | Speculate of { tool : string; costs : int list; d : int; winner : int }
  | Handoff of { tool : string; cost : int; d : int }
  | Gather of { tool : string; ds : int list }

type plan = { agent : int; steps : step list; fail_at : int option }

let gen_plan ~rng ~docs ~agent =
  let n = 2 + Rng.int rng 5 in
  let steps =
    List.init n (fun i ->
        let tool kind = Printf.sprintf "a%d.s%d.%s" agent i kind in
        let pick_doc () = Rng.int rng docs in
        match Rng.int rng 100 with
        | r when r < 40 -> Call { tool = tool "call"; cost = 1 + Rng.int rng 8; d = pick_doc () }
        | r when r < 65 ->
            let alts = 2 + Rng.int rng 2 in
            Speculate
              {
                tool = tool "spec";
                costs = List.init alts (fun _ -> 1 + Rng.int rng 8);
                d = pick_doc ();
                winner = Rng.int rng alts;
              }
        | r when r < 85 -> Handoff { tool = tool "handoff"; cost = 1 + Rng.int rng 8; d = pick_doc () }
        | _ ->
            let k = 1 + Rng.int rng 3 in
            Gather { tool = tool "gather"; ds = List.init k (fun _ -> pick_doc ()) })
  in
  let fail_at = if Rng.int rng 3 = 0 then Some (Rng.int rng n) else None in
  { agent; steps; fail_at }

type contract = {
  comp_pairs : (Tid.t * Tid.t) list;
  exclusive : Tid.t list list;
  delegations : (Tid.t * Tid.t) list;
}

let merge_contracts cs =
  {
    comp_pairs = List.concat_map (fun c -> c.comp_pairs) cs;
    exclusive = List.concat_map (fun c -> c.exclusive) cs;
    delegations = List.concat_map (fun c -> c.delegations) cs;
  }

type outcome = {
  o_committed : int;
  o_compensated : int;
  o_retries : int;
  o_gave_up : int;
  o_failed : bool;
  o_spend : int;
  o_audit : int;
  o_contract : contract;
}

(* Mutable per-plan state threaded through the step runners. *)
type st = {
  db : E.t;
  rng : Rng.t;
  max_retries : int;
  mutable committed : int;
  mutable compensated : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable spend : int;
  mutable audits : int;
  mutable pairs : (Tid.t * Tid.t) list; (* reverse forward order *)
  mutable exclusive : Tid.t list list;
  mutable delegations : (Tid.t * Tid.t) list;
  (* The committed prefix: (component tid, cost refunded on
     compensation, compensation body) — newest first, i.e. already in
     compensation order. *)
  mutable undo_stack : (Tid.t * int * string) list;
}

let backoff st k =
  let cap = min 64 (2 lsl k) in
  for _ = 1 to Rng.int st.rng cap do
    Sched.yield ()
  done

(* Run one committing transaction with the typed-retry loop; returns
   the committed tid, or signals give-up / tool failure. *)
type attempt = Done of Tid.t | Gave_up | Tool_error

let rec with_retry st k body =
  let tid_ref = ref Tid.null in
  let t =
    E.initiate st.db (fun () ->
        tid_ref := E.self st.db;
        body ())
  in
  if Tid.is_null t then Gave_up
  else begin
    ignore (E.begin_ st.db t);
    if E.commit st.db t then Done t
    else
      let failure = E.failure_of st.db t in
      match failure with
      | Some (Tool_failed _) -> Tool_error
      | f when Workload.retryable f ->
          if k < st.max_retries then begin
            st.retries <- st.retries + 1;
            E.note_retry st.db;
            backoff st k;
            with_retry st (k + 1) body
          end
          else begin
            st.gave_up <- st.gave_up + 1;
            E.note_give_up st.db;
            Gave_up
          end
      | _ -> Tool_error
  end

(* The forward effect of a plain tool call; shared by Call alternates
   and the sub-agent's half of Handoff. *)
let tool_effect st ~tool ~cost ~d ~fail () =
  Asset_fault.Fault.hit site_tool;
  E.escrow st.db budget (-cost) ~lo:0 ~hi:max_int;
  Sched.yield ();
  E.write st.db (doc d) (Value.of_int cost);
  Sched.yield ();
  E.enqueue st.db audit ("call:" ^ tool);
  if fail then raise (Tool_failed tool)

let record_commit st ~tid ~tool ~cost =
  st.committed <- st.committed + 1;
  st.spend <- st.spend + cost;
  st.audits <- st.audits + 1;
  st.undo_stack <- (tid, cost, tool) :: st.undo_stack

(* One compensation: refund the cost (commuting increment — it can
   never deadlock), tombstone nothing, append the undo marker.
   Retried until it commits or the attempt budget runs out; an
   uncommitted compensation simply leaves the cost spent, which the
   conservation accounting reflects. *)
let compensate st (component, cost, tool) =
  let r =
    with_retry st 0 (fun () ->
        E.increment st.db budget cost;
        E.enqueue st.db audit ("undo:" ^ tool))
  in
  match r with
  | Done ctid ->
      st.compensated <- st.compensated + 1;
      st.spend <- st.spend - cost;
      st.audits <- st.audits + 1;
      st.pairs <- (component, ctid) :: st.pairs
  | Gave_up | Tool_error -> ()

let rollback st =
  let stack = st.undo_stack in
  st.undo_stack <- [];
  List.iter (compensate st) stack

(* --- the four step shapes --- *)

let run_call st ~tool ~cost ~d ~fail =
  match with_retry st 0 (tool_effect st ~tool ~cost ~d ~fail) with
  | Done t ->
      record_commit st ~tid:t ~tool ~cost;
      `Ok
  | Gave_up -> `Stop
  | Tool_error -> `Stop

(* Speculative alternates: initiate them all, form pairwise EXC
   dependencies (declarative at-most-one), then try in order; the
   committing alternative's siblings are doomed by the dependency
   graph.  Alternatives before [winner] fail after doing their
   (rolled-back) work, modelling a speculative call that came back
   unusable. *)
let run_speculate st ~tool ~costs ~d ~winner ~fail =
  let alts = Array.of_list costs in
  let tids = Array.make (Array.length alts) Tid.null in
  let mk i cost =
    E.initiate st.db (fun () ->
        tids.(i) <- E.self st.db;
        tool_effect st ~tool:(Printf.sprintf "%s.%d" tool i) ~cost ~d
          ~fail:(i < winner || (fail && i = winner))
          ())
  in
  let ts = Array.mapi mk alts in
  if Array.exists Tid.is_null ts then `Stop
  else begin
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b ->
            if i < j then
              ignore (E.form_dependency st.db Asset_deps.Dep_type.EXC a b))
          ts)
      ts;
    st.exclusive <- Array.to_list ts :: st.exclusive;
    let rec try_next i =
      if i >= Array.length ts then `Lost
      else if E.begin_ st.db ts.(i) && E.commit st.db ts.(i) then begin
        record_commit st ~tid:ts.(i) ~tool:(Printf.sprintf "%s.%d" tool i) ~cost:alts.(i);
        `Ok
      end
      else try_next (i + 1)
    in
    match try_next 0 with
    | `Ok -> `Ok
    | `Lost -> `Stop
  end

(* Sub-agent handoff: the child performs the tool effect and delegates
   everything to the adopting step transaction, which commits it.  The
   child commits an empty shell.  Escrow reservations move with the
   delegation — the property tests pin that the refund contract then
   binds the adopter, not the child. *)
let run_handoff st ~tool ~cost ~d ~fail =
  let rec attempt k =
    let p_tid = ref Tid.null and s_tid = ref Tid.null in
    let p =
      E.initiate st.db (fun () ->
          p_tid := E.self st.db;
          E.enqueue st.db audit ("call:" ^ tool))
    in
    if Tid.is_null p then `Stop
    else
      let s =
        E.initiate st.db (fun () ->
            s_tid := E.self st.db;
            Asset_fault.Fault.hit site_tool;
            E.escrow st.db budget (-cost) ~lo:0 ~hi:max_int;
            Sched.yield ();
            E.write st.db (doc d) (Value.of_int cost);
            Sched.yield ();
            E.delegate st.db ~from_:(E.self st.db) ~to_:p;
            if fail then raise (Tool_failed tool))
      in
      if Tid.is_null s then `Stop
      else begin
        ignore (E.begin_ st.db s);
        let s_ok = E.commit st.db s in
        if s_ok then begin
          ignore (E.begin_ st.db p);
          if E.commit st.db p then begin
            st.delegations <- (s, p) :: st.delegations;
            record_commit st ~tid:p ~tool ~cost;
            `Ok
          end
          else `Stop (* adopter failed: reservation died with it *)
        end
        else begin
          (* The child aborted before its delegation took effect; the
             adopter has nothing and is cancelled. *)
          ignore (E.abort st.db p);
          let failure = E.failure_of st.db s in
          match failure with
          | Some (Tool_failed _) -> `Stop
          | f when Workload.retryable f ->
              if k < st.max_retries then begin
                st.retries <- st.retries + 1;
                E.note_retry st.db;
                backoff st k;
                attempt (k + 1)
              end
              else begin
                st.gave_up <- st.gave_up + 1;
                E.note_give_up st.db;
                `Stop
              end
          | _ -> `Stop
        end
      end
  in
  attempt 0

(* Context gathering on a multi-version snapshot: lock-free, so it
   needs no retry and cannot fail the plan. *)
let run_gather st ~tool:_ ~ds =
  let t =
    E.initiate ~read_only:true st.db (fun () ->
        List.iter
          (fun d ->
            ignore (E.read st.db (doc d));
            Sched.yield ())
          ds)
  in
  if Tid.is_null t then `Ok
  else begin
    ignore (E.begin_ st.db t);
    if E.commit st.db t then st.committed <- st.committed + 1;
    `Ok
  end

let run_plan ?(max_retries = 4) ~rng db plan =
  let st =
    {
      db;
      rng;
      max_retries;
      committed = 0;
      compensated = 0;
      retries = 0;
      gave_up = 0;
      spend = 0;
      audits = 0;
      pairs = [];
      exclusive = [];
      delegations = [];
      undo_stack = [];
    }
  in
  let failed = ref false in
  (try
     List.iteri
       (fun i step ->
         let fail = plan.fail_at = Some i in
         let r =
           match step with
           | Call { tool; cost; d } -> run_call st ~tool ~cost ~d ~fail
           | Speculate { tool; costs; d; winner } -> run_speculate st ~tool ~costs ~d ~winner ~fail
           | Handoff { tool; cost; d } -> run_handoff st ~tool ~cost ~d ~fail
           | Gather { tool; ds } -> run_gather st ~tool ~ds
         in
         match r with
         | `Ok -> ()
         | `Stop ->
             failed := true;
             raise Exit)
       plan.steps
   with Exit -> ());
  if !failed then rollback st;
  {
    o_committed = st.committed;
    o_compensated = st.compensated;
    o_retries = st.retries;
    o_gave_up = st.gave_up;
    o_failed = !failed;
    o_spend = st.spend;
    o_audit = st.audits;
    o_contract =
      {
        comp_pairs = List.rev st.pairs;
        exclusive = List.rev st.exclusive;
        delegations = List.rev st.delegations;
      };
  }

let run_agents ?(max_retries = 4) db ~seed ~agents ~docs =
  let outcomes = Array.make agents None in
  let done_ = ref 0 in
  for a = 0 to agents - 1 do
    let rng = Rng.create (seed + (a * 7919)) in
    let plan = gen_plan ~rng ~docs ~agent:a in
    E.spawn db ~label:(Printf.sprintf "agent-%d" a) (fun () ->
        let o = run_plan ~max_retries ~rng db plan in
        outcomes.(a) <- Some o;
        incr done_)
  done;
  (* Park until every agent fiber finished; agents run their own
     transactions to completion, so quiescence of the scheduler is
     reached exactly when all are done. *)
  Sched.wait_until ~reason:"agents-done" (fun () -> !done_ >= agents);
  Array.to_list outcomes |> List.filter_map Fun.id

let total_spend os = List.fold_left (fun acc o -> acc + o.o_spend) 0 os
let total_audit os = List.fold_left (fun acc o -> acc + o.o_audit) 0 os
