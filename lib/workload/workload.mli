(** Synthetic workload generation and a run harness.

    A workload is a batch of read/write transactions over a keyspace
    with optional Zipfian skew; bodies yield between operations so the
    batch actually interleaves under the cooperative scheduler. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid

type op = Read of Oid.t | Write of Oid.t

type spec = {
  n_objects : int;
  n_txns : int;
  ops_per_txn : int;
  write_ratio : float;  (** 0.0 .. 1.0 *)
  theta : float;  (** Zipf skew; 0 = uniform *)
  seed : int;
  yield_between_ops : bool;
  read_modify_write : bool;
      (** Writes read first (lock upgrades — the classic
          upgrade-deadlock pattern) instead of writing blindly. *)
}

val default_spec : spec

val generate : spec -> op list list
(** The batch's operation lists, deterministic in [seed]. *)

val body_of_ops : E.t -> yield:bool -> rmw:bool -> op list -> unit -> unit

val run_bodies : E.t -> (unit -> unit) list -> int * int
(** Begin every body in its own fiber with its own committer fiber,
    await termination; returns (committed, aborted).  Must run inside a
    runtime fiber. *)

val run_batch : E.t -> yield:bool -> ?rmw:bool -> op list list -> int * int

val retryable : exn option -> bool
(** Is an abort with this {!E.failure_of} worth retrying?  True for
    deadlock victims ([None]), lock-wait timeouts, and
    injected/transient I/O failures; false for real body failures. *)

type retry_metrics = { r_committed : int; r_retries : int; r_gave_up : int }

val run_bodies_with_retry :
  ?max_retries:int -> rng:Asset_util.Rng.t -> E.t -> (unit -> unit) list -> retry_metrics
(** Like {!run_bodies}, but each body runs under a driver fiber that
    retries {!retryable} aborts up to [max_retries] times with seeded
    exponential backoff (in scheduler steps).  Retries and abandoned
    transactions are also counted into [E.stats] (["retries"],
    ["gave_up"]).  Must run inside a runtime fiber. *)

type metrics = {
  committed : int;
  aborted : int;
  duration_s : float;
  lock_waits : int;
  commit_retries : int;
  deadlock_victims : int;
  throughput : float;  (** committed transactions per second *)
}

val pp_metrics : Format.formatter -> metrics -> unit

val run : spec -> metrics
(** Full experiment: fresh store and engine, run the batch, report. *)
