(* Crash-recovery torture harness.

   One torture run is a bank-transfer workload over a fully persistent
   stack — slotted pages behind a small buffer pool, file-backed WAL —
   with a fault armed at some I/O site.  When the fault fires as
   [Fault.Crash], the harness treats it as power loss with full
   fidelity:

     - the WAL's staging buffer and the buffer pool's dirty frames are
       discarded ([Log.crash], [Persistent_store.crash_and_reopen]) —
       only bytes that reached the files survive;
     - the log is re-read from disk ([Log.load]: torn-tail truncation +
       CRC verification) and [Recovery.recover] repeats history and
       undoes losers.

   The durability invariants checked after every recovery:

     1. every *acknowledged* commit (E.commit returned true) is a
        recovery winner — its effects are present;
     2. no loser effect is visible: each account holds exactly the
        initial balance plus the winners' transfer deltas;
     3. the bank total is conserved;
     4. optionally, recovery is idempotent (recovering again changes
        nothing).

   Everything is deterministic in the spec seed: the transfer plan, the
   cooperative schedule, and the fault schedule, so any failure
   reproduces from its seed. *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Sched = Asset_sched.Scheduler
module Log = Asset_wal.Log
module Recovery = Asset_wal.Recovery
module Pstore = Asset_storage.Persistent_store
module Store = Asset_storage.Store
module Heap_store = Asset_storage.Heap_store
module Value = Asset_storage.Value
module Fault = Asset_fault.Fault
module Rng = Asset_util.Rng
module Tid = Asset_util.Id.Tid

(* Application-level failpoint for the retry workload: fired at the top
   of every transfer body, modelling a transient application failure
   (the clean abort-and-retry path, as opposed to the crash sites in
   the storage layers). *)
let site_op = Fault.register "workload.op"

type spec = {
  accounts : int;
  balance : int;
  n_txns : int;
  seed : int;
  group_commit_size : int;
  page_size : int;
  pool_capacity : int;
  segment_bytes : int; (* > 0: segment-directory WAL with this rotation size *)
  checkpoint_log_bytes : int; (* > 0: commit-path fuzzy-checkpoint trigger *)
  recovery_domains : int; (* > 1: parallel redo across this many domains *)
}

let default_spec =
  {
    accounts = 16;
    balance = 1_000;
    n_txns = 12;
    seed = 42;
    group_commit_size = 1;
    page_size = 512;
    pool_capacity = 4;
    segment_bytes = 0;
    checkpoint_log_bytes = 0;
    recovery_domains = 1;
  }

type transfer = { src : int; dst : int; amount : int }

(* The scripted transfer plan, deterministic in the seed.  Recorded up
   front so the invariant check can recompute each winner's effect. *)
let plan spec =
  let rng = Rng.create spec.seed in
  Array.init spec.n_txns (fun _ ->
      let src = 1 + Rng.int rng spec.accounts in
      let dst = 1 + Rng.int rng spec.accounts in
      { src; dst; amount = 1 + Rng.int rng 100 })

type outcome = {
  crashed : string option; (* failpoint site of the simulated power loss *)
  acked : bool array; (* per transaction: E.commit returned true *)
  tids : Tid.t array;
  report : Recovery.report;
  recovery_s : float;
  recovery_crashes : int; (* power losses *during* recovery, each retried *)
  log_length : int; (* records in the recovered log *)
  failures : string list; (* violated durability invariants, empty = pass *)
}

let fresh_paths =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let base =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "asset-torture-%d-%d" (Unix.getpid ()) !counter)
    in
    (base ^ ".pages", base ^ ".wal")

(* Remove a WAL path that may be a single file or a segment directory. *)
let rm_wal path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> Sys.remove (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* [durable_commits] supplements the report's winner list: once a
   fuzzy checkpoint retires the log prefix, recovery's scan (correctly)
   starts at the anchor and its winners cover only the tail — commits
   wholly below the watermark are durable through the checkpoint's
   flush and invisible to analysis.  The harness captures them from the
   pre-crash in-memory log (retirement is disk-only), bounded by the
   forced LSN so nothing volatile counts. *)
let check spec transfers (tids : Tid.t array) acked (report : Recovery.report) ~durable_commits
    store =
  let failures = ref [] in
  let addf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let winner t =
    List.exists (Tid.equal t) report.winners || List.exists (Tid.equal t) durable_commits
  in
  Array.iteri
    (fun i t -> if acked.(i) && not (winner t) then addf "txn %d acknowledged but not durable" i)
    tids;
  let expected = Array.make (spec.accounts + 1) spec.balance in
  Array.iteri
    (fun i t ->
      if (not (Tid.is_null t)) && winner t then begin
        let tr = transfers.(i) in
        expected.(tr.src) <- expected.(tr.src) - tr.amount;
        expected.(tr.dst) <- expected.(tr.dst) + tr.amount
      end)
    tids;
  let total = ref 0 in
  for a = 1 to spec.accounts do
    match Store.read store (Bank.account a) with
    | Some v ->
        let got = Value.to_int v in
        total := !total + got;
        if got <> expected.(a) then addf "account %d holds %d, expected %d" a got expected.(a)
    | None -> addf "account %d missing after recovery" a
  done;
  if !total <> spec.accounts * spec.balance then
    addf "balance not conserved: %d, expected %d" !total (spec.accounts * spec.balance);
  List.rev !failures

let sorted_snapshot store =
  Store.dump store |> List.map (fun (oid, v) -> (oid, Value.to_string v)) |> List.sort compare

(* One full torture run: set up a clean bank, arm faults via [arm],
   run every transfer with its own committer fiber, simulate power loss
   if a crash fires, recover (retrying if a fault armed by
   [arm_recovery] crashes recovery itself — each retry is another full
   power loss), and check the durability invariants.  With
   [spec.recovery_domains > 1] the run additionally replays the same
   log serially into a shadow copy of the crashed store and asserts the
   parallel and serial results are identical. *)
let run_once ?(arm = fun () -> ()) ?(arm_recovery = fun () -> ()) ?(check_idempotent = false) spec =
  Fault.reset_all ();
  let pages_path, wal_path = fresh_paths () in
  let segmented = spec.segment_bytes > 0 in
  let wal_path = if segmented then wal_path ^ ".d" else wal_path in
  let ps = Pstore.create ~page_size:spec.page_size ~pool_capacity:spec.pool_capacity pages_path in
  let store = Pstore.to_store ps in
  for a = 1 to spec.accounts do
    Store.write store (Bank.account a) (Value.of_int spec.balance)
  done;
  Store.flush store;
  let log =
    if segmented then Log.create_dir ~segment_bytes:spec.segment_bytes wal_path
    else Log.create_file wal_path
  in
  let config =
    {
      E.default_config with
      group_commit_size = spec.group_commit_size;
      checkpoint_log_bytes = spec.checkpoint_log_bytes;
    }
  in
  let db = E.create ~config ~log store in
  let transfers = plan spec in
  let tids = Array.make spec.n_txns Tid.null in
  let acked = Array.make spec.n_txns false in
  arm ();
  let crashed =
    let main () =
      Array.iteri
        (fun i tr ->
          tids.(i) <- E.initiate db (Bank.transfer db ~from_:tr.src ~to_:tr.dst ~amount:tr.amount))
        transfers;
      Array.iter (fun t -> ignore (E.begin_ db t)) tids;
      Array.iteri
        (fun i t ->
          E.spawn db ~label:(Printf.sprintf "committer-%d" i) (fun () ->
              if E.commit db t then acked.(i) <- true))
        tids;
      E.await_terminated db (Array.to_list tids)
    in
    match Runtime.run db main with
    | { Runtime.result = Ok (); _ } -> None
    | { Runtime.result = Error (Fault.Crash site | Sched.Fiber_failed (_, Fault.Crash site)); _ } ->
        Some site
    | { Runtime.result = Error e; _ } -> raise e
    | exception Fault.Crash site ->
        (* A crash in the post-run quiescence flush (Runtime's own
           flush_pending_commits). *)
        Some site
  in
  (* The durably committed tids, read off the pre-crash in-memory log:
     every Commit record at or below the forced LSN survived power
     loss.  (Prefix-ordered durability: a checkpoint's End_ckpt force
     covers every earlier commit, so commits below a retirement
     watermark are always included here.) *)
  let durable_commits =
    let fl = Log.forced_lsn log in
    let acc = ref [] in
    Log.iter log (fun lsn r ->
        match r with
        | Asset_wal.Record.Commit ts when lsn <= fl -> acc := ts @ !acc
        | _ -> ());
    !acc
  in
  (* Power off: disarm everything, lose all volatile state. *)
  Fault.reset_all ();
  (match crashed with Some _ -> Log.crash log | None -> Log.close log);
  Pstore.crash_and_reopen ps;
  (* Power on: reload the log from disk and recover.  [arm_recovery]
     may arm a crash at a recovery site; when it fires the harness
     powers off again (partial redo that reached disk through pool
     eviction stays — repeat-history must converge over it) and
     retries from a fresh load. *)
  arm_recovery ();
  let load_log () = if segmented then Log.load_dir wal_path else Log.load wal_path in
  let rlog = ref (load_log ()) in
  let recovery_crashes = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec recover_attempt n =
    let pre = if spec.recovery_domains > 1 then Store.dump store else [] in
    match Recovery.recover ~domains:spec.recovery_domains !rlog store with
    | report -> (report, pre)
    | exception Fault.Crash _ when n < 3 ->
        incr recovery_crashes;
        Fault.reset_all ();
        Log.crash !rlog;
        Pstore.crash_and_reopen ps;
        rlog := load_log ();
        recover_attempt (n + 1)
  in
  let report, pre_recovery = recover_attempt 0 in
  let recovery_s = Unix.gettimeofday () -. t0 in
  (* Recovery survived: disarm any recovery-site fault still pending so
     the shadow-serial and idempotence oracles below run fault-free. *)
  Fault.reset_all ();
  let rlog = !rlog in
  let failures = check spec transfers tids acked report ~durable_commits store in
  let failures =
    (* Serial-equivalence oracle: replay the same log with one domain
       into a shadow of the exact pre-recovery store; the results must
       not diverge in any object. *)
    if spec.recovery_domains > 1 then begin
      let shadow = Heap_store.store ~name:"shadow" () in
      List.iter (fun (oid, v) -> Store.write shadow oid v) pre_recovery;
      ignore (Recovery.recover ~domains:1 rlog shadow);
      if sorted_snapshot shadow <> sorted_snapshot store then
        failures @ [ "parallel recovery diverges from serial replay" ]
      else failures
    end
    else failures
  in
  let failures =
    if check_idempotent then begin
      let before = sorted_snapshot store in
      ignore (Recovery.recover ~domains:spec.recovery_domains rlog store);
      if sorted_snapshot store <> before then failures @ [ "recovery not idempotent" ]
      else failures
    end
    else failures
  in
  let log_length = Log.length rlog in
  Log.close rlog;
  Pstore.close ps;
  Sys.remove pages_path;
  rm_wal wal_path;
  {
    crashed;
    acked;
    tids;
    report;
    recovery_s;
    recovery_crashes = !recovery_crashes;
    log_length;
    failures;
  }

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)

type sweep = {
  boundaries : int; (* WAL records in the fault-free run *)
  crashes : int; (* runs that actually lost power *)
  runs : int;
  sweep_failures : (string * string list) list; (* (schedule, violations) *)
  total_recovery_s : float;
}

(* Crash at *every* WAL record boundary: a fault-free reference run
   counts the appends, then one run per k crashes at the k-th append.
   The workload is deterministic, so run k's first k-1 appends are
   exactly the reference run's. *)
let crash_at_every_boundary ?(check_idempotent = false) spec =
  let clean = run_once spec in
  let boundaries = clean.log_length in
  let crashes = ref 0 and failures = ref [] and total_rec = ref 0.0 in
  (match clean.failures with
  | [] -> ()
  | fs -> failures := [ ("fault-free", fs) ]);
  for k = 1 to boundaries do
    let arm () = ignore (Fault.arm_name "wal.append" (Fault.Crash_nth k)) in
    let r = run_once ~arm ~check_idempotent spec in
    if r.crashed <> None then incr crashes;
    total_rec := !total_rec +. r.recovery_s;
    if r.failures <> [] then
      failures := (Printf.sprintf "wal.append@%d" k, r.failures) :: !failures
  done;
  {
    boundaries;
    crashes = !crashes;
    runs = boundaries + 1;
    sweep_failures = List.rev !failures;
    total_recovery_s = !total_rec;
  }

(* The site pool for seeded random crash schedules.  pager.torn_write
   is deliberately absent: pages carry no checksums yet, so a torn page
   is undetectable at rebuild time (see DESIGN.md); it is exercised by
   the pager-level unit tests instead. *)
let random_sites =
  [|
    "wal.append";
    "wal.torn_write";
    "wal.force";
    "wal.after_force";
    "pager.write_page";
    "pool.flush_frame";
    "pstore.write";
  |]

(* One seeded random-crash schedule: pick a site and a hit count from
   the seed, vary the workload seed alongside, run, recover, check. *)
let random_crash_schedule ?check_idempotent ~schedule_seed spec =
  let rng = Rng.create (0x7073 + schedule_seed) in
  let site = random_sites.(Rng.int rng (Array.length random_sites)) in
  let nth = 1 + Rng.int rng 40 in
  let gcs = if Rng.bool rng then 1 else 1 + Rng.int rng 4 in
  let spec = { spec with seed = spec.seed + schedule_seed; group_commit_size = gcs } in
  let arm () = ignore (Fault.arm_name site (Fault.Crash_nth nth)) in
  let r = run_once ~arm ?check_idempotent spec in
  (Printf.sprintf "%s@%d gcs=%d seed=%d" site nth gcs spec.seed, r)

let random_crash_schedules ?check_idempotent ~n spec =
  let crashes = ref 0 and failures = ref [] and total_rec = ref 0.0 in
  for s = 1 to n do
    let label, r = random_crash_schedule ?check_idempotent ~schedule_seed:s spec in
    if r.crashed <> None then incr crashes;
    total_rec := !total_rec +. r.recovery_s;
    if r.failures <> [] then failures := (label, r.failures) :: !failures
  done;
  {
    boundaries = 0;
    crashes = !crashes;
    runs = n;
    sweep_failures = List.rev !failures;
    total_recovery_s = !total_rec;
  }

(* ------------------------------------------------------------------ *)
(* Durability schedules: fuzzy checkpoints, retirement, parallel redo  *)

(* The crash windows specific to the sustained-durability machinery.
   The wal.ckpt.* and wal.retire.* sites fire from the commit path's
   checkpoint trigger during the workload; the recovery.domain.* sites
   only fire during recovery itself, so schedules picking them arm
   after power-off. *)
let durability_sites =
  [|
    "wal.ckpt.begin";
    "wal.ckpt.flush";
    "wal.ckpt.end";
    "wal.retire.manifest";
    "wal.retire.unlink";
    "wal.retire.sync_dir";
    "recovery.domain.replay";
    "recovery.domain.merge";
  |]

let is_recovery_site site =
  String.length site >= 9 && String.sub site 0 9 = "recovery."

(* One seeded durability schedule: a segmented WAL with an aggressive
   checkpoint trigger, parallel recovery, and a crash armed at one of
   the checkpoint / retirement / parallel-replay windows. *)
let random_durability_schedule ?check_idempotent ~schedule_seed spec =
  let rng = Rng.create (0xd07a + schedule_seed) in
  let site = durability_sites.(Rng.int rng (Array.length durability_sites)) in
  let nth = 1 + Rng.int rng 4 in
  let spec =
    {
      spec with
      seed = spec.seed + schedule_seed;
      n_txns = max spec.n_txns 16;
      segment_bytes = 512 + (256 * Rng.int rng 4);
      checkpoint_log_bytes = 768 + (256 * Rng.int rng 4);
      recovery_domains = 1 + Rng.int rng 3;
    }
  in
  let do_arm () = ignore (Fault.arm_name site (Fault.Crash_nth nth)) in
  let arm, arm_recovery =
    if is_recovery_site site then ((fun () -> ()), do_arm) else (do_arm, fun () -> ())
  in
  let r = run_once ~arm ~arm_recovery ?check_idempotent spec in
  ( Printf.sprintf "%s@%d seg=%d ckpt=%d dom=%d seed=%d" site nth spec.segment_bytes
      spec.checkpoint_log_bytes spec.recovery_domains spec.seed,
    r )

let random_durability_schedules ?check_idempotent ~n spec =
  let crashes = ref 0 and failures = ref [] and total_rec = ref 0.0 in
  for s = 1 to n do
    let label, r = random_durability_schedule ?check_idempotent ~schedule_seed:s spec in
    if r.crashed <> None || r.recovery_crashes > 0 then incr crashes;
    total_rec := !total_rec +. r.recovery_s;
    if r.failures <> [] then failures := (label, r.failures) :: !failures
  done;
  {
    boundaries = 0;
    crashes = !crashes;
    runs = n;
    sweep_failures = List.rev !failures;
    total_recovery_s = !total_rec;
  }

(* ------------------------------------------------------------------ *)
(* Sustained-write run: bounded log under checkpoint + retirement      *)

type sustained = {
  s_rounds : int;
  s_txns : int;
  s_checkpoints : int; (* fuzzy checkpoints the commit path triggered *)
  s_segments_created : int;
  s_segments_retired : int;
  s_segments_live : int;
  s_failures : string list; (* empty = log stayed bounded and consistent *)
}

(* Run [rounds] batches of transfers against ONE long-lived segmented
   WAL with the commit-path fuzzy-checkpoint trigger on, then assert
   the log stayed bounded: segments were retired, and the live segment
   count never outgrew the checkpoint threshold plus slack.  Close
   cleanly, crash the pool, recover, and verify every round's effects
   survived. *)
let sustained_run ?(rounds = 12) spec =
  Fault.reset_all ();
  let spec =
    {
      spec with
      segment_bytes = (if spec.segment_bytes > 0 then spec.segment_bytes else 1024);
      checkpoint_log_bytes =
        (if spec.checkpoint_log_bytes > 0 then spec.checkpoint_log_bytes else 2048);
    }
  in
  let pages_path, wal_path = fresh_paths () in
  let wal_path = wal_path ^ ".d" in
  let ps = Pstore.create ~page_size:spec.page_size ~pool_capacity:spec.pool_capacity pages_path in
  let store = Pstore.to_store ps in
  for a = 1 to spec.accounts do
    Store.write store (Bank.account a) (Value.of_int spec.balance)
  done;
  Store.flush store;
  let log = Log.create_dir ~segment_bytes:spec.segment_bytes wal_path in
  let config =
    {
      E.default_config with
      group_commit_size = spec.group_commit_size;
      checkpoint_log_bytes = spec.checkpoint_log_bytes;
    }
  in
  let db = E.create ~config ~log store in
  let expected = Array.make (spec.accounts + 1) spec.balance in
  let txns = ref 0 in
  for round = 1 to rounds do
    let transfers = plan { spec with seed = spec.seed + round } in
    Runtime.run_exn db (fun () ->
        let tids =
          Array.map
            (fun tr -> E.initiate db (Bank.transfer db ~from_:tr.src ~to_:tr.dst ~amount:tr.amount))
            transfers
        in
        Array.iter (fun t -> ignore (E.begin_ db t)) tids;
        Array.iteri
          (fun i t ->
            E.spawn db ~label:(Printf.sprintf "committer-%d-%d" round i) (fun () ->
                if E.commit db t then begin
                  let tr = transfers.(i) in
                  expected.(tr.src) <- expected.(tr.src) - tr.amount;
                  expected.(tr.dst) <- expected.(tr.dst) + tr.amount
                end))
          tids;
        E.await_terminated db (Array.to_list tids));
    txns := !txns + Array.length transfers
  done;
  let checkpoints = List.assoc "fuzzy_ckpts" (E.stats db) in
  let retired = Log.segments_retired log in
  let live = Log.segment_count log in
  let created = live + retired in
  let failures = ref [] in
  let addf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if checkpoints = 0 then addf "no fuzzy checkpoint fired in %d rounds" rounds;
  if retired = 0 then addf "no segment retired (created %d)" created;
  (* Live segments are bounded by the un-checkpointed window: one
     threshold of log plus the segment being filled and one of slack
     for records of transactions still active at the last capture. *)
  let bound = 2 + ((2 * spec.checkpoint_log_bytes / spec.segment_bytes) + 2) in
  if live > bound then addf "log unbounded: %d live segments (bound %d, retired %d)" live bound retired;
  Log.close log;
  Pstore.crash_and_reopen ps;
  let rlog = Log.load_dir wal_path in
  ignore (Recovery.recover rlog store);
  for a = 1 to spec.accounts do
    match Store.read store (Bank.account a) with
    | Some v ->
        if Value.to_int v <> expected.(a) then
          addf "account %d holds %d after sustained run, expected %d" a (Value.to_int v)
            expected.(a)
    | None -> addf "account %d missing after sustained run" a
  done;
  Log.close rlog;
  Pstore.close ps;
  Sys.remove pages_path;
  rm_wal wal_path;
  {
    s_rounds = rounds;
    s_txns = !txns;
    s_checkpoints = checkpoints;
    s_segments_created = created;
    s_segments_retired = retired;
    s_segments_live = live;
    s_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Fault-rate retry workload (bench E19)                               *)

type retry_outcome = {
  committed : int;
  retries : int;
  gave_up : int;
  aborts : int;
  duration_s : float;
  conserved : bool; (* bank total intact after close + recovery *)
}

(* Run the transfer workload under a transient-failure rate with the
   bounded-retry combinator, then close cleanly, recover, and verify
   conservation.  [fault_rate] arms "workload.op" with a seeded
   probability policy, so each attempt (including retries) may fail and
   be retried. *)
let run_retry_workload ?(fault_rate = 0.0) ?(max_retries = 3) spec =
  Fault.reset_all ();
  let pages_path, wal_path = fresh_paths () in
  let ps = Pstore.create ~page_size:spec.page_size ~pool_capacity:spec.pool_capacity pages_path in
  let store = Pstore.to_store ps in
  for a = 1 to spec.accounts do
    Store.write store (Bank.account a) (Value.of_int spec.balance)
  done;
  Store.flush store;
  let log = Log.create_file wal_path in
  let config = { E.default_config with group_commit_size = spec.group_commit_size } in
  let db = E.create ~config ~log store in
  let transfers = plan spec in
  if fault_rate > 0.0 then
    Fault.arm site_op (Fault.Fail_prob (fault_rate, Rng.create (spec.seed lxor 0x0fa17)));
  let bodies =
    Array.to_list
      (Array.map
         (fun tr () ->
           Fault.hit site_op;
           Bank.transfer db ~from_:tr.src ~to_:tr.dst ~amount:tr.amount ())
         transfers)
  in
  let rng = Rng.create (spec.seed lxor 0x6b8b4567) in
  let t0 = Unix.gettimeofday () in
  let metrics = ref { Workload.r_committed = 0; r_retries = 0; r_gave_up = 0 } in
  Runtime.run_exn db (fun () -> metrics := Workload.run_bodies_with_retry ~max_retries ~rng db bodies);
  let duration_s = Unix.gettimeofday () -. t0 in
  let aborts = List.assoc "aborts" (E.stats db) in
  Fault.reset_all ();
  Log.close log;
  Pstore.crash_and_reopen ps;
  let rlog = Log.load wal_path in
  ignore (Recovery.recover rlog store);
  let conserved =
    let total = ref 0 in
    for a = 1 to spec.accounts do
      match Store.read store (Bank.account a) with
      | Some v -> total := !total + Value.to_int v
      | None -> ()
    done;
    !total = spec.accounts * spec.balance
  in
  Log.close rlog;
  Pstore.close ps;
  Sys.remove pages_path;
  Sys.remove wal_path;
  {
    committed = !metrics.Workload.r_committed;
    retries = !metrics.Workload.r_retries;
    gave_up = !metrics.Workload.r_gave_up;
    aborts;
    duration_s;
    conserved;
  }
