(* Crash-recovery torture harness.

   One torture run is a bank-transfer workload over a fully persistent
   stack — slotted pages behind a small buffer pool, file-backed WAL —
   with a fault armed at some I/O site.  When the fault fires as
   [Fault.Crash], the harness treats it as power loss with full
   fidelity:

     - the WAL's staging buffer and the buffer pool's dirty frames are
       discarded ([Log.crash], [Persistent_store.crash_and_reopen]) —
       only bytes that reached the files survive;
     - the log is re-read from disk ([Log.load]: torn-tail truncation +
       CRC verification) and [Recovery.recover] repeats history and
       undoes losers.

   The durability invariants checked after every recovery:

     1. every *acknowledged* commit (E.commit returned true) is a
        recovery winner — its effects are present;
     2. no loser effect is visible: each account holds exactly the
        initial balance plus the winners' transfer deltas;
     3. the bank total is conserved;
     4. optionally, recovery is idempotent (recovering again changes
        nothing).

   Everything is deterministic in the spec seed: the transfer plan, the
   cooperative schedule, and the fault schedule, so any failure
   reproduces from its seed. *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Sched = Asset_sched.Scheduler
module Log = Asset_wal.Log
module Recovery = Asset_wal.Recovery
module Pstore = Asset_storage.Persistent_store
module Store = Asset_storage.Store
module Value = Asset_storage.Value
module Fault = Asset_fault.Fault
module Rng = Asset_util.Rng
module Tid = Asset_util.Id.Tid

(* Application-level failpoint for the retry workload: fired at the top
   of every transfer body, modelling a transient application failure
   (the clean abort-and-retry path, as opposed to the crash sites in
   the storage layers). *)
let site_op = Fault.register "workload.op"

type spec = {
  accounts : int;
  balance : int;
  n_txns : int;
  seed : int;
  group_commit_size : int;
  page_size : int;
  pool_capacity : int;
}

let default_spec =
  { accounts = 16; balance = 1_000; n_txns = 12; seed = 42; group_commit_size = 1; page_size = 512; pool_capacity = 4 }

type transfer = { src : int; dst : int; amount : int }

(* The scripted transfer plan, deterministic in the seed.  Recorded up
   front so the invariant check can recompute each winner's effect. *)
let plan spec =
  let rng = Rng.create spec.seed in
  Array.init spec.n_txns (fun _ ->
      let src = 1 + Rng.int rng spec.accounts in
      let dst = 1 + Rng.int rng spec.accounts in
      { src; dst; amount = 1 + Rng.int rng 100 })

type outcome = {
  crashed : string option; (* failpoint site of the simulated power loss *)
  acked : bool array; (* per transaction: E.commit returned true *)
  tids : Tid.t array;
  report : Recovery.report;
  recovery_s : float;
  log_length : int; (* records in the recovered log *)
  failures : string list; (* violated durability invariants, empty = pass *)
}

let fresh_paths =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let base =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "asset-torture-%d-%d" (Unix.getpid ()) !counter)
    in
    (base ^ ".pages", base ^ ".wal")

let check spec transfers (tids : Tid.t array) acked (report : Recovery.report) store =
  let failures = ref [] in
  let addf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let winner t = List.exists (Tid.equal t) report.winners in
  Array.iteri
    (fun i t -> if acked.(i) && not (winner t) then addf "txn %d acknowledged but not durable" i)
    tids;
  let expected = Array.make (spec.accounts + 1) spec.balance in
  Array.iteri
    (fun i t ->
      if (not (Tid.is_null t)) && winner t then begin
        let tr = transfers.(i) in
        expected.(tr.src) <- expected.(tr.src) - tr.amount;
        expected.(tr.dst) <- expected.(tr.dst) + tr.amount
      end)
    tids;
  let total = ref 0 in
  for a = 1 to spec.accounts do
    match Store.read store (Bank.account a) with
    | Some v ->
        let got = Value.to_int v in
        total := !total + got;
        if got <> expected.(a) then addf "account %d holds %d, expected %d" a got expected.(a)
    | None -> addf "account %d missing after recovery" a
  done;
  if !total <> spec.accounts * spec.balance then
    addf "balance not conserved: %d, expected %d" !total (spec.accounts * spec.balance);
  List.rev !failures

let sorted_snapshot store =
  Store.dump store |> List.map (fun (oid, v) -> (oid, Value.to_string v)) |> List.sort compare

(* One full torture run: set up a clean bank, arm faults via [arm],
   run every transfer with its own committer fiber, simulate power loss
   if a crash fires, recover, and check the durability invariants. *)
let run_once ?(arm = fun () -> ()) ?(check_idempotent = false) spec =
  Fault.reset_all ();
  let pages_path, wal_path = fresh_paths () in
  let ps = Pstore.create ~page_size:spec.page_size ~pool_capacity:spec.pool_capacity pages_path in
  let store = Pstore.to_store ps in
  for a = 1 to spec.accounts do
    Store.write store (Bank.account a) (Value.of_int spec.balance)
  done;
  Store.flush store;
  let log = Log.create_file wal_path in
  let config = { E.default_config with group_commit_size = spec.group_commit_size } in
  let db = E.create ~config ~log store in
  let transfers = plan spec in
  let tids = Array.make spec.n_txns Tid.null in
  let acked = Array.make spec.n_txns false in
  arm ();
  let crashed =
    let main () =
      Array.iteri
        (fun i tr ->
          tids.(i) <- E.initiate db (Bank.transfer db ~from_:tr.src ~to_:tr.dst ~amount:tr.amount))
        transfers;
      Array.iter (fun t -> ignore (E.begin_ db t)) tids;
      Array.iteri
        (fun i t ->
          E.spawn db ~label:(Printf.sprintf "committer-%d" i) (fun () ->
              if E.commit db t then acked.(i) <- true))
        tids;
      E.await_terminated db (Array.to_list tids)
    in
    match Runtime.run db main with
    | { Runtime.result = Ok (); _ } -> None
    | { Runtime.result = Error (Fault.Crash site | Sched.Fiber_failed (_, Fault.Crash site)); _ } ->
        Some site
    | { Runtime.result = Error e; _ } -> raise e
    | exception Fault.Crash site ->
        (* A crash in the post-run quiescence flush (Runtime's own
           flush_pending_commits). *)
        Some site
  in
  (* Power off: disarm everything, lose all volatile state. *)
  Fault.reset_all ();
  (match crashed with Some _ -> Log.crash log | None -> Log.close log);
  Pstore.crash_and_reopen ps;
  (* Power on: reload the log from disk and recover. *)
  let rlog = Log.load wal_path in
  let t0 = Unix.gettimeofday () in
  let report = Recovery.recover rlog store in
  let recovery_s = Unix.gettimeofday () -. t0 in
  let failures = check spec transfers tids acked report store in
  let failures =
    if check_idempotent then begin
      let before = sorted_snapshot store in
      ignore (Recovery.recover rlog store);
      if sorted_snapshot store <> before then failures @ [ "recovery not idempotent" ]
      else failures
    end
    else failures
  in
  let log_length = Log.length rlog in
  Log.close rlog;
  Pstore.close ps;
  Sys.remove pages_path;
  Sys.remove wal_path;
  { crashed; acked; tids; report; recovery_s; log_length; failures }

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)

type sweep = {
  boundaries : int; (* WAL records in the fault-free run *)
  crashes : int; (* runs that actually lost power *)
  runs : int;
  sweep_failures : (string * string list) list; (* (schedule, violations) *)
  total_recovery_s : float;
}

(* Crash at *every* WAL record boundary: a fault-free reference run
   counts the appends, then one run per k crashes at the k-th append.
   The workload is deterministic, so run k's first k-1 appends are
   exactly the reference run's. *)
let crash_at_every_boundary ?(check_idempotent = false) spec =
  let clean = run_once spec in
  let boundaries = clean.log_length in
  let crashes = ref 0 and failures = ref [] and total_rec = ref 0.0 in
  (match clean.failures with
  | [] -> ()
  | fs -> failures := [ ("fault-free", fs) ]);
  for k = 1 to boundaries do
    let arm () = ignore (Fault.arm_name "wal.append" (Fault.Crash_nth k)) in
    let r = run_once ~arm ~check_idempotent spec in
    if r.crashed <> None then incr crashes;
    total_rec := !total_rec +. r.recovery_s;
    if r.failures <> [] then
      failures := (Printf.sprintf "wal.append@%d" k, r.failures) :: !failures
  done;
  {
    boundaries;
    crashes = !crashes;
    runs = boundaries + 1;
    sweep_failures = List.rev !failures;
    total_recovery_s = !total_rec;
  }

(* The site pool for seeded random crash schedules.  pager.torn_write
   is deliberately absent: pages carry no checksums yet, so a torn page
   is undetectable at rebuild time (see DESIGN.md); it is exercised by
   the pager-level unit tests instead. *)
let random_sites =
  [|
    "wal.append";
    "wal.torn_write";
    "wal.force";
    "wal.after_force";
    "pager.write_page";
    "pool.flush_frame";
    "pstore.write";
  |]

(* One seeded random-crash schedule: pick a site and a hit count from
   the seed, vary the workload seed alongside, run, recover, check. *)
let random_crash_schedule ?check_idempotent ~schedule_seed spec =
  let rng = Rng.create (0x7073 + schedule_seed) in
  let site = random_sites.(Rng.int rng (Array.length random_sites)) in
  let nth = 1 + Rng.int rng 40 in
  let gcs = if Rng.bool rng then 1 else 1 + Rng.int rng 4 in
  let spec = { spec with seed = spec.seed + schedule_seed; group_commit_size = gcs } in
  let arm () = ignore (Fault.arm_name site (Fault.Crash_nth nth)) in
  let r = run_once ~arm ?check_idempotent spec in
  (Printf.sprintf "%s@%d gcs=%d seed=%d" site nth gcs spec.seed, r)

let random_crash_schedules ?check_idempotent ~n spec =
  let crashes = ref 0 and failures = ref [] and total_rec = ref 0.0 in
  for s = 1 to n do
    let label, r = random_crash_schedule ?check_idempotent ~schedule_seed:s spec in
    if r.crashed <> None then incr crashes;
    total_rec := !total_rec +. r.recovery_s;
    if r.failures <> [] then failures := (label, r.failures) :: !failures
  done;
  {
    boundaries = 0;
    crashes = !crashes;
    runs = n;
    sweep_failures = List.rev !failures;
    total_recovery_s = !total_rec;
  }

(* ------------------------------------------------------------------ *)
(* Fault-rate retry workload (bench E19)                               *)

type retry_outcome = {
  committed : int;
  retries : int;
  gave_up : int;
  aborts : int;
  duration_s : float;
  conserved : bool; (* bank total intact after close + recovery *)
}

(* Run the transfer workload under a transient-failure rate with the
   bounded-retry combinator, then close cleanly, recover, and verify
   conservation.  [fault_rate] arms "workload.op" with a seeded
   probability policy, so each attempt (including retries) may fail and
   be retried. *)
let run_retry_workload ?(fault_rate = 0.0) ?(max_retries = 3) spec =
  Fault.reset_all ();
  let pages_path, wal_path = fresh_paths () in
  let ps = Pstore.create ~page_size:spec.page_size ~pool_capacity:spec.pool_capacity pages_path in
  let store = Pstore.to_store ps in
  for a = 1 to spec.accounts do
    Store.write store (Bank.account a) (Value.of_int spec.balance)
  done;
  Store.flush store;
  let log = Log.create_file wal_path in
  let config = { E.default_config with group_commit_size = spec.group_commit_size } in
  let db = E.create ~config ~log store in
  let transfers = plan spec in
  if fault_rate > 0.0 then
    Fault.arm site_op (Fault.Fail_prob (fault_rate, Rng.create (spec.seed lxor 0x0fa17)));
  let bodies =
    Array.to_list
      (Array.map
         (fun tr () ->
           Fault.hit site_op;
           Bank.transfer db ~from_:tr.src ~to_:tr.dst ~amount:tr.amount ())
         transfers)
  in
  let rng = Rng.create (spec.seed lxor 0x6b8b4567) in
  let t0 = Unix.gettimeofday () in
  let metrics = ref { Workload.r_committed = 0; r_retries = 0; r_gave_up = 0 } in
  Runtime.run_exn db (fun () -> metrics := Workload.run_bodies_with_retry ~max_retries ~rng db bodies);
  let duration_s = Unix.gettimeofday () -. t0 in
  let aborts = List.assoc "aborts" (E.stats db) in
  Fault.reset_all ();
  Log.close log;
  Pstore.crash_and_reopen ps;
  let rlog = Log.load wal_path in
  ignore (Recovery.recover rlog store);
  let conserved =
    let total = ref 0 in
    for a = 1 to spec.accounts do
      match Store.read store (Bank.account a) with
      | Some v -> total := !total + Value.to_int v
      | None -> ()
    done;
    !total = spec.accounts * spec.balance
  in
  Log.close rlog;
  Pstore.close ps;
  Sys.remove pages_path;
  Sys.remove wal_path;
  {
    committed = !metrics.Workload.r_committed;
    retries = !metrics.Workload.r_retries;
    gave_up = !metrics.Workload.r_gave_up;
    aborts;
    duration_s;
    conserved;
  }
