(* TPC-C-flavoured multi-class mix: see oltp.mli. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Tid = Asset_util.Id.Tid
module Rng = Asset_util.Rng
module Zipf = Asset_util.Zipf
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Sched = Asset_sched.Scheduler

(* Object map: counters and queues low, then the two tables. *)
let orders = Oid.of_int 3
let history = Oid.of_int 4
let ledger = Oid.of_int 5
let reserved = Oid.of_int 6
let delivered = Oid.of_int 7
let account a = Oid.of_int (1000 + a)
let stock i = Oid.of_int (2000 + i)

type config = { accounts : int; items : int; theta : float; mix : int array }

let default_config =
  { accounts = 8; items = 16; theta = 0.8; mix = [| 45; 43; 4; 8 |] }

let setup store cfg ~balance0 ~stock0 =
  Store.write store orders (Value.of_queue []);
  Store.write store history (Value.of_queue []);
  Store.write store ledger (Value.of_int 0);
  Store.write store reserved (Value.of_int 0);
  Store.write store delivered (Value.of_int 0);
  for a = 0 to cfg.accounts - 1 do
    Store.write store (account a) (Value.of_int balance0)
  done;
  for i = 0 to cfg.items - 1 do
    Store.write store (stock i) (Value.of_int stock0)
  done

type klass = New_order | Payment | Delivery | Stock_check

let klass_name = function
  | New_order -> "new_order"
  | Payment -> "payment"
  | Delivery -> "delivery"
  | Stock_check -> "stock_check"

let all_klasses = [ New_order; Payment; Delivery; Stock_check ]

type op =
  | Escrow of { delta : int; lo : int }
  | Incr of int
  | Enq of string
  | Rd

type txn = { t_klass : klass; t_ops : (Oid.t * op) list }

let pick_klass ~rng mix =
  let total = Array.fold_left ( + ) 0 mix in
  let r = Rng.int rng total in
  let rec go i acc =
    let acc = acc + mix.(i) in
    if r < acc then i else go (i + 1) acc
  in
  List.nth all_klasses (go 0 0)

let gen_txn ~rng cfg =
  let acct_z = Zipf.create ~n:cfg.accounts ~theta:cfg.theta ~rng in
  let item_z = Zipf.create ~n:cfg.items ~theta:cfg.theta ~rng in
  match pick_klass ~rng cfg.mix with
  | New_order ->
      let c = Zipf.sample acct_z in
      let lines = 1 + Rng.int rng 3 in
      let stock_ops =
        List.init lines (fun _ ->
            let i = Zipf.sample item_z in
            let qty = 1 + Rng.int rng 3 in
            [ (stock i, Escrow { delta = -qty; lo = 0 }); (reserved, Incr qty) ])
        |> List.concat
      in
      {
        t_klass = New_order;
        t_ops = stock_ops @ [ (orders, Enq (Printf.sprintf "order:%d" c)) ];
      }
  | Payment ->
      let c = Zipf.sample acct_z in
      let amt = 1 + Rng.int rng 10 in
      {
        t_klass = Payment;
        t_ops =
          [
            (account c, Escrow { delta = -amt; lo = 0 });
            (ledger, Incr amt);
            (history, Enq (Printf.sprintf "pay:%d" c));
          ];
      }
  | Delivery ->
      {
        t_klass = Delivery;
        t_ops =
          [
            (reserved, Escrow { delta = -1; lo = 0 });
            (delivered, Incr 1);
            (history, Enq "deliv");
          ];
      }
  | Stock_check ->
      let k = 2 + Rng.int rng 4 in
      let cells = List.init k (fun _ -> (stock (Zipf.sample item_z), Rd)) in
      { t_klass = Stock_check; t_ops = cells @ [ (ledger, Rd) ] }

let ops_of t = t.t_ops

let site_op = Asset_fault.Fault.register "oltp.op"

let apply db (oid, op) =
  Asset_fault.Fault.hit site_op;
  match op with
  | Escrow { delta; lo } -> E.escrow db oid delta ~lo ~hi:max_int
  | Incr n -> E.increment db oid n
  | Enq item -> E.enqueue db oid item
  | Rd -> ignore (E.read db oid)

exception Insufficient

(* The plain-2PL baseline: every semantic op degraded to a
   read-then-write on the same cell — lock upgrades, deadlocks and
   all.  A bound miss has no in-flight deltas to blame, so it aborts
   non-retryably ([Insufficient]) where escrow would abort
   transiently. *)
let apply_rmw db (oid, op) =
  Asset_fault.Fault.hit site_op;
  let get () = match E.read db oid with Some v -> v | None -> Value.of_int 0 in
  match op with
  | Escrow { delta; lo } ->
      let n = Value.to_int (get ()) + delta in
      if n < lo then raise Insufficient;
      E.write db oid (Value.of_int n)
  | Incr n -> E.write db oid (Value.of_int (Value.to_int (get ()) + n))
  | Enq item -> E.write db oid (Value.queue_push (get ()) item)
  | Rd -> ignore (E.read db oid)

let body ?(yield = true) ?(rmw = false) db t () =
  let apply = if rmw then apply_rmw else apply in
  List.iter
    (fun o ->
      apply db o;
      if yield then Sched.yield ())
    t.t_ops

let read_only t = t.t_klass = Stock_check

(* --- driver --- *)

type class_stats = {
  mutable s_committed : int;
  mutable s_aborted : int;
  mutable s_retries : int;
  mutable s_gave_up : int;
  mutable s_lat : float list;
}

let fresh_stats () =
  { s_committed = 0; s_aborted = 0; s_retries = 0; s_gave_up = 0; s_lat = [] }

let run_mix ?(max_retries = 4) ?(snapshot_readers = false) ?(rmw = false) db ~seed ~txns cfg =
  let stats = List.map (fun k -> (k, fresh_stats ())) all_klasses in
  let stat k = List.assoc k stats in
  let done_ = ref 0 in
  for j = 0 to txns - 1 do
    let rng = Rng.create (seed + (j * 104729)) in
    let txn = gen_txn ~rng cfg in
    let st = stat txn.t_klass in
    E.spawn db ~label:(Printf.sprintf "oltp-%d-%s" j (klass_name txn.t_klass))
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let read_only = snapshot_readers && read_only txn in
        let rec attempt k =
          let t = E.initiate ~read_only db (body ~rmw db txn) in
          if Tid.is_null t then ()
          else begin
            ignore (E.begin_ db t);
            if E.commit db t then begin
              st.s_committed <- st.s_committed + 1;
              st.s_lat <- (Unix.gettimeofday () -. t0) :: st.s_lat
            end
            else begin
              st.s_aborted <- st.s_aborted + 1;
              if Workload.retryable (E.failure_of db t) then
                if k < max_retries then begin
                  st.s_retries <- st.s_retries + 1;
                  E.note_retry db;
                  let cap = min 64 (2 lsl k) in
                  for _ = 1 to Rng.int rng cap do
                    Sched.yield ()
                  done;
                  attempt (k + 1)
                end
                else begin
                  st.s_gave_up <- st.s_gave_up + 1;
                  E.note_give_up db
                end
            end
          end
        in
        attempt 0;
        incr done_)
  done;
  Sched.wait_until ~reason:"oltp-done" (fun () -> !done_ >= txns);
  stats

(* --- invariants --- *)

let read_int store oid =
  match Store.read store oid with Some v -> Value.to_int v | None -> 0

let read_queue store oid =
  match Store.read store oid with Some v -> Value.to_queue v | None -> []

let check_conservation store cfg ~balance0 ~stock0 =
  let sum_range n cell =
    let s = ref 0 in
    for i = 0 to n - 1 do
      s := !s + read_int store (cell i)
    done;
    !s
  in
  let money = sum_range cfg.accounts account + read_int store ledger in
  let goods =
    sum_range cfg.items stock + read_int store reserved
    + read_int store delivered
  in
  [
    ("money", money = cfg.accounts * balance0);
    ("goods", goods = cfg.items * stock0);
  ]

let queue_lengths store =
  (List.length (read_queue store orders), List.length (read_queue store history))
