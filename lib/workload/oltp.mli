(** A TPC-C-flavoured multi-class OLTP mix over bank-style tables.

    Four transaction classes — the new-order / payment / delivery /
    stock-level analogues — run against an account table, a stock
    table, two append-only queues and three escrow counters, with
    Zipfian skew on account and item choice.  Every class is expressed
    as a flat list of per-object operations ({!ops_of}), so the same
    generated transaction runs on a single engine ({!body}), as a
    read-only MVCC snapshot (stock-check), or decomposed by shard for
    the 2PC coordinator (group {!ops_of} by [Shard.shard_of] and
    {!apply} each group in its shard's body).

    Two conservation laws pin correctness whatever the interleaving,
    and {!check_conservation} audits them straight from the store:

    - money: [sum(accounts) + ledger] is constant (payments move money
      from an escrow-bounded account into the ledger);
    - goods: [sum(stock) + reserved + delivered] is constant
      (new-order moves stock into reservation, delivery moves
      reservation into delivered).

    Queue lengths tie to committed counts: [orders] holds one entry
    per committed new-order, [history] one per committed payment or
    delivery. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Rng = Asset_util.Rng

(** {2 Tables} *)

val account : int -> Oid.t
val stock : int -> Oid.t

val orders : Oid.t
(** Queue: one ["order:<c>"] entry per committed new-order. *)

val history : Oid.t
(** Queue: one ["pay:<c>"] / ["deliv"] entry per committed payment or
    delivery. *)

val ledger : Oid.t
(** Money received from payments (commuting increments). *)

val reserved : Oid.t
(** Stock units reserved by new-orders, not yet delivered. *)

val delivered : Oid.t
(** Stock units delivered. *)

type config = {
  accounts : int;
  items : int;
  theta : float;  (** Zipf skew for account and item choice; 0 = uniform *)
  mix : int array;
      (** Per-class weights, indexed by {!klass} order
          (new-order, payment, delivery, stock-check); need not sum
          to 100. *)
}

val default_config : config
(** 8 accounts, 16 items, theta 0.8, mix [|45; 43; 4; 8|]. *)

val setup : Asset_storage.Store.t -> config -> balance0:int -> stock0:int -> unit

(** {2 Transactions} *)

type klass = New_order | Payment | Delivery | Stock_check

val klass_name : klass -> string
val all_klasses : klass list

type op =
  | Escrow of { delta : int; lo : int }  (** bounded add, hi unbounded *)
  | Incr of int  (** commuting increment *)
  | Enq of string  (** queue append *)
  | Rd  (** read *)

type txn = { t_klass : klass; t_ops : (Oid.t * op) list }

val gen_txn : rng:Rng.t -> config -> txn
(** One seeded transaction, class drawn from [mix], objects drawn
    Zipf-skewed.  New-order reserves 1–3 stock lines; payment moves a
    small amount from one account; delivery moves one reserved unit;
    stock-check reads a handful of stock cells plus the ledger. *)

val ops_of : txn -> (Oid.t * op) list

val site_op : Asset_fault.Fault.site
(** Fault-injection point hit before every {!apply}; arm it with
    [Fail_prob] for the faulted conformance runs. *)

val apply : E.t -> Oid.t * op -> unit
(** Perform one operation inside the current transaction's body. *)

exception Insufficient
(** {!apply_rmw}'s bound-check failure: no in-flight deltas to blame,
    so it is a non-retryable abort (escrow's [Escrow_violation] is
    transient by contrast). *)

val apply_rmw : E.t -> Oid.t * op -> unit
(** The plain-2PL baseline: the same operation degraded to a
    read-then-write (lock upgrades, deadlocks and all). *)

val body : ?yield:bool -> ?rmw:bool -> E.t -> txn -> unit -> unit
(** The whole transaction as a single-engine body, yielding between
    operations by default; [~rmw:true] uses {!apply_rmw}. *)

val read_only : txn -> bool
(** True exactly for stock-check: eligible to run as a multi-version
    snapshot reader. *)

(** {2 Single-engine driver} *)

type class_stats = {
  mutable s_committed : int;
  mutable s_aborted : int;  (** attempts that aborted (before any retry) *)
  mutable s_retries : int;
  mutable s_gave_up : int;
  mutable s_lat : float list;  (** per-committed-txn latency, seconds *)
}

val run_mix :
  ?max_retries:int ->
  ?snapshot_readers:bool ->
  ?rmw:bool ->
  E.t ->
  seed:int ->
  txns:int ->
  config ->
  (klass * class_stats) list
(** Run [txns] generated transactions concurrently (one fiber each)
    with typed retry; [snapshot_readers] runs stock-checks as
    [read_only] MVCC snapshot transactions, [rmw] degrades every body
    to the plain-2PL baseline.  Must run inside a runtime fiber.
    Returns stats for all four classes in {!all_klasses} order. *)

(** {2 Invariants} *)

val check_conservation :
  Asset_storage.Store.t -> config -> balance0:int -> stock0:int -> (string * bool) list
(** The money and goods conservation laws, read from the store; every
    [bool] must be [true] after any quiesced run, faulted or not. *)

val queue_lengths : Asset_storage.Store.t -> int * int
(** Current ([orders], [history]) queue lengths. *)
