(** Agentic tool-use transactions: an agent workflow's tool calls as
    ASSET extended transactions (the Atomix shape from PAPERS.md).

    Each agent executes a generated {!plan} — a sequence of tool
    steps — as a saga: every compensable step is its own committing
    transaction with a registered compensation, and a failed step
    compensates the committed prefix in reverse order.  Speculative
    tool calls run as contingent alternates under pairwise EXC
    dependencies (the first success force-aborts its siblings),
    sub-agent handoff transfers a child's effects — including its
    escrow reservations — to the adopting step via [delegate], and
    context gathering runs on a lock-free multi-version snapshot.
    Timeliness comes from [lock_wait_timeout_steps] plus typed retry:
    only {!Workload.retryable} aborts are retried, with seeded
    backoff.

    Tool effects land on real engine objects: an escrow-bounded token
    {!budget}, an append-only {!audit} queue, and shared {!doc}
    cells — so concurrent agents contend exactly like any other
    workload and every run can be replayed through the oracle.  The
    runner returns the {!contract} a conformance harness needs:
    (component, compensation) pairs for the compensation-order
    checker, EXC alternate groups for exclusivity, and delegation
    edges. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Tid = Asset_util.Id.Tid
module Rng = Asset_util.Rng

val site_tool : Asset_fault.Fault.site
(** Fault-injection point hit at the start of every tool effect (calls,
    speculation alternates, sub-agent bodies); arm it with
    [Fail_prob] for the faulted conformance runs. *)

exception Tool_failed of string
(** A non-retryable tool error — the plan's [fail_at] failure; the saga
    compensates rather than retries. *)

(** {2 The agent world} *)

val budget : Oid.t
(** Escrow-guarded token budget (int, bounded below by 0). *)

val audit : Oid.t
(** Append-only audit log (queue of ["call:<tool>"] / ["undo:<tool>"]
    items). *)

val doc : int -> Oid.t
(** Shared document cells the tools read and write. *)

val setup : Asset_storage.Store.t -> docs:int -> budget0:int -> unit
(** Populate budget, audit and [docs] document cells. *)

(** {2 Plans} *)

type step =
  | Call of { tool : string; cost : int; d : int }
      (** A compensable tool call: escrow-debit [cost], write doc [d],
          append ["call:tool"] to the audit log.  Its compensation
          refunds the cost (commuting increment), tombstones the doc
          and appends ["undo:tool"]. *)
  | Speculate of { tool : string; costs : int list; d : int; winner : int }
      (** Speculative tool calls: one alternative per cost, pairwise
          EXC, tried in order; alternatives before [winner] fail after
          doing their (rolled-back) work.  Exactly one commits. *)
  | Handoff of { tool : string; cost : int; d : int }
      (** Sub-agent handoff: a child transaction does the work, then
          delegates everything — locks, logged updates, escrow
          reservations — to the adopting step transaction, which
          commits it. *)
  | Gather of { tool : string; ds : int list }
      (** Context gathering: a read-only snapshot transaction reads the
          listed docs lock-free. *)

type plan = {
  agent : int;
  steps : step list;
  fail_at : int option;
      (** Step index whose tool call fails (a non-retryable tool
          error): the saga compensates the committed prefix in reverse
          order and the plan stops. *)
}

val gen_plan : rng:Rng.t -> docs:int -> agent:int -> plan
(** A seeded random plan: 2–6 steps mixing all four shapes, ~1/3 of
    plans failing at a random step. *)

(** {2 Contracts and outcomes} *)

type contract = {
  comp_pairs : (Tid.t * Tid.t) list;
      (** (component, compensation) in saga-forward order, for
          [Oracle.check_compensation_order]. *)
  exclusive : Tid.t list list;
      (** Each speculation's alternates: at most one commits. *)
  delegations : (Tid.t * Tid.t) list;
      (** (sub-agent, adopting step) pairs. *)
}

val merge_contracts : contract list -> contract

type outcome = {
  o_committed : int;  (** committed tool-step transactions *)
  o_compensated : int;  (** committed compensation transactions *)
  o_retries : int;  (** typed retries of transient step aborts *)
  o_gave_up : int;  (** steps abandoned after the retry budget *)
  o_failed : bool;  (** the plan ended in rollback *)
  o_spend : int;
      (** Net committed budget debits (refunds subtracted): the store's
          budget must equal [budget0 - sum of o_spend]. *)
  o_audit : int;
      (** Committed audit appends: the audit queue must hold exactly
          [sum of o_audit] items. *)
  o_contract : contract;
}

val run_plan : ?max_retries:int -> rng:Rng.t -> E.t -> plan -> outcome
(** Execute one plan.  Must run inside a runtime fiber. *)

val run_agents :
  ?max_retries:int -> E.t -> seed:int -> agents:int -> docs:int -> outcome list
(** One fiber per agent, each running its own seeded plan
    concurrently; returns the outcomes in agent order.  Must run
    inside a runtime fiber. *)

val total_spend : outcome list -> int

val total_audit : outcome list -> int
