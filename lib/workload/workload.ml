(* Synthetic workload generation and a run harness.

   A workload is a batch of transactions, each a list of read/write
   operations over a keyspace with optional Zipfian skew.  Transaction
   bodies yield to the scheduler between operations so that the batch
   actually interleaves (one fiber per transaction) and the lock
   manager sees contention — without the yields, cooperative execution
   would serialize every body and measure nothing.

   The harness runs the batch under a fresh fiber per transaction plus
   one coordinator that commits them in completion order, and reports
   commits, aborts (deadlock victims), lock waits and wall-clock
   throughput. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Rng = Asset_util.Rng
module Zipf = Asset_util.Zipf

type op = Read of Oid.t | Write of Oid.t

type spec = {
  n_objects : int;
  n_txns : int;
  ops_per_txn : int;
  write_ratio : float; (* 0.0 .. 1.0 *)
  theta : float; (* Zipf skew; 0 = uniform *)
  seed : int;
  yield_between_ops : bool;
  read_modify_write : bool;
      (* when true, a write reads first (lock upgrade) — the classic
         upgrade-deadlock pattern; when false, writes are blind *)
}

let default_spec =
  {
    n_objects = 256;
    n_txns = 32;
    ops_per_txn = 8;
    write_ratio = 0.5;
    theta = 0.0;
    seed = 42;
    yield_between_ops = true;
    read_modify_write = false;
  }

let generate spec =
  let rng = Rng.create spec.seed in
  let zipf = Zipf.create ~n:spec.n_objects ~theta:spec.theta ~rng in
  List.init spec.n_txns (fun _ ->
      List.init spec.ops_per_txn (fun _ ->
          let oid = Oid.of_int (Zipf.sample zipf + 1) in
          if Rng.float rng < spec.write_ratio then Write oid else Read oid))

type metrics = {
  committed : int;
  aborted : int;
  duration_s : float;
  lock_waits : int;
  commit_retries : int;
  deadlock_victims : int;
  throughput : float; (* committed transactions per second *)
}

let pp_metrics ppf m =
  Format.fprintf ppf "committed=%d aborted=%d waits=%d retries=%d victims=%d tput=%.0f/s"
    m.committed m.aborted m.lock_waits m.commit_retries m.deadlock_victims m.throughput

let body_of_ops db ~yield ~rmw ops () =
  List.iter
    (fun op ->
      (match op with
      | Read oid -> ignore (E.read db oid)
      | Write oid ->
          if rmw then
            E.modify db oid (fun v -> Value.incr_int (Option.value v ~default:(Value.of_int 0)) 1)
          else E.write db oid (Value.of_int 1));
      if yield then Asset_sched.Scheduler.yield ())
    ops

(* Run a batch of transaction bodies inside an existing runtime fiber.
   Begins all transactions (one fiber each) and gives each its own
   committer fiber — committing sequentially from a single coordinator
   would hold every completed transaction's locks while the coordinator
   is parked on an earlier one, stalling the batch.  Returns
   (committed, aborted). *)
let run_bodies db bodies =
  let tids = List.map (fun body -> E.initiate db body) bodies in
  List.iter (fun t -> ignore (E.begin_ db t)) tids;
  List.iter (fun t -> E.spawn db ~label:"committer" (fun () -> ignore (E.commit db t))) tids;
  E.await_terminated db tids;
  let committed = List.length (List.filter (fun t -> E.is_committed db t) tids) in
  (committed, List.length tids - committed)

let run_batch db ~yield ?(rmw = false) txns =
  run_bodies db (List.map (body_of_ops db ~yield ~rmw) txns)

(* ------------------------------------------------------------------ *)
(* Bounded retry with seeded backoff                                   *)

(* An abort is worth retrying when it was transient: a deadlock victim
   (no failure recorded), a lock-wait timeout, an escrow bound that
   may regain headroom once in-flight deltas resolve, or an
   injected/transient I/O failure.  A real body failure (the
   application raised) is not. *)
let retryable = function
  | None -> true
  | Some (E.Lock_timeout _) -> true
  | Some (E.Escrow_violation _) -> true
  | Some (Asset_fault.Fault.Injected _) -> true
  | Some (Asset_fault.Fault.Storage_error _) -> true
  | Some _ -> false

type retry_metrics = { r_committed : int; r_retries : int; r_gave_up : int }

(* Run each body under its own driver fiber that retries transient
   aborts up to [max_retries] times, backing off a seeded-random number
   of scheduler steps (doubling the cap per attempt) so colliding
   transactions don't re-collide in lockstep.  Retry counts surface in
   [E.stats] via [note_retry]/[note_give_up]. *)
let run_bodies_with_retry ?(max_retries = 3) ~rng db bodies =
  let n = List.length bodies in
  let finished = ref 0 and committed = ref 0 and retries = ref 0 and gave_up = ref 0 in
  List.iteri
    (fun i body ->
      E.spawn db ~label:(Printf.sprintf "retry-driver-%d" i) (fun () ->
          let rec attempt k =
            let t = E.initiate db body in
            if Asset_util.Id.Tid.is_null t || not (E.begin_ db t) then begin
              incr gave_up;
              E.note_give_up db
            end
            else if E.commit db t then incr committed
            else if k < max_retries && retryable (E.failure_of db t) then begin
              incr retries;
              E.note_retry db;
              let cap = min 64 (2 lsl k) in
              for _ = 1 to Rng.int rng cap do
                Asset_sched.Scheduler.yield ()
              done;
              attempt (k + 1)
            end
            else begin
              incr gave_up;
              E.note_give_up db
            end
          in
          attempt 0;
          incr finished))
    bodies;
  Asset_sched.Scheduler.wait_until ~reason:"await retry drivers" (fun () -> !finished = n);
  { r_committed = !committed; r_retries = !retries; r_gave_up = !gave_up }

let stat db name = List.assoc name (E.stats db)

(* Full experiment: fresh store + engine, run the batch, return
   metrics. *)
let run spec =
  let store = Asset_storage.Heap_store.store () in
  Asset_storage.Heap_store.populate store ~n:spec.n_objects ~value:(fun _ -> Value.of_int 0);
  let db = E.create store in
  let txns = generate spec in
  let committed = ref 0 and aborted = ref 0 in
  let t0 = Unix.gettimeofday () in
  Asset_core.Runtime.run_exn db (fun () ->
      let c, a = run_batch db ~yield:spec.yield_between_ops ~rmw:spec.read_modify_write txns in
      committed := c;
      aborted := a);
  let duration_s = Unix.gettimeofday () -. t0 in
  {
    committed = !committed;
    aborted = !aborted;
    duration_s;
    lock_waits = stat db "lock_waits";
    commit_retries = stat db "commit_retries";
    deadlock_victims = stat db "deadlock_victims";
    throughput = (if duration_s > 0.0 then float_of_int !committed /. duration_s else 0.0);
  }
