(** The ASSET engine: the complete primitive set of section 2 over the
    section-4 substrate (lock manager with permits, dependency graph,
    before/after-image log, per-object latches, object store).

    {2 Concurrency model}

    Every transaction body runs in a cooperative fiber
    ([Asset_sched.Scheduler]); a primitive that must block parks its
    fiber and retries on the next engine state change — the literal
    "blocks and retries later starting at step 1" of the paper's
    algorithms.  All primitives must be called from inside
    {!Runtime.run}: the application's main program is itself a fiber.

    Unless a permit says otherwise, data operations follow strict
    two-phase locking: locks are held until commit or abort.  Deadlocks
    are detected on scheduler stalls and resolved by aborting the
    youngest transaction in the waits-for cycle. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store

exception Txn_aborted of Tid.t
(** Raised inside a transaction body whose transaction has been aborted
    (by itself, by dependency propagation, or as a deadlock victim);
    unwinds the body back to the engine.  User code should normally let
    it propagate. *)

exception Not_in_transaction
(** A data operation was invoked outside any transaction body. *)

exception Lock_timeout of Tid.t * Oid.t
(** A lock request stalled past [lock_wait_timeout_steps] retry rounds;
    the requester aborted itself with this as its {!failure_of} reason
    — distinguishable from a deadlock victim (whose failure is
    [None]). *)

exception Escrow_violation of Tid.t * Oid.t
(** An {!escrow} operation's worst-case bound analysis failed: no
    completion order of the in-flight escrow deltas keeps the counter
    inside the requested interval.  The operation aborted its
    transaction with this as its {!failure_of} reason — a transient,
    retryable failure (headroom returns as in-flight deltas resolve);
    escrow never blocks, because an escrow wait would be invisible to
    the lock-based deadlock detector. *)

exception Read_only_txn of Tid.t
(** A mutating operation (or explicit {!lock}) was invoked by a
    transaction opened with [~read_only:true]. *)

type t

type config = {
  max_transactions : int;  (** [initiate] returns the null tid beyond this. *)
  deadlock_detection : bool;
      (** Resolve lock deadlocks by aborting a victim; when off, a
          deadlock surfaces as [Scheduler.Deadlock]. *)
  use_latches : bool;  (** Latch objects around elementary operations. *)
  dep_cycle_check : bool;
      (** Reject commit-wait cycles in [form_dependency]. *)
  group_commit_size : int;
      (** Force the log once per this many commit records instead of
          per commit, so concurrent committers share one force; any
          pending commits are also flushed at every scheduler
          quiescence point.  1 (the default) forces every commit
          immediately.  Whatever the batch size, {!commit} only
          returns true once the commit record has reached a forced
          LSN. *)
  lock_wait_timeout_steps : int;
      (** Abort a lock requester stalled past this many retry rounds
          with {!Lock_timeout} instead of hanging — the liveness
          backstop when [deadlock_detection] is off.  The scheduler's
          stall hook keeps retry rounds ticking while lock waiters
          exist.  0 (the default) disables. *)
  checkpoint_log_bytes : int;
      (** Take a fuzzy checkpoint (and retire dead WAL segments) from
          the commit path whenever this many framed log bytes have been
          appended since the last checkpoint.  Checked after each
          commit group; a checkpoint that fails with a storage fault is
          skipped (the commit it rode on stays durable) and the meter
          backs off one threshold.  0 (the default) disables. *)
  debug_invariants : bool;
      (** Cross-check the lock manager's incremental waits-for graph
          against a from-scratch rebuild after every lock operation and
          at every deadlock search, failing loudly on divergence.
          Expensive — intended for tests.  Default [false]. *)
  mutation_skip_remove_permits : bool;
      (** Seeded bug for checker self-validation ({!Asset_check}):
          commit and abort skip [Lock.remove_permits], so a terminated
          grantor's permits stay live and can sanction later conflicting
          operations.  Default [false]; never enable outside tests. *)
  mutation_drop_cd_edge : bool;
      (** Seeded bug for checker self-validation: {!form_dependency}
          reports a commit dependency as formed — trace event emitted,
          [true] returned — without recording the edge, so commit never
          waits for the master.  Default [false]; never enable outside
          tests. *)
}

val default_config : config

val create : ?config:config -> ?log:Asset_wal.Log.t -> ?tid_gen:Tid.gen -> Store.t -> t
(** An engine over [store]; [log] defaults to a fresh in-memory log
    (pass a file-backed one for durability).  [tid_gen] defaults to a
    fresh 1,2,3,... generator; the shard layer passes a strided one
    ([Tid.generator ~start:(i+1) ~stride:n ()]) so transaction ids on
    different domains never collide. *)

(** {2 Basic primitives (section 2.1)} *)

val initiate : ?parent:Tid.t -> ?read_only:bool -> t -> (unit -> unit) -> Tid.t
(** Register a transaction that will execute the closure (the paper's
    [initiate(f, args)]: arguments are captured by the closure).
    [parent] defaults to the invoking transaction, or null at top
    level.  Returns the null tid when [max_transactions] is reached.
    The transaction does not start executing until {!begin_}.

    With [~read_only:true] the transaction runs against a multi-version
    snapshot pinned at its begin: every {!read} is lock-free and
    latch-free, returning the newest version committed at or before the
    begin timestamp, so it can never block, deadlock, or be aborted by
    the concurrency control.  Mutating operations raise
    {!Read_only_txn}. *)

val begin_ : t -> Tid.t -> bool
(** Start execution (spawns the body's fiber).  False when the
    transaction is not in the initiated state or a begin-dependency
    master aborted. *)

val begin_many : t -> Tid.t list -> bool

val commit : t -> Tid.t -> bool
(** Commit, per section 4.2: blocks until the body completes, resolves
    CD/AD/EXC dependencies (blocking as required), runs the GC
    group-commit handshake, then atomically commits the group — commit
    record forced, locks released, permits and dependency edges
    dropped.  True when (already) committed; false when (already)
    aborted. *)

val wait : t -> Tid.t -> bool
(** Block until the transaction completes; true once it has completed
    (or committed), false if it aborted first. *)

val abort : t -> Tid.t -> bool
(** Abort, per section 4.2: undo from the log (physical before images;
    logical deltas for increments — note that permit-based cooperating
    updates are {e lost}, as the paper specifies), CLRs logged, locks
    and permits dropped, AD/GC dependents aborted recursively.  True
    unless the transaction had already committed.  Aborting the
    invoking transaction itself raises {!Txn_aborted} to unwind its
    body after the abort completes. *)

val self : t -> Tid.t
(** The invoking transaction's tid, or null outside a body. *)

val parent : t -> Tid.t

(** {2 New primitives (section 2.2)} *)

val delegate : ?oids:Oid.t list -> t -> from_:Tid.t -> to_:Tid.t -> unit
(** [delegate(t_i, t_j, ob_set)]: transfer responsibility for the
    operations [from_] performed on [oids] (default: everything) to
    [to_] — locks move (merging with [to_]'s), permits are re-granted
    by [to_], logged updates are re-attributed for both abort and
    recovery.  Both transactions must not have terminated; [to_] may
    still be only initiated. *)

val permit :
  ?to_:Tid.t -> ?oids:Oid.t list -> ?ops:Asset_lock.Mode.Ops.t -> t -> from_:Tid.t -> unit
(** [permit(t_i, t_j, ob_set, operations)] and its abbreviated forms:
    omit [to_] to permit every transaction, [oids] to cover every
    object [from_] has accessed or been permitted on, [ops] to permit
    all operations.  Permission is transitive with operation-set
    intersection (rule 3). *)

val form_dependency : t -> Asset_deps.Dep_type.t -> Tid.t -> Tid.t -> bool
(** [form_dependency ty t_i t_j] forms (ty, t_i, t_j); false when the
    edge would create a commit-wait cycle. *)

(** {2 Data operations} *)

val lock : t -> Oid.t -> Asset_lock.Mode.t -> unit
(** Acquire a lock (blocking) without touching the data — intent
    declaration for layers like {!Workspace} that want to avoid later
    upgrades. *)

val read : t -> Oid.t -> Value.t option
(** Read-lock (blocking), S-latch, read.  In a [~read_only:true]
    transaction: a lock-free snapshot read at the begin timestamp
    instead. *)

val read_exn : t -> Oid.t -> Value.t

val write : t -> Oid.t -> Value.t -> unit
(** Write-lock (blocking), X-latch, log before/after images, write. *)

val modify : t -> Oid.t -> (Value.t option -> Value.t) -> unit
(** Read-modify-write (upgrades the lock). *)

val increment : t -> Oid.t -> int -> unit
(** A commuting increment (section-5 semantic concurrency): Increment
    locks are mutually compatible, so concurrent incrementers never
    block each other, and undo is logical — an abort preserves other
    transactions' concurrent increments.  Creates a missing object at
    the delta. *)

val escrow : t -> Oid.t -> int -> lo:int -> hi:int -> unit
(** A bounded commuting increment under escrow locking: accepted only
    when the committed value plus {e every} possible completion of the
    in-flight escrow deltas stays inside [[lo, hi]] — all positive
    deltas committing must not exceed [hi], all negative deltas
    committing must not fall below [lo] — so acceptance is independent
    of how concurrent transactions finish and Escrow locks stay
    mutually compatible.  When the worst case escapes the bounds the
    operation aborts its transaction with {!Escrow_violation} (raised
    as {!Txn_aborted}; see {!failure_of}) rather than blocking.
    Physically an increment: same logical undo, same recovery. *)

val enqueue : t -> Oid.t -> string -> unit
(** Append an item to a queue-typed object under the mutually
    compatible Enqueue lock mode: concurrent producers never block each
    other, and undo is logical (remove the item), so an abort preserves
    items enqueued concurrently by others.  Creates a missing object as
    a one-item queue.  Read the queue with {!read} +
    [Value.to_queue]. *)

(** {2 Savepoints}

    Partial rollback inside a transaction, built on the same
    before-image/CLR machinery as abort. *)

type savepoint

val savepoint : t -> savepoint
(** Mark the invoking transaction's current update history.  Must be
    called inside a transaction body. *)

val rollback_to : t -> savepoint -> unit
(** Undo (and CLR-log) every update the invoking transaction performed
    after the savepoint; locks acquired since are retained.  Updates
    delegated in after the savepoint but {e logged} before it are not
    undone.  Raises [Invalid_argument] when the savepoint belongs to
    another transaction. *)

(** {2 Status queries} *)

val status : t -> Tid.t -> Status.t
val is_terminated : t -> Tid.t -> bool
val is_aborted : t -> Tid.t -> bool
val is_committed : t -> Tid.t -> bool
val parent_of : t -> Tid.t -> Tid.t

val failure_of : t -> Tid.t -> exn option
(** The body exception that aborted the transaction, if any. *)

(** {2 Harness support} *)

val spawn : t -> label:string -> (unit -> unit) -> unit
(** Spawn an auxiliary (non-transaction) fiber, e.g. a per-transaction
    committer. *)

val await_terminated : t -> Tid.t list -> unit
(** Park until every listed transaction has terminated. *)

val checkpoint : t -> (int, Tid.t list) result
(** Quiescent checkpoint; [Error active] lists the transactions that
    prevent it. *)

val checkpoint_fuzzy : t -> int
(** Non-quiescent checkpoint: capture the active-transaction table
    (with per-update undo information) and the dirty OID set, write a
    [Begin_ckpt]/[End_ckpt] pair around a store flush, then retire WAL
    segments wholly below the begin LSN.  Safe while transactions run
    — the cooperative scheduler makes the captured table a consistent
    cut.  Returns the begin LSN (the redo watermark).  Also fired
    automatically from the commit path by [checkpoint_log_bytes]. *)

val flush_pending_commits : t -> unit
(** Force the log over any commit records staged by group commit.
    Called automatically at every scheduler quiescence point (and thus
    before {!Runtime.run} returns); exposed for harnesses that hold a
    file-backed log open across runs. *)

val active_transactions : t -> Tid.t list
val transaction_count : t -> int
val version : t -> int

val mvcc_current_ts : t -> int
(** The newest commit timestamp in the version store. *)

val mvcc_max_chain : t -> int
(** Longest per-object version chain — the GC-bound observable. *)

val mvcc_version_count : t -> int
(** Total stored versions across all chains. *)

val store : t -> Store.t
val log : t -> Asset_wal.Log.t
val locks : t -> Asset_lock.Lock_manager.t
val deps : t -> Asset_deps.Dep_graph.t
val attach_scheduler : t -> Asset_sched.Scheduler.t -> unit

val resolve_stall : t -> bool
(** The engine's own stall step, as installed by {!attach_scheduler}:
    abort a deadlock victim, or tick the lock-wait timeout clock.
    Returns [true] when it made progress.  Exposed so an outer layer
    (the shard server) can compose it into a richer scheduler
    [on_stall] hook — mailbox first, then this, then block. *)

val escrow_inflight_count : t -> int
(** Distinct objects with an in-flight escrow reservation.  A leak
    gauge: zero once every transaction has terminated. *)

val note_retry : t -> unit
(** Count a harness-level transaction retry (surfaced as ["retries"]
    in {!stats}); called by the workload layer's bounded-retry
    combinator. *)

val note_give_up : t -> unit
(** Count a transaction abandoned after exhausting its retry budget
    (["gave_up"] in {!stats}). *)

val stats : t -> (string * int) list
(** Engine counters plus the lock manager's (["lock."] prefix) and the
    dependency graph's (["deps."] prefix).  A pure read: no counter is
    ever reset by reading — [reset_stats] is the one reset point. *)

val reset_stats : t -> unit
(** Reset every statistics counter — the engine's own and, through
    their [reset_stats], the lock manager's and dependency graph's.
    Gauges ([lock.waits_edges], [deps.live_edges]) track live data
    structures and are not touched. *)

val pp_stats : Format.formatter -> t -> unit
