(* Runtime: wires an engine to a scheduler and runs an application
   program.

   Every ASSET primitive may block (commit, wait, lock acquisition), so
   application code — including the "main program" that initiates and
   commits top-level transactions — must run inside a fiber.  [run]
   spawns the program as the first fiber, attaches the engine's
   deadlock resolver to the scheduler's stall hook, and drives
   everything to completion. *)

module Sched = Asset_sched.Scheduler

type outcome = { result : (unit, exn) result; steps : int; deadlocked : bool }

let run ?policy ?max_steps ?record_trace db program =
  let s = Sched.create ?policy ?max_steps ?record_trace () in
  Engine.attach_scheduler db s;
  ignore (Sched.spawn s ~label:"main" program);
  let result =
    match Sched.run s with
    | () -> Ok ()
    | exception e -> Error e
  in
  (* Group commit durability: the scheduler flushes pending commit
     forces at quiescence, but a fiber failure can abandon the loop
     mid-step — make sure nothing staged is left unforced.  Not after a
     simulated power loss, though: the machine is dead, and a flush here
     would persist commit records past the crash point (the injected
     crash also disarms its one-shot site, so this force would land). *)
  let crashed =
    match result with
    | Error (Asset_fault.Fault.Crash _) | Error (Sched.Fiber_failed (_, Asset_fault.Fault.Crash _))
      ->
        true
    | _ -> false
  in
  if not crashed then Engine.flush_pending_commits db;
  { result; steps = Sched.steps s; deadlocked = (match result with Error (Sched.Deadlock _) -> true | _ -> false) }

(* Run and re-raise any failure: the common path for tests/examples. *)
let run_exn ?policy ?max_steps ?record_trace db program =
  match (run ?policy ?max_steps ?record_trace db program).result with
  | Ok () -> ()
  | Error e -> raise e

(* Build a fresh in-memory database and run [program] against it.
   Returns the engine for post-hoc inspection. *)
let with_fresh_db ?config ?policy ?max_steps ?(objects = 0) ?(init = fun _ -> Asset_storage.Value.of_int 0)
    program =
  let store = Asset_storage.Heap_store.store () in
  if objects > 0 then Asset_storage.Heap_store.populate store ~n:objects ~value:init;
  let db = Engine.create ?config store in
  run_exn ?policy ?max_steps db (fun () -> program db);
  db
