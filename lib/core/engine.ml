(* The ASSET engine: transaction descriptors and the complete primitive
   set of section 2 over the section-4 substrate (lock manager with
   permits, dependency graph, before/after-image log, per-object
   latches, object store).

   Concurrency model.  Every transaction body runs in a cooperative
   fiber ([Asset_sched.Scheduler]); a primitive that must block parks
   its fiber on the engine's version counter, which is bumped on every
   state change, and retries — the literal "blocks and retries later
   starting at step 1" of the paper's algorithms.  All primitives must
   therefore be called from inside [Runtime.run] (the application's main
   program is itself a fiber). *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Lock = Asset_lock.Lock_manager
module Mode = Asset_lock.Mode
module Dep = Asset_deps.Dep_graph
module Dep_type = Asset_deps.Dep_type
module Log = Asset_wal.Log
module Record = Asset_wal.Record
module Sched = Asset_sched.Scheduler
module Latch = Asset_latch.Latch
module Trace = Asset_obs.Trace
module Fault = Asset_fault.Fault

exception Txn_aborted of Tid.t
(** Raised inside a transaction body whose transaction has been aborted
    (by itself, by dependency propagation, or as a deadlock victim);
    unwinds the body back to the engine. *)

exception Not_in_transaction
(** A data operation ([read]/[write]) was invoked outside any
    transaction body. *)

exception Lock_timeout of Tid.t * Oid.t
(** A lock request stalled past [lock_wait_timeout_steps] retry rounds;
    the requester aborted itself with this as its failure reason —
    distinguishable from a deadlock victim (whose failure is [None]). *)

exception Escrow_violation of Tid.t * Oid.t
(** An escrow operation's worst-case bound analysis failed: no
    completion order of the in-flight escrow deltas keeps the counter
    inside the requested [lo, hi] interval.  Escrow is non-blocking by
    design — waiting for escrow headroom is invisible to the lock-based
    deadlock detector — so the operation aborts its transaction instead
    (a transient, retryable failure). *)

exception Read_only_txn of Tid.t
(** A mutating operation (or explicit lock) was invoked by a
    transaction opened with [~read_only:true]. *)

type td = {
  tid : Tid.t;
  parent : Tid.t;
  body : unit -> unit;
  mutable status : Status.t;
  mutable fid : int; (* scheduler fiber, -1 until begun *)
  mutable updates : int list; (* LSNs of updates this txn is responsible for, newest first *)
  mutable commit_lsn : int; (* LSN of the commit record covering this txn, -1 before *)
  mutable failure : exn option; (* body exception, if any *)
  mutable waiting_on : string; (* diagnostic: why currently parked *)
  mutable begin_denied : bool;
      (* a BD master aborted before this transaction began: it may
         never begin (the dependency edge itself is gone by then) *)
  read_only : bool;
      (* opened with [~read_only]: all reads are lock-free snapshot
         reads against the begin-timestamp version store; mutating
         operations raise [Read_only_txn] *)
  mutable snapshot_ts : int;
      (* begin timestamp of the registered snapshot, -1 when none *)
}

type config = {
  max_transactions : int;
  deadlock_detection : bool;
  use_latches : bool;
  dep_cycle_check : bool;
  group_commit_size : int;
      (* force the log once per this many commit records; pending
         commits are also flushed at every scheduler quiescence point *)
  lock_wait_timeout_steps : int;
      (* abort a lock requester stalled past this many retry rounds
         with [Lock_timeout] instead of hanging — the liveness backstop
         when deadlock detection is off.  0 (the default) disables *)
  checkpoint_log_bytes : int;
      (* take a fuzzy checkpoint — and retire fully-checkpointed log
         segments — once this many log bytes accumulate since the last
         one, measured at commit time.  0 (the default) disables; only
         meaningful on a file- or directory-backed log *)
  debug_invariants : bool;
      (* cross-check the lock manager's incremental waits-for graph
         against a from-scratch rebuild on every lock operation and
         deadlock search — expensive, for tests only *)
  mutation_skip_remove_permits : bool;
      (* seeded bug for checker self-validation: terminated transactions
         leave their permits behind instead of dropping them *)
  mutation_drop_cd_edge : bool;
      (* seeded bug for checker self-validation: form_dependency reports
         a CD edge as formed (trace event included) without recording
         it, so commit never waits on the master *)
}

let default_config =
  {
    max_transactions = 10_000;
    deadlock_detection = true;
    use_latches = true;
    dep_cycle_check = true;
    group_commit_size = 1;
    lock_wait_timeout_steps = 0;
    checkpoint_log_bytes = 0;
    debug_invariants = false;
    mutation_skip_remove_permits = false;
    mutation_drop_cd_edge = false;
  }

type t = {
  store : Store.t;
  log : Log.t;
  locks : Lock.t;
  deps : Dep.t;
  config : config;
  tds : (Tid.t, td) Hashtbl.t;
  tid_gen : Tid.gen;
  (* escrow accounting: per-object in-flight escrow deltas as
     (owner, delta) pairs.  Acceptance tests the worst case — every
     in-flight delta of one sign committing, the others aborting —
     against the requested bounds; entries move with delegation and
     clear at commit/abort. *)
  escrow_inflight : (Oid.t, (Tid.t * int) list) Hashtbl.t;
  latches : (Oid.t, Latch.t) Hashtbl.t;
  fiber_txn : (int, Tid.t) Hashtbl.t; (* scheduler fid -> tid *)
  mutable sched : Sched.t option;
  mutable version : int; (* bumped on every observable state change *)
  (* group commit: commit records appended but not yet forced, and the
     transactions they cover *)
  mutable unforced_commit_records : int;
  mutable unforced_commit_txns : int;
  (* log bytes at the last fuzzy checkpoint — the trigger baseline *)
  mutable ckpt_bytes_mark : int;
  (* statistics *)
  commits : Asset_util.Stats.Counter.t;
  aborts : Asset_util.Stats.Counter.t;
  group_commits : Asset_util.Stats.Counter.t;
  lock_waits : Asset_util.Stats.Counter.t;
  commit_retries : Asset_util.Stats.Counter.t;
  deadlock_victims : Asset_util.Stats.Counter.t;
  lock_timeouts : Asset_util.Stats.Counter.t;
  retries : Asset_util.Stats.Counter.t;
  gave_up : Asset_util.Stats.Counter.t;
  reads : Asset_util.Stats.Counter.t;
  writes : Asset_util.Stats.Counter.t;
  snapshot_reads : Asset_util.Stats.Counter.t;
  escrow_ops : Asset_util.Stats.Counter.t;
  escrow_violations : Asset_util.Stats.Counter.t;
  enqueues : Asset_util.Stats.Counter.t;
  fuzzy_ckpts : Asset_util.Stats.Counter.t;
  abort_log_misses : Asset_util.Stats.Counter.t;
}

let create ?(config = default_config) ?log ?tid_gen store =
  let log = match log with Some l -> l | None -> Log.in_memory () in
  let tid_gen = match tid_gen with Some g -> g | None -> Tid.generator () in
  (* Every engine runs over a multi-version store: the wrapper
     delegates the base surface untouched (2PL traffic is unaffected)
     and adds the committed-version chains snapshot reads need. *)
  let store = Asset_storage.Mvcc_store.wrap store in
  {
    store;
    log;
    locks = Lock.create ();
    deps = Dep.create ~cycle_check:config.dep_cycle_check ();
    config;
    tds = Hashtbl.create 128;
    tid_gen;
    escrow_inflight = Hashtbl.create 16;
    latches = Hashtbl.create 128;
    fiber_txn = Hashtbl.create 64;
    sched = None;
    version = 0;
    unforced_commit_records = 0;
    unforced_commit_txns = 0;
    ckpt_bytes_mark = 0;
    commits = Asset_util.Stats.Counter.create "engine.commits";
    aborts = Asset_util.Stats.Counter.create "engine.aborts";
    group_commits = Asset_util.Stats.Counter.create "engine.group_commits";
    lock_waits = Asset_util.Stats.Counter.create "engine.lock_waits";
    commit_retries = Asset_util.Stats.Counter.create "engine.commit_retries";
    deadlock_victims = Asset_util.Stats.Counter.create "engine.deadlock_victims";
    lock_timeouts = Asset_util.Stats.Counter.create "engine.lock_timeouts";
    retries = Asset_util.Stats.Counter.create "engine.retries";
    gave_up = Asset_util.Stats.Counter.create "engine.gave_up";
    reads = Asset_util.Stats.Counter.create "engine.reads";
    writes = Asset_util.Stats.Counter.create "engine.writes";
    snapshot_reads = Asset_util.Stats.Counter.create "engine.snapshot_reads";
    escrow_ops = Asset_util.Stats.Counter.create "engine.escrow_ops";
    escrow_violations = Asset_util.Stats.Counter.create "engine.escrow_violations";
    enqueues = Asset_util.Stats.Counter.create "engine.enqueues";
    fuzzy_ckpts = Asset_util.Stats.Counter.create "engine.fuzzy_ckpts";
    abort_log_misses = Asset_util.Stats.Counter.create "engine.abort_log_misses";
  }

(* The version-store operations; present on every engine store by
   construction (see [create]). *)
let mvcc db =
  match db.store.Store.mvcc with
  | Some m -> m
  | None -> assert false

(* Drop every in-flight escrow reservation owned by [tid] (commit and
   abort both end the reservation: the committed head then reflects the
   delta, or the delta never happened). *)
let clear_escrow db tid =
  Hashtbl.filter_map_inplace
    (fun _ entries ->
      match List.filter (fun (t, _) -> not (Tid.equal t tid)) entries with
      | [] -> None
      | l -> Some l)
    db.escrow_inflight

(* Close a read-only transaction's snapshot so version GC can advance
   past its begin timestamp.  Idempotent. *)
let close_snapshot db (td : td) =
  if td.snapshot_ts >= 0 then begin
    (mvcc db).Store.end_snapshot td.snapshot_ts;
    td.snapshot_ts <- -1
  end

let bump db = db.version <- db.version + 1

(* Force the log over every commit record appended since the last
   force.  One force acknowledges the whole batch; a batch covering
   more than one transaction is a coalesced (group) commit. *)
let flush_pending_commits db =
  if db.unforced_commit_records > 0 then begin
    Log.force db.log;
    if db.unforced_commit_txns > 1 then Asset_util.Stats.Counter.incr db.group_commits;
    db.unforced_commit_records <- 0;
    db.unforced_commit_txns <- 0;
    (* Wake committers parked on durability of their staged record. *)
    bump db
  end

let sched db =
  match db.sched with
  | Some s -> s
  | None -> invalid_arg "Asset engine: no scheduler attached (use Runtime.run)"

let td db tid =
  match Hashtbl.find_opt db.tds tid with
  | Some td -> td
  | None -> Fmt.invalid_arg "Asset engine: unknown transaction %a" Tid.pp tid

let status db tid = (td db tid).status
let is_terminated db tid = Status.terminated (status db tid)
let is_aborted db tid = match status db tid with Status.Aborted | Status.Aborting -> true | _ -> false
let is_committed db tid = Status.equal (status db tid) Status.Committed
let parent_of db tid = (td db tid).parent
let failure_of db tid = (td db tid).failure

let latch db oid =
  match Hashtbl.find_opt db.latches oid with
  | Some l -> l
  | None ->
      let l = Latch.create ~name:(Format.asprintf "latch:%a" Oid.pp oid) () in
      Hashtbl.replace db.latches oid l;
      l

(* Park the current fiber until the engine version moves past [v].
   The watch snapshot lets the scheduler skip re-evaluating the
   condition until the version has actually advanced. *)
let wait_for_change db ~reason v =
  Sched.wait_until ~reason ~watch:v (fun () -> db.version > v)

(* ------------------------------------------------------------------ *)
(* self / parent                                                       *)

let self_opt db =
  match db.sched with
  | None -> None
  | Some s -> Hashtbl.find_opt db.fiber_txn (Sched.current_fid s)

let self db = match self_opt db with Some tid -> tid | None -> Tid.null

let parent db =
  match self_opt db with Some tid -> (td db tid).parent | None -> Tid.null

let current_td db =
  match self_opt db with
  | Some tid -> td db tid
  | None -> raise Not_in_transaction

(* A primitive invoked by (or a data operation of) an aborted
   transaction unwinds immediately. *)
let check_live td =
  match td.status with
  | Status.Aborting | Status.Aborted -> raise (Txn_aborted td.tid)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* initiate / begin                                                    *)

let initiate ?parent:parent_tid ?(read_only = false) db body =
  if Hashtbl.length db.tds >= db.config.max_transactions then Tid.null
  else begin
    let parent = match parent_tid with Some p -> p | None -> self db in
    let tid = Tid.fresh db.tid_gen in
    let td =
      {
        tid;
        parent;
        body;
        status = Status.Initiated;
        fid = -1;
        updates = [];
        commit_lsn = -1;
        failure = None;
        waiting_on = "";
        begin_denied = false;
        read_only;
        snapshot_ts = -1;
      }
    in
    Hashtbl.replace db.tds tid td;
    if Trace.on () then Trace.emit (Trace.Initiate { tid; parent });
    td.tid
  end

(* Forward declaration: finalize_abort is used by the body wrapper. *)
let abort_ref : (t -> Tid.t -> bool) ref = ref (fun _ _ -> assert false)

let run_body db td =
  Hashtbl.replace db.fiber_txn td.fid td.tid;
  (try td.body ()
   with
  | Txn_aborted _ -> () (* the abort machinery has already done its work *)
  | Asset_fault.Fault.Crash _ as e ->
      (* Simulated power loss is not a body failure: nothing below the
         torture harness may catch it (an abort here would append an
         Abort record — I/O the dead machine never performed). *)
      raise e
  | e ->
      (* A body failure aborts the transaction, Ode-style.  Aborting
         oneself raises [Txn_aborted] to unwind the body; here the body
         has already ended, so swallow it. *)
      td.failure <- Some e;
      (try ignore (!abort_ref db td.tid) with Txn_aborted _ -> ()));
  Hashtbl.remove db.fiber_txn td.fid;
  (match td.status with Status.Running -> td.status <- Status.Completed | _ -> ());
  bump db

let begin_ db tid =
  let td = td db tid in
  match td.status with
  | Status.Initiated when td.begin_denied -> false
  | Status.Initiated ->
      (* Extension: begin-on-commit dependencies gate the start. *)
      let masters = Dep.bd_masters db.deps tid in
      let rec wait_bd () =
        let blocked =
          List.filter
            (fun m -> match status db m with Status.Committed -> false | _ -> true)
            masters
        in
        match blocked with
        | [] -> true
        | ms when List.exists (fun m -> is_aborted db m) ms -> false
        | _ ->
            let v = db.version in
            wait_for_change db ~reason:"begin: BD master not committed" v;
            wait_bd ()
      in
      if masters <> [] && not (wait_bd ()) then false
      else begin
        td.status <- Status.Running;
        if Trace.on () then Trace.emit (Trace.Begin { tid });
        (* A read-only transaction pins its snapshot at begin: every
           read will see exactly the versions committed by now. *)
        if td.read_only then begin
          td.snapshot_ts <- (mvcc db).Store.begin_snapshot ();
          if Trace.on () then Trace.emit (Trace.Snapshot { tid; ts = td.snapshot_ts })
        end;
        Log.append db.log (Record.Begin tid) |> ignore;
        td.fid <- Sched.spawn (sched db) ~label:(Format.asprintf "%a" Tid.pp tid) (fun () -> run_body db td);
        bump db;
        true
      end
  | _ -> false

let begin_many db tids = List.for_all (fun t -> begin_ db t) tids

(* ------------------------------------------------------------------ *)
(* Data operations: the section 4.2 read / write algorithms            *)

let check_lock_invariants db where =
  if db.config.debug_invariants && not (Lock.check_waits_for_invariant db.locks) then
    Fmt.failwith "debug_invariants: incremental waits-for graph diverged (%s)" where

let acquire_lock db td oid mode =
  let rounds = ref 0 in
  let rec loop () =
    check_live td;
    match Lock.acquire db.locks td.tid oid mode with
    | Lock.Acquired -> check_lock_invariants db "acquire"
    | Lock.Blocked_on blockers ->
        check_lock_invariants db "blocked";
        let bound = db.config.lock_wait_timeout_steps in
        if bound > 0 && !rounds >= bound then begin
          (* The request has stalled past the bound: abort ourselves
             with a distinguishable reason instead of hanging.  The
             scheduler's stall hook keeps bumping the version while
             lock waiters exist, so [rounds] advances even when nothing
             else in the system moves. *)
          Asset_util.Stats.Counter.incr db.lock_timeouts;
          td.failure <- Some (Lock_timeout (td.tid, oid));
          ignore (!abort_ref db td.tid)
          (* unreachable: aborting oneself raises Txn_aborted *)
        end;
        incr rounds;
        Asset_util.Stats.Counter.incr db.lock_waits;
        td.waiting_on <-
          Format.asprintf "lock %a/%a held by %a" Oid.pp oid Mode.pp mode
            (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Tid.pp)
            blockers;
        let v = db.version in
        wait_for_change db ~reason:td.waiting_on v;
        loop ()
  in
  (match loop () with
  | () -> td.waiting_on <- ""
  | exception e ->
      (* Clear the diagnostic even when the wait ends in an abort —
         the stall hook uses [waiting_on] to find live lock waiters. *)
      td.waiting_on <- "";
      raise e)

let with_latch db oid mode f =
  if db.config.use_latches then Latch.with_latch ~spin:Sched.yield (latch db oid) mode f else f ()

(* Acquire a lock without touching the data — used by layers (e.g.
   private workspaces) that want to declare intent up front and avoid
   later upgrades. *)
let lock db oid mode =
  let td = current_td db in
  check_live td;
  if td.read_only then raise (Read_only_txn td.tid);
  acquire_lock db td oid mode

let read db oid =
  let td = current_td db in
  check_live td;
  if td.read_only then begin
    (* Lock-free snapshot read: the newest version committed at or
       before the begin timestamp.  No lock and no latch — versions at
       or below an active snapshot's timestamp are immutable (commits
       only prepend newer ones, and GC never trims past them). *)
    let vts, value = (mvcc db).Store.read_at oid td.snapshot_ts in
    if Trace.on () then Trace.emit (Trace.Snap_read { tid = td.tid; oid; ts = vts });
    Asset_util.Stats.Counter.incr db.snapshot_reads;
    value
  end
  else begin
    acquire_lock db td oid Mode.Read;
    if Trace.on () then Trace.emit (Trace.Op { tid = td.tid; oid; op = 'R' });
    Asset_util.Stats.Counter.incr db.reads;
    with_latch db oid Latch.S (fun () -> Store.read db.store oid)
  end

let read_exn db oid =
  match read db oid with
  | Some v -> v
  | None -> Fmt.invalid_arg "Asset read: %a does not exist" Oid.pp oid

let write db oid value =
  let td = current_td db in
  check_live td;
  if td.read_only then raise (Read_only_txn td.tid);
  acquire_lock db td oid Mode.Write;
  if Trace.on () then Trace.emit (Trace.Op { tid = td.tid; oid; op = 'W' });
  Asset_util.Stats.Counter.incr db.writes;
  with_latch db oid Latch.X (fun () ->
      let before = Store.read db.store oid in
      (* First engine write to this oid: [before] is still its
         committed state — seed the version chain with it so snapshot
         readers never see the dirty base value. *)
      (mvcc db).Store.preserve oid before;
      let lsn = Log.append db.log (Record.Update { tid = td.tid; oid; before; after = value }) in
      td.updates <- lsn :: td.updates;
      Store.write db.store oid value)

(* Read-modify-write helper: the common increment/update pattern. *)
let modify db oid f =
  let v = read db oid in
  write db oid (f v)

(* A commuting increment (the paper's section-5 "semantics of objects"
   plan): Increment locks are mutually compatible, so concurrent
   transactions increment the same counter without blocking or lock
   upgrades, and undo is logical (subtract the delta) so an abort never
   clobbers other transactions' concurrent increments — unlike the
   permit-based cooperation of section 3.2.1, where abort installs
   before images and loses them.  An increment of a missing object
   creates it at [delta]. *)
let increment db oid delta =
  let td = current_td db in
  check_live td;
  if td.read_only then raise (Read_only_txn td.tid);
  acquire_lock db td oid Mode.Increment;
  if Trace.on () then Trace.emit (Trace.Op { tid = td.tid; oid; op = 'I' });
  Asset_util.Stats.Counter.incr db.writes;
  with_latch db oid Latch.X (fun () ->
      let before = Store.read db.store oid in
      (mvcc db).Store.preserve oid before;
      let current = match before with Some v -> Value.to_int v | None -> 0 in
      let after = Value.of_int (current + delta) in
      let lsn = Log.append db.log (Record.Increment { tid = td.tid; oid; delta; after }) in
      td.updates <- lsn :: td.updates;
      Store.write db.store oid after)

(* Escrow update (the section-5 typed-object plan taken further): a
   bounded counter delta that commits only if the counter provably
   stays inside [lo, hi].  The test is against the *worst case* over
   the in-flight escrow deltas — the committed value plus all positive
   in-flight deltas (everyone else's decrements abort) must not exceed
   [hi], and plus all negative deltas must not fall below [lo] — so
   acceptance never depends on how concurrent transactions finish, and
   the Escrow lock mode stays mutually compatible.  A failed test is a
   transient condition (headroom returns when in-flight deltas
   resolve), but waiting for it would be invisible to the lock-based
   deadlock detector, so the operation aborts its transaction with the
   retryable [Escrow_violation] instead of blocking. *)
let escrow db oid delta ~lo ~hi =
  let td = current_td db in
  check_live td;
  if td.read_only then raise (Read_only_txn td.tid);
  acquire_lock db td oid Mode.Escrow;
  if Trace.on () then Trace.emit (Trace.Op { tid = td.tid; oid; op = 'E' });
  Asset_util.Stats.Counter.incr db.escrow_ops;
  (* The bound analysis and the reservation are atomic: no yield point
     separates them, so two candidates cannot both claim the last of
     the headroom. *)
  let committed =
    match (mvcc db).Store.committed_head oid with Some v -> Value.to_int v | None -> 0
  in
  let inflight = Option.value (Hashtbl.find_opt db.escrow_inflight oid) ~default:[] in
  let candidate = (td.tid, delta) :: inflight in
  let pos = List.fold_left (fun acc (_, d) -> acc + max d 0) 0 candidate in
  let neg = List.fold_left (fun acc (_, d) -> acc + min d 0) 0 candidate in
  if committed + pos > hi || committed + neg < lo then begin
    Asset_util.Stats.Counter.incr db.escrow_violations;
    td.failure <- Some (Escrow_violation (td.tid, oid));
    ignore (!abort_ref db td.tid)
    (* unreachable: aborting oneself raises Txn_aborted *)
  end;
  Hashtbl.replace db.escrow_inflight oid candidate;
  (* The physical update is an increment: same logical-undo CLR on
     abort, same repeat-history treatment in recovery. *)
  with_latch db oid Latch.X (fun () ->
      let before = Store.read db.store oid in
      (mvcc db).Store.preserve oid before;
      let current = match before with Some v -> Value.to_int v | None -> 0 in
      let after = Value.of_int (current + delta) in
      let lsn = Log.append db.log (Record.Increment { tid = td.tid; oid; delta; after }) in
      td.updates <- lsn :: td.updates;
      Store.write db.store oid after)

(* Enqueue on a queue-typed object: appends commute with appends (FIFO
   order between uncommitted producers is decided at commit), so the
   Enqueue lock mode is mutually compatible and producers never block
   each other.  Undo is logical — remove the appended item — so an
   abort never clobbers items enqueued concurrently by others. *)
let enqueue db oid item =
  let td = current_td db in
  check_live td;
  if td.read_only then raise (Read_only_txn td.tid);
  acquire_lock db td oid Mode.Enqueue;
  if Trace.on () then Trace.emit (Trace.Op { tid = td.tid; oid; op = 'Q' });
  Asset_util.Stats.Counter.incr db.enqueues;
  with_latch db oid Latch.X (fun () ->
      let before = Store.read db.store oid in
      (mvcc db).Store.preserve oid before;
      let current = match before with Some v -> v | None -> Value.of_queue [] in
      let after = Value.queue_push current item in
      let lsn = Log.append db.log (Record.Enqueue { tid = td.tid; oid; item; after }) in
      td.updates <- lsn :: td.updates;
      Store.write db.store oid after)

(* ------------------------------------------------------------------ *)
(* Savepoints: partial rollback inside a transaction                   *)

type savepoint = { sp_tid : Tid.t; sp_boundary : int (* first LSN *after* the savepoint *) }

(* Mark the current point in the invoking transaction's update history.
   Rolling back to it undoes (and CLR-logs) every update the
   transaction became responsible for afterwards; locks acquired in
   between are retained, per the usual savepoint semantics. *)
let savepoint db =
  let td = current_td db in
  check_live td;
  { sp_tid = td.tid; sp_boundary = Log.length db.log }

let rollback_to db sp =
  let td = current_td db in
  check_live td;
  if not (Tid.equal sp.sp_tid td.tid) then
    invalid_arg "Engine.rollback_to: savepoint belongs to another transaction";
  let undo, keep = List.partition (fun lsn -> lsn >= sp.sp_boundary) td.updates in
  List.iter
    (fun lsn ->
      match Log.get db.log lsn with
      | Record.Update { oid; before; _ } ->
          Log.append db.log (Record.Clr { tid = td.tid; oid; image = before; undo_lsn = lsn })
          |> ignore;
          (match before with
          | Some v -> Store.write db.store oid v
          | None -> Store.delete db.store oid)
      | Record.Increment { oid; delta; _ } ->
          let current =
            match Store.read db.store oid with Some v -> Value.to_int v | None -> 0
          in
          let image = Value.of_int (current - delta) in
          Log.append db.log (Record.Clr { tid = td.tid; oid; image = Some image; undo_lsn = lsn })
          |> ignore;
          Store.write db.store oid image
      | Record.Enqueue { oid; item; _ } ->
          (* Logical undo: remove the appended item from the *current*
             queue, preserving concurrent producers' appends. *)
          let current =
            match Store.read db.store oid with Some v -> v | None -> Value.of_queue []
          in
          let image = Value.queue_remove_last current item in
          Log.append db.log (Record.Clr { tid = td.tid; oid; image = Some image; undo_lsn = lsn })
          |> ignore;
          Store.write db.store oid image
      | _ -> ())
    (List.sort (fun a b -> Int.compare b a) undo);
  td.updates <- keep;
  bump db

(* ------------------------------------------------------------------ *)
(* wait                                                                *)

let wait db tid =
  let rec loop () =
    match status db tid with
    | Status.Aborted | Status.Aborting -> false
    | Status.Completed | Status.Committing | Status.Committed -> true
    | Status.Initiated | Status.Running ->
        let v = db.version in
        wait_for_change db ~reason:(Format.asprintf "wait(%a)" Tid.pp tid) v;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* delegate                                                            *)

let delegate ?oids db ~from_ ~to_ =
  let from_td = td db from_ and to_td = td db to_ in
  if Status.terminated from_td.status then
    Fmt.invalid_arg "delegate: %a has terminated" Tid.pp from_;
  if Status.terminated to_td.status then Fmt.invalid_arg "delegate: %a has terminated" Tid.pp to_;
  let moved_oids = Lock.delegate db.locks ~from_:from_ ~to_:to_ oids in
  (* Transfer responsibility for the logged updates on the delegated
     objects. *)
  let covers oid = match oids with None -> true | Some l -> List.exists (Oid.equal oid) l in
  let moving, staying =
    List.partition
      (fun lsn ->
        match Log.get db.log lsn with
        | Record.Update { oid; _ } | Record.Increment { oid; _ } | Record.Enqueue { oid; _ } ->
            covers oid
        | _ -> false)
      from_td.updates
  in
  from_td.updates <- staying;
  (* Keep newest-first ordering in the target by merging and sorting. *)
  to_td.updates <- List.sort (fun a b -> Int.compare b a) (moving @ to_td.updates);
  (* Escrow reservations on the delegated objects follow the
     responsibility for their deltas. *)
  Hashtbl.filter_map_inplace
    (fun oid entries ->
      if covers oid then
        Some (List.map (fun (t, d) -> if Tid.equal t from_ then (to_, d) else (t, d)) entries)
      else Some entries)
    db.escrow_inflight;
  Log.append db.log (Record.Delegate { from_; to_; oids }) |> ignore;
  if Trace.on () then Trace.emit (Trace.Delegate { from_; to_; moved = moved_oids });
  bump db

(* ------------------------------------------------------------------ *)
(* permit                                                              *)

(* permit(ti, tj, ob_set, operations) and its three abbreviated forms.
   [to_ = None] permits any transaction; [oids = None] expands, per the
   paper, to "each object that t_i accessed or has permission to
   access"; [ops = None] permits all operations. *)
let permit ?to_ ?oids ?ops db ~from_ =
  let ops = match ops with Some o -> o | None -> Mode.Ops.all in
  let objects =
    match oids with Some l -> l | None -> Lock.accessible_objects db.locks from_
  in
  List.iter (fun oid -> Lock.add_permit db.locks ~grantor:from_ ~grantee:to_ ~oid ~ops) objects;
  if Trace.on () then
    Trace.emit
      (Trace.Permit
         {
           from_;
           to_ = (match to_ with Some t -> t | None -> Tid.null);
           oids = objects;
           ops = Format.asprintf "%a" Mode.Ops.pp ops;
         });
  bump db

(* ------------------------------------------------------------------ *)
(* form_dependency                                                     *)

let form_dependency db dtype ti tj =
  if db.config.mutation_drop_cd_edge && dtype = Dep_type.CD then begin
    (* Seeded bug: claim the CD edge was formed (trace event and all)
       but never record it, so commit ordering is silently lost. *)
    if Trace.on () then
      Trace.emit (Trace.Dep { dtype = Dep_type.to_string dtype; master = ti; dependent = tj });
    bump db;
    true
  end
  else
    match Dep.add db.deps dtype ~master:ti ~dependent:tj with
    | () ->
        if Trace.on () then
          Trace.emit (Trace.Dep { dtype = Dep_type.to_string dtype; master = ti; dependent = tj });
        bump db;
        true
    | exception Dep.Cycle_rejected _ -> false

(* ------------------------------------------------------------------ *)
(* abort: the section 4.2 algorithm                                    *)

(* Abort propagation must reach every dependent even when one of them is
   the transaction the current fiber is running (whose abort unwinds the
   body with [Txn_aborted]): perform all the aborts first and re-raise
   the self-unwind once at the end. *)
let abort_many_ref : (t -> Tid.t list -> unit) ref = ref (fun _ _ -> assert false)

(* Abort-path logging is best-effort: rollback must complete even when
   the log cannot take another byte (a [Disk_full] budget, real
   ENOSPC).  Returns whether the record was taken; a refused append is
   counted, not raised.  Simulated power loss is not an I/O error and
   still propagates. *)
let append_best_effort db record =
  try
    ignore (Log.append db.log record);
    true
  with Fault.Storage_error _ ->
    Asset_util.Stats.Counter.incr db.abort_log_misses;
    false

let rec finalize_abort db (td : td) =
  (* The abort is observable from here on (status is already Aborting),
     so the trace event precedes the undo and the lock releases — the
     oracle's strictness clause counts releases after it as legal. *)
  if Trace.on () then Trace.emit (Trace.Abort { tid = td.tid });
  (* Step 2: install before images for each update t_i is responsible
     for, newest first.  "This implies that subsequent updates done by
     cooperating transactions will also be lost."  Every installation
     is logged as a CLR so that recovery can repeat the undo instead of
     re-deriving it (see Asset_wal.Recovery). *)
  let lsns = List.sort (fun a b -> Int.compare b a) td.updates in
  let clr_missed = ref false in
  let append_clr record = if not (append_best_effort db record) then clr_missed := true in
  List.iter
    (fun lsn ->
      match Log.get db.log lsn with
      | Record.Update { oid; before; _ } ->
          append_clr (Record.Clr { tid = td.tid; oid; image = before; undo_lsn = lsn });
          (match before with
          | Some v -> Store.write db.store oid v
          | None -> Store.delete db.store oid)
      | Record.Increment { oid; delta; _ } ->
          (* Logical undo: subtract the delta from the *current* value,
             preserving concurrent transactions' commuting increments.
             The CLR carries the resulting physical image for redo and
             the compensated update's LSN as abort progress: should we
             crash before the Abort record, recovery must not subtract
             this delta a second time. *)
          let current =
            match Store.read db.store oid with Some v -> Value.to_int v | None -> 0
          in
          let image = Value.of_int (current - delta) in
          append_clr (Record.Clr { tid = td.tid; oid; image = Some image; undo_lsn = lsn });
          Store.write db.store oid image
      | Record.Enqueue { oid; item; _ } ->
          (* Logical undo, like Increment: remove the appended item
             from the current queue, preserving concurrent appends. *)
          let current =
            match Store.read db.store oid with Some v -> v | None -> Value.of_queue []
          in
          let image = Value.queue_remove_last current item in
          append_clr (Record.Clr { tid = td.tid; oid; image = Some image; undo_lsn = lsn });
          Store.write db.store oid image
      | _ -> ())
    lsns;
  td.updates <- [];
  (* Escrow reservations die with the transaction, and a read-only
     transaction's snapshot closes so version GC can advance. *)
  clear_escrow db td.tid;
  close_snapshot db td;
  (* Step 3: release all locks (and any pending requests). *)
  ignore (Lock.release_all db.locks td.tid);
  Lock.cancel_pending_all db.locks td.tid;
  if not db.config.mutation_skip_remove_permits then Lock.remove_permits db.locks td.tid;
  (* Step 4: dependencies incoming to t_i (t_i is the master) force
     AD/GC dependents to abort.  A group-commit dependency is symmetric
     ("either both commit or neither"), so GC edges where t_i is the
     *dependent* doom the master as well. *)
  let incoming = Dep.incoming db.deps td.tid in
  let must_abort =
    List.filter_map
      (fun e ->
        match e.Dep.dtype with
        | Dep_type.AD | Dep_type.GC -> Some e.Dep.dependent
        | Dep_type.CD | Dep_type.BD | Dep_type.EXC -> None)
      incoming
    @ List.filter_map
        (fun e -> match e.Dep.dtype with Dep_type.GC -> Some e.Dep.master | _ -> None)
        (Dep.outgoing db.deps td.tid)
  in
  (* Extension: a BD dependent of an aborted master may never begin;
     the edge is about to be dropped, so record the denial in the TD. *)
  List.iter
    (fun e ->
      if e.Dep.dtype = Dep_type.BD then begin
        match Hashtbl.find_opt db.tds e.Dep.dependent with
        | Some dep_td -> dep_td.begin_denied <- true
        | None -> ()
      end)
    incoming;
  (* Step 5: remove remaining dependencies pertaining to t_i. *)
  Dep.remove_involving db.deps td.tid;
  (* Step 6: terminate.  The Abort record asserts "every undo of this
     transaction is in the log as a CLR" — recovery replays the CLRs
     and does not re-derive the undo.  If any CLR append was refused
     (ENOSPC can reject a large CLR yet still fit the small Abort
     frame), writing Abort would orphan that update's undo forever, so
     the record is withheld: the transaction stays an unresolved loser
     and recovery re-derives the remainder, skipping exactly the
     CLR-covered prefix via the back-links. *)
  if !clr_missed then Asset_util.Stats.Counter.incr db.abort_log_misses
  else ignore (append_best_effort db (Record.Abort td.tid));
  td.status <- Status.Aborted;
  Asset_util.Stats.Counter.incr db.aborts;
  bump db;
  (* Propagate: abort AD/GC dependents (the paper marks them aborting;
     we perform the full abort eagerly, which reaches the same state
     without relying on the dependent to take another step). *)
  !abort_many_ref db must_abort

and abort db tid =
  let td = td db tid in
  match td.status with
  | Status.Committed -> false
  | Status.Aborted -> true
  | Status.Aborting ->
      (* Someone is already aborting it; treat as success. *)
      true
  | Status.Initiated | Status.Running | Status.Completed | Status.Committing ->
      td.status <- Status.Aborting;
      finalize_abort db td;
      (* If the caller is the transaction itself, unwind its body. *)
      (match self_opt db with
      | Some me when Tid.equal me tid -> raise (Txn_aborted tid)
      | _ -> ());
      true

(* Abort each of [tids], deferring a self-unwind ([Txn_aborted] raised
   when one of them is the current fiber's own transaction) until every
   abort has completed. *)
let abort_many db tids =
  let self_unwind = ref None in
  List.iter
    (fun tid ->
      try ignore (abort db tid) with Txn_aborted _ as e -> self_unwind := Some e)
    tids;
  match !self_unwind with Some e -> raise e | None -> ()

let () =
  abort_ref := abort;
  abort_many_ref := abort_many

(* ------------------------------------------------------------------ *)
(* commit: the section 4.2 algorithm                                   *)

(* One attempt at the dependency-resolution steps for [tid] (steps 2-3).
   Returns [`Ready] when every CD/AD/EXC obligation is resolved,
   [`Retry reason] when the paper says "blocks and retries later", and
   [`Must_abort] when an AD master aborted or an EXC partner already
   committed. *)
let resolve_non_gc_deps db tid =
  let out = Dep.outgoing db.deps tid in
  let rec check = function
    | [] -> `Ready
    | e :: rest -> (
        match e.Dep.dtype with
        | Dep_type.GC | Dep_type.BD -> check rest
        | Dep_type.AD -> (
            match status db e.Dep.master with
            | Status.Committed -> check rest
            | Status.Aborted | Status.Aborting -> `Must_abort
            | _ -> `Retry (Format.asprintf "AD on %a" Tid.pp e.Dep.master))
        | Dep_type.CD -> (
            match status db e.Dep.master with
            | Status.Committed | Status.Aborted -> check rest
            | _ -> `Retry (Format.asprintf "CD on %a" Tid.pp e.Dep.master))
        | Dep_type.EXC -> (
            match status db e.Dep.master with
            | Status.Committed -> `Must_abort
            | _ -> check rest))
  in
  match check out with
  | `Ready ->
      (* EXC is symmetric: a committed partner on either side excludes us. *)
      if List.exists (fun p -> is_committed db p) (Dep.exc_partners db.deps tid) then `Must_abort
      else `Ready
  | r -> r

(* ------------------------------------------------------------------ *)
(* Fuzzy checkpointing                                                 *)

(* Snapshot the active-transaction table for a Begin_ckpt record: for
   every live transaction, the undo information of each update it is
   currently responsible for, resolved from the in-memory log at the
   updates' real LSNs.  Delegation is already reflected — td.updates
   holds exactly what this transaction would have to undo — and any
   delegation logged after the checkpoint re-attributes the captured
   entries during recovery's tail scan.  The scheduler is cooperative
   and this runs without yielding, so the capture is a consistent cut
   even though transactions are mid-flight ("fuzzy" refers to the
   store, not the table). *)
let capture_att db =
  Hashtbl.fold
    (fun tid (td : td) acc ->
      if Status.active td.status then begin
        let att_updates =
          List.filter_map
            (fun lsn ->
              match Log.get db.log lsn with
              | Record.Update { oid; before; after; _ } ->
                  Some { Record.cu_lsn = lsn; cu_oid = oid; cu_undo = Record.Ckpt_physical before; cu_after = after }
              | Record.Increment { oid; delta; after; _ } ->
                  Some { Record.cu_lsn = lsn; cu_oid = oid; cu_undo = Record.Ckpt_delta delta; cu_after = after }
              | Record.Enqueue { oid; item; after; _ } ->
                  Some { Record.cu_lsn = lsn; cu_oid = oid; cu_undo = Record.Ckpt_dequeue item; cu_after = after }
              | _ -> None)
            td.updates
          |> List.sort (fun a b -> Int.compare a.Record.cu_lsn b.Record.cu_lsn)
        in
        { Record.att_tid = tid; att_updates } :: acc
      end
      else acc)
    db.tds []

(* Non-quiescent checkpoint: capture the ATT, log Begin_ckpt / flush /
   End_ckpt (see [Recovery.fuzzy_checkpoint]), then retire log
   segments wholly below the new redo watermark.  Pending group-commit
   records are forced (and acknowledged) first so the commit ack
   bookkeeping stays in step with the checkpoint's own force. *)
let checkpoint_fuzzy db =
  flush_pending_commits db;
  let active = capture_att db in
  let dirty =
    List.concat_map (fun (e : Record.att_entry) -> List.map (fun u -> u.Record.cu_oid) e.att_updates) active
    |> List.sort_uniq Oid.compare
  in
  let begin_lsn = Asset_wal.Recovery.fuzzy_checkpoint db.log db.store ~active ~dirty in
  db.ckpt_bytes_mark <- Log.appended_bytes db.log;
  Asset_util.Stats.Counter.incr db.fuzzy_ckpts;
  ignore (Log.retire db.log ~below:begin_lsn);
  bump db;
  begin_lsn

(* The commit-path trigger: once [checkpoint_log_bytes] of log have
   accumulated since the last checkpoint, take one.  A checkpoint that
   fails with an I/O error must not fail the commit that tripped it —
   the commit is already durable and an incomplete Begin/End pair is
   ignored by recovery — so back off a full threshold and let a later
   commit retry.  Simulated power loss still propagates. *)
let maybe_checkpoint db =
  let threshold = db.config.checkpoint_log_bytes in
  if threshold > 0 && Log.appended_bytes db.log - db.ckpt_bytes_mark >= threshold then
    try ignore (checkpoint_fuzzy db)
    with Fault.Storage_error _ -> db.ckpt_bytes_mark <- Log.appended_bytes db.log

(* Commit the whole [group] atomically (step 4 onward), "simultaneously
   executed for all the transactions in the group". *)
let commit_group db group =
  (* Publish the group's effects to the version store before the
     commit becomes observable.  The members' log records are replayed
     in LSN order over the newest *committed* versions: replaying the
     deltas (rather than installing the raw after-images, which may
     embed a concurrent transaction's uncommitted increments or
     enqueues on the same object) guarantees only committed state ever
     enters a chain. *)
  let m = mvcc db in
  let lsns =
    List.concat_map (fun tid -> (td db tid).updates) group |> List.sort Int.compare
  in
  let images : (Oid.t, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let committed_base oid =
    match Hashtbl.find_opt images oid with
    | Some v -> Some v
    | None -> m.Store.committed_head oid
  in
  List.iter
    (fun lsn ->
      match Log.get db.log lsn with
      | Record.Update { oid; after; _ } -> Hashtbl.replace images oid after
      | Record.Increment { oid; delta; _ } ->
          let base = match committed_base oid with Some v -> Value.to_int v | None -> 0 in
          Hashtbl.replace images oid (Value.of_int (base + delta))
      | Record.Enqueue { oid; item; _ } ->
          let base = match committed_base oid with Some v -> v | None -> Value.of_queue [] in
          Hashtbl.replace images oid (Value.queue_push base item)
      | _ -> ())
    lsns;
  let ts = m.Store.stamp_commit () in
  Hashtbl.iter (fun oid v -> m.Store.publish oid ts v) images;
  (* Group commit: stage the commit record and share one force among
     up to [group_commit_size] commit records (plus a flush at every
     scheduler quiescence point, so nothing waits indefinitely). *)
  let commit_lsn = Log.append ~force_commit:false db.log (Record.Commit group) in
  (* The whole group commits atomically here: one trace event carrying
     every member, emitted before any member's locks drop so the
     oracle's strictness clause sees commit-then-release. *)
  if Trace.on () then Trace.emit (Trace.Commit { tids = group; ts });
  db.unforced_commit_records <- db.unforced_commit_records + 1;
  db.unforced_commit_txns <- db.unforced_commit_txns + List.length group;
  if db.unforced_commit_records >= max 1 db.config.group_commit_size then
    flush_pending_commits db;
  List.iter
    (fun tid ->
      let td = td db tid in
      td.status <- Status.Committed;
      td.commit_lsn <- commit_lsn;
      td.updates <- [];
      clear_escrow db tid;
      close_snapshot db td;
      Asset_util.Stats.Counter.incr db.commits;
      (* Step 5: drop dependency edges; step 6: release locks and
         permissions. *)
      Dep.remove_involving db.deps tid;
      ignore (Lock.release_all db.locks tid);
      if not db.config.mutation_skip_remove_permits then Lock.remove_permits db.locks tid)
    group;
  (* Exclusion: committing excludes every EXC partner of each member.
     Partners were collected before edges were dropped — but since
     remove_involving already ran, collect first. *)
  bump db;
  maybe_checkpoint db

(* The WAL acknowledgment rule under group commit: [commit] may only
   return true once the transaction's commit record has reached a
   forced LSN.  A commit staged but not yet forced is *not* durable —
   a crash in the window must make the transaction a loser — so the
   acknowledgment parks until the batch's force (threshold or
   quiescence flush) catches up. *)
let await_commit_durable db (t : td) =
  let rec wait () =
    if t.commit_lsn >= 0 && Log.forced_lsn db.log < t.commit_lsn then begin
      let v = db.version in
      wait_for_change db ~reason:"commit: awaiting force" v;
      wait ()
    end
  in
  wait ()

let rec commit db tid =
  let t = td db tid in
  match t.status with
  | Status.Committed ->
      await_commit_durable db t;
      true
  | Status.Aborted -> false
  | Status.Aborting ->
      (* Step 1: "If it is aborting, perform the steps of the abort
         algorithm."  finalize_abort is idempotent at this point
         because abort() transitions synchronously; just report. *)
      false
  | Status.Initiated | Status.Running ->
      (* commit is blocking: wait for the execution to complete. *)
      let v = db.version in
      wait_for_change db ~reason:(Format.asprintf "commit(%a): awaiting completion" Tid.pp tid) v;
      commit db tid
  | Status.Completed | Status.Committing -> attempt_commit db tid

and attempt_commit db tid =
  let t = td db tid in
  t.status <- Status.Committing;
  (* Mark our side of every GC edge (step 2c-i). *)
  List.iter (fun e -> Dep.mark_gc e tid) (Dep.gc_edges db.deps tid);
  match resolve_non_gc_deps db tid with
  | `Must_abort ->
      ignore (abort db tid);
      false
  | `Retry reason ->
      Asset_util.Stats.Counter.incr db.commit_retries;
      let v = db.version in
      wait_for_change db ~reason:(Format.asprintf "commit(%a): %s" Tid.pp tid reason) v;
      commit db tid
  | `Ready -> (
      let group = Dep.gc_group db.deps tid in
      (* Check the group: every member must reach Committing with its own
         non-GC dependencies resolved; an aborted member fails the group. *)
      let classify m =
        match status db m with
        | Status.Aborted | Status.Aborting -> `Abort
        | Status.Committed -> `Ok (* already committed via an earlier group *)
        | Status.Committing -> ( match resolve_non_gc_deps db m with
            | `Ready -> `Ok
            | `Retry r -> `Wait r
            | `Must_abort -> `Abort)
        | Status.Completed ->
            (* Step 2c-ii: t_j has not yet invoked commit — invoke it on
               its behalf by entering its commit path. *)
            `Invoke
        | Status.Initiated | Status.Running -> `Wait (Format.asprintf "group member %a still executing" Tid.pp m)
      in
      let verdicts = List.map (fun m -> (m, classify m)) group in
      if List.exists (fun (_, v) -> v = `Abort) verdicts then begin
        (* GC: either all commit or none. *)
        abort_many db
          (List.filter_map
             (fun (m, _) -> if is_aborted db m then None else Some m)
             verdicts);
        false
      end
      else
        match List.find_opt (fun (_, v) -> v = `Invoke) verdicts with
        | Some (m, _) ->
            (* Entering the member's commit marks it Committing and
               resolves its dependencies (possibly parking this fiber,
               which is exactly the paper's behaviour: the group cannot
               commit before m can). *)
            ignore (attempt_commit db m);
            commit db tid
        | None ->
            if List.exists (fun (_, v) -> match v with `Wait _ -> true | _ -> false) verdicts
            then begin
              Asset_util.Stats.Counter.incr db.commit_retries;
              let v = db.version in
              wait_for_change db ~reason:(Format.asprintf "commit(%a): group not ready" Tid.pp tid) v;
              commit db tid
            end
            else begin
              (* Every member is Committing and resolved: commit the
                 group atomically. *)
              let exc_losers =
                List.concat_map (fun m -> Dep.exc_partners db.deps m) group
                |> List.filter (fun p -> not (List.exists (Tid.equal p) group))
              in
              commit_group db group;
              (* Committing one side of an exclusion forces the other to
                 abort. *)
              abort_many db
                (List.filter (fun p -> not (is_terminated db p)) (List.sort_uniq Tid.compare exc_losers));
              await_commit_durable db (td db tid);
              true
            end)

(* ------------------------------------------------------------------ *)
(* Checkpoint and stats                                                *)

let active_transactions db =
  Hashtbl.fold (fun tid td acc -> if Status.active td.status then tid :: acc else acc) db.tds []

let checkpoint db =
  match active_transactions db with
  | [] -> Ok (Asset_wal.Recovery.checkpoint db.log db.store)
  | l -> Error l

let version db = db.version
let store db = db.store
let log db = db.log
let locks db = db.locks
let deps db = db.deps
let transaction_count db = Hashtbl.length db.tds

(* Version-store introspection, for GC-bound tests and bench reports. *)
let mvcc_current_ts db = (mvcc db).Store.current_ts ()
let mvcc_max_chain db = (mvcc db).Store.max_chain ()
let mvcc_version_count db = (mvcc db).Store.version_count ()

(* Deadlock resolution hook for the scheduler: abort the youngest
   member of a waits-for cycle.  Returns true when it made progress. *)
let resolve_deadlock db () =
  let resolved =
    if not db.config.deadlock_detection then false
    else begin
      check_lock_invariants db "stall";
      (if db.config.debug_invariants then
         (* The incremental and rebuild searches must agree on whether a
            deadlock exists (the particular cycle may differ). *)
         let live = Lock.find_cycle db.locks <> None in
         let rebuilt = Lock.find_cycle_rebuild db.locks <> None in
         if live <> rebuilt then
           Fmt.failwith "debug_invariants: find_cycle (%b) disagrees with rebuild (%b)" live rebuilt);
      match Lock.find_cycle db.locks with
      | Some (victim :: _ as cycle) ->
          let youngest = List.fold_left (fun a b -> if Tid.compare a b >= 0 then a else b) victim cycle in
          Logs.debug (fun m -> m "deadlock: aborting victim %a" Tid.pp youngest);
          Asset_util.Stats.Counter.incr db.deadlock_victims;
          ignore (abort db youngest);
          true
      | Some [] | None -> false
    end
  in
  if resolved then true
  else if
    (* Lock-wait timeout tick: parked lock waiters can't advance their
       retry counters while the version is frozen, so a stall with live
       lock waiters bumps the version to force another retry round;
       after [lock_wait_timeout_steps] rounds the waiter aborts itself
       with [Lock_timeout].  Guarded on an actual lock waiter existing,
       or a stall caused by something else would tick forever. *)
    db.config.lock_wait_timeout_steps > 0
    && Hashtbl.fold (fun _ td acc -> acc || td.waiting_on <> "") db.tds false
  then begin
    bump db;
    true
  end
  else false

(* Number of distinct in-flight escrow reservations.  A leak gauge for
   the shard layer: after every transaction on an engine has
   terminated, this must be zero. *)
let escrow_inflight_count db = Hashtbl.length db.escrow_inflight

(* Spawn an auxiliary fiber (e.g. a per-transaction committer in a
   workload harness).  Not a transaction: [self] inside it is null. *)
let spawn db ~label f = ignore (Sched.spawn (sched db) ~label f)

(* Park the current fiber until every transaction in [tids] has
   terminated. *)
let await_terminated db tids =
  (* Terminated-ness only changes on a version bump, so the wait can be
     version-keyed. *)
  Sched.wait_until ~reason:"await batch termination" ~watch:db.version (fun () ->
      List.for_all (fun t -> Status.terminated (status db t)) tids)

let attach_scheduler db s =
  db.sched <- Some s;
  Sched.set_on_stall s (resolve_deadlock db);
  Sched.set_clock s (fun () -> db.version);
  Sched.set_on_quiesce s (fun () -> flush_pending_commits db)

(* The engine's own stall step, exposed so an outer layer (the shard
   server) can compose it into a richer [on_stall] hook — e.g. "drain
   the cross-domain mailbox first, then let the engine break local
   deadlocks, then block on the mailbox". *)
let resolve_stall db = resolve_deadlock db ()

(* Retry bookkeeping for harness-level bounded retry (the workload
   layer's combinator reports here so [stats] shows resilience figures
   next to the engine's own counters). *)
let note_retry db = Asset_util.Stats.Counter.incr db.retries
let note_give_up db = Asset_util.Stats.Counter.incr db.gave_up

(* Statistics discipline: [stats] (and every per-layer [stats]) is a
   pure read — no counter is ever reset by reading it.  This is the one
   explicit reset point, clearing the engine's own counters and the
   lock/dependency managers' through their own [reset_stats]. *)
let reset_stats db =
  List.iter Asset_util.Stats.Counter.reset
    [
      db.commits;
      db.aborts;
      db.group_commits;
      db.lock_waits;
      db.commit_retries;
      db.deadlock_victims;
      db.lock_timeouts;
      db.retries;
      db.gave_up;
      db.reads;
      db.writes;
      db.snapshot_reads;
      db.escrow_ops;
      db.escrow_violations;
      db.enqueues;
      db.fuzzy_ckpts;
      db.abort_log_misses;
    ];
  Lock.reset_stats db.locks;
  Dep.reset_stats db.deps

let stats db =
  [
    ("commits", Asset_util.Stats.Counter.get db.commits);
    ("aborts", Asset_util.Stats.Counter.get db.aborts);
    ("group_commits", Asset_util.Stats.Counter.get db.group_commits);
    ("lock_waits", Asset_util.Stats.Counter.get db.lock_waits);
    ("commit_retries", Asset_util.Stats.Counter.get db.commit_retries);
    ("deadlock_victims", Asset_util.Stats.Counter.get db.deadlock_victims);
    ("lock_timeouts", Asset_util.Stats.Counter.get db.lock_timeouts);
    ("retries", Asset_util.Stats.Counter.get db.retries);
    ("gave_up", Asset_util.Stats.Counter.get db.gave_up);
    ("reads", Asset_util.Stats.Counter.get db.reads);
    ("writes", Asset_util.Stats.Counter.get db.writes);
    ("snapshot_reads", Asset_util.Stats.Counter.get db.snapshot_reads);
    ("escrow_ops", Asset_util.Stats.Counter.get db.escrow_ops);
    ("escrow_violations", Asset_util.Stats.Counter.get db.escrow_violations);
    ("enqueues", Asset_util.Stats.Counter.get db.enqueues);
    ("fuzzy_ckpts", Asset_util.Stats.Counter.get db.fuzzy_ckpts);
    ("abort_log_misses", Asset_util.Stats.Counter.get db.abort_log_misses);
  ]
  @ List.map (fun (k, v) -> ("lock." ^ k, v)) (Lock.stats db.locks)
  @ List.map (fun (k, v) -> ("deps." ^ k, v)) (Dep.stats db.deps)

let pp_stats ppf db =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %d@." k v) (stats db)
