(* Systematic schedule exploration: a stateless bounded model checker
   over the cooperative scheduler.

   The scheduler's [Controlled] policy hands every scheduling decision
   to a strategy.  The explorer drives a depth-first enumeration of
   those decisions: each *run* executes the scenario from scratch
   against a fresh in-memory engine, following a scripted prefix of
   choices and extending past it with a deterministic default; the
   observations collected along the way (candidate sets, and the
   conflict footprint of the scheduling segment each choice executed)
   materialize the prefix tree that backtracking walks.

   Partial-order reduction is Godefroid-style sleep sets keyed on the
   lock manager's conflict relation.  The footprint of a segment is the
   set of (object, operation) atoms it touched — data operations and
   lock-table transitions — plus a [Global] atom for engine-level
   events (begin/commit/abort/delegate/permit/dependency), which
   conservatively conflict with everything.  Two segments with
   non-conflicting footprints commute: executing them in either order
   reaches the same engine state (R/R and I/I on the same object are
   compatible by the lock table; operations on different objects touch
   disjoint lock and store state).  WAL appends are deliberately
   neutral: commuting two independent writers permutes LSNs, but no
   checked property inspects LSN order.  When a transition is in a
   node's sleep set, every schedule through it from here is equivalent
   to one already explored through a sibling — it is skipped and
   counted as pruned.

   A failing run (oracle violation, deadlock, fiber crash) yields its
   full choice sequence — byte-replayable via {!replay} — and a
   greedy minimiser shrinks it to a locally-minimal script. *)

module Sched = Asset_sched.Scheduler
module E = Asset_core.Engine
module Trace = Asset_obs.Trace
module Oracle = Asset_obs.Oracle
module Mode = Asset_lock.Mode
module Oid = Asset_util.Id.Oid

exception Nondeterministic of string
(** A revisited choice point presented different candidates than the
    first visit: the system under test is not deterministic under the
    scheduler's choices, and exploration results would be garbage. *)

(* ------------------------------------------------------------------ *)
(* Conflict footprints *)

type atom =
  | Global  (** engine-level event: conflicts with everything *)
  | Data of int * char  (** (object, op/mode tag) *)

let atom_of_event = function
  | Trace.Op { oid; op; _ } -> Some (Data (Oid.to_int oid, op))
  | Trace.Snap_read { oid; _ } -> Some (Data (Oid.to_int oid, 'S'))
  | Trace.Lock { oid; mode; _ } -> Some (Data (Oid.to_int oid, mode))
  | Trace.Wal_append _ | Trace.Wal_force _ | Trace.Ckpt_begin _ | Trace.Ckpt_end _ | Trace.Wal_retire _ -> None
  | Trace.Initiate _ | Trace.Begin _ | Trace.Commit _ | Trace.Abort _ | Trace.Delegate _
  | Trace.Permit _ | Trace.Dep _ | Trace.Snapshot _ | Trace.Recovery_start
  | Trace.Recovery_done _ | Trace.Sched_spawn _ | Trace.Sched_stall ->
      Some Global

let atoms_of_entries entries =
  let atoms =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        match atom_of_event e.ev with
        | None -> acc
        | Some a -> if List.mem a acc then acc else a :: acc)
      [] entries
  in
  if List.mem Global atoms then [ Global ] else atoms

let atoms_conflict a b =
  match (a, b) with
  | Global, _ | _, Global -> true
  | Data (o1, c1), Data (o2, c2) -> o1 = o2 && Mode.conflicts_ops c1 c2

let fps_conflict f1 f2 = List.exists (fun a -> List.exists (atoms_conflict a) f2) f1

(* A sleeping transition: running fiber [s_fid], whose last observed
   segment had footprint [s_fp]. *)
type seg = { s_fid : int; s_fp : atom list }

let sleeping sleep fid = List.exists (fun s -> s.s_fid = fid) sleep

(* ------------------------------------------------------------------ *)
(* One execution *)

type obs = {
  o_cands : int array;  (** runnable fids at this choice point, stable order *)
  o_choice : int;  (** index chosen *)
  o_fid : int;  (** fid chosen *)
  o_preempt : bool;
  o_sleep : seg list;  (** this node's sleep set (extension nodes only) *)
  mutable o_fp : atom list;  (** footprint of the segment this choice executed *)
}

type run_result = {
  outcome : (unit, exn) result;
  entries : Trace.entry list;
  obs : obs array;  (** one per choice point, oldest first *)
  parked : int;  (** fibers still parked when the run ended *)
  runnable : int;
  preemptions : int;
}

let trace_capacity = 1 lsl 17

(* Execute the scenario once.  [script] pins the first choices (raising
   {!Nondeterministic} on an impossible index when [strict], clamping
   otherwise); past it, the default extension continues the running
   fiber when possible and otherwise takes the first non-sleeping
   candidate — sleep sets seeded from the branch node's [init_sleep]
   and [init_explored] and updated online as segment footprints become
   known. *)
let execute ?(strict = true) ?(por = true) ?preemption_bound ~script ~init_sleep ~init_explored
    (scenario : Scenario.t) =
  let depth = ref 0 in
  let last_fid = ref (-1) in
  let last_seq = ref 0 in
  let cur_sleep = ref [] in
  let obs_rev = ref [] in
  let preemptions = ref 0 in
  let nscript = Array.length script in
  let finalize_segment () =
    (* The segment run by the previous choice is now complete: compute
       its footprint and push the sleep set through it. *)
    match !obs_rev with
    | [] -> ()
    | prev :: _ ->
        let fp =
          atoms_of_entries (List.filter (fun (e : Trace.entry) -> e.seq > !last_seq) (Trace.recent ()))
        in
        prev.o_fp <- fp;
        if por && !depth >= nscript then begin
          let basis =
            if !depth = nscript then
              (* leaving the script: the previous node is the branch
                 node, whose sleep set and already-explored siblings
                 the DFS driver passed in *)
              init_sleep @ init_explored
            else !cur_sleep
          in
          cur_sleep :=
            List.filter (fun s -> s.s_fid <> prev.o_fid && not (fps_conflict s.s_fp fp)) basis
        end
  in
  let choose cands =
    let n = Array.length cands in
    finalize_segment ();
    let sleep = if !depth >= nscript then !cur_sleep else [] in
    let fid_at i = cands.(i).Sched.cfid in
    let choice =
      if !depth < nscript then begin
        let c = script.(!depth) in
        if c >= 0 && c < n then c
        else if strict then
          raise
            (Nondeterministic
               (Printf.sprintf "%s: scripted choice %d of %d at depth %d out of range" scenario.name
                  c n !depth))
        else max 0 (min c (n - 1))
      end
      else begin
        (* Default extension: keep running the same fiber (no added
           preemption, and its successors were already weighed when it
           was first scheduled); otherwise the first candidate not in
           the sleep set; otherwise index 0 (running a sleeping
           transition is redundant but never unsound). *)
        let same = ref (-1) and first_awake = ref (-1) in
        Array.iteri
          (fun i c ->
            if c.Sched.cfid = !last_fid then same := i;
            if !first_awake < 0 && not (sleeping sleep c.Sched.cfid) then first_awake := i)
          cands;
        let bound_hit =
          match preemption_bound with Some b -> !preemptions >= b | None -> false
        in
        if !same >= 0 && (bound_hit || not (sleeping sleep (fid_at !same))) then !same
        else if !first_awake >= 0 then !first_awake
        else if !same >= 0 then !same
        else 0
      end
    in
    let fid = fid_at choice in
    let preempt = !last_fid >= 0 && fid <> !last_fid && Array.exists (fun c -> c.Sched.cfid = !last_fid) cands in
    if preempt then incr preemptions;
    obs_rev :=
      {
        o_cands = Array.map (fun c -> c.Sched.cfid) cands;
        o_choice = choice;
        o_fid = fid;
        o_preempt = preempt;
        o_sleep = sleep;
        o_fp = [];
      }
      :: !obs_rev;
    incr depth;
    last_fid := fid;
    last_seq := Trace.seq ();
    choice
  in
  let sched = Sched.create ~policy:(Sched.Controlled choose) () in
  let store = Asset_storage.Heap_store.store () in
  if scenario.objects > 0 then
    Asset_storage.Heap_store.populate store ~n:scenario.objects
      ~value:(fun _ -> Asset_storage.Value.of_int 0);
  let db = E.create ~config:scenario.config store in
  E.attach_scheduler db sched;
  let (outcome, parked, runnable), entries =
    Trace.with_memory ~capacity:trace_capacity (fun () ->
        ignore (Sched.spawn sched ~label:"main" (fun () -> scenario.main db));
        let r =
          match Sched.run sched with
          | () -> Ok ()
          | exception (Nondeterministic _ as e) -> raise e
          | exception e -> Error e
        in
        (r, Sched.parked_count sched, Sched.runnable_count sched))
  in
  finalize_segment ();
  { outcome; entries; obs = Array.of_list (List.rev !obs_rev); parked; runnable; preemptions = !preemptions }

(* ------------------------------------------------------------------ *)
(* Failure classification *)

type failure_kind =
  | Oracle_violation of { check : string; detail : string }
  | Deadlock of string list
  | Fiber_failure of string
  | Run_error of string

type failure = {
  kind : failure_kind;
  schedule : int list;  (** full choice sequence of the failing run *)
  minimized : int list;  (** locally-minimal script; replay extends it with the default *)
}

let classify (scenario : Scenario.t) (res : run_result) =
  match res.outcome with
  | Error (Sched.Deadlock reasons) -> Some (Deadlock reasons)
  | Error (Sched.Fiber_failed (label, e)) ->
      Some (Fiber_failure (Printf.sprintf "%s: %s" label (Printexc.to_string e)))
  | Error e -> Some (Run_error (Printexc.to_string e))
  | Ok () -> (
      match scenario.checks res.entries with
      | [] -> None
      | { Oracle.check; detail } :: _ -> Some (Oracle_violation { check; detail }))

let same_kind a b =
  match (a, b) with
  | Oracle_violation { check = c1; _ }, Oracle_violation { check = c2; _ } -> String.equal c1 c2
  | Deadlock _, Deadlock _ -> true
  | Fiber_failure _, Fiber_failure _ -> true
  | Run_error _, Run_error _ -> true
  | _ -> false

let pp_failure_kind ppf = function
  | Oracle_violation { check; detail } -> Format.fprintf ppf "oracle %s: %s" check detail
  | Deadlock reasons -> Format.fprintf ppf "deadlock: %s" (String.concat "; " reasons)
  | Fiber_failure s -> Format.fprintf ppf "fiber failure: %s" s
  | Run_error s -> Format.fprintf ppf "run error: %s" s

(* ------------------------------------------------------------------ *)
(* Replay and counterexample encoding *)

let replay ?(por = false) (scenario : Scenario.t) choices =
  execute ~strict:false ~por ~script:(Array.of_list choices) ~init_sleep:[] ~init_explored:[]
    scenario

let choices_to_string choices = String.concat "." (List.map string_of_int choices)

let choices_of_string s =
  if String.length s = 0 then []
  else List.map int_of_string (String.split_on_char '.' s)

(* ------------------------------------------------------------------ *)
(* Schedule minimisation: shrink a failing script to a locally-minimal
   choice sequence reproducing the same failure kind under {!replay}.
   Passes: drop the tail, delete single elements, decrement single
   choices toward the default 0 — iterated to fixpoint under a run
   budget. *)

let minimize (scenario : Scenario.t) kind schedule ~budget =
  let runs = ref 0 in
  let fails s =
    !runs < budget
    && begin
         incr runs;
         match classify scenario (replay scenario s) with
         | Some k -> same_kind kind k
         | None -> false
       end
  in
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  let remove_at i l = List.filteri (fun j _ -> j <> i) l in
  let set_at i v l = List.mapi (fun j x -> if j = i then v else x) l in
  let cur = ref schedule in
  (if fails [] then cur := []);
  let changed = ref true in
  while !changed && !runs < budget do
    changed := false;
    (* tail truncation *)
    let continue_trunc = ref true in
    while !continue_trunc && !cur <> [] do
      let candidate = drop_last !cur in
      if fails candidate then begin
        cur := candidate;
        changed := true
      end
      else continue_trunc := false
    done;
    (* single-element deletion, left to right *)
    let i = ref 0 in
    while !i < List.length !cur do
      let candidate = remove_at !i !cur in
      if fails candidate then begin
        cur := candidate;
        changed := true
      end
      else incr i
    done;
    (* decrement toward the default choice *)
    let i = ref 0 in
    while !i < List.length !cur do
      let v = List.nth !cur !i in
      if v > 0 && fails (set_at !i (v - 1) !cur) then begin
        cur := set_at !i (v - 1) !cur;
        changed := true
      end
      else incr i
    done
  done;
  !cur

(* ------------------------------------------------------------------ *)
(* DFS driver *)

type options = {
  por : bool;  (** sleep-set partial-order reduction *)
  max_schedules : int;  (** execution budget *)
  max_depth : int;  (** deepest choice point that may branch *)
  preemption_bound : int option;
  stop_on_failure : bool;
  minimize : bool;
  minimize_budget : int;
}

let default_options =
  {
    por = true;
    max_schedules = 100_000;
    max_depth = 400;
    preemption_bound = None;
    stop_on_failure = true;
    minimize = true;
    minimize_budget = 500;
  }

type report = {
  scenario : string;
  schedules : int;  (** runs executed *)
  pruned : int;  (** candidates skipped by sleep sets *)
  bounded : int;  (** candidates skipped by the preemption bound *)
  clipped : int;  (** choice points beyond [max_depth], never branched *)
  choice_points : int;
  max_depth_seen : int;
  completed : bool;  (** the bounded tree was fully explored *)
  failure : failure option;
}

(* A materialized choice point on the DFS stack. *)
type node = {
  n_cands : int array;
  n_sleep : seg list;
  n_prev_fid : int;
  n_preempt_before : int;
  mutable n_cur : int;  (** candidate index currently being explored *)
  mutable n_cur_fp : atom list;
  mutable n_explored : seg list;  (** earlier siblings, with observed footprints *)
}

let explore ?(options = default_options) (scenario : Scenario.t) =
  let schedules = ref 0 and pruned = ref 0 and bounded = ref 0 and clipped = ref 0 in
  let choice_points = ref 0 and max_depth_seen = ref 0 in
  let failure = ref None in
  let stack = ref ([] : node list) (* top first; bottom is depth 0 *) in
  let budget_left () = !schedules < options.max_schedules in
  let running = ref true in
  let completed = ref false in
  while !running do
    let script = Array.of_list (List.rev_map (fun n -> n.n_cur) !stack) in
    let init_sleep, init_explored =
      match !stack with [] -> ([], []) | n :: _ -> (n.n_sleep, n.n_explored)
    in
    let res =
      execute ~por:options.por ?preemption_bound:options.preemption_bound ~script ~init_sleep
        ~init_explored scenario
    in
    incr schedules;
    choice_points := !choice_points + Array.length res.obs;
    max_depth_seen := max !max_depth_seen (Array.length res.obs);
    let nscript = Array.length script in
    if Array.length res.obs < nscript then
      raise
        (Nondeterministic
           (Printf.sprintf "%s: run consumed %d of %d scripted choices" scenario.name
              (Array.length res.obs) nscript));
    (* Self-check: revisited choice points must present the same
       candidates as when they were materialized. *)
    List.iteri
      (fun i n ->
        let d = nscript - 1 - i in
        if res.obs.(d).o_cands <> n.n_cands then
          raise
            (Nondeterministic
               (Printf.sprintf "%s: candidate set diverged at depth %d on revisit" scenario.name d)))
      !stack;
    (* The branch node's chosen transition now has an observed
       footprint. *)
    (match !stack with [] -> () | n :: _ -> n.n_cur_fp <- res.obs.(nscript - 1).o_fp);
    (match classify scenario res with
    | Some kind when !failure = None ->
        let schedule = Array.to_list (Array.map (fun o -> o.o_choice) res.obs) in
        let minimized =
          if options.minimize then
            minimize scenario kind schedule ~budget:options.minimize_budget
          else schedule
        in
        failure := Some { kind; schedule; minimized };
        if options.stop_on_failure then running := false
    | _ -> ());
    if !running then begin
      (* Materialize the new choice points this run discovered. *)
      let preempt_before = ref 0 in
      Array.iteri
        (fun d o ->
          if d >= nscript then begin
            if d < options.max_depth then
              stack :=
                {
                  n_cands = o.o_cands;
                  n_sleep = (if options.por then o.o_sleep else []);
                  n_prev_fid = (if d = 0 then -1 else res.obs.(d - 1).o_fid);
                  n_preempt_before = !preempt_before;
                  n_cur = o.o_choice;
                  n_cur_fp = o.o_fp;
                  n_explored = [];
                }
                :: !stack
            else if Array.length o.o_cands > 1 then incr clipped
          end;
          if o.o_preempt then incr preempt_before)
        res.obs;
      if not (budget_left ()) then running := false
      else begin
        (* Backtrack: at the deepest node with an untried, non-sleeping,
           bound-respecting candidate, advance; pop fully-explored
           nodes.  The scan covers every index — the default extension
           may have started a node at a middle candidate (same-fiber
           preference), so lower indices can still be untried. *)
        let rec backtrack () =
          match !stack with
          | [] ->
              running := false;
              completed := true
          | n :: rest -> (
              n.n_explored <-
                n.n_explored @ [ { s_fid = n.n_cands.(n.n_cur); s_fp = n.n_cur_fp } ];
              let len = Array.length n.n_cands in
              let explored fid = List.exists (fun s -> s.s_fid = fid) n.n_explored in
              let bound_blocks fid =
                match options.preemption_bound with
                | Some b ->
                    n.n_prev_fid >= 0 && fid <> n.n_prev_fid
                    && Array.exists (fun c -> c = n.n_prev_fid) n.n_cands
                    && n.n_preempt_before >= b
                | None -> false
              in
              let next = ref (-1) in
              let j = ref 0 in
              while !next < 0 && !j < len do
                let fid = n.n_cands.(!j) in
                if
                  explored fid
                  || (options.por && sleeping n.n_sleep fid)
                  || bound_blocks fid
                then incr j
                else next := !j
              done;
              if !next >= 0 then begin
                n.n_cur <- !next;
                n.n_cur_fp <- []
              end
              else begin
                (* Fully processed: every unexplored candidate was
                   skipped by the sleep set or the preemption bound —
                   account for each exactly once, at pop time. *)
                Array.iter
                  (fun fid ->
                    if not (explored fid) then
                      if options.por && sleeping n.n_sleep fid then incr pruned
                      else if bound_blocks fid then incr bounded)
                  n.n_cands;
                stack := rest;
                backtrack ()
              end)
        in
        backtrack ()
      end
    end
  done;
  {
    scenario = scenario.name;
    schedules = !schedules;
    pruned = !pruned;
    bounded = !bounded;
    clipped = !clipped;
    choice_points = !choice_points;
    max_depth_seen = !max_depth_seen;
    completed = !completed;
    failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Mutation self-validation: seeded engine bugs the explorer + oracle
   must catch, each paired with the bounded scenario designed to
   expose it. *)

type mutation = No_deadlock_detection | Skip_remove_permits | Drop_cd_edge

let mutations = [ No_deadlock_detection; Skip_remove_permits; Drop_cd_edge ]

let mutation_name = function
  | No_deadlock_detection -> "no-deadlock-detection"
  | Skip_remove_permits -> "skip-remove-permits"
  | Drop_cd_edge -> "drop-cd-edge"

let apply_mutation m (config : E.config) =
  match m with
  | No_deadlock_detection -> { config with E.deadlock_detection = false }
  | Skip_remove_permits -> { config with E.mutation_skip_remove_permits = true }
  | Drop_cd_edge -> { config with E.mutation_drop_cd_edge = true }

let mutate m (scenario : Scenario.t) =
  {
    scenario with
    Scenario.name = scenario.Scenario.name ^ "+" ^ mutation_name m;
    config = apply_mutation m scenario.Scenario.config;
  }

let kill_scenario = function
  | No_deadlock_detection -> Scenario.cross_locks
  | Skip_remove_permits -> Scenario.stale_permit_chain
  | Drop_cd_edge -> Scenario.cd_chain
