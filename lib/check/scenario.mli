(** Bounded scenarios for the systematic explorer ({!Explore}).

    A scenario packages a fresh-world setup — store size, engine
    configuration, a main program driving N transactions of K
    operations (plus delegate/permit/abort actions) to quiescence —
    with the oracle checkers its terminal histories must satisfy.
    Scenario programs must be deterministic given the scheduler's
    choices: no wall clock, no ambient randomness.

    The canned scenarios cover the paper's section-3 constructions
    (split/join, sagas, contingent alternates, cooperating groups) and
    the adversarial shapes the mutation self-validation needs. *)

module E = Asset_core.Engine
module Trace = Asset_obs.Trace
module Oracle = Asset_obs.Oracle

type t = {
  name : string;
  objects : int;  (** store pre-populated with oids [0, objects) at value 0 *)
  config : E.config;
  main : E.t -> unit;  (** runs as the root fiber, once per explored schedule *)
  checks : Trace.entry list -> Oracle.violation list;
      (** oracle bundle a terminal history must satisfy; invoked
          immediately after each run, so scenarios may thread run-local
          contract state (groups, compensation pairs) through refs *)
}

val make :
  ?objects:int ->
  ?config:E.config ->
  ?checks:(Trace.entry list -> Oracle.violation list) ->
  name:string ->
  (E.t -> unit) ->
  t

(** {2 Step DSL}

    Transaction bodies as flat operation lists; every operation is
    followed by a yield, so each op boundary is a scheduler choice
    point. *)

type step =
  | R of int  (** read object *)
  | W of int * int  (** write object := value *)
  | I of int * int  (** increment object by delta *)
  | Y  (** bare yield *)

val body : E.t -> step list -> unit -> unit

val run_txns : E.t -> step list list -> Asset_util.Id.Tid.t list
(** Initiate one transaction per step list, begin them all, commit each
    from its own committer fiber, and park until all terminated. *)

(** {2 Canned scenarios} *)

val handoff : t
(** Two writers hand one object over; doubles as the no-lost-wakeup
    property workout. *)

val disjoint_writers : t
(** Writers on different objects: where sleep-set pruning pays. *)

val split_handoff : t
(** Section 3.1.5 split/join: delegation mid-transaction, independent
    commits. *)

val saga_compensation : t
(** Section 3.1.6: middle step fails; committed prefix compensates in
    reverse order (checked by the compensation-order contract). *)

val contingent_alternates : t
(** Section 3.1.3: first alternative aborts, second commits, at most
    one ever commits. *)

val coop_permits : t
(** Section 3.2.1: mutual permits + group-commit coupling; checked
    against the cooperative bundle plus group atomicity. *)

val cross_locks : t
(** Opposite-order lock acquisition: the deadlock-detection workout. *)

val cd_chain : t
(** Commit dependency with racing committers: the CD-discharge
    workout. *)

val stale_permit_chain : t
(** Transitive permit chain through a transaction that aborts: the
    [remove_permits] workout. *)

val delegate_pending : t
(** Delegation racing a pending lock request (the PR-2
    withdraw-pending behaviour), end-to-end. *)

val escrow_bounds : t
(** Two escrow deltas whose worst case escapes the bound: exactly one
    commits in every schedule; the 'E' footprint workout. *)

val snapshot_reader : t
(** A read-only snapshot reader racing writers: never blocks or
    aborts; the snapshot-visibility axiom and 'S' footprint workout. *)

val agent_speculation : t
(** One agentic speculation (two EXC alternates, first fails): exactly
    one commits in every schedule and budget conservation holds. *)

val agent_handoff : t
(** One sub-agent handoff: the child's escrow reservation survives
    delegation into the adopting step's commit. *)

val oltp_mini : t
(** A three-class OLTP miniature (new-order, payment, delivery): the
    money and goods conservation laws hold in every schedule. *)

val all : t list
val by_name : string -> t option
