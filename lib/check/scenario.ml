(* Bounded scenarios for the systematic explorer.

   A scenario is a closed little world: a fresh in-memory store, an
   engine configuration, a main program that sets up N transactions of
   K operations each (plus the delegate/permit/abort actions under
   test) and drives them to quiescence, and the oracle checkers the
   terminal history must satisfy.  The explorer runs the same scenario
   once per schedule, so everything here must be deterministic given
   the scheduler's choices — no wall clock, no ambient randomness.

   The canned scenarios cover the paper's section-3 constructions:
   split/join handoff (3.1.5), saga compensation ordering (3.1.6),
   contingent alternates (3.1.3) and cooperating-group permits (3.2.1),
   plus the adversarial shapes the mutation tests need (a lock-order
   cycle, a commit-dependency chain, a stale transitive permit
   chain, and a delegation that must withdraw pending requests). *)

module E = Asset_core.Engine
module Sched = Asset_sched.Scheduler
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Ops = Asset_lock.Mode.Ops
module Trace = Asset_obs.Trace
module Oracle = Asset_obs.Oracle

type t = {
  name : string;
  objects : int;  (** store is pre-populated with oids [0, objects) at value 0 *)
  config : E.config;
  main : E.t -> unit;  (** runs as the root fiber *)
  checks : Trace.entry list -> Oracle.violation list;
      (** oracle bundle a terminal history must satisfy *)
}

let make ?(objects = 4) ?(config = E.default_config)
    ?(checks = Oracle.check_cooperative_history) ~name main =
  { name; objects; config; checks; main }

(* ------------------------------------------------------------------ *)
(* Step DSL: transaction bodies as flat op lists.  Every op is followed
   by an explicit yield, making each operation boundary a scheduler
   choice point — the "N txns x K ops" granularity of the bounded
   state space. *)

type step =
  | R of int  (** read object *)
  | W of int * int  (** write object := value *)
  | I of int * int  (** increment object by delta *)
  | Y  (** bare yield (an extra preemption point) *)

let run_step db = function
  | R o -> ignore (E.read db (Oid.of_int o))
  | W (o, v) -> E.write db (Oid.of_int o) (Value.of_int v)
  | I (o, d) -> E.increment db (Oid.of_int o) d
  | Y -> ()

let body db steps () =
  List.iter
    (fun s ->
      run_step db s;
      Sched.yield ())
    steps

(* Initiate one transaction per step list, begin them all, then commit
   each from a dedicated committer fiber so commit order is itself
   schedulable; the main fiber parks until every transaction
   terminated.  Commit may legitimately return false (deadlock victim,
   timeout) — the oracle judges the resulting history, not the
   return value. *)
let run_txns db bodies =
  let tids = List.map (fun steps -> E.initiate db (body db steps)) bodies in
  ignore (E.begin_many db tids);
  List.iteri
    (fun i tid ->
      E.spawn db ~label:(Printf.sprintf "committer-%d" i) (fun () -> ignore (E.commit db tid)))
    tids;
  E.await_terminated db tids;
  tids

(* ------------------------------------------------------------------ *)
(* Canned scenarios *)

(* Two writers hand one object over: the canonical version-keyed
   wait-queue workout.  Every schedule must terminate with both
   transactions committed — a waiter left suspended at quiescence
   surfaces as a deadlock, which the explorer reports. *)
let handoff =
  make ~name:"handoff" ~objects:1 ~checks:Oracle.check_strict_history (fun db ->
      ignore (run_txns db [ [ W (0, 1); Y ]; [ W (0, 2); Y ] ]))

(* Three transactions, two objects, disjoint-object prefixes: the
   shape where partial-order reduction pays — operations on different
   objects commute and the sleep sets prune the interleavings that
   differ only in commuting segments. *)
let disjoint_writers =
  make ~name:"disjoint-writers" ~objects:2 ~checks:Oracle.check_strict_history (fun db ->
      ignore (run_txns db [ [ W (0, 1) ]; [ W (1, 2) ]; [ R 0 ] ]))

(* Split/join handoff (section 3.1.5): t1 updates two objects, splits
   responsibility for the second off to t2 (delegate + begin), both
   commit independently.  Delegation re-attributes the update, so the
   committed projection must stay serializable. *)
let split_handoff =
  make ~name:"split-handoff" ~objects:2 (fun db ->
      let t2_ref = ref Tid.null in
      let t1 =
        E.initiate db (fun () ->
            E.write db (Oid.of_int 0) (Value.of_int 1);
            Sched.yield ();
            E.write db (Oid.of_int 1) (Value.of_int 1);
            Sched.yield ();
            match
              Asset_models.Split_join.split ~objs:[ Oid.of_int 1 ] db (fun () ->
                  E.write db (Oid.of_int 1) (Value.of_int 2);
                  Sched.yield ())
            with
            | Some t2 -> t2_ref := t2
            | None -> failwith "split failed")
      in
      ignore (E.begin_ db t1);
      ignore (E.commit db t1);
      let t2 = !t2_ref in
      if not (Tid.is_null t2) then begin
        ignore (E.commit db t2);
        E.await_terminated db [ t1; t2 ]
      end)

(* Saga compensation ordering (section 3.1.6): the middle step fails,
   so the committed prefix must be compensated in reverse order.  The
   oracle's compensation-order contract checker rides along. *)
let saga_compensation =
  let pairs = ref [] in
  let scen =
    make ~name:"saga-compensation" ~objects:3
      ~checks:(fun entries ->
        Oracle.check_cooperative_history entries
        @ Oracle.check_compensation_order ~pairs:!pairs entries)
      (fun db ->
        pairs := [];
        let record_pair comp compensation = pairs := (comp, compensation) :: !pairs in
        let comp_tids = Array.make 3 Tid.null and compen_tids = Array.make 3 Tid.null in
        let step i fail =
          Asset_models.Saga.step
            ~compensate:(fun () ->
              compen_tids.(i) <- E.self db;
              E.write db (Oid.of_int i) (Value.of_int 0);
              Sched.yield ())
            (fun () ->
              comp_tids.(i) <- E.self db;
              E.write db (Oid.of_int i) (Value.of_int (i + 1));
              Sched.yield ();
              if fail then ignore (E.abort db (E.self db)))
        in
        let result =
          Asset_models.Saga.run db [ step 0 false; step 1 false; step 2 true ]
        in
        (match result with
        | Asset_models.Saga.Committed -> failwith "saga: expected rollback"
        | Asset_models.Saga.Rolled_back _ -> ());
        (* Contract pairs in forward order, only for steps that ran both
           sides. *)
        for i = 2 downto 0 do
          if not (Tid.is_null comp_tids.(i)) && not (Tid.is_null compen_tids.(i)) then
            record_pair comp_tids.(i) compen_tids.(i)
        done)
  in
  scen

(* Contingent alternates (section 3.1.3): the first alternative always
   aborts, the second commits; at most one may ever commit. *)
let contingent_alternates =
  make ~name:"contingent-alternates" ~objects:2 ~checks:Oracle.check_strict_history (fun db ->
      let result =
        Asset_models.Contingent.run db
          [
            (fun () ->
              E.write db (Oid.of_int 0) (Value.of_int 1);
              Sched.yield ();
              ignore (E.abort db (E.self db)));
            (fun () ->
              E.write db (Oid.of_int 1) (Value.of_int 2);
              Sched.yield ());
          ]
      in
      match result with
      | `Committed 1 -> ()
      | `Committed i -> Fmt.failwith "contingent: alternative %d committed" i
      | `All_aborted -> failwith "contingent: all aborted"
      | `Initiate_failed -> failwith "contingent: initiate failed")

(* Cooperating-group permits (section 3.2.1): two transactions work on
   the same objects under mutual permits with group-commit coupling —
   uncommitted data flows, so only the cooperative oracle bundle
   applies, and the pair must commit atomically. *)
let coop_permits =
  let group = ref [] in
  make ~name:"coop-permits" ~objects:2
    ~checks:(fun entries ->
      Oracle.check_cooperative_history entries
      @ Oracle.check_group_atomicity ~groups:[ !group ] entries)
    (fun db ->
      group := [];
      let oids = [ Oid.of_int 0; Oid.of_int 1 ] in
      let mk steps = E.initiate db (body db steps) in
      let t1 = mk [ W (0, 1); Y; W (1, 1) ] and t2 = mk [ W (1, 2); Y; W (0, 2) ] in
      group := [ t1; t2 ];
      Asset_models.Coop.pair db ~ti:t1 ~tj:t2 ~objs:oids ~ops:Ops.all ~coupling:`Group;
      ignore (E.begin_many db [ t1; t2 ]);
      E.spawn db ~label:"committer-1" (fun () -> ignore (E.commit db t1));
      E.spawn db ~label:"committer-2" (fun () -> ignore (E.commit db t2));
      E.await_terminated db [ t1; t2 ])

(* Opposite-order lock acquisition: with deadlock detection on, every
   schedule either serializes cleanly or aborts a victim; with the
   detection mutation, the schedules that interleave the two prefixes
   stall into [Scheduler.Deadlock]. *)
let cross_locks =
  make ~name:"cross-locks" ~objects:2 ~checks:Oracle.check_strict_history (fun db ->
      ignore (run_txns db [ [ W (0, 1); W (1, 1) ]; [ W (1, 2); W (0, 2) ] ]))

(* Commit-dependency chain: the dependent may only commit after the
   master terminates.  Commits race from separate fibers, so dropping
   the CD edge lets some schedule commit the dependent first — a CD
   discharge violation in the history. *)
let cd_chain =
  make ~name:"cd-chain" ~objects:2 ~checks:Oracle.check_strict_history (fun db ->
      let master = E.initiate db (body db [ W (0, 1); Y; Y ]) in
      let dependent = E.initiate db (body db [ W (1, 2) ]) in
      ignore (E.form_dependency db Asset_deps.Dep_type.CD master dependent);
      ignore (E.begin_many db [ master; dependent ]);
      E.spawn db ~label:"committer-dep" (fun () -> ignore (E.commit db dependent));
      E.spawn db ~label:"committer-master" (fun () -> ignore (E.commit db master));
      E.await_terminated db [ master; dependent ])

(* Stale transitive permit chain: t_h permits t_m, t_m permits t_3,
   then t_m aborts.  A correct engine severs the chain at the abort
   ([remove_permits]), so t_3's conflicting write waits for t_h's
   commit; an engine that skips permit removal grants it through the
   dead middleman while t_h's update is still dirty — a visibility
   violation under the oracle's expiring, transitive permit model. *)
let stale_permit_chain =
  make ~name:"stale-permit-chain" ~objects:1 (fun db ->
      let o0 = Oid.of_int 0 in
      let th = E.initiate db (body db [ W (0, 1); Y; Y ]) in
      let tm = E.initiate db (fun () -> Sched.yield ()) in
      let t3 = E.initiate db (body db [ W (0, 3) ]) in
      E.permit db ~from_:th ~to_:tm ~oids:[ o0 ] ~ops:Ops.all;
      E.permit db ~from_:tm ~to_:t3 ~oids:[ o0 ] ~ops:Ops.all;
      ignore (E.begin_many db [ th; tm ]);
      ignore (E.abort db tm);
      ignore (E.begin_ db t3);
      E.spawn db ~label:"committer-3" (fun () -> ignore (E.commit db t3));
      ignore (E.commit db th);
      E.await_terminated db [ th; tm; t3 ])

(* Delegation racing a pending lock request: depending on the
   schedule, the main fiber's delegate of t1's work to t3 lands while
   t1 is enqueued behind the holder (the PR-2 withdraw-pending path),
   after t1 already holds the lock (the transfer path), or before t1
   asked at all.  Every variant must terminate with a clean
   cooperative history — a stale pending request left behind by the
   delegation is exactly the kind of bug that wedges some
   interleavings only. *)
let delegate_pending =
  make ~name:"delegate-pending" ~objects:1 (fun db ->
      let o0 = Oid.of_int 0 in
      let holder = E.initiate db (body db [ W (0, 9) ]) in
      let t1 = E.initiate db (body db [ W (0, 1) ]) in
      let t3 = E.initiate db (body db []) in
      ignore (E.begin_many db [ holder; t1 ]);
      Sched.yield ();
      E.delegate db ~from_:t1 ~to_:t3 ~oids:[ o0 ];
      ignore (E.begin_ db t3);
      E.spawn db ~label:"committer-1" (fun () -> ignore (E.commit db t1));
      E.spawn db ~label:"committer-3" (fun () -> ignore (E.commit db t3));
      ignore (E.commit db holder);
      E.await_terminated db [ holder; t1; t3 ])

(* Escrow bounds forcing a conflict: a counter bounded to [0, 10] with
   two +6 escrow deltas in flight.  The worst case — both committing —
   escapes the bound, so whichever transaction runs its escrow op
   second aborts with [Escrow_violation]: in every schedule exactly one
   of the two commits.  Exercises the 'E' footprint tag end to end —
   escrow ops on one object are schedule-relevant (reordering flips
   which transaction aborts), so the sleep sets must not commute
   them. *)
let escrow_bounds =
  make ~name:"escrow-bounds" ~objects:1 ~checks:Oracle.check_strict_history (fun db ->
      let esc () =
        E.escrow db (Oid.of_int 0) 6 ~lo:0 ~hi:10;
        Sched.yield ()
      in
      let t1 = E.initiate db esc and t2 = E.initiate db esc in
      ignore (E.begin_many db [ t1; t2 ]);
      E.spawn db ~label:"committer-1" (fun () -> ignore (E.commit db t1));
      E.spawn db ~label:"committer-2" (fun () -> ignore (E.commit db t2));
      E.await_terminated db [ t1; t2 ];
      let committed = List.filter (fun t -> E.is_committed db t) [ t1; t2 ] in
      if List.length committed <> 1 then
        Fmt.failwith "escrow-bounds: %d committed, expected exactly 1" (List.length committed))

(* A read-only snapshot reader racing two writers: the reader takes no
   locks, so no schedule can block, deadlock, or abort it, and the
   snapshot-visibility axiom pins exactly what each of its reads may
   return — the newest version committed before its begin.  The 'S'
   footprint tag commutes with everything, so POR prunes hardest
   here. *)
let snapshot_reader =
  make ~name:"snapshot-reader" ~objects:2 ~checks:Oracle.check_strict_history (fun db ->
      let writers =
        List.map (fun steps -> E.initiate db (body db steps)) [ [ W (0, 1); Y ]; [ W (1, 2); Y ] ]
      in
      let reader =
        E.initiate ~read_only:true db (fun () ->
            ignore (E.read db (Oid.of_int 0));
            Sched.yield ();
            ignore (E.read db (Oid.of_int 1)))
      in
      let tids = writers @ [ reader ] in
      ignore (E.begin_many db tids);
      List.iteri
        (fun i tid ->
          E.spawn db ~label:(Printf.sprintf "committer-%d" i) (fun () -> ignore (E.commit db tid)))
        tids;
      E.await_terminated db tids;
      if not (E.is_committed db reader) then failwith "snapshot-reader: reader did not commit")

(* ------------------------------------------------------------------ *)
(* Workload-family miniatures: the agentic and OLTP layers shrunk to
   explorer-sized worlds, so every interleaving of their primitive
   translations (EXC alternates, delegation handoff, escrow/queue
   mixes) is checked, not just the seeded-schedule samples. *)

module Agentic = Asset_workload.Agentic
module Oltp = Asset_workload.Oltp

(* Run each plan in its own fiber and park until all are done; the
   concurrent agents are what gives the explorer an interleaving tree
   (and POR its commuting segments to prune). *)
let run_plans db plans =
  let n = List.length plans in
  let cells = Array.make n None in
  let done_ = ref 0 in
  List.iteri
    (fun i (seed, plan) ->
      E.spawn db ~label:(Printf.sprintf "agent-%d" i) (fun () ->
          cells.(i) <- Some (Agentic.run_plan ~rng:(Asset_util.Rng.create seed) db plan);
          incr done_))
    plans;
  Sched.wait_until ~reason:"agents-done" (fun () -> !done_ >= n);
  Array.to_list cells |> List.map Option.get

(* One speculation (two alternates: the first fails after doing
   rolled-back work, the second commits) racing a read-only gather
   agent.  EXC exclusivity is judged from the recorded contract,
   budget/audit conservation straight from the store, and the
   snapshot reader's commuting segments give POR its pruning. *)
let agent_speculation =
  let excl = ref [] in
  make ~name:"agent-speculation" ~objects:0
    ~checks:(fun entries ->
      let committed = Oracle.committed entries in
      let extra =
        List.concat_map
          (fun g ->
            let n =
              List.length
                (List.filter (fun t -> List.exists (Tid.equal t) committed) g)
            in
            if n <= 1 then []
            else
              [
                {
                  Oracle.check = "exclusive-alternates";
                  detail = Printf.sprintf "%d alternates committed" n;
                };
              ])
          !excl
      in
      Oracle.check_cooperative_history entries
      @ Oracle.check_dependencies entries
      @ extra)
    (fun db ->
      excl := [];
      Agentic.setup (E.store db) ~docs:1 ~budget0:20;
      let spec =
        {
          Agentic.agent = 0;
          steps = [ Agentic.Speculate { tool = "spec"; costs = [ 2; 3 ]; d = 0; winner = 1 } ];
          fail_at = None;
        }
      and gather =
        {
          Agentic.agent = 1;
          steps = [ Agentic.Gather { tool = "gather"; ds = [ 0 ] } ];
          fail_at = None;
        }
      in
      match run_plans db [ (11, spec); (13, gather) ] with
      | [ o; og ] ->
          excl := o.Agentic.o_contract.Agentic.exclusive;
          if o.Agentic.o_failed || og.Agentic.o_failed then
            failwith "agent-speculation: plan failed";
          if o.Agentic.o_committed <> 1 then
            Fmt.failwith "agent-speculation: %d committed, expected 1" o.Agentic.o_committed;
          let budget_now =
            match Asset_storage.Store.read (E.store db) Agentic.budget with
            | Some v -> Value.to_int v
            | None -> -1
          in
          if budget_now <> 20 - o.Agentic.o_spend then
            Fmt.failwith "agent-speculation: budget %d, spend %d" budget_now
              o.Agentic.o_spend
      | _ -> assert false)

(* One sub-agent handoff: the child debits the budget and writes the
   doc, then delegates everything to the adopting step, which commits.
   Cooperative legality covers the re-attributed updates; the escrow
   reservation must survive the delegation into the adopter's
   commit. *)
let agent_handoff =
  make ~name:"agent-handoff" ~objects:0 (fun db ->
      Agentic.setup (E.store db) ~docs:1 ~budget0:20;
      let handoff =
        {
          Agentic.agent = 0;
          steps = [ Agentic.Handoff { tool = "handoff"; cost = 4; d = 0 } ];
          fail_at = None;
        }
      and gather =
        {
          Agentic.agent = 1;
          steps = [ Agentic.Gather { tool = "gather"; ds = [ 0 ] } ];
          fail_at = None;
        }
      in
      match run_plans db [ (13, handoff); (17, gather) ] with
      | [ o; og ] ->
          if o.Agentic.o_failed || og.Agentic.o_failed then
            failwith "agent-handoff: plan failed";
          if List.length o.Agentic.o_contract.Agentic.delegations <> 1 then
            failwith "agent-handoff: missing delegation edge";
          let budget_now =
            match Asset_storage.Store.read (E.store db) Agentic.budget with
            | Some v -> Value.to_int v
            | None -> -1
          in
          if budget_now <> 16 then
            Fmt.failwith "agent-handoff: budget %d, expected 16" budget_now
      | _ -> assert false)

(* A three-class OLTP miniature: one new-order, one payment, one
   delivery over one account and one item.  Whatever commits, both
   conservation laws must hold at quiescence — delivery may
   legitimately abort (nothing reserved yet) and escrow/queue ops
   commute, so POR prunes while the laws pin semantics. *)
let oltp_mini =
  make ~name:"oltp-mini" ~objects:0 (fun db ->
      let cfg = { Oltp.default_config with accounts = 1; items = 1 } in
      Oltp.setup (E.store db) cfg ~balance0:10 ~stock0:5;
      let new_order =
        {
          Oltp.t_klass = Oltp.New_order;
          t_ops =
            [
              (Oltp.stock 0, Oltp.Escrow { delta = -2; lo = 0 });
              (Oltp.reserved, Oltp.Incr 2);
              (Oltp.orders, Oltp.Enq "order:0");
            ];
        }
      and payment =
        {
          Oltp.t_klass = Oltp.Payment;
          t_ops =
            [
              (Oltp.account 0, Oltp.Escrow { delta = -3; lo = 0 });
              (Oltp.ledger, Oltp.Incr 3);
              (Oltp.history, Oltp.Enq "pay:0");
            ];
        }
      and delivery =
        {
          Oltp.t_klass = Oltp.Delivery;
          t_ops =
            [
              (Oltp.reserved, Oltp.Escrow { delta = -1; lo = 0 });
              (Oltp.delivered, Oltp.Incr 1);
              (Oltp.history, Oltp.Enq "deliv");
            ];
        }
      in
      let tids =
        List.map (fun t -> E.initiate db (Oltp.body db t)) [ new_order; payment; delivery ]
      in
      ignore (E.begin_many db tids);
      List.iteri
        (fun i tid ->
          E.spawn db ~label:(Printf.sprintf "committer-%d" i) (fun () ->
              ignore (E.commit db tid)))
        tids;
      E.await_terminated db tids;
      List.iter
        (fun (law, ok) ->
          if not ok then Fmt.failwith "oltp-mini: %s conservation broken" law)
        (Oltp.check_conservation (E.store db) cfg ~balance0:10 ~stock0:5))

let all =
  [
    handoff;
    disjoint_writers;
    split_handoff;
    saga_compensation;
    contingent_alternates;
    coop_permits;
    cross_locks;
    cd_chain;
    stale_permit_chain;
    delegate_pending;
    escrow_bounds;
    snapshot_reader;
    agent_speculation;
    agent_handoff;
    oltp_mini;
  ]

let by_name name = List.find_opt (fun s -> String.equal s.name name) all
