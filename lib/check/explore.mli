(** Systematic schedule exploration: a stateless bounded model checker
    over the cooperative scheduler, judged by the history oracle.

    {!explore} drives a {!Scenario.t} through every schedule of its
    bounded state space — depth-first over the scheduler's
    {!Asset_sched.Scheduler.Controlled} choice points, one fresh
    in-memory engine per run — replaying each terminal history through
    the scenario's oracle bundle.  Sleep-set partial-order reduction
    keyed on the lock manager's conflict relation prunes interleavings
    that differ only in commuting segments; depth and preemption
    bounds keep adversarial state spaces finite.  A failing schedule
    is returned as a byte-replayable choice sequence together with a
    locally-minimal shrink of it. *)

exception Nondeterministic of string
(** A revisited choice point presented different candidates than on
    first visit — the system under test is not deterministic under
    scheduler choices, so exploration results would be meaningless. *)

(** {2 Conflict footprints} *)

type atom =
  | Global  (** engine-level event; conflicts with everything *)
  | Data of int * char  (** (object id, op/mode tag 'R'|'W'|'I') *)

val atoms_of_entries : Asset_obs.Trace.entry list -> atom list
(** Deduplicated footprint of a trace slice; collapses to [[Global]]
    when any engine-level event is present. *)

val fps_conflict : atom list -> atom list -> bool
(** Whether two segment footprints conflict (fail to commute), via
    {!Asset_lock.Mode.conflicts_ops} on data atoms. *)

type seg = { s_fid : int; s_fp : atom list }
(** A transition for sleep-set purposes: fiber [s_fid] with the
    footprint its segment was observed to have. *)

(** {2 Single runs} *)

type obs = {
  o_cands : int array;  (** runnable fids at this choice point, stable order *)
  o_choice : int;  (** index chosen *)
  o_fid : int;  (** fid chosen *)
  o_preempt : bool;
  o_sleep : seg list;  (** this node's sleep set (extension nodes only) *)
  mutable o_fp : atom list;  (** footprint of the segment this choice executed *)
}

type run_result = {
  outcome : (unit, exn) result;
  entries : Asset_obs.Trace.entry list;
  obs : obs array;  (** one record per choice point, oldest first *)
  parked : int;  (** fibers still parked when the run ended *)
  runnable : int;
  preemptions : int;
}

type failure_kind =
  | Oracle_violation of { check : string; detail : string }
  | Deadlock of string list
  | Fiber_failure of string
  | Run_error of string

val replay : ?por:bool -> Scenario.t -> int list -> run_result
(** Re-execute a recorded (possibly minimised) choice sequence:
    scripted choices first — out-of-range indices clamped — then the
    deterministic default extension (continue the running fiber, else
    first candidate). *)

val classify : Scenario.t -> run_result -> failure_kind option
(** Judge one run: scheduler deadlock, fiber crash, or the scenario's
    oracle bundle over the terminal history. *)

val same_kind : failure_kind -> failure_kind -> bool
val pp_failure_kind : Format.formatter -> failure_kind -> unit

val choices_to_string : int list -> string
(** Dot-separated counterexample encoding, e.g. ["1.0.2"]. *)

val choices_of_string : string -> int list

val minimize : Scenario.t -> failure_kind -> int list -> budget:int -> int list
(** Greedy shrink (tail truncation, element deletion, decrement toward
    the default) to a locally-minimal script reproducing the same
    failure kind under {!replay}, within a run budget. *)

(** {2 Exhaustive exploration} *)

type options = {
  por : bool;  (** sleep-set partial-order reduction (default on) *)
  max_schedules : int;
  max_depth : int;  (** deepest choice point allowed to branch *)
  preemption_bound : int option;  (** None = exhaustive *)
  stop_on_failure : bool;
  minimize : bool;
  minimize_budget : int;
}

val default_options : options

type failure = {
  kind : failure_kind;
  schedule : int list;  (** full choice sequence of the failing run *)
  minimized : int list;  (** locally-minimal script; replay extends with the default *)
}

type report = {
  scenario : string;
  schedules : int;  (** runs executed *)
  pruned : int;  (** candidates skipped by sleep sets *)
  bounded : int;  (** candidates skipped by the preemption bound *)
  clipped : int;  (** branch points beyond [max_depth], never explored *)
  choice_points : int;
  max_depth_seen : int;
  completed : bool;  (** the bounded tree was fully explored *)
  failure : failure option;
}

val explore : ?options:options -> Scenario.t -> report
(** Enumerate the scenario's schedules depth-first.  Raises
    {!Nondeterministic} if a revisited choice point diverges. *)

(** {2 Mutation self-validation} *)

type mutation = No_deadlock_detection | Skip_remove_permits | Drop_cd_edge

val mutations : mutation list
val mutation_name : mutation -> string
val apply_mutation : mutation -> Scenario.E.config -> Scenario.E.config

val mutate : mutation -> Scenario.t -> Scenario.t
(** The scenario with the seeded engine bug switched on (name gains a
    ["+<mutation>"] suffix). *)

val kill_scenario : mutation -> Scenario.t
(** The canned scenario designed to expose the mutation. *)
