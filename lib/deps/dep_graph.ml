(* The transaction dependencies graph (section 4.1):

   "a directed graph where the nodes represent transactions and an edge
   from t_i to t_j labeled with type represents a dependency (type, t_i,
   t_j). [...] These structures are doubly hashed on the tid of the two
   transactions involved so that dependencies emanating from or incoming
   to a transaction can be located efficiently."

   Orientation convention.  form_dependency(type, t_i, t_j) names t_i
   the *master* and t_j the *dependent* (CD: "t_j cannot commit before
   t_i"; AD: "if t_i aborts, t_j must abort").  An edge is stored as
   {master; dependent; dtype}; [outgoing] returns, for a committing
   transaction, the edges on which *it* depends (it is the dependent) —
   the list the commit algorithm scans — and [incoming] the edges whose
   dependents must react when it aborts.

   GC edges carry the two marks of the section 4.2 handshake: each side
   records that it is waiting for the other to commit. *)

module Tid = Asset_util.Id.Tid

type edge = {
  master : Tid.t;
  dependent : Tid.t;
  dtype : Dep_type.t;
  mutable master_mark : bool; (* master has invoked commit and waits *)
  mutable dependent_mark : bool; (* dependent has invoked commit and waits *)
}

type t = {
  by_master : (Tid.t, edge list ref) Hashtbl.t;
  by_dependent : (Tid.t, edge list ref) Hashtbl.t;
  mutable edge_count : int;
  cycle_check : bool;
  formed : Asset_util.Stats.Counter.t;
  rejected : Asset_util.Stats.Counter.t;
}

let create ?(cycle_check = true) () =
  {
    by_master = Hashtbl.create 64;
    by_dependent = Hashtbl.create 64;
    edge_count = 0;
    cycle_check;
    formed = Asset_util.Stats.Counter.create "deps.formed";
    rejected = Asset_util.Stats.Counter.create "deps.rejected";
  }

let bucket table tid =
  match Hashtbl.find_opt table tid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace table tid l;
      l

let outgoing t tid = match Hashtbl.find_opt t.by_dependent tid with Some l -> !l | None -> []
let incoming t tid = match Hashtbl.find_opt t.by_master tid with Some l -> !l | None -> []
let edge_count t = t.edge_count

(* Edges that make [tid]'s commit wait, in either role: as dependent for
   CD/AD; GC edges in both roles (group membership is symmetric). *)
let commit_relevant t tid =
  let out = List.filter (fun e -> Dep_type.blocks_commit e.dtype || e.dtype = Dep_type.GC) (outgoing t tid) in
  let inc = List.filter (fun e -> e.dtype = Dep_type.GC || e.dtype = Dep_type.EXC) (incoming t tid) in
  let exc_out = List.filter (fun e -> e.dtype = Dep_type.EXC) (outgoing t tid) in
  out @ inc @ exc_out

(* Would adding dependent -> master create a cycle in the commit-wait
   (CD/AD) subgraph?  Walk masters-of-masters from [master] looking for
   [dependent]; memoized DFS, so each node is expanded once. *)
let creates_commit_cycle t ~master ~dependent =
  let visited = Hashtbl.create 16 in
  let rec reach node =
    Tid.equal node dependent
    || (not (Hashtbl.mem visited node))
       && begin
            Hashtbl.replace visited node ();
            List.exists
              (fun e -> Dep_type.blocks_commit e.dtype && reach e.master)
              (outgoing t node)
          end
  in
  reach master

exception Cycle_rejected of Tid.t * Tid.t

let mem t dtype ~master ~dependent =
  List.exists
    (fun e -> Dep_type.equal e.dtype dtype && Tid.equal e.master master && Tid.equal e.dependent dependent)
    (incoming t master)

let add t dtype ~master ~dependent =
  if Tid.equal master dependent then invalid_arg "Dep_graph.add: self dependency";
  if mem t dtype ~master ~dependent then ()
  else begin
    (if t.cycle_check && Dep_type.blocks_commit dtype && creates_commit_cycle t ~master ~dependent
     then begin
       Asset_util.Stats.Counter.incr t.rejected;
       raise (Cycle_rejected (master, dependent))
     end);
    let edge = { master; dependent; dtype; master_mark = false; dependent_mark = false } in
    let m = bucket t.by_master master in
    m := edge :: !m;
    let d = bucket t.by_dependent dependent in
    d := edge :: !d;
    t.edge_count <- t.edge_count + 1;
    Asset_util.Stats.Counter.incr t.formed
  end

(* Remove every edge touching [tid] (commit step 5 / abort step 5). *)
let remove_involving t tid =
  let touches e = Tid.equal e.master tid || Tid.equal e.dependent tid in
  let removed = ref 0 in
  let purge table =
    Hashtbl.iter
      (fun _ l ->
        let before = List.length !l in
        l := List.filter (fun e -> not (touches e)) !l;
        removed := !removed + (before - List.length !l))
      table
  in
  purge t.by_master;
  (* Count only once: track removals from the master index; the
     dependent index drops the same edges. *)
  t.edge_count <- t.edge_count - !removed;
  Hashtbl.iter (fun _ l -> l := List.filter (fun e -> not (touches e)) !l) t.by_dependent;
  Hashtbl.remove t.by_master tid;
  Hashtbl.remove t.by_dependent tid

(* GC handshake marks.  [mark_gc t tid edge] records that [tid] (one of
   the edge's endpoints) has invoked commit and is waiting for the other
   side. *)
let mark_gc edge tid =
  if Tid.equal edge.master tid then edge.master_mark <- true
  else if Tid.equal edge.dependent tid then edge.dependent_mark <- true
  else invalid_arg "Dep_graph.mark_gc: tid not on edge"

let gc_marked edge tid =
  if Tid.equal edge.master tid then edge.master_mark
  else if Tid.equal edge.dependent tid then edge.dependent_mark
  else invalid_arg "Dep_graph.gc_marked: tid not on edge"

let gc_other edge tid =
  if Tid.equal edge.master tid then edge.dependent
  else if Tid.equal edge.dependent tid then edge.master
  else invalid_arg "Dep_graph.gc_other: tid not on edge"

let gc_edges t tid =
  List.filter (fun e -> e.dtype = Dep_type.GC) (outgoing t tid)
  @ List.filter (fun e -> e.dtype = Dep_type.GC) (incoming t tid)

(* The group-commit closure: every transaction reachable from [tid]
   over GC edges (in either direction).  Sorted for determinism. *)
let gc_group t tid =
  let seen = Hashtbl.create 8 in
  let rec visit node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      List.iter (fun e -> visit (gc_other e node)) (gc_edges t node)
    end
  in
  visit tid;
  Hashtbl.fold (fun tid () acc -> tid :: acc) seen [] |> List.sort Tid.compare

let exc_partners t tid =
  let out = List.filter (fun e -> e.dtype = Dep_type.EXC) (outgoing t tid) in
  let inc = List.filter (fun e -> e.dtype = Dep_type.EXC) (incoming t tid) in
  List.sort_uniq Tid.compare (List.map (fun e -> e.master) out @ List.map (fun e -> e.dependent) inc)

(* Begin-on-commit masters of [tid]: transactions that must commit
   before [tid] may begin. *)
let bd_masters t tid =
  outgoing t tid
  |> List.filter (fun e -> e.dtype = Dep_type.BD)
  |> List.map (fun e -> e.master)

let all_edges t =
  Hashtbl.fold (fun _ l acc -> !l @ acc) t.by_master []

(* Counters reset only here, never on read; [live_edges] is a gauge
   tracking the graph's actual edge population and is left alone. *)
let reset_stats t = List.iter Asset_util.Stats.Counter.reset [ t.formed; t.rejected ]

let stats t =
  [
    ("formed", Asset_util.Stats.Counter.get t.formed);
    ("rejected", Asset_util.Stats.Counter.get t.rejected);
    ("live_edges", t.edge_count);
  ]

let pp_edge ppf e =
  Format.fprintf ppf "%a(%a->%a)%s%s" Dep_type.pp e.dtype Tid.pp e.master Tid.pp e.dependent
    (if e.master_mark then "*m" else "")
    (if e.dependent_mark then "*d" else "")

let pp ppf t =
  Format.fprintf ppf "deps{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_edge)
    (all_edges t)
