(** The transaction dependencies graph (section 4.1): nodes are
    transactions, a typed edge (master, dependent) records a
    form_dependency; edges are doubly indexed so that dependencies
    emanating from or incoming to a transaction are found efficiently.

    GC edges carry the two marks of the section-4.2 group-commit
    handshake. *)

module Tid = Asset_util.Id.Tid

type edge = {
  master : Tid.t;
  dependent : Tid.t;
  dtype : Dep_type.t;
  mutable master_mark : bool;
  mutable dependent_mark : bool;
}

type t

val create : ?cycle_check:bool -> unit -> t
(** [cycle_check] (default true) rejects commit-wait (CD/AD) cycles at
    [add] time, per the paper's "a check is performed to prevent
    certain dependency cycles". *)

exception Cycle_rejected of Tid.t * Tid.t

val add : t -> Dep_type.t -> master:Tid.t -> dependent:Tid.t -> unit
(** Idempotent per (type, master, dependent).  Raises {!Cycle_rejected}
    when the edge would close a commit-wait cycle, [Invalid_argument]
    on a self dependency. *)

val mem : t -> Dep_type.t -> master:Tid.t -> dependent:Tid.t -> bool

val outgoing : t -> Tid.t -> edge list
(** Edges on which [tid] depends (it is the dependent). *)

val incoming : t -> Tid.t -> edge list
(** Edges whose dependents react to [tid] (it is the master). *)

val commit_relevant : t -> Tid.t -> edge list
(** The edges [tid]'s commit must consider: CD/AD as dependent, GC and
    EXC in either role. *)

val remove_involving : t -> Tid.t -> unit
(** Drop every edge touching [tid] (commit step 5 / abort step 5). *)

val edge_count : t -> int

(** {2 Group commit} *)

val mark_gc : edge -> Tid.t -> unit
(** Record that [tid] (an endpoint) has invoked commit and waits for
    the other side. *)

val gc_marked : edge -> Tid.t -> bool
val gc_other : edge -> Tid.t -> Tid.t
val gc_edges : t -> Tid.t -> edge list

val gc_group : t -> Tid.t -> Tid.t list
(** The group-commit closure of [tid] over GC edges in both directions,
    sorted; [\[tid\]] when it has none. *)

(** {2 Extensions} *)

val exc_partners : t -> Tid.t -> Tid.t list
val bd_masters : t -> Tid.t -> Tid.t list

val all_edges : t -> edge list

val stats : t -> (string * int) list
(** A pure read: no counter is reset by reading. *)

val reset_stats : t -> unit
(** Reset the [formed]/[rejected] counters; [live_edges] is a gauge
    over the actual edge population and is left untouched. *)

val pp_edge : Format.formatter -> edge -> unit
val pp : Format.formatter -> t -> unit
