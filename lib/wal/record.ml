(* Write-ahead-log records.

   The paper's write algorithm (section 4.2) logs the before image and
   the after image of every update; commit places a commit record; abort
   installs before images from the log.  Two ASSET-specific twists show
   up here:

   - [Commit] carries a *list* of tids because a resolved group-commit
     dependency commits a whole set of transactions atomically ("the
     steps below are simultaneously executed for all the transactions in
     the group").

   - [Delegate] records responsibility transfers.  Recovery must know
     who finally became responsible for each logged update: an update
     performed by t_i but delegated to t_j is a winner update iff t_j
     committed.  Without logging delegation, recovery could not decide
     this. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

type t =
  | Begin of Tid.t
  | Update of { tid : Tid.t; oid : Oid.t; before : Value.t option; after : Value.t }
  | Commit of Tid.t list
  | Abort of Tid.t
  | Delegate of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list option }
      (* [oids = None] delegates everything t_i is responsible for. *)
  | Increment of { tid : Tid.t; oid : Oid.t; delta : int; after : Value.t }
      (* A commuting increment (section-5 semantic concurrency).  The
         [after] image supports physical repeat-history redo; [delta]
         supports *logical* undo — concurrent uncommitted increments by
         other transactions must survive this one's abort, so undo
         subtracts rather than installing a before image. *)
  | Enqueue of { tid : Tid.t; oid : Oid.t; item : string; after : Value.t }
      (* A commuting queue append.  Like [Increment], the [after] image
         supports physical repeat-history redo while [item] supports
         logical undo: concurrent uncommitted enqueues by other
         transactions must survive this one's abort, so undo removes
         this item rather than installing a before image. *)
  | Clr of { tid : Tid.t; oid : Oid.t; image : Value.t option }
      (* Compensation record: the abort algorithm installed [image]
         (None = the object is deleted) while undoing [tid].  Redo-only,
         ARIES-style: recovery replays CLRs but never undoes them, and a
         loser whose Abort record made it to the log is not re-undone —
         its CLRs already carry the undo. *)
  | Checkpoint

let pp ppf = function
  | Begin tid -> Format.fprintf ppf "BEGIN %a" Tid.pp tid
  | Update { tid; oid; before; after } ->
      Format.fprintf ppf "UPDATE %a %a before=%a after=%a" Tid.pp tid Oid.pp oid
        (Format.pp_print_option Value.pp)
        before Value.pp after
  | Commit tids ->
      Format.fprintf ppf "COMMIT [%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Tid.pp) tids
  | Abort tid -> Format.fprintf ppf "ABORT %a" Tid.pp tid
  | Delegate { from_; to_; oids } ->
      Format.fprintf ppf "DELEGATE %a->%a %s" Tid.pp from_ Tid.pp to_
        (match oids with
        | None -> "all"
        | Some l -> Printf.sprintf "%d objects" (List.length l))
  | Increment { tid; oid; delta; after } ->
      Format.fprintf ppf "INCR %a %a delta=%d after=%a" Tid.pp tid Oid.pp oid delta Value.pp
        after
  | Enqueue { tid; oid; item; after } ->
      Format.fprintf ppf "ENQ %a %a item=%S after=%a" Tid.pp tid Oid.pp oid item Value.pp after
  | Clr { tid; oid; image } ->
      Format.fprintf ppf "CLR %a %a image=%a" Tid.pp tid Oid.pp oid
        (Format.pp_print_option Value.pp)
        image
  | Checkpoint -> Format.fprintf ppf "CHECKPOINT"

(* Binary codec.  Framing (record length) is the log's concern; this
   codec produces and parses the record body.  All integers are
   little-endian. *)

let tag = function
  | Begin _ -> 1
  | Update _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Delegate _ -> 5
  | Checkpoint -> 6
  | Clr _ -> 7
  | Increment _ -> 8
  | Enqueue _ -> 9

let put_int buf i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Buffer.add_bytes buf b

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_tid buf tid = put_int buf (Tid.to_int tid)
let put_oid buf oid = put_int buf (Oid.to_int oid)

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (tag t));
  (match t with
  | Begin tid -> put_tid buf tid
  | Update { tid; oid; before; after } ->
      put_tid buf tid;
      put_oid buf oid;
      (match before with
      | None -> put_int buf 0
      | Some v ->
          put_int buf 1;
          put_string buf (Value.to_string v));
      put_string buf (Value.to_string after)
  | Commit tids ->
      put_int buf (List.length tids);
      List.iter (put_tid buf) tids
  | Abort tid -> put_tid buf tid
  | Delegate { from_; to_; oids } ->
      put_tid buf from_;
      put_tid buf to_;
      (match oids with
      | None -> put_int buf (-1)
      | Some l ->
          put_int buf (List.length l);
          List.iter (put_oid buf) l)
  | Clr { tid; oid; image } -> (
      put_tid buf tid;
      put_oid buf oid;
      match image with
      | None -> put_int buf 0
      | Some v ->
          put_int buf 1;
          put_string buf (Value.to_string v))
  | Increment { tid; oid; delta; after } ->
      put_tid buf tid;
      put_oid buf oid;
      put_int buf delta;
      put_string buf (Value.to_string after)
  | Enqueue { tid; oid; item; after } ->
      put_tid buf tid;
      put_oid buf oid;
      put_string buf item;
      put_string buf (Value.to_string after)
  | Checkpoint -> ());
  Buffer.contents buf

exception Corrupt of string

type cursor = { data : string; mutable pos : int }

let get_int c =
  if c.pos + 8 > String.length c.data then raise (Corrupt "truncated int");
  let i = Int64.to_int (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  i

let get_string c =
  let len = get_int c in
  (* Compare against the remaining bytes by subtraction: [c.pos + len]
     can overflow for adversarial lengths. *)
  if len < 0 || len > String.length c.data - c.pos then raise (Corrupt "truncated string");
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

(* A decoded element count: each element needs at least 8 bytes, so a
   count beyond the remaining payload is corruption (this also rejects
   negative and absurdly large counts before any allocation). *)
let get_count c =
  let n = get_int c in
  if n < 0 || n > (String.length c.data - c.pos) / 8 then raise (Corrupt "bad element count");
  n

let get_tid c = Tid.of_int (get_int c)
let get_oid c = Oid.of_int (get_int c)

let decode data =
  if String.length data < 1 then raise (Corrupt "empty record");
  let c = { data; pos = 1 } in
  match Char.code data.[0] with
  | 1 -> Begin (get_tid c)
  | 2 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let before = if get_int c = 1 then Some (Value.of_string (get_string c)) else None in
      let after = Value.of_string (get_string c) in
      Update { tid; oid; before; after }
  | 3 ->
      let n = get_count c in
      Commit (List.init n (fun _ -> get_tid c))
  | 4 -> Abort (get_tid c)
  | 5 ->
      let from_ = get_tid c in
      let to_ = get_tid c in
      let n = get_int c in
      let oids =
        if n < 0 then None
        else if n > (String.length c.data - c.pos) / 8 then raise (Corrupt "bad oid count")
        else Some (List.init n (fun _ -> get_oid c))
      in
      Delegate { from_; to_; oids }
  | 6 -> Checkpoint
  | 7 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let image = if get_int c = 1 then Some (Value.of_string (get_string c)) else None in
      Clr { tid; oid; image }
  | 8 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let delta = get_int c in
      let after = Value.of_string (get_string c) in
      Increment { tid; oid; delta; after }
  | 9 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let item = get_string c in
      let after = Value.of_string (get_string c) in
      Enqueue { tid; oid; item; after }
  | n -> raise (Corrupt (Printf.sprintf "unknown record tag %d" n))
