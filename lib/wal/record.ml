(* Write-ahead-log records.

   The paper's write algorithm (section 4.2) logs the before image and
   the after image of every update; commit places a commit record; abort
   installs before images from the log.  Two ASSET-specific twists show
   up here:

   - [Commit] carries a *list* of tids because a resolved group-commit
     dependency commits a whole set of transactions atomically ("the
     steps below are simultaneously executed for all the transactions in
     the group").

   - [Delegate] records responsibility transfers.  Recovery must know
     who finally became responsible for each logged update: an update
     performed by t_i but delegated to t_j is a winner update iff t_j
     committed.  Without logging delegation, recovery could not decide
     this. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

(* Fuzzy-checkpoint capture.  [Begin_ckpt] snapshots the active
   transaction table (ATT) without quiescing: for each live transaction,
   the undo information of every update it is currently responsible for
   — enough for recovery to roll an in-flight loser back without ever
   scanning the log before the checkpoint.  The captured LSNs are the
   updates' real log positions, so undo ordering across seeded and
   tail records stays globally correct.  [End_ckpt] anchors
   completeness: analysis only trusts a Begin_ckpt whose matching
   End_ckpt (the [begin_lsn] backlink) made it to disk. *)

type ckpt_undo =
  | Ckpt_physical of Value.t option (* install the before image; None = delete *)
  | Ckpt_delta of int (* logical undo: subtract the delta *)
  | Ckpt_dequeue of string (* logical undo: remove the enqueued item *)

type ckpt_update = { cu_lsn : int; cu_oid : Oid.t; cu_undo : ckpt_undo; cu_after : Value.t }
type att_entry = { att_tid : Tid.t; att_updates : ckpt_update list }

type t =
  | Begin of Tid.t
  | Update of { tid : Tid.t; oid : Oid.t; before : Value.t option; after : Value.t }
  | Commit of Tid.t list
  | Abort of Tid.t
  | Delegate of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list option }
      (* [oids = None] delegates everything t_i is responsible for. *)
  | Increment of { tid : Tid.t; oid : Oid.t; delta : int; after : Value.t }
      (* A commuting increment (section-5 semantic concurrency).  The
         [after] image supports physical repeat-history redo; [delta]
         supports *logical* undo — concurrent uncommitted increments by
         other transactions must survive this one's abort, so undo
         subtracts rather than installing a before image. *)
  | Enqueue of { tid : Tid.t; oid : Oid.t; item : string; after : Value.t }
      (* A commuting queue append.  Like [Increment], the [after] image
         supports physical repeat-history redo while [item] supports
         logical undo: concurrent uncommitted enqueues by other
         transactions must survive this one's abort, so undo removes
         this item rather than installing a before image. *)
  | Clr of { tid : Tid.t; oid : Oid.t; image : Value.t option; undo_lsn : int }
      (* Compensation record: the abort algorithm installed [image]
         (None = the object is deleted) while undoing [tid].  Redo-only,
         ARIES-style: recovery replays CLRs but never undoes them, and a
         loser whose Abort record made it to the log is not re-undone —
         its CLRs already carry the undo. *)
  | Checkpoint
  | Begin_ckpt of { active : att_entry list; dirty : Oid.t list }
      (* Fuzzy-checkpoint open: ATT snapshot + the distinct OIDs those
         in-flight transactions have touched.  The store is flushed
         between Begin_ckpt and End_ckpt, so everything logged before
         this record is durably in the store by End_ckpt. *)
  | End_ckpt of { begin_lsn : int }
      (* Fuzzy-checkpoint close: backlink to the matching Begin_ckpt.
         Recovery's redo watermark is the [begin_lsn] of the last
         End_ckpt-anchored checkpoint. *)

let pp ppf = function
  | Begin tid -> Format.fprintf ppf "BEGIN %a" Tid.pp tid
  | Update { tid; oid; before; after } ->
      Format.fprintf ppf "UPDATE %a %a before=%a after=%a" Tid.pp tid Oid.pp oid
        (Format.pp_print_option Value.pp)
        before Value.pp after
  | Commit tids ->
      Format.fprintf ppf "COMMIT [%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Tid.pp) tids
  | Abort tid -> Format.fprintf ppf "ABORT %a" Tid.pp tid
  | Delegate { from_; to_; oids } ->
      Format.fprintf ppf "DELEGATE %a->%a %s" Tid.pp from_ Tid.pp to_
        (match oids with
        | None -> "all"
        | Some l -> Printf.sprintf "%d objects" (List.length l))
  | Increment { tid; oid; delta; after } ->
      Format.fprintf ppf "INCR %a %a delta=%d after=%a" Tid.pp tid Oid.pp oid delta Value.pp
        after
  | Enqueue { tid; oid; item; after } ->
      Format.fprintf ppf "ENQ %a %a item=%S after=%a" Tid.pp tid Oid.pp oid item Value.pp after
  | Clr { tid; oid; image; undo_lsn } ->
      Format.fprintf ppf "CLR %a %a image=%a undo=%d" Tid.pp tid Oid.pp oid
        (Format.pp_print_option Value.pp)
        image undo_lsn
  | Checkpoint -> Format.fprintf ppf "CHECKPOINT"
  | Begin_ckpt { active; dirty } ->
      Format.fprintf ppf "BEGIN_CKPT active=[%a] dirty=%d"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf e -> Format.fprintf ppf "%a/%d" Tid.pp e.att_tid (List.length e.att_updates)))
        active (List.length dirty)
  | End_ckpt { begin_lsn } -> Format.fprintf ppf "END_CKPT begin=%d" begin_lsn

(* Binary codec.  Framing (record length) is the log's concern; this
   codec produces and parses the record body.  All integers are
   little-endian. *)

let tag = function
  | Begin _ -> 1
  | Update _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Delegate _ -> 5
  | Checkpoint -> 6
  | Clr _ -> 7
  | Increment _ -> 8
  | Enqueue _ -> 9
  | Begin_ckpt _ -> 10
  | End_ckpt _ -> 11

let put_int buf i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Buffer.add_bytes buf b

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_tid buf tid = put_int buf (Tid.to_int tid)
let put_oid buf oid = put_int buf (Oid.to_int oid)

let encode t =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (tag t));
  (match t with
  | Begin tid -> put_tid buf tid
  | Update { tid; oid; before; after } ->
      put_tid buf tid;
      put_oid buf oid;
      (match before with
      | None -> put_int buf 0
      | Some v ->
          put_int buf 1;
          put_string buf (Value.to_string v));
      put_string buf (Value.to_string after)
  | Commit tids ->
      put_int buf (List.length tids);
      List.iter (put_tid buf) tids
  | Abort tid -> put_tid buf tid
  | Delegate { from_; to_; oids } ->
      put_tid buf from_;
      put_tid buf to_;
      (match oids with
      | None -> put_int buf (-1)
      | Some l ->
          put_int buf (List.length l);
          List.iter (put_oid buf) l)
  | Clr { tid; oid; image; undo_lsn } ->
      put_tid buf tid;
      put_oid buf oid;
      put_int buf undo_lsn;
      (match image with
      | None -> put_int buf 0
      | Some v ->
          put_int buf 1;
          put_string buf (Value.to_string v))
  | Increment { tid; oid; delta; after } ->
      put_tid buf tid;
      put_oid buf oid;
      put_int buf delta;
      put_string buf (Value.to_string after)
  | Enqueue { tid; oid; item; after } ->
      put_tid buf tid;
      put_oid buf oid;
      put_string buf item;
      put_string buf (Value.to_string after)
  | Checkpoint -> ()
  | Begin_ckpt { active; dirty } ->
      put_int buf (List.length active);
      List.iter
        (fun e ->
          put_tid buf e.att_tid;
          put_int buf (List.length e.att_updates);
          List.iter
            (fun cu ->
              put_int buf cu.cu_lsn;
              put_oid buf cu.cu_oid;
              (match cu.cu_undo with
              | Ckpt_physical None -> put_int buf 0
              | Ckpt_physical (Some v) ->
                  put_int buf 1;
                  put_string buf (Value.to_string v)
              | Ckpt_delta d ->
                  put_int buf 2;
                  put_int buf d
              | Ckpt_dequeue item ->
                  put_int buf 3;
                  put_string buf item);
              put_string buf (Value.to_string cu.cu_after))
            e.att_updates)
        active;
      put_int buf (List.length dirty);
      List.iter (put_oid buf) dirty
  | End_ckpt { begin_lsn } -> put_int buf begin_lsn);
  Buffer.contents buf

exception Corrupt of string

type cursor = { data : string; mutable pos : int }

let get_int c =
  if c.pos + 8 > String.length c.data then raise (Corrupt "truncated int");
  let i = Int64.to_int (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  i

let get_string c =
  let len = get_int c in
  (* Compare against the remaining bytes by subtraction: [c.pos + len]
     can overflow for adversarial lengths. *)
  if len < 0 || len > String.length c.data - c.pos then raise (Corrupt "truncated string");
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

(* A decoded element count: each element needs at least 8 bytes, so a
   count beyond the remaining payload is corruption (this also rejects
   negative and absurdly large counts before any allocation). *)
let get_count c =
  let n = get_int c in
  if n < 0 || n > (String.length c.data - c.pos) / 8 then raise (Corrupt "bad element count");
  n

let get_tid c = Tid.of_int (get_int c)
let get_oid c = Oid.of_int (get_int c)

let decode data =
  if String.length data < 1 then raise (Corrupt "empty record");
  let c = { data; pos = 1 } in
  match Char.code data.[0] with
  | 1 -> Begin (get_tid c)
  | 2 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let before = if get_int c = 1 then Some (Value.of_string (get_string c)) else None in
      let after = Value.of_string (get_string c) in
      Update { tid; oid; before; after }
  | 3 ->
      let n = get_count c in
      Commit (List.init n (fun _ -> get_tid c))
  | 4 -> Abort (get_tid c)
  | 5 ->
      let from_ = get_tid c in
      let to_ = get_tid c in
      let n = get_int c in
      let oids =
        if n < 0 then None
        else if n > (String.length c.data - c.pos) / 8 then raise (Corrupt "bad oid count")
        else Some (List.init n (fun _ -> get_oid c))
      in
      Delegate { from_; to_; oids }
  | 6 -> Checkpoint
  | 7 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let undo_lsn = get_int c in
      let image = if get_int c = 1 then Some (Value.of_string (get_string c)) else None in
      Clr { tid; oid; image; undo_lsn }
  | 8 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let delta = get_int c in
      let after = Value.of_string (get_string c) in
      Increment { tid; oid; delta; after }
  | 9 ->
      let tid = get_tid c in
      let oid = get_oid c in
      let item = get_string c in
      let after = Value.of_string (get_string c) in
      Enqueue { tid; oid; item; after }
  | 10 ->
      let n_active = get_count c in
      let active =
        List.init n_active (fun _ ->
            let att_tid = get_tid c in
            let n_updates = get_count c in
            let att_updates =
              List.init n_updates (fun _ ->
                  let cu_lsn = get_int c in
                  let cu_oid = get_oid c in
                  let cu_undo =
                    match get_int c with
                    | 0 -> Ckpt_physical None
                    | 1 -> Ckpt_physical (Some (Value.of_string (get_string c)))
                    | 2 -> Ckpt_delta (get_int c)
                    | 3 -> Ckpt_dequeue (get_string c)
                    | k -> raise (Corrupt (Printf.sprintf "unknown ckpt undo kind %d" k))
                  in
                  let cu_after = Value.of_string (get_string c) in
                  { cu_lsn; cu_oid; cu_undo; cu_after })
            in
            { att_tid; att_updates })
      in
      let n_dirty = get_count c in
      let dirty = List.init n_dirty (fun _ -> get_oid c) in
      Begin_ckpt { active; dirty }
  | 11 -> End_ckpt { begin_lsn = get_int c }
  | n -> raise (Corrupt (Printf.sprintf "unknown record tag %d" n))
