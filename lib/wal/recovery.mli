(** Crash recovery: repeat history, then undo losers.

    Analysis walks forward from the last completed checkpoint —
    quiescent ([Checkpoint]) or fuzzy ([Begin_ckpt]/[End_ckpt], whose
    captured active-transaction table seeds the undo information for
    transactions already running at the checkpoint) — attributing each
    update to the transaction finally responsible for it (delegation
    records re-attribute earlier updates, captured ones included);
    redo reinstalls every after image {e and} every CLR image in log
    order, optionally partitioned by OID hash across OCaml domains
    with a merge barrier before undo; undo walks unresolved losers'
    updates in reverse, installing before images (physical) or
    subtracting deltas (logical, for increments).  A loser whose Abort
    record reached the log is not re-undone — its CLRs already carry
    the undo. *)

module Tid = Asset_util.Id.Tid
module Store = Asset_storage.Store

type report = {
  winners : Tid.t list;
  losers : Tid.t list;
  updates_redone : int;
  updates_undone : int;
  scanned_from : int;
      (** Where the forward scan started: the last quiescent
          [Checkpoint], the [begin_lsn] of the last completed fuzzy
          checkpoint, or the log's first live LSN. *)
  log_records_dropped : int;
      (** Complete log records dropped by {!Log.load} on CRC mismatch —
          nonzero means the log tail was corrupt, not merely torn. *)
}

val recover : ?from_checkpoint:bool -> ?domains:int -> Log.t -> Store.t -> report
(** Recover [store] from [log] and flush it.  Idempotent: recovering
    twice leaves the same state.  [from_checkpoint] (default true)
    starts the scan at the last completed checkpoint (quiescent or
    fuzzy).  [domains] (default 1) > 1 replays redo in parallel:
    actions partition by [Oid.partition] so per-OID order is
    preserved, every domain joins at a merge barrier before undo, and
    the result is identical to serial replay.  Failpoints
    "recovery.domain.replay" (once per partition, before spawning) and
    "recovery.domain.merge" (after the barrier, before the store
    applies) fire on the driving domain. *)

val checkpoint : Log.t -> Store.t -> int
(** Quiescent checkpoint: flush the store, append and force a
    Checkpoint record, return its LSN.  The caller must ensure no
    transaction is active ([Asset_core.Engine.checkpoint] does). *)

val fuzzy_checkpoint :
  Log.t -> Store.t -> active:Record.att_entry list -> dirty:Record.Oid.t list -> int
(** Non-quiescent checkpoint: append [Begin_ckpt] carrying the caller's
    snapshot of the active-transaction table, flush the store, append
    [End_ckpt] and force; returns the begin LSN — the redo watermark
    safe to pass to [Log.retire].  A crash inside leaves an incomplete
    pair that analysis ignores (recovery falls back to the previous
    checkpoint).  Failpoints "wal.ckpt.begin" / "wal.ckpt.flush" /
    "wal.ckpt.end" bracket the three steps. *)

val pp_report : Format.formatter -> report -> unit
