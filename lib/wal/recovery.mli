(** Crash recovery: repeat history, then undo losers.

    Analysis attributes each logged update to the transaction finally
    responsible for it (delegation records re-attribute earlier
    updates); redo reinstalls every after image {e and} every CLR image
    in log order; undo walks unresolved losers' updates in reverse,
    installing before images (physical) or subtracting deltas
    (logical, for increments).  A loser whose Abort record reached the
    log is not re-undone — its CLRs already carry the undo. *)

module Tid = Asset_util.Id.Tid
module Store = Asset_storage.Store

type report = {
  winners : Tid.t list;
  losers : Tid.t list;
  updates_redone : int;
  updates_undone : int;
  scanned_from : int;  (** LSN of the last checkpoint, where analysis state was reset. *)
  log_records_dropped : int;
      (** Complete log records dropped by {!Log.load} on CRC mismatch —
          nonzero means the log tail was corrupt, not merely torn. *)
}

val recover : ?from_checkpoint:bool -> Log.t -> Store.t -> report
(** Recover [store] from [log] and flush it.  Idempotent: recovering
    twice leaves the same state.  [from_checkpoint] (default true)
    starts the scan at the last Checkpoint record. *)

val checkpoint : Log.t -> Store.t -> int
(** Quiescent checkpoint: flush the store, append and force a
    Checkpoint record, return its LSN.  The caller must ensure no
    transaction is active ([Asset_core.Engine.checkpoint] does). *)

val pp_report : Format.formatter -> report -> unit
