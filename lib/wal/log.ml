(* The log: an append-only sequence of records, addressed by LSN.

   Records always live in memory (a growable array) so that the engine's
   abort path can walk them without I/O; when the log is opened with a
   backing file, every append is also encoded into a staging buffer in
   a framed binary format (u32 length + u32 CRC-32 + body), and [force]
   drains the buffer to the raw file descriptor and fsyncs it — only
   then is anything durable.  Commit records are forced automatically
   unless the caller opts out ([~force_commit:false]), which is how the
   engine batches K commits into one force (group commit).

   Two disk layouts share the framing:

   - a *single file* ([create_file]/[load]) — the original layout, kept
     as the simple default for tests and tools;

   - a *segment directory* ([create_dir]/[load_dir]) — fixed-size
     segment files named by their base LSN plus an atomic [MANIFEST]
     naming the live segments.  Rotation seals the full segment
     (drain + fsync) and makes the manifest name the successor *before*
     any record can enter it, so a forced record never lives in a file
     the manifest does not know.  [retire] deletes sealed segments
     wholly below a checkpoint watermark: manifest first, unlink
     second, directory fsync last — a crash anywhere leaves either the
     old manifest (segments still named, nothing lost) or unreferenced
     files that the next [load_dir] sweeps, so retirement is
     idempotent.  Retirement frees *disk*; the in-memory array keeps
     the full suffix from [start_lsn] so the abort path and fuzzy
     checkpoints can still resolve live transactions' update LSNs.

   The sink is a raw [Unix.file_descr], not an [out_channel]: the fault
   harness's simulated power loss ([crash]) must discard exactly the
   staged-but-undrained bytes, which requires the userspace buffering
   to be ours.

   Failpoints (see [Asset_fault.Fault]): "wal.append" at every staged
   append (size-aware, so a [Disk_full] budget refuses whole frames —
   never a partial one), "wal.force" before the drain+fsync,
   "wal.after_force" once the bytes are durable but before the
   in-memory forced-LSN advances, "wal.torn_write" in the drain itself
   — armed with any policy it writes *half* the staged bytes and then
   crashes, modelling a torn multi-sector write — and the retirement
   triple "wal.retire.manifest" / "wal.retire.unlink" /
   "wal.retire.sync_dir" bracketing each step of the delete
   protocol. *)

module Fault = Asset_fault.Fault
module Trace = Asset_obs.Trace

let record_kind = function
  | Record.Begin _ -> "begin"
  | Record.Update _ -> "update"
  | Record.Commit _ -> "commit"
  | Record.Abort _ -> "abort"
  | Record.Delegate _ -> "delegate"
  | Record.Increment _ -> "increment"
  | Record.Enqueue _ -> "enqueue"
  | Record.Clr _ -> "clr"
  | Record.Checkpoint -> "checkpoint"
  | Record.Begin_ckpt _ -> "begin_ckpt"
  | Record.End_ckpt _ -> "end_ckpt"

let site_append = Fault.register "wal.append"
let site_force = Fault.register "wal.force"
let site_after_force = Fault.register "wal.after_force"
let site_torn = Fault.register "wal.torn_write"
let site_retire_manifest = Fault.register "wal.retire.manifest"
let site_retire_unlink = Fault.register "wal.retire.unlink"
let site_retire_sync_dir = Fault.register "wal.retire.sync_dir"

type seg = { base : int; file : string }

type seg_state = {
  dir : string;
  limit : int; (* rotate once the current segment holds this many bytes *)
  mutable sealed : seg list; (* oldest first; immutable, fsynced in full *)
  mutable cur_base : int;
  mutable cur_bytes : int;
  mutable retired : int;
}

type backend = Single | Segmented of seg_state

type sink = {
  mutable fd : Unix.file_descr;
  mutable path : string;
  buf : Buffer.t;
  mutable crashed : bool;
  backend : backend;
}

type t = {
  mutable records : Record.t array;
  mutable len : int; (* records held in memory *)
  mutable start_lsn : int; (* LSN of records.(0); LSNs are global, never reused *)
  sink : sink option;
  mutable forced_lsn : int; (* highest LSN known durable *)
  mutable forces : int; (* how many times [force] ran *)
  mutable corrupt_dropped : int; (* records dropped by load on CRC mismatch *)
  mutable appended_bytes : int; (* framed bytes staged over the log's lifetime *)
}

(* Drain the staging buffer past this size even without a force, to
   bound memory; durability still waits for the fsync in [force]. *)
let drain_threshold = 1 lsl 20

let make sink =
  {
    records = Array.make 64 Record.Checkpoint;
    len = 0;
    start_lsn = 0;
    sink;
    forced_lsn = -1;
    forces = 0;
    corrupt_dropped = 0;
    appended_bytes = 0;
  }

let in_memory () = make None
let of_sink sink = make (Some sink)

let create_file path =
  let fd =
    Fault.protect "wal.open" (fun () ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
  in
  of_sink { fd; path; buf = Buffer.create 4096; crashed = false; backend = Single }

let grow t =
  let bigger = Array.make (2 * Array.length t.records) Record.Checkpoint in
  Array.blit t.records 0 bigger 0 t.len;
  t.records <- bigger

let push_mem t record =
  if t.len = Array.length t.records then grow t;
  t.records.(t.len) <- record;
  t.len <- t.len + 1

let frame_header_size = 8

let buffer_framed buf body =
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_int32_le buf (Int32.of_int (Asset_util.Crc32.string body));
  Buffer.add_string buf body

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

(* ---------- segment directory layout ---------- *)

let seg_name base = Printf.sprintf "seg-%012d.wal" base
let seg_path dir base = Filename.concat dir (seg_name base)
let is_seg_name name = String.length name > 4 && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".wal"
let manifest_path dir = Filename.concat dir "MANIFEST"

let fsync_dir dir =
  let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> Unix.fsync fd)

(* Atomic manifest replacement: write a sibling temp file, fsync it,
   rename over [MANIFEST], fsync the directory.  rename(2) is atomic,
   so a reader (and a crash) sees either the old manifest or the new
   one in full — never a torn mix.  The directory fsync makes the
   rename itself durable (and, at rotation, the new segment's dirent
   along with it). *)
let write_manifest dir ~limit ~retired segs =
  let tmp = Filename.concat dir "MANIFEST.tmp" in
  let body = Buffer.create 256 in
  Buffer.add_string body "asset-wal v1\n";
  Buffer.add_string body (Printf.sprintf "limit %d\n" limit);
  Buffer.add_string body (Printf.sprintf "retired %d\n" retired);
  List.iter (fun s -> Buffer.add_string body (Printf.sprintf "seg %d %s\n" s.base (Filename.basename s.file))) segs;
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Buffer.to_bytes body in
      write_all fd b 0 (Bytes.length b);
      Unix.fsync fd);
  Unix.rename tmp (manifest_path dir);
  fsync_dir dir

exception Bad_manifest of string

let read_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec loop acc = match input_line ic with
            | line -> loop (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          loop [])
    in
    match lines with
    | magic :: rest when magic = "asset-wal v1" ->
        let limit = ref drain_threshold and retired = ref 0 and segs = ref [] in
        List.iter
          (fun line ->
            match String.split_on_char ' ' line with
            | [ "limit"; n ] -> limit := int_of_string n
            | [ "retired"; n ] -> retired := int_of_string n
            | [ "seg"; base; name ] -> segs := { base = int_of_string base; file = Filename.concat dir name } :: !segs
            | [ "" ] | [] -> ()
            | _ -> raise (Bad_manifest line))
          rest;
        Some (!limit, !retired, List.rev !segs)
    | magic :: _ -> raise (Bad_manifest magic)
    | [] -> raise (Bad_manifest "empty manifest")
  end

let create_dir ?(segment_bytes = 1 lsl 20) dir =
  let limit = max 1 segment_bytes in
  Fault.protect "wal.open" (fun () ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let file = seg_path dir 0 in
      let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      write_manifest dir ~limit ~retired:0 [ { base = 0; file } ];
      let st = { dir; limit; sealed = []; cur_base = 0; cur_bytes = 0; retired = 0 } in
      of_sink { fd; path = file; buf = Buffer.create 4096; crashed = false; backend = Segmented st })

(* ---------- appending ---------- *)

let drain sink =
  if Buffer.length sink.buf > 0 then begin
    let staged = Buffer.contents sink.buf in
    match Fault.check site_torn with
    | Some _ ->
        (* A torn write: half the staged bytes reach the disk, then the
           machine dies.  The buffer is cleared first — the surviving
           process state is irrelevant, the harness discards it. *)
        Buffer.clear sink.buf;
        Fault.protect "wal.drain" (fun () ->
            write_all sink.fd (Bytes.unsafe_of_string staged) 0 (String.length staged / 2));
        raise (Fault.Crash "wal.torn_write")
    | None ->
        Buffer.clear sink.buf;
        Fault.protect "wal.drain" (fun () ->
            write_all sink.fd (Bytes.unsafe_of_string staged) 0 (String.length staged))
  end

let force t =
  (match t.sink with
  | None -> ()
  | Some sink ->
      Fault.io site_force (fun () ->
          drain sink;
          (* The fsync is what makes the bytes durable. *)
          Unix.fsync sink.fd);
      (* Crash here = power loss after the force hit the platter but
         before anyone was told: durable yet unacknowledged. *)
      Fault.hit_io site_after_force);
  t.forced_lsn <- t.start_lsn + t.len - 1;
  if Trace.on () then Trace.emit (Trace.Wal_force { lsn = t.forced_lsn });
  t.forces <- t.forces + 1

(* Seal the current segment and open its successor.  Ordering is the
   whole point: (1) the sealed segment is drained and fsynced — an
   interior segment is never reopened, so it must be complete on disk
   before anything supersedes it; (2) the successor file is created;
   (3) the manifest names the successor; only then (4) does the sink
   switch, letting records reach the new file.  A crash between (2)
   and (3) leaves an orphan file that [load_dir] sweeps; a crash
   between (3) and (4) leaves a named empty segment, which loads as
   zero records.  Either way no durable record is ever outside the
   manifest. *)
let rotate t sink st =
  drain sink;
  Fault.protect "wal.rotate" (fun () ->
      Unix.fsync sink.fd;
      Unix.close sink.fd);
  t.forced_lsn <- max t.forced_lsn (t.start_lsn + t.len - 1);
  st.sealed <- st.sealed @ [ { base = st.cur_base; file = sink.path } ];
  let base = t.start_lsn + t.len in
  let file = seg_path st.dir base in
  Fault.protect "wal.rotate" (fun () ->
      let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      write_manifest st.dir ~limit:st.limit ~retired:st.retired (st.sealed @ [ { base; file } ]);
      sink.fd <- fd);
  sink.path <- file;
  st.cur_base <- base;
  st.cur_bytes <- 0

let append ?(force_commit = true) t record =
  let framed =
    match t.sink with
    | None -> None
    | Some _ ->
        let body = Record.encode record in
        (* The size-aware hit lets a [Disk_full] budget refuse the
           whole frame up front: a refused append stages nothing, so
           the segment is never torn by running out of space. *)
        Fault.hit_io_bytes site_append (frame_header_size + String.length body);
        Some body
  in
  push_mem t record;
  let lsn = t.start_lsn + t.len - 1 in
  if Trace.on () then Trace.emit (Trace.Wal_append { lsn; kind = record_kind record });
  (match (t.sink, framed) with
  | Some sink, Some body ->
      let frame_bytes = frame_header_size + String.length body in
      buffer_framed sink.buf body;
      t.appended_bytes <- t.appended_bytes + frame_bytes;
      (match sink.backend with
      | Single -> if Buffer.length sink.buf >= drain_threshold then drain sink
      | Segmented st ->
          st.cur_bytes <- st.cur_bytes + frame_bytes;
          if st.cur_bytes >= st.limit then rotate t sink st
          else if Buffer.length sink.buf >= drain_threshold then drain sink)
  | _ -> ());
  (* The WAL rule: a commit record must be durable before the commit is
     acknowledged.  The engine's group-commit path opts out and forces
     once per batch instead. *)
  (match record with Record.Commit _ when force_commit -> force t | _ -> ());
  lsn

let length t = t.start_lsn + t.len
let start_lsn t = t.start_lsn

let get t lsn =
  if lsn < t.start_lsn || lsn >= t.start_lsn + t.len then invalid_arg "Log.get: bad LSN"
  else t.records.(lsn - t.start_lsn)

let forced_lsn t = t.forced_lsn
let force_count t = t.forces
let corrupt_dropped t = t.corrupt_dropped
let appended_bytes t = t.appended_bytes

let segment_count t =
  match t.sink with Some { backend = Segmented st; _ } -> List.length st.sealed + 1 | _ -> 1

let segments_retired t =
  match t.sink with Some { backend = Segmented st; _ } -> st.retired | _ -> 0

let iter ?from t f =
  let from = match from with None -> t.start_lsn | Some l -> max l t.start_lsn in
  for lsn = from to t.start_lsn + t.len - 1 do
    f lsn t.records.(lsn - t.start_lsn)
  done

let iter_rev ?until t f =
  let until = match until with None -> t.start_lsn | Some u -> max u t.start_lsn in
  for lsn = t.start_lsn + t.len - 1 downto until do
    f lsn t.records.(lsn - t.start_lsn)
  done

let fold ?from t ~init ~f =
  let acc = ref init in
  iter ?from t (fun lsn r -> acc := f !acc lsn r);
  !acc

let to_list t = List.init t.len (fun i -> t.records.(i))

let close t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if not sink.crashed then begin
        sink.crashed <- true;
        drain sink;
        Fault.protect "wal.close" (fun () -> Unix.close sink.fd)
      end

(* Simulated power loss: the staging buffer — everything appended since
   the last drain — evaporates, and the descriptor is dropped without a
   flush.  What the next load sees is exactly what reached the disk. *)
let crash t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if not sink.crashed then begin
        sink.crashed <- true;
        Buffer.clear sink.buf;
        (try Unix.close sink.fd with Unix.Unix_error _ -> ())
      end

(* ---------- loading ---------- *)

(* Frame-parse one file.  Stops cleanly at a torn tail (partial final
   record) and at the first CRC mismatch — a torn tail is the expected
   signature of a crash mid-write, while a checksum failure on a
   *complete* frame means bit rot or an interior torn write, so every
   complete record from there on is counted as dropped.  [p_clean]
   distinguishes "ended exactly on a frame boundary, no corruption"
   from both failure shapes — an *interior* segment that is not clean
   poisons everything after it. *)
type parsed = {
  p_records : Record.t list; (* oldest first *)
  p_valid_end : int; (* byte offset just past the last good record *)
  p_dropped : int; (* complete records discarded after corruption *)
  p_clean : bool;
}

let max_sane_record = 1 lsl 26

let parse_file path =
  let ic = Fault.protect "wal.open" (fun () -> open_in_bin path) in
  let records = ref [] in
  let valid_end = ref 0 in
  let dropped = ref 0 in
  let clean = ref true in
  let frame = Bytes.create frame_header_size in
  (* After a corrupt record, keep walking the (untrusted) framing just
     to count how many complete records are being discarded. *)
  let rec count_rest () =
    match really_input ic frame 0 frame_header_size with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        if len < 0 || len > max_sane_record then ()
        else begin
          let body = Bytes.create len in
          match really_input ic body 0 len with
          | () ->
              incr dropped;
              count_rest ()
          | exception End_of_file -> ()
        end
    | exception End_of_file -> ()
  in
  let rec loop () =
    match really_input ic frame 0 frame_header_size with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        let crc = Int32.to_int (Bytes.get_int32_le frame 4) land 0xFFFFFFFF in
        if len < 0 || len > max_sane_record then begin
          (* Garbage length on a complete header: corruption. *)
          clean := false;
          incr dropped
        end
        else begin
          let body = Bytes.create len in
          match really_input ic body 0 len with
          | () ->
              let body = Bytes.unsafe_to_string body in
              if Asset_util.Crc32.string body land 0xFFFFFFFF <> crc then begin
                clean := false;
                incr dropped;
                count_rest ()
              end
              else begin
                match Record.decode body with
                | r ->
                    records := r :: !records;
                    valid_end := pos_in ic;
                    loop ()
                | exception Record.Corrupt _ ->
                    clean := false;
                    incr dropped;
                    count_rest ()
              end
          | exception End_of_file -> (* torn tail *) clean := false
        end
    | exception End_of_file -> ()
  in
  Fault.protect "wal.load" (fun () ->
      loop ();
      close_in ic);
  { p_records = List.rev !records; p_valid_end = !valid_end; p_dropped = !dropped; p_clean = !clean }

(* Count the complete frames of a file whose contents are already
   condemned (a segment after a corruption point). *)
let count_file path =
  match parse_file path with
  | { p_records; p_dropped; _ } -> List.length p_records + p_dropped
  | exception Fault.Storage_error _ -> 0

let reopen_appendable path valid_end =
  Fault.protect "wal.open" (fun () ->
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      Unix.ftruncate fd valid_end;
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      fd)

let load path =
  let p = parse_file path in
  let fd = reopen_appendable path p.p_valid_end in
  let t = of_sink { fd; path; buf = Buffer.create 4096; crashed = false; backend = Single } in
  (* Replay into memory only: the records are already in the file. *)
  List.iter (push_mem t) p.p_records;
  t.forced_lsn <- t.len - 1;
  t.corrupt_dropped <- p.p_dropped;
  t.appended_bytes <- p.p_valid_end;
  t

(* Load a segment directory for recovery.  The manifest names the live
   segments oldest first; they are parsed in order.  The first segment
   that fails to parse clean ends the trusted history: on the *last*
   segment a torn tail is the normal crash signature (silently
   truncated), anywhere else it — like any CRC failure — condemns
   every record after the cut, all counted in [corrupt_dropped].  The
   cut segment is truncated to its last good record and reopened as
   the appendable current segment; segments past the cut and any
   seg-*.wal file the manifest does not name (retirement or rotation
   leftovers from a crash) are deleted, completing whatever protocol
   step the crash interrupted. *)
let load_dir dir =
  match read_manifest dir with
  | None ->
      (* Nothing durable ever made it (crash before the first manifest
         write): an empty log. *)
      create_dir dir
  | Some (limit, retired, segs) ->
      let segs = List.sort (fun a b -> compare a.base b.base) segs in
      let start = match segs with [] -> 0 | s :: _ -> s.base in
      let records = ref [] in
      (* (seg, valid_end) of segments kept live, newest first. *)
      let live = ref [] in
      let dropped = ref 0 in
      let cut = ref false in
      let n_segs = List.length segs in
      List.iter
        (fun s ->
          if !cut then dropped := !dropped + count_file s.file
          else if not (Sys.file_exists s.file) then
            (* Rotation crashed between manifest write and the first
               drain into the new file: an empty current segment. *)
            cut := true
          else begin
            let p = parse_file s.file in
            records := List.rev_append p.p_records !records;
            dropped := !dropped + p.p_dropped;
            live := (s, p.p_valid_end) :: !live;
            (* Any unclean end cuts the trusted history here: a torn
               tail on the final segment is the normal crash signature,
               interior damage condemns the whole suffix (later
               segments' records land in [dropped] above). *)
            if not p.p_clean then cut := true
          end)
        segs;
      let live = List.rev !live in
      let live, cur, cur_end =
        match List.rev live with
        | [] ->
            (* Every named segment was missing: restart the directory
               at the manifest's base LSN. *)
            let file = seg_path dir start in
            let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
            Unix.close fd;
            ([], { base = start; file }, 0)
        | (s, e) :: rest -> (List.rev_map fst rest, s, e)
      in
      (* Re-point the manifest at the surviving segments if the cut
         dropped any, then sweep files it no longer (or never) named:
         this completes an interrupted retirement — idempotent because
         unlinking an already-missing file is a no-op. *)
      let named = List.map (fun s -> Filename.basename s.file) (live @ [ cur ]) in
      if List.length named <> n_segs then
        Fault.protect "wal.load" (fun () -> write_manifest dir ~limit ~retired (live @ [ cur ]));
      Array.iter
        (fun name ->
          if is_seg_name name && not (List.mem name named) then
            try Unix.unlink (Filename.concat dir name) with Unix.Unix_error _ -> ())
        (Sys.readdir dir);
      (try fsync_dir dir with Unix.Unix_error _ -> ());
      let fd = reopen_appendable cur.file cur_end in
      let st =
        { dir; limit; sealed = live; cur_base = cur.base; cur_bytes = cur_end; retired }
      in
      let t = of_sink { fd; path = cur.file; buf = Buffer.create 4096; crashed = false; backend = Segmented st } in
      t.start_lsn <- start;
      List.iter (push_mem t) (List.rev !records);
      t.forced_lsn <- t.start_lsn + t.len - 1;
      t.corrupt_dropped <- !dropped;
      t.appended_bytes <- List.fold_left (fun acc s -> acc + (try (Unix.stat s.file).st_size with Unix.Unix_error _ -> 0)) cur_end live;
      t

(* ---------- retirement ---------- *)

(* Delete sealed segments wholly below the checkpoint watermark.  A
   sealed segment covers [s.base, successor.base), so it is retirable
   iff its successor's base is at or below [below]; the current
   segment never retires.  Protocol order is what makes a crash at any
   point safe: (1) the manifest stops naming the segments — from here
   a re-load never reads them; (2) the files are unlinked; (3) the
   directory fsync makes the unlinks durable.  Crash after (1): the
   files are unreferenced, [load_dir] sweeps them.  Crash during (2)
   or before (3): some unlinks may or may not have reached disk —
   re-running sweeps the survivors, and unlinking a missing file is
   ignored.  Idempotent at every step. *)
let retire t ~below =
  match t.sink with
  | Some ({ backend = Segmented st; _ } as sink) when not sink.crashed && st.sealed <> [] ->
      let next_bases =
        List.map (fun s -> s.base) (List.tl st.sealed) @ [ st.cur_base ]
      in
      let paired = List.combine st.sealed next_bases in
      let retirable, keep = List.partition (fun (_, next) -> next <= below) paired in
      let retirable = List.map fst retirable and keep = List.map fst keep in
      if retirable = [] then 0
      else begin
        Fault.hit_io site_retire_manifest;
        st.sealed <- keep;
        st.retired <- st.retired + List.length retirable;
        Fault.protect "wal.retire" (fun () ->
            write_manifest st.dir ~limit:st.limit ~retired:st.retired
              (keep @ [ { base = st.cur_base; file = sink.path } ]));
        Fault.hit_io site_retire_unlink;
        Fault.protect "wal.retire" (fun () ->
            List.iter
              (fun s -> try Unix.unlink s.file with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
              retirable);
        Fault.hit_io site_retire_sync_dir;
        Fault.protect "wal.retire" (fun () -> fsync_dir st.dir);
        if Trace.on () then Trace.emit (Trace.Wal_retire { below; segments = List.length retirable });
        List.length retirable
      end
  | _ -> 0

let pp ppf t =
  iter t (fun lsn r -> Format.fprintf ppf "%4d %a@." lsn Record.pp r)
