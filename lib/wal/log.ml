(* The log: an append-only sequence of records, addressed by LSN.

   Records always live in memory (a growable array) so that the engine's
   abort path can walk them without I/O; when the log is opened with a
   backing file, every append is also encoded into a staging buffer in
   a framed binary format (u32 length + u32 CRC-32 + body), and [force]
   drains the buffer to the raw file descriptor and fsyncs it — only
   then is anything durable.  Commit records are forced automatically
   unless the caller opts out ([~force_commit:false]), which is how the
   engine batches K commits into one force (group commit).

   The sink is a raw [Unix.file_descr], not an [out_channel]: the fault
   harness's simulated power loss ([crash]) must discard exactly the
   staged-but-undrained bytes, which requires the userspace buffering
   to be ours.

   Failpoints (see [Asset_fault.Fault]): "wal.append" at every staged
   append, "wal.force" before the drain+fsync, "wal.after_force" once
   the bytes are durable but before the in-memory forced-LSN advances,
   and "wal.torn_write" in the drain itself — armed with any policy it
   writes *half* the staged bytes and then crashes, modelling a torn
   multi-sector write. *)

module Fault = Asset_fault.Fault
module Trace = Asset_obs.Trace

let record_kind = function
  | Record.Begin _ -> "begin"
  | Record.Update _ -> "update"
  | Record.Commit _ -> "commit"
  | Record.Abort _ -> "abort"
  | Record.Delegate _ -> "delegate"
  | Record.Increment _ -> "increment"
  | Record.Enqueue _ -> "enqueue"
  | Record.Clr _ -> "clr"
  | Record.Checkpoint -> "checkpoint"

let site_append = Fault.register "wal.append"
let site_force = Fault.register "wal.force"
let site_after_force = Fault.register "wal.after_force"
let site_torn = Fault.register "wal.torn_write"

type sink = { fd : Unix.file_descr; path : string; buf : Buffer.t; mutable crashed : bool }

type t = {
  mutable records : Record.t array;
  mutable len : int;
  sink : sink option;
  mutable forced_lsn : int; (* highest LSN known durable *)
  mutable forces : int; (* how many times [force] ran *)
  mutable corrupt_dropped : int; (* records dropped by [load] on CRC mismatch *)
}

(* Drain the staging buffer past this size even without a force, to
   bound memory; durability still waits for the fsync in [force]. *)
let drain_threshold = 1 lsl 20

let in_memory () =
  {
    records = Array.make 64 Record.Checkpoint;
    len = 0;
    sink = None;
    forced_lsn = -1;
    forces = 0;
    corrupt_dropped = 0;
  }

let of_sink sink =
  {
    records = Array.make 64 Record.Checkpoint;
    len = 0;
    sink = Some sink;
    forced_lsn = -1;
    forces = 0;
    corrupt_dropped = 0;
  }

let create_file path =
  let fd =
    Fault.protect "wal.open" (fun () ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
  in
  of_sink { fd; path; buf = Buffer.create 4096; crashed = false }

let grow t =
  let bigger = Array.make (2 * Array.length t.records) Record.Checkpoint in
  Array.blit t.records 0 bigger 0 t.len;
  t.records <- bigger

let frame_header_size = 8

let buffer_framed buf body =
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_int32_le buf (Int32.of_int (Asset_util.Crc32.string body));
  Buffer.add_string buf body

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let drain sink =
  if Buffer.length sink.buf > 0 then begin
    let staged = Buffer.contents sink.buf in
    match Fault.check site_torn with
    | Some _ ->
        (* A torn write: half the staged bytes reach the disk, then the
           machine dies.  The buffer is cleared first — the surviving
           process state is irrelevant, the harness discards it. *)
        Buffer.clear sink.buf;
        Fault.protect "wal.drain" (fun () ->
            write_all sink.fd (Bytes.unsafe_of_string staged) 0 (String.length staged / 2));
        raise (Fault.Crash "wal.torn_write")
    | None ->
        Buffer.clear sink.buf;
        Fault.protect "wal.drain" (fun () ->
            write_all sink.fd (Bytes.unsafe_of_string staged) 0 (String.length staged))
  end

let force t =
  (match t.sink with
  | None -> ()
  | Some sink ->
      Fault.io site_force (fun () ->
          drain sink;
          (* The fsync is what makes the bytes durable. *)
          Unix.fsync sink.fd);
      (* Crash here = power loss after the force hit the platter but
         before anyone was told: durable yet unacknowledged. *)
      Fault.hit_io site_after_force);
  t.forced_lsn <- t.len - 1;
  if Trace.on () then Trace.emit (Trace.Wal_force { lsn = t.forced_lsn });
  t.forces <- t.forces + 1

let append ?(force_commit = true) t record =
  (match t.sink with None -> () | Some _ -> Fault.hit_io site_append);
  if t.len = Array.length t.records then grow t;
  t.records.(t.len) <- record;
  let lsn = t.len in
  t.len <- t.len + 1;
  if Trace.on () then Trace.emit (Trace.Wal_append { lsn; kind = record_kind record });
  (match t.sink with
  | None -> ()
  | Some sink ->
      buffer_framed sink.buf (Record.encode record);
      if Buffer.length sink.buf >= drain_threshold then drain sink);
  (* The WAL rule: a commit record must be durable before the commit is
     acknowledged.  The engine's group-commit path opts out and forces
     once per batch instead. *)
  (match record with Record.Commit _ when force_commit -> force t | _ -> ());
  lsn

let length t = t.len
let get t lsn = if lsn < 0 || lsn >= t.len then invalid_arg "Log.get: bad LSN" else t.records.(lsn)
let forced_lsn t = t.forced_lsn
let force_count t = t.forces
let corrupt_dropped t = t.corrupt_dropped

let iter ?(from = 0) t f =
  for lsn = from to t.len - 1 do
    f lsn t.records.(lsn)
  done

let iter_rev ?until t f =
  let until = match until with None -> 0 | Some u -> u in
  for lsn = t.len - 1 downto until do
    f lsn t.records.(lsn)
  done

let fold ?(from = 0) t ~init ~f =
  let acc = ref init in
  iter ~from t (fun lsn r -> acc := f !acc lsn r);
  !acc

let to_list t = List.init t.len (fun i -> t.records.(i))

let close t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if not sink.crashed then begin
        sink.crashed <- true;
        drain sink;
        Fault.protect "wal.close" (fun () -> Unix.close sink.fd)
      end

(* Simulated power loss: the staging buffer — everything appended since
   the last drain — evaporates, and the descriptor is dropped without a
   flush.  What the next [load] sees is exactly what reached the file. *)
let crash t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if not sink.crashed then begin
        sink.crashed <- true;
        Buffer.clear sink.buf;
        (try Unix.close sink.fd with Unix.Unix_error _ -> ())
      end

(* Load a file-backed log for recovery.  Stops cleanly at a torn tail
   (partial final record) and at the first CRC mismatch — a torn tail
   is the expected signature of a crash mid-write and is silently
   truncated, while a checksum failure on a *complete* frame means bit
   rot or an interior torn write, so the count of records dropped from
   there on is surfaced ([corrupt_dropped], reported by recovery).
   Either way the file is truncated back to the last good record and
   reopened as an appendable sink, so a recovered log stays durable:
   post-recovery appends land in the same file (never after garbage)
   and [force] keeps fsyncing it. *)
let max_sane_record = 1 lsl 26

let load path =
  let ic = Fault.protect "wal.open" (fun () -> open_in_bin path) in
  let records = ref [] in
  let valid_end = ref 0 in
  let dropped = ref 0 in
  let frame = Bytes.create frame_header_size in
  (* After a corrupt record, keep walking the (untrusted) framing just
     to count how many complete records are being discarded. *)
  let rec count_rest () =
    match really_input ic frame 0 frame_header_size with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        if len < 0 || len > max_sane_record then ()
        else begin
          let body = Bytes.create len in
          match really_input ic body 0 len with
          | () ->
              incr dropped;
              count_rest ()
          | exception End_of_file -> ()
        end
    | exception End_of_file -> ()
  in
  let rec loop () =
    match really_input ic frame 0 frame_header_size with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        let crc = Int32.to_int (Bytes.get_int32_le frame 4) land 0xFFFFFFFF in
        if len < 0 || len > max_sane_record then begin
          (* Garbage length on a complete header: corruption. *)
          incr dropped
        end
        else begin
          let body = Bytes.create len in
          match really_input ic body 0 len with
          | () ->
              let body = Bytes.unsafe_to_string body in
              if Asset_util.Crc32.string body land 0xFFFFFFFF <> crc then begin
                incr dropped;
                count_rest ()
              end
              else begin
                match Record.decode body with
                | r ->
                    records := r :: !records;
                    valid_end := pos_in ic;
                    loop ()
                | exception Record.Corrupt _ ->
                    incr dropped;
                    count_rest ()
              end
          | exception End_of_file -> (* torn tail: not corruption *) ()
        end
    | exception End_of_file -> ()
  in
  Fault.protect "wal.load" (fun () ->
      loop ();
      close_in ic);
  let fd =
    Fault.protect "wal.open" (fun () ->
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
        Unix.ftruncate fd !valid_end;
        ignore (Unix.lseek fd 0 Unix.SEEK_END);
        fd)
  in
  let t = of_sink { fd; path; buf = Buffer.create 4096; crashed = false } in
  (* Replay into memory only: the records are already in the file. *)
  List.iter
    (fun r ->
      if t.len = Array.length t.records then grow t;
      t.records.(t.len) <- r;
      t.len <- t.len + 1)
    (List.rev !records);
  t.forced_lsn <- t.len - 1;
  t.corrupt_dropped <- !dropped;
  t

let pp ppf t =
  iter t (fun lsn r -> Format.fprintf ppf "%4d %a@." lsn Record.pp r)
