(* The log: an append-only sequence of records, addressed by LSN.

   Records always live in memory (a growable array) so that the engine's
   abort path can walk them without I/O; when the log is opened with a
   backing file, every append is also encoded into a staging buffer in
   a framed binary format (u32 length + body), and [force] drains the
   buffer to the file, flushes the channel and fsyncs the descriptor —
   only then is anything durable.  Commit records are forced
   automatically unless the caller opts out ([~force_commit:false]),
   which is how the engine batches K commits into one force (group
   commit). *)

type sink = { channel : out_channel; path : string; buf : Buffer.t }

type t = {
  mutable records : Record.t array;
  mutable len : int;
  sink : sink option;
  mutable forced_lsn : int; (* highest LSN known durable *)
  mutable forces : int; (* how many times [force] ran *)
}

(* Drain the staging buffer past this size even without a force, to
   bound memory; durability still waits for the fsync in [force]. *)
let drain_threshold = 1 lsl 20

let in_memory () =
  { records = Array.make 64 Record.Checkpoint; len = 0; sink = None; forced_lsn = -1; forces = 0 }

let of_sink sink =
  {
    records = Array.make 64 Record.Checkpoint;
    len = 0;
    sink = Some sink;
    forced_lsn = -1;
    forces = 0;
  }

let create_file path =
  of_sink { channel = open_out_bin path; path; buf = Buffer.create 4096 }

let grow t =
  let bigger = Array.make (2 * Array.length t.records) Record.Checkpoint in
  Array.blit t.records 0 bigger 0 t.len;
  t.records <- bigger

let buffer_framed buf body =
  let len = String.length body in
  let frame = Bytes.create 4 in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  Buffer.add_bytes buf frame;
  Buffer.add_string buf body

let drain sink =
  if Buffer.length sink.buf > 0 then begin
    Buffer.output_buffer sink.channel sink.buf;
    Buffer.clear sink.buf
  end

let force t =
  (match t.sink with
  | None -> ()
  | Some sink ->
      drain sink;
      (* [flush] only empties the channel's userspace buffer; the fsync
         is what makes the bytes durable. *)
      flush sink.channel;
      Unix.fsync (Unix.descr_of_out_channel sink.channel));
  t.forced_lsn <- t.len - 1;
  t.forces <- t.forces + 1

let append ?(force_commit = true) t record =
  if t.len = Array.length t.records then grow t;
  t.records.(t.len) <- record;
  let lsn = t.len in
  t.len <- t.len + 1;
  (match t.sink with
  | None -> ()
  | Some sink ->
      buffer_framed sink.buf (Record.encode record);
      if Buffer.length sink.buf >= drain_threshold then drain sink);
  (* The WAL rule: a commit record must be durable before the commit is
     acknowledged.  The engine's group-commit path opts out and forces
     once per batch instead. *)
  (match record with Record.Commit _ when force_commit -> force t | _ -> ());
  lsn

let length t = t.len
let get t lsn = if lsn < 0 || lsn >= t.len then invalid_arg "Log.get: bad LSN" else t.records.(lsn)
let forced_lsn t = t.forced_lsn
let force_count t = t.forces

let iter ?(from = 0) t f =
  for lsn = from to t.len - 1 do
    f lsn t.records.(lsn)
  done

let iter_rev ?until t f =
  let until = match until with None -> 0 | Some u -> u in
  for lsn = t.len - 1 downto until do
    f lsn t.records.(lsn)
  done

let fold ?(from = 0) t ~init ~f =
  let acc = ref init in
  iter ~from t (fun lsn r -> acc := f !acc lsn r);
  !acc

let to_list t = List.init t.len (fun i -> t.records.(i))

let close t =
  match t.sink with
  | None -> ()
  | Some sink ->
      drain sink;
      close_out sink.channel

(* Load a file-backed log for recovery.  Stops cleanly at a torn tail
   (partial final record), mirroring what a real recovery scan does.
   The torn bytes are truncated away and the file is reopened as an
   appendable sink, so that a recovered log stays durable:
   post-recovery appends land in the same file (never after garbage)
   and [force] keeps fsyncing it. *)
let load path =
  let ic = open_in_bin path in
  let records = ref [] in
  let valid_end = ref 0 in
  let frame = Bytes.create 4 in
  let rec loop () =
    match really_input ic frame 0 4 with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        let body = Bytes.create len in
        (match really_input ic body 0 len with
        | () ->
            records := Record.decode (Bytes.unsafe_to_string body) :: !records;
            valid_end := pos_in ic;
            loop ()
        | exception End_of_file -> ())
    | exception End_of_file -> ()
  in
  loop ();
  close_in ic;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd !valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let channel = Unix.out_channel_of_descr fd in
  let t = of_sink { channel; path; buf = Buffer.create 4096 } in
  (* Replay into memory only: the records are already in the file. *)
  List.iter
    (fun r ->
      if t.len = Array.length t.records then grow t;
      t.records.(t.len) <- r;
      t.len <- t.len + 1)
    (List.rev !records);
  t.forced_lsn <- t.len - 1;
  t

let pp ppf t =
  iter t (fun lsn r -> Format.fprintf ppf "%4d %a@." lsn Record.pp r)
