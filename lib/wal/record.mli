(** Write-ahead-log records.

    The section-4.2 write algorithm logs before and after images of
    every update; commit and abort place their own records.  Three
    ASSET-specific records extend the classical set:

    - [Commit] carries a {e list} of tids, because a resolved
      group-commit dependency commits a whole set of transactions
      atomically;
    - [Delegate] records responsibility transfers so recovery can
      attribute each update to the transaction {e finally} responsible
      for it;
    - [Increment] records commuting updates whose undo is logical
      (subtract the delta) rather than physical. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

(** {2 Fuzzy-checkpoint capture}

    [Begin_ckpt] snapshots the active transaction table without
    quiescing: each in-flight transaction's undo information, with real
    log LSNs so undo ordering across captured and tail records stays
    globally correct.  [End_ckpt] anchors completeness — analysis only
    trusts a [Begin_ckpt] whose matching [End_ckpt] reached disk. *)

type ckpt_undo =
  | Ckpt_physical of Value.t option
      (** Install the before image; [None] = delete the object. *)
  | Ckpt_delta of int  (** Logical undo: subtract the delta. *)
  | Ckpt_dequeue of string  (** Logical undo: remove the enqueued item. *)

type ckpt_update = { cu_lsn : int; cu_oid : Oid.t; cu_undo : ckpt_undo; cu_after : Value.t }
type att_entry = { att_tid : Tid.t; att_updates : ckpt_update list }

type t =
  | Begin of Tid.t
  | Update of { tid : Tid.t; oid : Oid.t; before : Value.t option; after : Value.t }
      (** [before = None] means the object was created by this write. *)
  | Commit of Tid.t list
  | Abort of Tid.t
  | Delegate of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list option }
      (** [oids = None] delegates everything [from_] is responsible
          for. *)
  | Increment of { tid : Tid.t; oid : Oid.t; delta : int; after : Value.t }
      (** A commuting increment: [after] supports physical
          repeat-history redo, [delta] supports logical undo. *)
  | Enqueue of { tid : Tid.t; oid : Oid.t; item : string; after : Value.t }
      (** A commuting queue append: [after] supports physical
          repeat-history redo, [item] supports logical undo (remove
          the item rather than install a before image). *)
  | Clr of { tid : Tid.t; oid : Oid.t; image : Value.t option; undo_lsn : int }
      (** Compensation record written by the abort algorithm for each
          installed undo image ([None] = deletion).  Redo-only for the
          image; [undo_lsn] back-links to the LSN of the update record
          it compensates, so recovery can tell how far a crashed abort
          got and never re-undoes an already-compensated update — the
          CLR-style abort-progress record that closes the
          double-undo window for logical (delta/dequeue) undos. *)
  | Checkpoint
  | Begin_ckpt of { active : att_entry list; dirty : Oid.t list }
      (** Fuzzy-checkpoint open: ATT snapshot plus the distinct OIDs
          those transactions have touched.  The store is flushed
          between [Begin_ckpt] and [End_ckpt]. *)
  | End_ckpt of { begin_lsn : int }
      (** Fuzzy-checkpoint close: backlink to the matching
          [Begin_ckpt], recovery's redo watermark. *)

val pp : Format.formatter -> t -> unit

(** {2 Binary codec}

    Framing (record length) is the log's concern; these functions
    handle the record body. *)

exception Corrupt of string

val encode : t -> string
val decode : string -> t
(** Raises {!Corrupt} on malformed input. *)
