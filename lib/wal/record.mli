(** Write-ahead-log records.

    The section-4.2 write algorithm logs before and after images of
    every update; commit and abort place their own records.  Three
    ASSET-specific records extend the classical set:

    - [Commit] carries a {e list} of tids, because a resolved
      group-commit dependency commits a whole set of transactions
      atomically;
    - [Delegate] records responsibility transfers so recovery can
      attribute each update to the transaction {e finally} responsible
      for it;
    - [Increment] records commuting updates whose undo is logical
      (subtract the delta) rather than physical. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

type t =
  | Begin of Tid.t
  | Update of { tid : Tid.t; oid : Oid.t; before : Value.t option; after : Value.t }
      (** [before = None] means the object was created by this write. *)
  | Commit of Tid.t list
  | Abort of Tid.t
  | Delegate of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list option }
      (** [oids = None] delegates everything [from_] is responsible
          for. *)
  | Increment of { tid : Tid.t; oid : Oid.t; delta : int; after : Value.t }
      (** A commuting increment: [after] supports physical
          repeat-history redo, [delta] supports logical undo. *)
  | Enqueue of { tid : Tid.t; oid : Oid.t; item : string; after : Value.t }
      (** A commuting queue append: [after] supports physical
          repeat-history redo, [item] supports logical undo (remove
          the item rather than install a before image). *)
  | Clr of { tid : Tid.t; oid : Oid.t; image : Value.t option }
      (** Compensation record written by the abort algorithm for each
          installed undo image ([None] = deletion).  Redo-only. *)
  | Checkpoint

val pp : Format.formatter -> t -> unit

(** {2 Binary codec}

    Framing (record length) is the log's concern; these functions
    handle the record body. *)

exception Corrupt of string

val encode : t -> string
val decode : string -> t
(** Raises {!Corrupt} on malformed input. *)
