(** The log: an append-only record sequence addressed by LSN.

    Records always stay in memory (the engine's abort path walks them
    without I/O); with a backing sink every append is staged into a
    buffer in a framed binary format (length + CRC-32 + body) and
    {!force} drains and {e fsyncs} it — nothing is durable before the
    fsync.  Commit records are forced automatically (the WAL rule)
    unless the caller opts out to batch several commits into one force
    (group commit).

    Two disk layouts share the framing: a single file
    ({!create_file}/{!load}), and a {e segment directory}
    ({!create_dir}/{!load_dir}) of fixed-size segment files plus an
    atomic [MANIFEST] naming the live ones.  Segments rotate when
    full (sealed segments are fsynced in full and never reopened) and
    {!retire} deletes sealed segments wholly below a checkpoint
    watermark — manifest update before unlink, idempotent under
    crashes at any step.  LSNs are global and never reused: after
    retirement a loaded log starts at {!start_lsn} > 0.

    File I/O is instrumented with failpoints ("wal.append" — byte-
    sized, so a [Disk_full] budget refuses whole frames — "wal.force",
    "wal.after_force", "wal.torn_write", "wal.retire.manifest",
    "wal.retire.unlink", "wal.retire.sync_dir"; see
    {!Asset_fault.Fault}), and raw I/O failures surface as
    [Fault.Storage_error]. *)

type t

val in_memory : unit -> t
val create_file : string -> t

val create_dir : ?segment_bytes:int -> string -> t
(** Open a fresh segment-directory log under [dir] (created if
    missing), rotating to a new segment file once the current one
    holds [segment_bytes] (default 1 MiB) of framed records.  The
    rotation threshold is recorded in the manifest, so {!load_dir}
    restores it. *)

val load : string -> t
(** Read a file-backed log back for recovery, stopping cleanly at a
    torn tail (partial final record) and at the first CRC-32 mismatch.
    The torn or corrupt bytes are truncated and the file is reopened
    as an appendable sink, so the recovered log accepts further appends
    and stays durable.  {!corrupt_dropped} counts the complete records
    dropped by checksum failure (a torn tail is not corruption). *)

val load_dir : string -> t
(** {!load} for a segment directory: parses the manifest's segments in
    order, truncates at the first unclean point (a torn tail on the
    final segment is the normal crash signature; interior damage
    condemns every record after it, counted in {!corrupt_dropped}),
    deletes segment files the manifest does not name — completing any
    retirement or rotation a crash interrupted — and reopens the last
    live segment appendable.  Idempotent: loading twice yields the
    same log. *)

val corrupt_dropped : t -> int
(** How many complete records {!load}/{!load_dir} dropped on CRC
    mismatch or interior damage; 0 for logs not produced by a load. *)

val crash : t -> unit
(** Simulated power loss: discard the staging buffer (everything
    appended since the last drain) and drop the descriptor without
    flushing.  The disk is left with exactly the bytes that reached
    it; reopen with {!load}/{!load_dir}. *)

val append : ?force_commit:bool -> t -> Record.t -> int
(** Append and return the record's LSN.  Appending a [Commit] record
    forces the log unless [~force_commit:false] — the engine's
    group-commit path batches commits and calls {!force} once per
    batch instead.  On a segment-directory log this may seal the
    current segment and rotate. *)

val force : t -> unit
(** Make everything appended so far durable: drain the staging buffer
    and fsync the file descriptor. *)

val force_count : t -> int
(** How many times {!force} ran — the group-commit coalescing metric
    (K commits sharing one force show K appends but one force). *)

val forced_lsn : t -> int
(** Highest LSN known durable; -1 when nothing is. *)

val retire : t -> below:int -> int
(** Delete sealed segments every record of which has LSN < [below]
    (the checkpoint redo watermark), returning how many were deleted.
    Crash-safe and idempotent: the manifest stops naming a segment
    before its file is unlinked, and {!load_dir} sweeps unreferenced
    files.  0 for single-file and in-memory logs.  Disk-only: the
    in-memory record suffix is untouched, so live transactions' update
    LSNs still resolve through {!get}. *)

val length : t -> int
(** The next LSN to be assigned ([start_lsn + records held]). *)

val start_lsn : t -> int
(** First LSN present in this log: 0 unless segments below it were
    retired before the load. *)

val appended_bytes : t -> int
(** Total framed bytes appended over the log's lifetime (the engine's
    checkpoint trigger meters this); for a loaded log, the bytes found
    on disk.  0 for in-memory logs. *)

val segment_count : t -> int
(** Live segment files, including the one being written (1 for
    single-file and in-memory logs). *)

val segments_retired : t -> int
(** Segments deleted by {!retire} over the directory's lifetime
    (persisted in the manifest across loads). *)

val get : t -> int -> Record.t
(** Raises [Invalid_argument] on an LSN outside
    [[start_lsn, length)]. *)

val iter : ?from:int -> t -> (int -> Record.t -> unit) -> unit
val iter_rev : ?until:int -> t -> (int -> Record.t -> unit) -> unit
val fold : ?from:int -> t -> init:'a -> f:('a -> int -> Record.t -> 'a) -> 'a

val to_list : t -> Record.t list
(** The in-memory records, oldest first (from {!start_lsn}). *)

val close : t -> unit
val pp : Format.formatter -> t -> unit
