(** The log: an append-only record sequence addressed by LSN.

    Records always stay in memory (the engine's abort path walks them
    without I/O); with a backing file every append is staged into a
    buffer in a framed binary format (length + CRC-32 + body) and
    {!force} drains and {e fsyncs} it — nothing is durable before the
    fsync.  Commit records are forced automatically (the WAL rule)
    unless the caller opts out to batch several commits into one force
    (group commit).

    File I/O is instrumented with failpoints ("wal.append",
    "wal.force", "wal.after_force", "wal.torn_write" — see
    {!Asset_fault.Fault}), and raw I/O failures surface as
    [Fault.Storage_error]. *)

type t

val in_memory : unit -> t
val create_file : string -> t

val load : string -> t
(** Read a file-backed log back for recovery, stopping cleanly at a
    torn tail (partial final record) and at the first CRC-32 mismatch.
    The torn or corrupt bytes are truncated and the file is reopened
    as an appendable sink, so the recovered log accepts further appends
    and stays durable.  {!corrupt_dropped} counts the complete records
    dropped by checksum failure (a torn tail is not corruption). *)

val corrupt_dropped : t -> int
(** How many complete records {!load} dropped on CRC mismatch; 0 for
    logs not produced by {!load}. *)

val crash : t -> unit
(** Simulated power loss: discard the staging buffer (everything
    appended since the last drain) and drop the descriptor without
    flushing.  The file is left with exactly the bytes that reached it;
    reopen with {!load}. *)

val append : ?force_commit:bool -> t -> Record.t -> int
(** Append and return the record's LSN.  Appending a [Commit] record
    forces the log unless [~force_commit:false] — the engine's
    group-commit path batches commits and calls {!force} once per
    batch instead. *)

val force : t -> unit
(** Make everything appended so far durable: drain the staging buffer,
    flush the channel and fsync the file descriptor. *)

val force_count : t -> int
(** How many times {!force} ran — the group-commit coalescing metric
    (K commits sharing one force show K appends but one force). *)

val forced_lsn : t -> int
(** Highest LSN known durable; -1 when nothing is. *)

val length : t -> int

val get : t -> int -> Record.t
(** Raises [Invalid_argument] on an out-of-range LSN. *)

val iter : ?from:int -> t -> (int -> Record.t -> unit) -> unit
val iter_rev : ?until:int -> t -> (int -> Record.t -> unit) -> unit
val fold : ?from:int -> t -> init:'a -> f:('a -> int -> Record.t -> 'a) -> 'a
val to_list : t -> Record.t list
val close : t -> unit
val pp : Format.formatter -> t -> unit
