(* Crash recovery from the log.

   Physical before/after-image logging admits a simple, idempotent
   "repeat history, then undo losers" scheme:

   analysis —  walk the log forward from the last completed checkpoint,
               collecting every update together with the transaction
               *finally responsible* for it.  Delegation records
               re-attribute earlier updates: an update performed by t_i
               and then delegated to t_j belongs to t_j ("it will be as
               if t_j, not t_i, has performed the operations", section
               2.2).  Winners are the transactions named in commit
               records (a group-commit record names the whole group).

   redo     —  reinstall every after image *and every CLR image* in log
               order, regardless of outcome, repeating history so the
               cache state matches the log tail whatever subset of
               writes reached the disk.  With [domains] > 1 the redo
               set is partitioned by OID hash (the same
               [Oid.partition] the sharded engine routes by) and
               replayed on parallel OCaml domains — sound because redo
               actions are whole-value installs, so only the last
               action per OID matters and per-OID order is preserved
               inside one partition; a merge barrier joins every
               domain before undo starts.

   undo     —  walk the loser updates in reverse LSN order installing
               before images (a missing before image means the object
               was created by the loser and is deleted).  A loser whose
               Abort record is in the log is *not* re-undone: the abort
               algorithm already logged a CLR for each installed before
               image, and blindly undoing it again could clobber a
               later winner's committed write to the same object.
               Likewise for a *crashed* abort: each CLR back-links the
               update it compensated, so the persisted prefix of an
               unresolved loser's undo is never repeated — essential
               for logical (delta/dequeue) undos, which are not
               idempotent.

   Two checkpoint flavours bound the scan:

   - a *quiescent* Checkpoint record (store flushed, no active
     transactions) — everything before it is irrelevant;

   - a *fuzzy* Begin_ckpt/End_ckpt pair taken without stopping the
     world.  Begin_ckpt carries the active-transaction table: for each
     in-flight transaction the undo information of every update it is
     responsible for, at its real LSN.  The store is flushed between
     the pair, so an End_ckpt on disk guarantees every update logged
     before its begin_lsn is in the store — redo can start at
     begin_lsn, and undo of a transaction that was already running at
     the checkpoint works from the captured table instead of the
     (possibly retired) log prefix.  Tail Delegate records re-attribute
     captured updates exactly like scanned ones.  A Begin_ckpt without
     its End_ckpt (crash mid-checkpoint) is ignored and analysis falls
     back to the previous anchor. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Store = Asset_storage.Store
module Value = Asset_storage.Value
module Fault = Asset_fault.Fault
module Trace = Asset_obs.Trace

let site_ckpt_begin = Fault.register "wal.ckpt.begin"
let site_ckpt_flush = Fault.register "wal.ckpt.flush"
let site_ckpt_end = Fault.register "wal.ckpt.end"
let site_domain_replay = Fault.register "recovery.domain.replay"
let site_domain_merge = Fault.register "recovery.domain.merge"

(* How an update is undone: physical installs the before image;
   logical (increments, enqueues) edits the *current* value — subtract
   the delta, remove the item — so that commuting updates by other
   transactions survive. *)
type undo_kind = Physical of Value.t option | Logical_delta of int | Logical_dequeue of string

type update = {
  lsn : int;
  oid : Oid.t;
  undo : undo_kind;
  after : Value.t;
  mutable responsible : Tid.t;
}

type report = {
  winners : Tid.t list;
  losers : Tid.t list;
  updates_redone : int;
  updates_undone : int;
  scanned_from : int;
  log_records_dropped : int;
}

type redo_action = Install of Oid.t * Value.t | Remove of Oid.t

(* The latest trustworthy scan anchor, found by one backward walk: an
   End_ckpt whose backlink resolves to a live Begin_ckpt (fuzzy), or a
   quiescent Checkpoint — whichever is latest.  An End_ckpt with a
   dangling backlink (its Begin retired or corrupt) is skipped, as is
   any Begin_ckpt met on the way back (its End never made it: the
   checkpoint did not complete). *)
type anchor = No_anchor | Quiescent of int | Fuzzy of int * Record.att_entry list

let find_anchor log =
  let result = ref No_anchor in
  (try
     Log.iter_rev log (fun lsn record ->
         match record with
         | Record.Checkpoint ->
             result := Quiescent lsn;
             raise Exit
         | Record.End_ckpt { begin_lsn } when begin_lsn >= Log.start_lsn log && begin_lsn < lsn -> (
             match Log.get log begin_lsn with
             | Record.Begin_ckpt { active; _ } ->
                 result := Fuzzy (begin_lsn, active);
                 raise Exit
             | _ -> ())
         | _ -> ())
   with Exit -> ());
  !result

let undo_of_ckpt = function
  | Record.Ckpt_physical before -> Physical before
  | Record.Ckpt_delta delta -> Logical_delta delta
  | Record.Ckpt_dequeue item -> Logical_dequeue item

(* One forward pass from the anchor.  With a fuzzy anchor the updates
   list is seeded from the captured active-transaction table (in LSN
   order, below everything the scan adds) — seeded updates join undo
   and delegation re-attribution but not redo: the checkpoint's store
   flush already covers every update logged before begin_lsn. *)
let analyze ?(from_checkpoint = true) log =
  let updates = ref [] in
  let redo = ref [] in
  let winners = Hashtbl.create 16 in
  let aborted = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  (* Update LSNs whose undo already ran before the crash, per the CLR
     back-links: a crashed abort's progress record.  Log durability is
     prefix-ordered and aborts undo newest-first, so the compensated
     set is always a suffix of the loser's update history — recovery
     undoes exactly the remainder. *)
  let compensated = Hashtbl.create 16 in
  let anchor = if from_checkpoint then find_anchor log else No_anchor in
  let scan_from, seeds =
    match anchor with
    | No_anchor -> (Log.start_lsn log, [])
    | Quiescent lsn -> (lsn, [])
    | Fuzzy (lsn, active) -> (lsn, active)
  in
  let seed_updates =
    List.concat_map
      (fun (e : Record.att_entry) ->
        Hashtbl.replace seen e.att_tid ();
        List.map
          (fun (cu : Record.ckpt_update) ->
            { lsn = cu.cu_lsn; oid = cu.cu_oid; undo = undo_of_ckpt cu.cu_undo; after = cu.cu_after; responsible = e.att_tid })
          e.att_updates)
      seeds
  in
  List.iter
    (fun u -> updates := u :: !updates)
    (List.sort (fun a b -> compare a.lsn b.lsn) seed_updates);
  Log.iter ~from:scan_from log (fun lsn record ->
      match record with
      | Record.Checkpoint | Record.Begin_ckpt _ | Record.End_ckpt _ ->
          (* Anchoring already happened in the backward pass; nothing
             at or after the anchor changes what must be scanned. *)
          ()
      | Record.Begin tid -> Hashtbl.replace seen tid ()
      | Record.Update { tid; oid; before; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Physical before; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Increment { tid; oid; delta; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Logical_delta delta; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Enqueue { tid; oid; item; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Logical_dequeue item; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Clr { oid; image; undo_lsn; _ } ->
          Hashtbl.replace compensated undo_lsn ();
          redo :=
            (match image with Some v -> Install (oid, v) | None -> Remove oid) :: !redo
      | Record.Delegate { from_; to_; oids } ->
          Hashtbl.replace seen to_ ();
          let covers oid =
            match oids with None -> true | Some l -> List.exists (Oid.equal oid) l
          in
          List.iter
            (fun u -> if Tid.equal u.responsible from_ && covers u.oid then u.responsible <- to_)
            !updates
      | Record.Commit tids -> List.iter (fun tid -> Hashtbl.replace winners tid ()) tids
      | Record.Abort tid -> Hashtbl.replace aborted tid ());
  let updates = List.rev !updates in
  let redo = List.rev !redo in
  let winner tid = Hashtbl.mem winners tid in
  let losers =
    Hashtbl.fold (fun tid () acc -> if winner tid then acc else tid :: acc) seen []
  in
  let winners = Hashtbl.fold (fun tid () acc -> tid :: acc) winners [] in
  let resolved tid = Hashtbl.mem aborted tid in
  let undone lsn = Hashtbl.mem compensated lsn in
  ( updates,
    redo,
    List.sort Tid.compare winners,
    List.sort Tid.compare losers,
    resolved,
    undone,
    scan_from )

let apply_action store = function
  | Install (oid, v) -> Store.write store oid v
  | Remove oid -> Store.delete store oid

(* Parallel redo.  Partition by [Oid.partition] — every action on one
   OID lands in the same queue, in log order, so replaying a queue into
   a private last-write-wins table computes exactly the final image of
   that partition's objects.  Partitions touch disjoint OID sets, so
   after the merge barrier (every domain joined, errors re-raised) the
   tables apply to the store in any order.  Failpoints fire on the
   driving domain only — policy state is not synchronised across
   domains. *)
let redo_parallel store redo domains =
  let queues = Array.make domains [] in
  List.iter
    (fun action ->
      let oid = match action with Install (oid, _) | Remove oid -> oid in
      let d = Oid.partition oid domains in
      queues.(d) <- action :: queues.(d))
    redo;
  Array.iteri (fun _ _ -> Fault.hit_io site_domain_replay) queues;
  let handles =
    Array.map
      (fun q ->
        let q = List.rev q in
        Domain.spawn (fun () ->
            match
              let tbl : (Oid.t, Value.t option) Hashtbl.t = Hashtbl.create 64 in
              List.iter
                (fun action ->
                  match action with
                  | Install (oid, v) -> Hashtbl.replace tbl oid (Some v)
                  | Remove oid -> Hashtbl.replace tbl oid None)
                q;
              tbl
            with
            | tbl -> Ok tbl
            | exception e -> Error e))
      queues
  in
  (* The merge barrier: every domain joins before anything applies. *)
  let results = Array.map Domain.join handles in
  Fault.hit_io site_domain_merge;
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Array.iter
    (function
      | Ok tbl ->
          Hashtbl.iter
            (fun oid v -> match v with Some v -> Store.write store oid v | None -> Store.delete store oid)
            tbl
      | Error _ -> ())
    results

let recover ?(from_checkpoint = true) ?(domains = 1) log store =
  if domains < 1 then invalid_arg "Recovery.recover: domains must be >= 1";
  if Trace.on () then Trace.emit Trace.Recovery_start;
  let updates, redo, winners, losers, resolved, undone_before_crash, from =
    analyze ~from_checkpoint log
  in
  let winner tid = List.exists (Tid.equal tid) winners in
  (* Redo: repeat history, including the undo writes (CLRs) of aborts
     that ran before the crash. *)
  if domains = 1 then List.iter (apply_action store) redo
  else redo_parallel store redo domains;
  let redone = List.length redo in
  (* Undo unresolved losers (in-flight at the crash) in reverse order.
     Resolved losers' undos were replayed as CLRs above, and so was any
     prefix of an *unresolved* abort that persisted CLRs before the
     crash — those updates carry a compensating back-link and must not
     be undone a second time (double-applying a logical delta/dequeue
     would corrupt concurrent committers' commuting updates). *)
  let loser_updates =
    List.filter
      (fun u ->
        (not (winner u.responsible))
        && (not (resolved u.responsible))
        && not (undone_before_crash u.lsn))
      updates
  in
  let undone = List.length loser_updates in
  List.iter
    (fun u ->
      match u.undo with
      | Physical (Some v) -> Store.write store u.oid v
      | Physical None -> Store.delete store u.oid
      | Logical_delta delta -> (
          match Store.read store u.oid with
          | Some v -> Store.write store u.oid (Value.incr_int v (-delta))
          | None -> ())
      | Logical_dequeue item -> (
          match Store.read store u.oid with
          | Some v -> Store.write store u.oid (Value.queue_remove_last v item)
          | None -> ()))
    (List.rev loser_updates);
  Store.flush store;
  if Trace.on () then Trace.emit (Trace.Recovery_done { winners; losers });
  {
    winners;
    losers;
    updates_redone = redone;
    updates_undone = undone;
    scanned_from = from;
    log_records_dropped = Log.corrupt_dropped log;
  }

(* A quiescent checkpoint: everything committed so far is already in the
   store; flush it and mark the log.  The caller must guarantee no
   transaction is active (the engine's checkpoint wrapper enforces it). *)
let checkpoint log store =
  Store.flush store;
  let lsn = Log.append log Record.Checkpoint in
  Log.force log;
  lsn

(* A fuzzy checkpoint: no quiescence needed.  The caller captures the
   active-transaction table; this logs Begin_ckpt, flushes the store,
   logs End_ckpt and forces.  One force at the end suffices: log
   durability is prefix-ordered, so a durable End_ckpt implies a
   durable Begin_ckpt — and the flush ran between them, establishing
   the anchor invariant (End_ckpt on disk ⟹ every update logged
   before begin_lsn is in the store).  A crash anywhere inside leaves
   an incomplete pair that [find_anchor] skips, falling back to the
   previous checkpoint: fuzzy checkpointing never loses ground, it
   only fails to gain it. *)
let fuzzy_checkpoint log store ~active ~dirty =
  Fault.hit_io site_ckpt_begin;
  let begin_lsn = Log.append log (Record.Begin_ckpt { active; dirty }) in
  if Trace.on () then Trace.emit (Trace.Ckpt_begin { lsn = begin_lsn; active = List.length active });
  Fault.hit_io site_ckpt_flush;
  Store.flush store;
  Fault.hit_io site_ckpt_end;
  let end_lsn = Log.append log (Record.End_ckpt { begin_lsn }) in
  Log.force log;
  if Trace.on () then Trace.emit (Trace.Ckpt_end { lsn = end_lsn; begin_lsn });
  begin_lsn

let pp_report ppf r =
  Format.fprintf ppf "recovery: %d winners, %d losers, %d redone, %d undone (from lsn %d)"
    (List.length r.winners) (List.length r.losers) r.updates_redone r.updates_undone
    r.scanned_from
