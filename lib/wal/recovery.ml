(* Crash recovery from the log.

   Physical before/after-image logging admits a simple, idempotent
   "repeat history, then undo losers" scheme:

   analysis —  walk the log forward, collecting every update together
               with the transaction *finally responsible* for it.
               Delegation records re-attribute earlier updates: an
               update performed by t_i and then delegated to t_j belongs
               to t_j ("it will be as if t_j, not t_i, has performed the
               operations", section 2.2).  Winners are the transactions
               named in commit records (a group-commit record names the
               whole group).

   redo     —  reinstall every after image *and every CLR image* in log
               order, regardless of outcome, repeating history so the
               cache state matches the log tail whatever subset of
               writes reached the disk.

   undo     —  walk the loser updates in reverse LSN order installing
               before images (a missing before image means the object
               was created by the loser and is deleted).  A loser whose
               Abort record is in the log is *not* re-undone: the abort
               algorithm already logged a CLR for each installed before
               image, and blindly undoing it again could clobber a
               later winner's committed write to the same object.

   A quiescent checkpoint (store flushed, no active transactions) lets
   the scan start at the last Checkpoint record. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Store = Asset_storage.Store
module Value = Asset_storage.Value

(* How an update is undone: physical installs the before image;
   logical (increments, enqueues) edits the *current* value — subtract
   the delta, remove the item — so that commuting updates by other
   transactions survive. *)
type undo_kind = Physical of Value.t option | Logical_delta of int | Logical_dequeue of string

type update = {
  lsn : int;
  oid : Oid.t;
  undo : undo_kind;
  after : Value.t;
  mutable responsible : Tid.t;
}

type report = {
  winners : Tid.t list;
  losers : Tid.t list;
  updates_redone : int;
  updates_undone : int;
  scanned_from : int;
  log_records_dropped : int;
}

type redo_action = Install of Oid.t * Value.t | Remove of Oid.t

(* One forward pass.  A Checkpoint record resets the accumulators when
   [from_checkpoint]: everything before a quiescent checkpoint is
   already in the store, so the state gathered so far is obsolete —
   this replaces the old separate [last_checkpoint] scan (which walked
   the whole log once just to find the starting LSN, then scanned
   again). *)
let analyze ?(from_checkpoint = true) log =
  let updates = ref [] in
  let redo = ref [] in
  let winners = Hashtbl.create 16 in
  let aborted = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let scanned_from = ref 0 in
  Log.iter log (fun lsn record ->
      match record with
      | Record.Checkpoint ->
          if from_checkpoint then begin
            updates := [];
            redo := [];
            Hashtbl.reset winners;
            Hashtbl.reset aborted;
            Hashtbl.reset seen;
            scanned_from := lsn
          end
      | Record.Begin tid -> Hashtbl.replace seen tid ()
      | Record.Update { tid; oid; before; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Physical before; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Increment { tid; oid; delta; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Logical_delta delta; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Enqueue { tid; oid; item; after } ->
          Hashtbl.replace seen tid ();
          updates := { lsn; oid; undo = Logical_dequeue item; after; responsible = tid } :: !updates;
          redo := Install (oid, after) :: !redo
      | Record.Clr { oid; image; _ } ->
          redo :=
            (match image with Some v -> Install (oid, v) | None -> Remove oid) :: !redo
      | Record.Delegate { from_; to_; oids } ->
          Hashtbl.replace seen to_ ();
          let covers oid =
            match oids with None -> true | Some l -> List.exists (Oid.equal oid) l
          in
          List.iter
            (fun u -> if Tid.equal u.responsible from_ && covers u.oid then u.responsible <- to_)
            !updates
      | Record.Commit tids -> List.iter (fun tid -> Hashtbl.replace winners tid ()) tids
      | Record.Abort tid -> Hashtbl.replace aborted tid ());
  let updates = List.rev !updates in
  let redo = List.rev !redo in
  let winner tid = Hashtbl.mem winners tid in
  let losers =
    Hashtbl.fold (fun tid () acc -> if winner tid then acc else tid :: acc) seen []
  in
  let winners = Hashtbl.fold (fun tid () acc -> tid :: acc) winners [] in
  let resolved tid = Hashtbl.mem aborted tid in
  (updates, redo, List.sort Tid.compare winners, List.sort Tid.compare losers, resolved, !scanned_from)

let recover ?(from_checkpoint = true) log store =
  if Asset_obs.Trace.on () then Asset_obs.Trace.emit Asset_obs.Trace.Recovery_start;
  let updates, redo, winners, losers, resolved, from = analyze ~from_checkpoint log in
  let winner tid = List.exists (Tid.equal tid) winners in
  (* Redo: repeat history, including the undo writes (CLRs) of aborts
     that ran before the crash. *)
  List.iter
    (fun action ->
      match action with
      | Install (oid, v) -> Store.write store oid v
      | Remove oid -> Store.delete store oid)
    redo;
  let redone = List.length redo in
  (* Undo unresolved losers (in-flight at the crash) in reverse order.
     Resolved losers' undos were replayed as CLRs above. *)
  let loser_updates =
    List.filter (fun u -> (not (winner u.responsible)) && not (resolved u.responsible)) updates
  in
  let undone = List.length loser_updates in
  List.iter
    (fun u ->
      match u.undo with
      | Physical (Some v) -> Store.write store u.oid v
      | Physical None -> Store.delete store u.oid
      | Logical_delta delta -> (
          match Store.read store u.oid with
          | Some v -> Store.write store u.oid (Value.incr_int v (-delta))
          | None -> ())
      | Logical_dequeue item -> (
          match Store.read store u.oid with
          | Some v -> Store.write store u.oid (Value.queue_remove_last v item)
          | None -> ()))
    (List.rev loser_updates);
  Store.flush store;
  if Asset_obs.Trace.on () then Asset_obs.Trace.emit (Asset_obs.Trace.Recovery_done { winners; losers });
  {
    winners;
    losers;
    updates_redone = redone;
    updates_undone = undone;
    scanned_from = from;
    log_records_dropped = Log.corrupt_dropped log;
  }

(* A quiescent checkpoint: everything committed so far is already in the
   store; flush it and mark the log.  The caller must guarantee no
   transaction is active (the engine's checkpoint wrapper enforces it). *)
let checkpoint log store =
  Store.flush store;
  let lsn = Log.append log Record.Checkpoint in
  Log.force log;
  lsn

let pp_report ppf r =
  Format.fprintf ppf "recovery: %d winners, %d losers, %d redone, %d undone (from lsn %d)"
    (List.length r.winners) (List.length r.losers) r.updates_redone r.updates_undone
    r.scanned_from
