(** Structured event traces: an append-only history of primitive
    invocations, lock transitions and WAL/recovery milestones with
    logical timestamps.

    The recorder is domain-local (one slot per OCaml domain, so each
    shard of the multicore engine traces without locks) and off by
    default; instrumented sites guard emission with
    [if Trace.on () then Trace.emit ...], so the untraced cost is one
    domain-local load and one branch per site (pinned by the
    E17/E18/E20 benches).  Per-shard histories are combined with
    {!merge} for the oracle. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type lock_action =
  | Request  (** lock asked for, outcome not yet known *)
  | Grant  (** request granted *)
  | Block  (** requester enqueued behind conflicting holders *)
  | Upgrade  (** granted lock strengthened in place *)
  | Release  (** granted lock dropped *)
  | Suspend  (** granted lock suspended by a permit-driven conflict *)
  | Resume  (** suspended lock re-granted *)
  | Transfer  (** ownership moved by delegation *)

type event =
  | Initiate of { tid : Tid.t; parent : Tid.t }
      (** [parent] is [Tid.null] for top-level transactions. *)
  | Begin of { tid : Tid.t }
  | Commit of { tids : Tid.t list; ts : int }
      (** The whole atomically-committed group in one event; [ts] is
          the commit timestamp stamped on the published versions (0
          when versioning is off or the history predates it). *)
  | Abort of { tid : Tid.t }
  | Op of { tid : Tid.t; oid : Oid.t; op : char }
      (** ['R'] | ['W'] | ['I'] | ['E'] (escrow) | ['Q'] (enqueue) *)
  | Snapshot of { tid : Tid.t; ts : int }
      (** A read-only transaction began against the snapshot at [ts]. *)
  | Snap_read of { tid : Tid.t; oid : Oid.t; ts : int }
      (** Lock-free snapshot read; [ts] is the commit timestamp of the
          version returned (0 = initial state). *)
  | Delegate of { from_ : Tid.t; to_ : Tid.t; moved : Oid.t list }
  | Permit of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list; ops : string }
      (** [to_ = Tid.null] permits any transaction; [ops] is a subset
          of ["RWI"]. *)
  | Dep of { dtype : string; master : Tid.t; dependent : Tid.t }
      (** [dtype] is {!Asset_deps.Dep_type.to_string}: ["CD"], ["AD"],
          ["GC"], ["BD"] or ["EXC"] — or ["XGC"], emitted by the shard
          coordinator for a cross-shard group-commit edge (both-or-
          neither across separate per-shard [Commit] events). *)
  | Lock of { tid : Tid.t; oid : Oid.t; mode : char; action : lock_action }
  | Wal_append of { lsn : int; kind : string }
  | Wal_force of { lsn : int }
  | Ckpt_begin of { lsn : int; active : int }
      (** A fuzzy checkpoint opened at [lsn], capturing [active]
          in-flight transactions. *)
  | Ckpt_end of { lsn : int; begin_lsn : int }
      (** The checkpoint opened at [begin_lsn] completed. *)
  | Wal_retire of { below : int; segments : int }
      (** [segments] log segments wholly below LSN [below] were
          retired (deleted after the manifest stopped naming them). *)
  | Recovery_start
  | Recovery_done of { winners : Tid.t list; losers : Tid.t list }
  | Sched_spawn of { fid : int; label : string }
  | Sched_stall

type entry = { seq : int; shard : int; ev : event }
(** [seq] is the logical timestamp: strictly increasing, assigned at
    emit time.  The scheduler is cooperative, so emit order is the real
    interleaving order within one shard.  [shard] is the emitting
    recorder's shard id — 0 for the classic single-engine setup (and
    omitted from the JSON encoding so old histories stay valid). *)

type sink =
  | Memory of entry list ref  (** accumulates the full history, newest first *)
  | Jsonl of out_channel  (** one JSON object per line *)

(** {1 The domain-local recorder} *)

val on : unit -> bool
(** Is a recorder installed on this domain?  The hot-path guard: one
    domain-local load, one compare. *)

val emit : event -> unit
(** Record an event (no-op when no recorder is installed on the calling
    domain). *)

val start : ?capacity:int -> ?shard:int -> ?sinks:sink list -> unit -> unit
(** Install this domain's recorder: a ring of [capacity] (default 4096)
    entries — the flight-recorder tail — fanning out to [sinks].
    Entries are stamped with [shard] (default 0); the sharded engine
    starts one recorder per domain with that shard's id. *)

val stop : unit -> unit
(** Uninstall this domain's recorder, flushing any JSONL sinks
    (channels are not closed — they belong to the caller). *)

val seq : unit -> int
(** Events emitted so far on this domain (0 when no recorder is
    installed). *)

val recent : unit -> entry list
(** The retained ring tail, oldest first: the last [capacity] events.
    The ring lives above the storage stack, so it survives a simulated
    power loss — this is the pre-crash history the recovery oracle
    replays. *)

val memory_sink : unit -> entry list ref * sink
val jsonl_sink : out_channel -> sink

val entries : entry list ref -> entry list
(** Collected entries of a memory sink, oldest first. *)

val with_memory : ?capacity:int -> ?shard:int -> (unit -> 'a) -> 'a * entry list
(** Run a thunk under a fresh memory-sink recorder; returns its result
    and the full history, oldest first.  Restores the previous recorder
    state afterwards, even on exception. *)

val merge : entry list list -> entry list
(** Interleave per-shard histories (each oldest first) into one
    history, renumbering [seq] from 1 while preserving every shard's
    internal order.  Per-shard logical clocks are dovetailed by [seq],
    which is a legal interleaving of the concurrent execution: shards
    share no engine state, so any order consistent with each shard's
    own history satisfies the same per-object and per-transaction
    axioms. *)

(** {1 JSONL codec} *)

exception Parse_error of string

val entry_to_json : entry -> string
(** One JSON object, no trailing newline. *)

val entry_of_json : string -> entry
(** Inverse of {!entry_to_json}; raises {!Parse_error} on malformed
    input. *)

val load_jsonl : string -> entry list
(** Read a JSONL trace file, oldest first (blank lines skipped). *)

(** {1 Pretty-printing} *)

val lock_action_to_string : lock_action -> string
val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
