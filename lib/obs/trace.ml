(* Structured event traces: an append-only history of every ASSET
   primitive invocation, lock transition and WAL/recovery milestone,
   stamped with logical timestamps.

   The recorder is a process-global flight recorder in the style of
   [Fault]'s failpoint registry: instrumented sites guard their emit
   with [if Trace.on () then Trace.emit (...)], so the production state
   (recorder absent) costs one load and one branch per site and
   allocates nothing — the E17/E18 benches pin this.  When a recorder
   is installed, every event lands in a fixed-capacity ring (the tail
   survives a simulated power loss, because the recorder lives above
   the storage stack the torture harness discards) and is fanned out to
   the pluggable sinks: [Memory] accumulates the full history for the
   oracle, [Jsonl] streams one JSON object per line for offline
   analysis.

   Events name transactions and objects by their public ids and carry
   no engine state, so the trace is a pure observation: replaying it
   through [Oracle] cannot perturb the run it describes. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type lock_action =
  | Request (* lock asked for, outcome not yet known *)
  | Grant (* request (or upgrade) granted *)
  | Block (* requester enqueued behind conflicting holders *)
  | Upgrade (* granted lock strengthened in place *)
  | Release (* granted lock dropped *)
  | Suspend (* granted lock suspended by a permit-driven conflict *)
  | Resume (* suspended lock re-granted *)
  | Transfer (* ownership moved by delegation *)

type event =
  | Initiate of { tid : Tid.t; parent : Tid.t } (* parent = Tid.null for top level *)
  | Begin of { tid : Tid.t }
  | Commit of { tids : Tid.t list; ts : int }
    (* whole group-commit set, atomically; [ts] is the commit timestamp
       stamped on the published versions (0 when versioning is off) *)
  | Abort of { tid : Tid.t }
  | Op of { tid : Tid.t; oid : Oid.t; op : char } (* 'R' | 'W' | 'I' | 'E' | 'Q' *)
  | Snapshot of { tid : Tid.t; ts : int }
    (* a read-only transaction began against the snapshot at [ts] *)
  | Snap_read of { tid : Tid.t; oid : Oid.t; ts : int }
    (* lock-free snapshot read; [ts] is the commit timestamp of the
       version returned (0 = the initial, never-engine-written state) *)
  | Delegate of { from_ : Tid.t; to_ : Tid.t; moved : Oid.t list }
  | Permit of { from_ : Tid.t; to_ : Tid.t; oids : Oid.t list; ops : string }
    (* to_ = Tid.null means "any transaction"; ops is a subset of "RWI" *)
  | Dep of { dtype : string; master : Tid.t; dependent : Tid.t }
  | Lock of { tid : Tid.t; oid : Oid.t; mode : char; action : lock_action }
  | Wal_append of { lsn : int; kind : string }
  | Wal_force of { lsn : int }
  | Ckpt_begin of { lsn : int; active : int }
    (* fuzzy checkpoint opened at [lsn], capturing [active] in-flight txns *)
  | Ckpt_end of { lsn : int; begin_lsn : int }
  | Wal_retire of { below : int; segments : int }
    (* [segments] log segments wholly below LSN [below] were deleted *)
  | Recovery_start
  | Recovery_done of { winners : Tid.t list; losers : Tid.t list }
  | Sched_spawn of { fid : int; label : string }
  | Sched_stall

type entry = { seq : int; shard : int; ev : event }
(* [seq] is the logical timestamp: a strictly increasing integer
   assigned at emit time.  The scheduler is cooperative, so emit order
   is the real interleaving order — within one shard.  [shard] is the
   recorder's shard id (0 for the classic single-engine setup); [merge]
   interleaves per-shard histories into one replayable history. *)

type sink = Memory of entry list ref (* newest first *) | Jsonl of out_channel

type t = {
  mutable seq : int;
  shard : int;
  ring : entry array;
  cap : int;
  sinks : sink list;
}

let dummy = { seq = 0; shard = 0; ev = Sched_stall }

(* One recorder slot per domain: each shard of the multicore engine
   traces into its own domain-local recorder, so emit needs no lock and
   per-shard seq order is exactly that shard's interleaving order. *)
let slot : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let current () = Domain.DLS.get slot

(* The hot-path guard: one DLS load, one compare-with-immediate. *)
let on () = !(current ()) <> None

let lock_action_to_string = function
  | Request -> "request"
  | Grant -> "grant"
  | Block -> "block"
  | Upgrade -> "upgrade"
  | Release -> "release"
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Transfer -> "transfer"

let lock_action_of_string = function
  | "request" -> Request
  | "grant" -> Grant
  | "block" -> Block
  | "upgrade" -> Upgrade
  | "release" -> Release
  | "suspend" -> Suspend
  | "resume" -> Resume
  | "transfer" -> Transfer
  | s -> invalid_arg ("Trace.lock_action_of_string: " ^ s)

(* ------------------------------------------------------------------ *)
(* JSONL codec.  The subset of JSON we need: objects, arrays, ints,
   strings, with standard escapes.  Hand-rolled so the library stays on
   the preinstalled package set. *)

module Json = struct
  type v = Int of int | Str of string | List of v list | Obj of (string * v) list

  exception Parse_error of string

  let buf_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec buf_v b = function
    | Int i -> Buffer.add_string b (string_of_int i)
    | Str s -> buf_string b s
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            buf_v b v)
          vs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            buf_string b k;
            Buffer.add_char b ':';
            buf_v b v)
          fields;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 64 in
    buf_v b v;
    Buffer.contents b

  (* Recursive-descent parser. *)
  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d in %S" msg !pos s)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | _ -> fail "bad escape");
          loop ()
        end
        else begin
          Buffer.add_char b c;
          loop ()
        end
      in
      loop ()
    in
    let parse_int () =
      skip_ws ();
      let start = !pos in
      if peek () = Some '-' then advance ();
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = start then fail "expected integer";
      int_of_string (String.sub s start (!pos - start))
    in
    let rec parse_v () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              expect ':';
              let v = parse_v () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_v () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
          end
      | Some ('-' | '0' .. '9') -> Int (parse_int ())
      | _ -> fail "expected value"
    in
    let v = parse_v () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member name = function
    | Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> raise (Parse_error ("missing field " ^ name)))
    | _ -> raise (Parse_error "not an object")

  let to_int = function Int i -> i | _ -> raise (Parse_error "expected int")
  let to_str = function Str s -> s | _ -> raise (Parse_error "expected string")
  let to_list = function List l -> l | _ -> raise (Parse_error "expected array")
end

exception Parse_error = Json.Parse_error

let tid_j t = Json.Int (Tid.to_int t)
let oid_j o = Json.Int (Oid.to_int o)
let tids_j ts = Json.List (List.map tid_j ts)
let oids_j os = Json.List (List.map oid_j os)

let event_fields = function
  | Initiate { tid; parent } -> [ ("ev", Json.Str "initiate"); ("tid", tid_j tid); ("parent", tid_j parent) ]
  | Begin { tid } -> [ ("ev", Json.Str "begin"); ("tid", tid_j tid) ]
  | Commit { tids; ts } -> [ ("ev", Json.Str "commit"); ("tids", tids_j tids); ("ts", Json.Int ts) ]
  | Abort { tid } -> [ ("ev", Json.Str "abort"); ("tid", tid_j tid) ]
  | Op { tid; oid; op } ->
      [ ("ev", Json.Str "op"); ("tid", tid_j tid); ("oid", oid_j oid); ("op", Json.Str (String.make 1 op)) ]
  | Snapshot { tid; ts } -> [ ("ev", Json.Str "snapshot"); ("tid", tid_j tid); ("ts", Json.Int ts) ]
  | Snap_read { tid; oid; ts } ->
      [ ("ev", Json.Str "snap_read"); ("tid", tid_j tid); ("oid", oid_j oid); ("ts", Json.Int ts) ]
  | Delegate { from_; to_; moved } ->
      [ ("ev", Json.Str "delegate"); ("from", tid_j from_); ("to", tid_j to_); ("moved", oids_j moved) ]
  | Permit { from_; to_; oids; ops } ->
      [ ("ev", Json.Str "permit"); ("from", tid_j from_); ("to", tid_j to_); ("oids", oids_j oids); ("ops", Json.Str ops) ]
  | Dep { dtype; master; dependent } ->
      [ ("ev", Json.Str "dep"); ("dtype", Json.Str dtype); ("master", tid_j master); ("dependent", tid_j dependent) ]
  | Lock { tid; oid; mode; action } ->
      [
        ("ev", Json.Str "lock");
        ("tid", tid_j tid);
        ("oid", oid_j oid);
        ("mode", Json.Str (String.make 1 mode));
        ("action", Json.Str (lock_action_to_string action));
      ]
  | Wal_append { lsn; kind } -> [ ("ev", Json.Str "wal_append"); ("lsn", Json.Int lsn); ("kind", Json.Str kind) ]
  | Wal_force { lsn } -> [ ("ev", Json.Str "wal_force"); ("lsn", Json.Int lsn) ]
  | Ckpt_begin { lsn; active } -> [ ("ev", Json.Str "ckpt_begin"); ("lsn", Json.Int lsn); ("active", Json.Int active) ]
  | Ckpt_end { lsn; begin_lsn } -> [ ("ev", Json.Str "ckpt_end"); ("lsn", Json.Int lsn); ("begin_lsn", Json.Int begin_lsn) ]
  | Wal_retire { below; segments } ->
      [ ("ev", Json.Str "wal_retire"); ("below", Json.Int below); ("segments", Json.Int segments) ]
  | Recovery_start -> [ ("ev", Json.Str "recovery_start") ]
  | Recovery_done { winners; losers } ->
      [ ("ev", Json.Str "recovery_done"); ("winners", tids_j winners); ("losers", tids_j losers) ]
  | Sched_spawn { fid; label } -> [ ("ev", Json.Str "sched_spawn"); ("fid", Json.Int fid); ("label", Json.Str label) ]
  | Sched_stall -> [ ("ev", Json.Str "sched_stall") ]

let entry_to_json (e : entry) =
  let fields = event_fields e.ev in
  (* Shard 0 is omitted so single-engine histories keep the pre-shard format. *)
  let fields = if e.shard = 0 then fields else ("shard", Json.Int e.shard) :: fields in
  Json.to_string (Json.Obj (("seq", Json.Int e.seq) :: fields))

let char_of_field j name =
  let s = Json.to_str (Json.member name j) in
  if String.length s <> 1 then raise (Json.Parse_error ("bad one-char field " ^ name));
  s.[0]

let event_of_json j =
  let tid name = Tid.of_int (Json.to_int (Json.member name j)) in
  let oid name = Oid.of_int (Json.to_int (Json.member name j)) in
  let tids name = List.map (fun v -> Tid.of_int (Json.to_int v)) (Json.to_list (Json.member name j)) in
  let oids name = List.map (fun v -> Oid.of_int (Json.to_int v)) (Json.to_list (Json.member name j)) in
  let str name = Json.to_str (Json.member name j) in
  let int name = Json.to_int (Json.member name j) in
  match str "ev" with
  | "initiate" -> Initiate { tid = tid "tid"; parent = tid "parent" }
  | "begin" -> Begin { tid = tid "tid" }
  | "commit" ->
      (* Tolerate histories recorded before commit timestamps existed. *)
      let ts = match j with Json.Obj fields when List.mem_assoc "ts" fields -> int "ts" | _ -> 0 in
      Commit { tids = tids "tids"; ts }
  | "abort" -> Abort { tid = tid "tid" }
  | "op" -> Op { tid = tid "tid"; oid = oid "oid"; op = char_of_field j "op" }
  | "snapshot" -> Snapshot { tid = tid "tid"; ts = int "ts" }
  | "snap_read" -> Snap_read { tid = tid "tid"; oid = oid "oid"; ts = int "ts" }
  | "delegate" -> Delegate { from_ = tid "from"; to_ = tid "to"; moved = oids "moved" }
  | "permit" -> Permit { from_ = tid "from"; to_ = tid "to"; oids = oids "oids"; ops = str "ops" }
  | "dep" -> Dep { dtype = str "dtype"; master = tid "master"; dependent = tid "dependent" }
  | "lock" ->
      Lock { tid = tid "tid"; oid = oid "oid"; mode = char_of_field j "mode"; action = lock_action_of_string (str "action") }
  | "wal_append" -> Wal_append { lsn = int "lsn"; kind = str "kind" }
  | "wal_force" -> Wal_force { lsn = int "lsn" }
  | "ckpt_begin" -> Ckpt_begin { lsn = int "lsn"; active = int "active" }
  | "ckpt_end" -> Ckpt_end { lsn = int "lsn"; begin_lsn = int "begin_lsn" }
  | "wal_retire" -> Wal_retire { below = int "below"; segments = int "segments" }
  | "recovery_start" -> Recovery_start
  | "recovery_done" -> Recovery_done { winners = tids "winners"; losers = tids "losers" }
  | "sched_spawn" -> Sched_spawn { fid = int "fid"; label = str "label" }
  | "sched_stall" -> Sched_stall
  | ev -> raise (Json.Parse_error ("unknown event kind " ^ ev))

let entry_of_json line =
  let j = Json.parse line in
  (* Tolerate histories recorded before shard ids existed. *)
  let shard = match j with Json.Obj fields when List.mem_assoc "shard" fields -> Json.to_int (Json.member "shard" j) | _ -> 0 in
  { seq = Json.to_int (Json.member "seq" j); shard; ev = event_of_json j }

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> loop acc
        | line -> loop (entry_of_json line :: acc)
      in
      loop [])

(* ------------------------------------------------------------------ *)
(* Recorder lifecycle. *)

let start ?(capacity = 4096) ?(shard = 0) ?(sinks = []) () =
  if capacity <= 0 then invalid_arg "Trace.start: capacity must be positive";
  if shard < 0 then invalid_arg "Trace.start: shard must be >= 0";
  current () := Some { seq = 0; shard; ring = Array.make capacity dummy; cap = capacity; sinks }

let stop () =
  let cur = current () in
  (match !cur with
  | None -> ()
  | Some r -> List.iter (function Jsonl oc -> flush oc | Memory _ -> ()) r.sinks);
  cur := None

let seq () = match !(current ()) with None -> 0 | Some r -> r.seq

let emit ev =
  match !(current ()) with
  | None -> ()
  | Some r ->
      r.seq <- r.seq + 1;
      let e = { seq = r.seq; shard = r.shard; ev } in
      r.ring.((r.seq - 1) mod r.cap) <- e;
      List.iter
        (function
          | Memory l -> l := e :: !l
          | Jsonl oc ->
              output_string oc (entry_to_json e);
              output_char oc '\n')
        r.sinks

(* The retained tail of the history, oldest first: the last [cap]
   events (or all of them, if fewer were emitted). *)
let recent () =
  match !(current ()) with
  | None -> []
  | Some r ->
      let first = max 1 (r.seq - r.cap + 1) in
      let rec collect s acc = if s < first then acc else collect (s - 1) (r.ring.((s - 1) mod r.cap) :: acc) in
      collect r.seq []

let memory_sink () =
  let l = ref [] in
  (l, Memory l)

let jsonl_sink oc = Jsonl oc

(* Collected entries of a memory sink, oldest first. *)
let entries l = List.rev !l

(* Run [f] under a fresh memory-sink recorder; restore the previous
   recorder (almost always: none) afterwards, even on exception. *)
let with_memory ?capacity ?shard f =
  let l, sink = memory_sink () in
  let cur = current () in
  let saved = !cur in
  start ?capacity ?shard ~sinks:[ sink ] ();
  Fun.protect
    ~finally:(fun () ->
      stop ();
      cur := saved)
    (fun () ->
      let v = f () in
      (v, entries l))

(* ------------------------------------------------------------------ *)
(* Merging per-shard histories.

   Each shard's [seq] is its own logical clock, and both clocks start
   at 1 and tick at every event, so ordering the union by [seq] (ties
   broken by shard id via the stable sort over the concatenation order)
   yields an interleaving that (a) preserves every shard's internal
   order and (b) dovetails the shards fairly.  Any interleaving that
   respects per-shard order is a legal history of the concurrent
   execution — shards share no objects except through the coordinator's
   explicit messages, which appear in both shards' histories in
   causally consistent positions.  The merged sequence is renumbered so
   the oracle sees one strictly increasing clock. *)
let merge (histories : entry list list) : entry list =
  let all = List.concat histories in
  let sorted = List.stable_sort (fun (a : entry) (b : entry) -> compare a.seq b.seq) all in
  List.mapi (fun i (e : entry) -> { e with seq = i + 1 }) sorted

(* ------------------------------------------------------------------ *)
(* Pretty-printing for test failure messages. *)

let pp_event ppf = function
  | Initiate { tid; parent } ->
      if Tid.is_null parent then Format.fprintf ppf "initiate %a" Tid.pp tid
      else Format.fprintf ppf "initiate %a parent=%a" Tid.pp tid Tid.pp parent
  | Begin { tid } -> Format.fprintf ppf "begin %a" Tid.pp tid
  | Commit { tids; ts } ->
      Format.fprintf ppf "commit [%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Tid.pp) tids;
      if ts > 0 then Format.fprintf ppf " ts=%d" ts
  | Abort { tid } -> Format.fprintf ppf "abort %a" Tid.pp tid
  | Op { tid; oid; op } -> Format.fprintf ppf "%c(%a,%a)" op Tid.pp tid Oid.pp oid
  | Snapshot { tid; ts } -> Format.fprintf ppf "snapshot %a ts=%d" Tid.pp tid ts
  | Snap_read { tid; oid; ts } -> Format.fprintf ppf "S(%a,%a)@@%d" Tid.pp tid Oid.pp oid ts
  | Delegate { from_; to_; moved } ->
      Format.fprintf ppf "delegate %a->%a [%a]" Tid.pp from_ Tid.pp to_
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Oid.pp)
        moved
  | Permit { from_; to_; oids; ops } ->
      Format.fprintf ppf "permit %a->%a ops=%s [%a]" Tid.pp from_ Tid.pp to_ ops
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Oid.pp)
        oids
  | Dep { dtype; master; dependent } -> Format.fprintf ppf "dep %s %a->%a" dtype Tid.pp master Tid.pp dependent
  | Lock { tid; oid; mode; action } ->
      Format.fprintf ppf "lock %s %a %a %c" (lock_action_to_string action) Tid.pp tid Oid.pp oid mode
  | Wal_append { lsn; kind } -> Format.fprintf ppf "wal_append lsn=%d %s" lsn kind
  | Wal_force { lsn } -> Format.fprintf ppf "wal_force lsn=%d" lsn
  | Ckpt_begin { lsn; active } -> Format.fprintf ppf "ckpt_begin lsn=%d active=%d" lsn active
  | Ckpt_end { lsn; begin_lsn } -> Format.fprintf ppf "ckpt_end lsn=%d begin=%d" lsn begin_lsn
  | Wal_retire { below; segments } -> Format.fprintf ppf "wal_retire below=%d segments=%d" below segments
  | Recovery_start -> Format.fprintf ppf "recovery_start"
  | Recovery_done { winners; losers } ->
      Format.fprintf ppf "recovery_done winners=[%a] losers=[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Tid.pp)
        winners
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Tid.pp)
        losers
  | Sched_spawn { fid; label } -> Format.fprintf ppf "sched_spawn %d %s" fid label
  | Sched_stall -> Format.fprintf ppf "sched_stall"

let pp_entry ppf (e : entry) =
  if e.shard = 0 then Format.fprintf ppf "@[%6d %a@]" e.seq pp_event e.ev
  else Format.fprintf ppf "@[%6d s%d %a@]" e.seq e.shard pp_event e.ev
