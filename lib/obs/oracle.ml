(* Post-hoc conformance checkers over a recorded [Trace] history.

   Each checker replays one axiom of the paper's semantics against the
   chronological event list and returns the violations it finds (empty
   list = the history conforms).  The checkers are deliberately
   independent of the engine: they see only public ids and event order,
   so they can validate live runs, ring-buffer tails recovered after a
   simulated power loss, and JSONL traces loaded from disk — and they
   can be aimed at synthetic histories to prove they *would* catch a
   broken implementation.

   Model-specific legality matters: cursor stability and cooperative
   histories are not conflict-serializable by design, so the harness
   picks which checkers apply to which model.  [check_serializable]
   deciding "not SR" is a *finding*, not always a failure. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type violation = { check : string; detail : string }

let violation check fmt = Format.kasprintf (fun detail -> { check; detail }) fmt
let pp_violation ppf { check; detail } = Format.fprintf ppf "[%s] %s" check detail

let pp_tids ppf tids =
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Tid.pp) tids

(* ------------------------------------------------------------------ *)
(* Shared history digests. *)

(* First Commit/Abort/Begin timestamps per transaction.  A Commit event
   carries the whole atomically-committed group, so group members share
   one commit timestamp — which is exactly what the GC checker wants to
   observe. *)
type times = {
  commit_at : (Tid.t, int) Hashtbl.t;
  abort_at : (Tid.t, int) Hashtbl.t;
  begin_at : (Tid.t, int) Hashtbl.t;
}

let times entries =
  let t = { commit_at = Hashtbl.create 32; abort_at = Hashtbl.create 32; begin_at = Hashtbl.create 32 } in
  let first tbl k at = if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k at in
  List.iter
    (fun { Trace.seq; ev; _ } ->
      match ev with
      | Trace.Commit { tids; _ } -> List.iter (fun tid -> first t.commit_at tid seq) tids
      | Trace.Abort { tid } -> first t.abort_at tid seq
      | Trace.Begin { tid } -> first t.begin_at tid seq
      | _ -> ())
    entries;
  t

let committed entries =
  List.concat_map (fun e -> match e.Trace.ev with Trace.Commit { tids; _ } -> tids | _ -> []) entries

let aborted entries =
  List.filter_map (fun e -> match e.Trace.ev with Trace.Abort { tid } -> Some tid | _ -> None) entries

(* ------------------------------------------------------------------ *)
(* Conflict-serializability of the committed projection.

   Operations are re-attributed along [Delegate] events before
   projection — a delegated update belongs to the delegatee, exactly as
   recovery re-attributes responsibility — then a conflict graph is
   built over the committed owners (R/R and I/I commute; every other
   pair conflicts, per the lock table) and searched for a cycle. *)

type op_rec = { mutable owner : Tid.t; oid : Oid.t; op : char; at : int }

(* Conflict relation over the *committed effects* of operations.  Two
   committed deltas commute whatever their bounds were while in flight,
   so increments and escrow ops ('I', 'E') are mutually non-conflicting;
   committed enqueues ('Q') commute on the queue's abstract state (the
   multiset of items — arrival order is the serialization order, per
   the Enqueue/Enqueue lock compatibility). *)
let delta_op c = c = 'I' || c = 'E'
let conflicting a b = not ((a = 'R' && b = 'R') || (delta_op a && delta_op b) || (a = 'Q' && b = 'Q'))

let check_serializable entries =
  let ops = ref [] (* newest first *) in
  let commit_set = Hashtbl.create 32 in
  List.iter
    (fun { Trace.seq; ev; _ } ->
      match ev with
      | Trace.Op { tid; oid; op } -> ops := { owner = tid; oid; op; at = seq } :: !ops
      | Trace.Delegate { from_; to_; moved } ->
          List.iter
            (fun r -> if Tid.equal r.owner from_ && List.exists (Oid.equal r.oid) moved then r.owner <- to_)
            !ops
      | Trace.Commit { tids; _ } -> List.iter (fun tid -> Hashtbl.replace commit_set tid ()) tids
      | _ -> ())
    entries;
  let ops = Array.of_list (List.rev !ops) in
  let is_committed tid = Hashtbl.mem commit_set tid in
  (* Conflict edges earlier-owner -> later-owner, committed owners only. *)
  let adj : (Tid.t, (Tid.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  let add_edge a b =
    let succs =
      match Hashtbl.find_opt adj a with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.add adj a s;
          s
    in
    Hashtbl.replace succs b ()
  in
  let n = Array.length ops in
  for i = 0 to n - 1 do
    let a = ops.(i) in
    if is_committed a.owner then
      for j = i + 1 to n - 1 do
        let b = ops.(j) in
        if
          Oid.equal a.oid b.oid
          && (not (Tid.equal a.owner b.owner))
          && is_committed b.owner
          && conflicting a.op b.op
        then add_edge a.owner b.owner
      done
  done;
  (* DFS cycle search over the conflict graph. *)
  let color : (Tid.t, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 32 in
  let exception Cycle of Tid.t list in
  let rec dfs path tid =
    match Hashtbl.find_opt color tid with
    | Some `Black -> ()
    | Some `Grey ->
        (* Trim the path to the cycle proper. *)
        let rec trim = function
          | [] -> [ tid ]
          | t :: rest -> if Tid.equal t tid then [ t ] else t :: trim rest
        in
        raise (Cycle (List.rev (tid :: trim path)))
    | None ->
        Hashtbl.replace color tid `Grey;
        (match Hashtbl.find_opt adj tid with
        | Some succs -> Hashtbl.iter (fun succ () -> dfs (tid :: path) succ) succs
        | None -> ());
        Hashtbl.replace color tid `Black
  in
  match Hashtbl.iter (fun tid _ -> dfs [] tid) adj with
  | () -> []
  | exception Cycle cycle ->
      [ violation "serializable" "conflict cycle in committed projection: %a" pp_tids cycle ]

(* ------------------------------------------------------------------ *)
(* Dependency-obligation discharge.

   Obligations per [Dep_type] (timestamps from the Commit/Abort
   events; a group commit gives its members one shared timestamp, and
   "not before" admits equality):

   - CD: the dependent commits only after the master has terminated.
   - AD: the dependent commits only after the master has *committed*;
     if the master aborts, the dependent must not commit.
   - GC: both commit in the same atomic Commit event, or neither does.
   - BD: the dependent begins only after the master commits; if the
     master aborts, the dependent never begins.
   - EXC: at most one of the two commits. *)

let check_dependencies entries =
  let t = times entries in
  let commit_of tid = Hashtbl.find_opt t.commit_at tid in
  let abort_of tid = Hashtbl.find_opt t.abort_at tid in
  let begin_of tid = Hashtbl.find_opt t.begin_at tid in
  let deps =
    List.filter_map
      (fun e ->
        match e.Trace.ev with Trace.Dep { dtype; master; dependent } -> Some (dtype, master, dependent) | _ -> None)
      entries
  in
  List.concat_map
    (fun (dtype, m, d) ->
      let pair = Format.asprintf "%s %a->%a" dtype Tid.pp m Tid.pp d in
      match dtype with
      | "CD" -> (
          match commit_of d with
          | None -> []
          | Some dc -> (
              match (commit_of m, abort_of m) with
              | Some mc, _ when mc <= dc -> []
              | _, Some ma when ma < dc -> []
              | _ -> [ violation "dependencies" "%s: dependent committed before master terminated" pair ]))
      | "AD" ->
          let abort_clause =
            match (abort_of m, commit_of d) with
            | Some _, Some _ -> [ violation "dependencies" "%s: master aborted but dependent committed" pair ]
            | _ -> []
          in
          let commit_clause =
            match commit_of d with
            | None -> []
            | Some dc -> (
                match commit_of m with
                | Some mc when mc <= dc -> []
                | Some _ -> [ violation "dependencies" "%s: dependent committed before master" pair ]
                | None ->
                    if abort_of m = None then
                      [ violation "dependencies" "%s: dependent committed, master never committed" pair ]
                    else [] (* covered by abort_clause *))
          in
          abort_clause @ commit_clause
      | "GC" -> (
          match (commit_of m, commit_of d) with
          | Some mc, Some dc when mc = dc -> []
          | Some _, Some _ -> [ violation "dependencies" "%s: group members committed in separate events" pair ]
          | None, None -> []
          | Some _, None | None, Some _ ->
              [ violation "dependencies" "%s: one group-commit member committed without the other" pair ])
      | "BD" -> (
          match begin_of d with
          | None -> []
          | Some db -> (
              match (commit_of m, abort_of m) with
              | Some mc, _ when mc < db -> []
              | _, Some ma when ma < db ->
                  [ violation "dependencies" "%s: dependent began after master aborted" pair ]
              | _ -> [ violation "dependencies" "%s: dependent began before master committed" pair ]))
      | "EXC" -> (
          match (commit_of m, commit_of d) with
          | Some _, Some _ -> [ violation "dependencies" "%s: both members of an exclusion group committed" pair ]
          | _ -> [])
      | "XGC" -> (
          (* Cross-shard group commit: the members live on different
             shards, so their Commit events are necessarily separate —
             the obligation is both-or-neither, not same-event. *)
          match (commit_of m, commit_of d) with
          | Some _, Some _ | None, None -> []
          | Some _, None | None, Some _ ->
              [ violation "dependencies" "%s: one cross-shard group member committed without the other" pair ])
      | _ -> [ violation "dependencies" "%s: unknown dependency type" pair ])
    deps

(* ------------------------------------------------------------------ *)
(* Delegation / lock-ownership bookkeeping.

   Grants establish ownership; [Delegate] moves it; a release (or
   upgrade, or suspension) is legal only from the current owner.  In
   particular a delegated lock must never be released by the delegator
   — section 4's delegate algorithm moves the LRD wholesale. *)

let mode_rank = function 'R' -> 1 | 'I' | 'E' | 'Q' -> 2 | 'W' -> 3 | _ -> 0

let check_lock_ownership entries =
  let holders : (Oid.t, (Tid.t, char) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  let of_oid oid =
    match Hashtbl.find_opt holders oid with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add holders oid h;
        h
  in
  let violations = ref [] in
  let bad fmt = Format.kasprintf (fun detail -> violations := { check = "lock-ownership"; detail } :: !violations) fmt
  in
  List.iter
    (fun { Trace.seq; ev; _ } ->
      match ev with
      | Trace.Lock { tid; oid; mode; action } -> (
          let h = of_oid oid in
          match action with
          | Trace.Grant | Trace.Resume -> Hashtbl.replace h tid mode
          | Trace.Upgrade ->
              if Hashtbl.mem h tid then Hashtbl.replace h tid mode
              else bad "seq %d: %a upgrades %a without holding it" seq Tid.pp tid Oid.pp oid
          | Trace.Release ->
              if Hashtbl.mem h tid then Hashtbl.remove h tid
              else bad "seq %d: %a releases %a without owning it" seq Tid.pp tid Oid.pp oid
          | Trace.Suspend ->
              if not (Hashtbl.mem h tid) then
                bad "seq %d: %a suspended on %a without owning it" seq Tid.pp tid Oid.pp oid
          | Trace.Request | Trace.Block | Trace.Transfer -> ())
      | Trace.Delegate { from_; to_; moved } ->
          List.iter
            (fun oid ->
              let h = of_oid oid in
              match Hashtbl.find_opt h from_ with
              | None -> bad "seq %d: delegation %a->%a moves %a which the delegator does not hold" seq Tid.pp from_ Tid.pp to_ Oid.pp oid
              | Some mode ->
                  Hashtbl.remove h from_;
                  let merged =
                    match Hashtbl.find_opt h to_ with
                    | Some m when mode_rank m >= mode_rank mode -> m
                    | _ -> mode
                  in
                  Hashtbl.replace h to_ merged)
            moved
      | _ -> ())
    entries;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Two-phase and strictness.

   2PL: once a transaction has released any granted lock it acquires no
   further ones.  Strictness (the engine holds all locks to
   termination): a release is legal only after the transaction's
   Commit/Abort event.  Histories that cooperate via permits keep their
   locks (conflicting grants are *suspended*, not released), so this
   checker applies to permit-using models too — but the harness leaves
   it opt-in per model for clarity. *)

let check_two_phase ?(strict = true) entries =
  let t = times entries in
  let term_at tid =
    match (Hashtbl.find_opt t.commit_at tid, Hashtbl.find_opt t.abort_at tid) with
    | Some c, Some a -> Some (min c a)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let first_release : (Tid.t, int) Hashtbl.t = Hashtbl.create 32 in
  let violations = ref [] in
  let bad check fmt = Format.kasprintf (fun detail -> violations := { check; detail } :: !violations) fmt in
  List.iter
    (fun { Trace.seq; ev; _ } ->
      match ev with
      | Trace.Lock { tid; oid; action = Trace.Release; _ } ->
          if not (Hashtbl.mem first_release tid) then Hashtbl.add first_release tid seq;
          if strict then begin
            match term_at tid with
            | Some term when term <= seq -> ()
            | _ -> bad "strictness" "seq %d: %a released %a before terminating" seq Tid.pp tid Oid.pp oid
          end
      | Trace.Lock { tid; oid; action = Trace.Grant | Trace.Upgrade; _ } -> (
          match Hashtbl.find_opt first_release tid with
          | Some rel when rel < seq ->
              bad "two-phase" "seq %d: %a acquired %a after its first release (seq %d)" seq Tid.pp tid Oid.pp oid rel
          | _ -> ())
      | _ -> ())
    entries;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Visibility: an operation that touches another transaction's
   uncommitted ("dirty") data is legal only if the writer sanctioned it
   with a prior [permit] covering that object and that operation — the
   paper's non-blocking cooperation rule.  Increments are the
   section-5 exception: I/I commutes by lock table, so concurrent
   increments need no permit.  Delegation moves the dirty attribution
   with the responsibility; commit and abort clear it (abort's undo
   happens before the locks drop, so post-abort readers see
   pre-images).

   The permit model mirrors the lock manager's exactly:
   - sanction is *transitive* (rule 3): writer permits t1, t1 permits
     the reader — each hop covering the object and the operation — is
     as good as a direct permit, and a wildcard grantee reaches anyone;
   - permits *expire* when either endpoint terminates ([remove_permits]
     runs at commit and abort), so a chain through a dead grantor
     sanctions nothing — the clause that catches an engine whose
     cleanup is broken;
   - [delegate] re-grants the delegator's permits from the delegatee on
     the moved objects, just as the lock manager rewrites its permit
     descriptors. *)

let check_visibility entries =
  let dirty : (Oid.t, Tid.t * char) Hashtbl.t = Hashtbl.create 32 in
  let permits = ref [] (* live (from_, to_, oids, ops, at), newest first *) in
  (* Initiate parentage: a subtransaction "may access any object
     currently accessed by an ancestor" (section 3.1.4), so data
     dirtied by an ancestor is visible down the tree even when the
     explicit permit chain only covers the immediate parent. *)
  let parent : (Tid.t, Tid.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Initiate { tid; parent = p } when not (Tid.is_null p) -> Hashtbl.replace parent tid p
      | _ -> ())
    entries;
  let rec is_ancestor a tid =
    match Hashtbl.find_opt parent tid with
    | Some p -> Tid.equal p a || is_ancestor a p
    | None -> false
  in
  let clear_tid tid =
    let gone = Hashtbl.fold (fun oid (w, _) acc -> if Tid.equal w tid then oid :: acc else acc) dirty [] in
    List.iter (Hashtbl.remove dirty) gone;
    (* remove_permits: a terminated transaction neither grants nor
       holds permission any longer. *)
    permits :=
      List.filter (fun (f, t_, _, _, _) -> not (Tid.equal f tid || Tid.equal t_ tid)) !permits
  in
  (* Rule-3 transitive sanction: a chain of live permits from the dirty
     writer to the reader, every hop granted before [at] and covering
     [oid] and [op] (the intersection of the hop operation sets contains
     [op] iff every hop's set does).  A wildcard grantee reaches the
     reader directly.  [visited] is sound because the per-hop test does
     not depend on the path taken. *)
  let sanctioned ~writer ~reader ~oid ~op ~at =
    let visited : (Tid.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let rec reach from_ =
      (not (Hashtbl.mem visited from_))
      && begin
           Hashtbl.add visited from_ ();
           List.exists
             (fun (f, t_, oids, ops, p_at) ->
               p_at < at
               && Tid.equal f from_
               && (oids = [] || List.exists (Oid.equal oid) oids)
               && String.contains ops op
               && (Tid.is_null t_ || Tid.equal t_ reader || reach t_))
             !permits
         end
    in
    reach writer
  in
  let violations = ref [] in
  let bad fmt = Format.kasprintf (fun detail -> violations := { check = "visibility"; detail } :: !violations) fmt in
  List.iter
    (fun { Trace.seq; ev; _ } ->
      match ev with
      | Trace.Op { tid; oid; op } ->
          (* Commuting-family exceptions to the dirty rule: concurrent
             increments/escrow deltas need no permit over each other,
             likewise concurrent enqueues (section-5 semantics — the
             lock table grants them together). *)
          let commutes_with_dirty dop =
            (delta_op op && delta_op dop) || (op = 'Q' && dop = 'Q')
          in
          (match Hashtbl.find_opt dirty oid with
          | Some (writer, dop) when not (Tid.equal writer tid) ->
              if
                (not (commutes_with_dirty dop))
                && (not (is_ancestor writer tid))
                && not (sanctioned ~writer ~reader:tid ~oid ~op ~at:seq)
              then
                bad "seq %d: %a %c-accesses %a dirtied by %a without a covering permit" seq Tid.pp tid op Oid.pp
                  oid Tid.pp writer
          | _ -> ());
          if op = 'W' || op = 'I' || op = 'E' || op = 'Q' then Hashtbl.replace dirty oid (tid, op)
      | Trace.Permit { from_; to_; oids; ops } -> permits := (from_, to_, oids, ops, seq) :: !permits
      | Trace.Delegate { from_; to_; moved } ->
          List.iter
            (fun oid ->
              match Hashtbl.find_opt dirty oid with
              | Some (w, dop) when Tid.equal w from_ && List.exists (Oid.equal oid) moved ->
                  Hashtbl.replace dirty oid (to_, dop)
              | _ -> ())
            moved;
          (* The lock manager rewrites permit descriptors granted by the
             delegator on moved objects to be granted by the delegatee.
             A permit with an explicit oid list splits along the moved
             boundary; an object-wildcard permit (synthetic traces only
             — the engine always expands) conservatively stays with the
             delegator *and* is re-granted on the moved objects. *)
          permits :=
            List.concat_map
              (fun ((f, t_, oids, ops, p_at) as p) ->
                if not (Tid.equal f from_) then [ p ]
                else if oids = [] then [ p; (to_, t_, moved, ops, p_at) ]
                else
                  let m, keep = List.partition (fun o -> List.exists (Oid.equal o) moved) oids in
                  (if m = [] then [] else [ (to_, t_, m, ops, p_at) ])
                  @ if keep = [] then [] else [ (f, t_, keep, ops, p_at) ])
              !permits
      | Trace.Commit { tids; _ } -> List.iter clear_tid tids
      | Trace.Abort { tid } -> clear_tid tid
      | _ -> ())
    entries;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Snapshot visibility: a read-only transaction that began against the
   snapshot at timestamp [b] (its [Snapshot] event) must, on every
   [Snap_read], return exactly the newest version committed at or
   before [b] — the version whose writer's [Commit] event carries the
   largest timestamp <= [b] among committed writers of that object
   (0 when no such writer exists: the initial, never-engine-written
   state).  Writer ops are re-attributed along [Delegate] exactly as in
   [check_serializable], so a delegated write counts for the
   transaction finally responsible for it.

   The axiom also pins the lock-free discipline itself: a transaction
   that opened a snapshot never appears in a [Lock] event and performs
   no locked data operation — that is what "never blocking, never
   deadlocking" rests on. *)

let check_snapshot_visibility entries =
  let snapshot_ts : (Tid.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Snapshot { tid; ts } ->
          if not (Hashtbl.mem snapshot_ts tid) then Hashtbl.add snapshot_ts tid ts
      | _ -> ())
    entries;
  if Hashtbl.length snapshot_ts = 0 then []
  else begin
    (* Writer ops with delegation re-attribution, plus each committed
       transaction's commit timestamp. *)
    let ops = ref [] in
    let commit_ts : (Tid.t, int) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun { Trace.ev; seq; _ } ->
        match ev with
        | Trace.Op { tid; oid; op } when op = 'W' || op = 'I' || op = 'E' || op = 'Q' ->
            ops := { owner = tid; oid; op; at = seq } :: !ops
        | Trace.Delegate { from_; to_; moved } ->
            List.iter
              (fun r -> if Tid.equal r.owner from_ && List.exists (Oid.equal r.oid) moved then r.owner <- to_)
              !ops
        | Trace.Commit { tids; ts } ->
            if ts > 0 then
              List.iter (fun tid -> if not (Hashtbl.mem commit_ts tid) then Hashtbl.add commit_ts tid ts) tids
        | _ -> ())
      entries;
    let writes = !ops in
    (* Newest committed version of [oid] visible at snapshot ts [b]. *)
    let expected_at oid b =
      List.fold_left
        (fun acc r ->
          if not (Oid.equal r.oid oid) then acc
          else
            match Hashtbl.find_opt commit_ts r.owner with
            | Some cts when cts <= b -> max acc cts
            | _ -> acc)
        0 writes
    in
    let violations = ref [] in
    let bad fmt =
      Format.kasprintf (fun detail -> violations := { check = "snapshot-visibility"; detail } :: !violations) fmt
    in
    List.iter
      (fun { Trace.seq; ev; _ } ->
        match ev with
        | Trace.Snap_read { tid; oid; ts } -> (
            match Hashtbl.find_opt snapshot_ts tid with
            | None -> bad "seq %d: %a snapshot-reads %a without an open snapshot" seq Tid.pp tid Oid.pp oid
            | Some b ->
                let want = expected_at oid b in
                if ts <> want then
                  bad "seq %d: %a read %a at version ts=%d, newest committed before begin (ts=%d) is ts=%d"
                    seq Tid.pp tid Oid.pp oid ts b want)
        | Trace.Lock { tid; oid; action; _ } when Hashtbl.mem snapshot_ts tid ->
            bad "seq %d: read-only %a entered the lock table (%s %a)" seq Tid.pp tid
              (Trace.lock_action_to_string action) Oid.pp oid
        | Trace.Op { tid; oid; op } when Hashtbl.mem snapshot_ts tid ->
            bad "seq %d: read-only %a performed locked op %c on %a" seq Tid.pp tid op Oid.pp oid
        | _ -> ())
      entries;
    List.rev !violations
  end

(* ------------------------------------------------------------------ *)
(* Model-contract checkers: the caller states the structure the model
   was supposed to build (its groups, its compensation pairs) and the
   oracle verifies the history honoured it.  Aiming these at a
   deliberately mis-built model is how the negative tests prove the
   oracle has teeth. *)

(* Every listed group commits atomically: all members in one Commit
   event, or no member at all.  [~same_event:false] relaxes the
   one-event requirement to all-or-nothing — the contract for
   cross-shard groups, whose members commit on different domains and
   therefore in separate (per-shard) Commit events. *)
let check_group_atomicity ?(same_event = true) ~groups entries =
  let t = times entries in
  List.concat_map
    (fun group ->
      let outcomes = List.map (fun tid -> (tid, Hashtbl.find_opt t.commit_at tid)) group in
      let committed = List.filter (fun (_, c) -> c <> None) outcomes in
      if committed = [] then []
      else if List.length committed <> List.length group then
        [
          violation "group-atomicity" "group %a committed only %a" pp_tids group pp_tids
            (List.map fst committed);
        ]
      else if not same_event then []
      else
        match List.sort_uniq compare (List.filter_map snd outcomes) with
        | [ _ ] -> []
        | _ -> [ violation "group-atomicity" "group %a committed across separate events" pp_tids group ]
    )
    groups

(* Saga discipline over (component, compensation) pairs, given in the
   saga's forward order: a compensation commits only if its component
   did, and committed compensations run in reverse component order. *)
let check_compensation_order ~pairs entries =
  let t = times entries in
  let commit_of tid = Hashtbl.find_opt t.commit_at tid in
  let orphan =
    List.concat_map
      (fun (comp, compensation) ->
        match (commit_of comp, commit_of compensation) with
        | None, Some _ ->
            [
              violation "compensation-order" "compensation %a committed for uncommitted component %a" Tid.pp
                compensation Tid.pp comp;
            ]
        | _ -> [])
      pairs
  in
  let committed_pairs =
    List.filter_map
      (fun (comp, compensation) ->
        match (commit_of comp, commit_of compensation) with
        | Some c, Some k -> Some (comp, compensation, c, k)
        | _ -> None)
      pairs
  in
  let rec ordered = function
    | [] -> []
    | p1 :: rest ->
        List.concat_map
          (fun p2 ->
            let (_, _, cc1, _), (_, _, cc2, _) = (p1, p2) in
            let (_, k_early, _, kc_early), (_, k_late, _, kc_late) = if cc1 < cc2 then (p1, p2) else (p2, p1) in
            (* the later-committed component must be compensated first *)
            if kc_late < kc_early then []
            else
              [
                violation "compensation-order"
                  "compensations %a (seq %d) and %a (seq %d) did not run in reverse component order" Tid.pp
                  k_late kc_late Tid.pp k_early kc_early;
              ])
          rest
        @ ordered rest
  in
  orphan @ ordered committed_pairs

(* ------------------------------------------------------------------ *)
(* Recovery x dependencies: given the winners reported by
   [Recovery.recover] after a crash, no dependency obligation recorded
   in the pre-crash trace tail may be left half-discharged in the
   durable state.  GC groups are both-or-neither, AD dependents cannot
   outlive an un-committed master (the master's commit record precedes
   the dependent's in the WAL, and recovery keeps prefixes), and a CD
   dependent can survive only a terminated master. *)

let check_recovered_obligations ~winners entries =
  let winner tid = List.exists (Tid.equal tid) winners in
  let t = times entries in
  let master_aborted m = Hashtbl.mem t.abort_at m in
  let deps =
    List.filter_map
      (fun e ->
        match e.Trace.ev with Trace.Dep { dtype; master; dependent } -> Some (dtype, master, dependent) | _ -> None)
      entries
  in
  List.concat_map
    (fun (dtype, m, d) ->
      let pair = Format.asprintf "%s %a->%a" dtype Tid.pp m Tid.pp d in
      match dtype with
      | "GC" ->
          if winner m = winner d then []
          else
            [
              violation "recovered-obligations" "%s: group-commit pair recovered half-committed (winners: %a)"
                pair pp_tids (List.filter winner [ m; d ]);
            ]
      | "AD" ->
          if winner d && not (winner m) then
            [ violation "recovered-obligations" "%s: dependent survived recovery without its master" pair ]
          else []
      | "CD" ->
          if winner d && (not (winner m)) && not (master_aborted m) then
            [
              violation "recovered-obligations" "%s: dependent survived recovery, master never terminated" pair;
            ]
          else []
      | "EXC" ->
          if winner m && winner d then
            [ violation "recovered-obligations" "%s: both exclusion-group members survived recovery" pair ]
          else []
      | _ -> [])
    deps

(* ------------------------------------------------------------------ *)
(* Convenience bundle for fully-isolated models (no permits): SR +
   dependency discharge + lock bookkeeping + strict 2PL. *)

let check_strict_history entries =
  check_serializable entries @ check_dependencies entries @ check_lock_ownership entries
  @ check_two_phase ~strict:true entries @ check_visibility entries
  @ check_snapshot_visibility entries

(* Cooperative bundle (permits in play): everything except global SR
   and the strictness clause that permits deliberately relax. *)
let check_cooperative_history entries =
  check_dependencies entries @ check_lock_ownership entries @ check_visibility entries
  @ check_snapshot_visibility entries
