(** Post-hoc conformance checkers over a recorded {!Trace} history.

    Each checker replays one axiom of the paper's semantics against the
    chronological entry list and returns the violations it finds (empty
    list = the history conforms).  The checkers see only public ids and
    event order, so they work equally on live memory-sink runs, on the
    ring tail surviving a simulated power loss, and on JSONL traces
    loaded from disk — and they can be aimed at synthetic histories to
    prove they would catch a broken implementation.

    Model-specific legality matters: cursor-stability and cooperative
    histories are not conflict-serializable by design, so the harness
    picks which checkers apply to which model. *)

module Tid = Asset_util.Id.Tid

type violation = { check : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val committed : Trace.entry list -> Tid.t list
(** Every transaction named in a [Commit] event, in event order. *)

val aborted : Trace.entry list -> Tid.t list
(** Every transaction with an [Abort] event, in event order. *)

val check_serializable : Trace.entry list -> violation list
(** Conflict-serializability of the committed projection: operations
    re-attributed along [Delegate] events; R/R, delta/delta ('I'/'E'
    in any combination) and Q/Q commuting; cycle search over the
    resulting conflict graph. *)

val check_dependencies : Trace.entry list -> violation list
(** Discharge of every [Dep] obligation: CD — dependent commits only
    after the master terminated; AD — dependent commits only after the
    master committed, and never if it aborted; GC — both commit in one
    atomic [Commit] event or neither; BD — dependent begins only after
    the master commits; EXC — at most one commits; XGC — cross-shard
    group commit, both commit (in necessarily separate per-shard
    events) or neither does. *)

val check_lock_ownership : Trace.entry list -> violation list
(** Grants establish ownership, [Delegate] moves it (stronger mode
    wins on merge), and upgrade/release/suspend are legal only from
    the current owner. *)

val check_two_phase : ?strict:bool -> Trace.entry list -> violation list
(** 2PL: no grant/upgrade after a transaction's first release.  With
    [strict] (default), a release is additionally legal only after the
    transaction's Commit/Abort event. *)

val check_visibility : Trace.entry list -> violation list
(** An operation touching another transaction's uncommitted data is
    legal only under a prior [Permit] covering that object and
    operation — except within a commuting family (delta-on-delta:
    'I'/'E'; enqueue-on-enqueue), which needs no permit,
    and data dirtied by an ancestor per [Initiate]
    parentage, which is visible down the transaction tree (section
    3.1.4); delegation moves dirty attribution, commit/abort clear
    it.  Permits follow the lock manager's semantics exactly: sanction
    is transitive with a wildcard grantee reaching anyone (rule 3),
    permits expire when either endpoint terminates (the engine's
    [remove_permits] at commit/abort), and [Delegate] re-grants the
    delegator's permits from the delegatee on the moved objects. *)

val check_snapshot_visibility : Trace.entry list -> violation list
(** Snapshot visibility: every [Snap_read] by a transaction that
    opened a snapshot at timestamp [b] returns exactly the newest
    version committed at or before [b] (writer ops re-attributed along
    [Delegate]; 0 = the initial state), and a snapshot-opening
    transaction never appears in a [Lock] event nor performs a locked
    data operation.  Trivially passes histories with no [Snapshot]
    events. *)

val check_group_atomicity :
  ?same_event:bool -> groups:Tid.t list list -> Trace.entry list -> violation list
(** Contract checker: every listed group commits all-or-nothing, in a
    single [Commit] event.  [~same_event:false] (default [true]) drops
    the one-event requirement, keeping only all-or-nothing — the
    contract for cross-shard groups whose members commit on different
    domains. *)

val check_compensation_order : pairs:(Tid.t * Tid.t) list -> Trace.entry list -> violation list
(** Contract checker for sagas: [pairs] lists (component,
    compensation) in the saga's forward order.  A compensation commits
    only if its component did, and committed compensations run in
    reverse component order. *)

val check_recovered_obligations : winners:Tid.t list -> Trace.entry list -> violation list
(** Given the winners reported by recovery after a crash and the
    pre-crash trace tail: GC pairs survive both-or-neither, an AD
    dependent cannot survive without its master, a CD dependent only
    survives a terminated master, EXC members never both survive. *)

val check_strict_history : Trace.entry list -> violation list
(** Bundle for fully-isolated models: serializability + dependencies +
    lock ownership + strict 2PL + visibility + snapshot visibility. *)

val check_cooperative_history : Trace.entry list -> violation list
(** Bundle for permit-using models: dependencies + lock ownership +
    visibility + snapshot visibility (no global SR, no 2PL). *)
