(* Deterministic cooperative scheduler over OCaml 5 effect handlers.

   EOS runs transactions as OS processes that block by spinning; the
   section 4.2 algorithms are phrased as "t_i blocks and retries later
   starting at step 1".  Here every transaction (and the application's
   main program) is a *fiber*; a blocking primitive performs the
   [Wait_until] effect, which parks the fiber under a wake condition,
   and the engine re-evaluates conditions whenever its state changes.
   This preserves exactly the block-and-retry structure while making
   every schedule reproducible: given the same policy (FIFO, or seeded
   random) the interleaving is identical run to run.

   Hot-path structure.  The run queue is a growable circular-buffer
   deque: FIFO push/pop and the random policy's swap-remove are all
   O(1).  Parked fibers come in two kinds.  A *version-keyed* waiter
   (parked via [wait_until ~watch] when a clock has been registered
   with [set_clock]) promises that its condition only changes value
   when the clock advances; such waiters live in a queue ordered by the
   clock value at which their condition was last seen false, and
   [wake_ready] re-evaluates only those whose watermark the clock has
   passed — O(1) per step while the engine version is unchanged,
   instead of re-running every parked closure after every fiber step.
   A plain waiter (no [~watch], or no clock registered) is re-polled on
   every wake sweep, preserving the original semantics for conditions
   the version counter does not guard.

   Deadlock becomes observable rather than a hang: when no fiber is
   runnable and no parked condition is true, the scheduler calls the
   [on_stall] hook (the engine uses it to pick and abort a deadlock
   victim); if the hook makes no progress, [Deadlock] is raised with the
   parked fibers' reasons. *)

type candidate = { cfid : int; clabel : string }

type policy =
  | Fifo
  | Random_seeded of int
  | Controlled of (candidate array -> int)

type fiber = {
  fid : int;
  label : string;
  mutable resume : unit -> unit;
}

type parked = {
  fiber : fiber;
  cond : unit -> bool;
  reason : string;
  mutable watched : int; (* clock value at which [cond] was last seen false *)
}

exception Deadlock of string list
exception Fiber_failed of string * exn

(* Growable circular-buffer deque.  [dummy] fills vacated slots so the
   GC does not retain popped elements.  Capacity is a power of two, so
   index wrap is a mask. *)
module Ring = struct
  type 'a t = { mutable buf : 'a array; mutable head : int; mutable size : int; dummy : 'a }

  let create dummy = { buf = Array.make 16 dummy; head = 0; size = 0; dummy }
  let size r = r.size
  let is_empty r = r.size = 0

  let grow r =
    let cap = Array.length r.buf in
    let bigger = Array.make (2 * cap) r.dummy in
    for i = 0 to r.size - 1 do
      bigger.(i) <- r.buf.((r.head + i) land (cap - 1))
    done;
    r.buf <- bigger;
    r.head <- 0

  let push_back r x =
    if r.size = Array.length r.buf then grow r;
    r.buf.((r.head + r.size) land (Array.length r.buf - 1)) <- x;
    r.size <- r.size + 1

  let pop_front r =
    if r.size = 0 then invalid_arg "Ring.pop_front: empty";
    let x = r.buf.(r.head) in
    r.buf.(r.head) <- r.dummy;
    r.head <- (r.head + 1) land (Array.length r.buf - 1);
    r.size <- r.size - 1;
    x

  let peek_front r =
    if r.size = 0 then invalid_arg "Ring.peek_front: empty";
    r.buf.(r.head)

  (* [get r i] is the i-th element from the front. *)
  let get r i =
    if i < 0 || i >= r.size then invalid_arg "Ring.get: out of range";
    r.buf.((r.head + i) land (Array.length r.buf - 1))

  (* O(1) removal for the random policy: the back element fills the
     hole, so relative order is not preserved. *)
  let swap_remove r i =
    let x = get r i in
    let cap = Array.length r.buf in
    let pos = (r.head + i) land (cap - 1) in
    let last = (r.head + r.size - 1) land (cap - 1) in
    r.buf.(pos) <- r.buf.(last);
    r.buf.(last) <- r.dummy;
    r.size <- r.size - 1;
    x

  (* Order-preserving removal for the controlled policy: elements after
     [i] shift forward one slot, so the queue order the chooser saw is
     exactly the order the remaining candidates keep.  O(n), but
     controlled runs are bounded scenarios where n is tiny. *)
  let remove_at r i =
    let x = get r i in
    let cap = Array.length r.buf in
    for j = i to r.size - 2 do
      r.buf.((r.head + j) land (cap - 1)) <- r.buf.((r.head + j + 1) land (cap - 1))
    done;
    r.buf.((r.head + r.size - 1) land (cap - 1)) <- r.dummy;
    r.size <- r.size - 1;
    x

  (* Front-to-back fold, newest last. *)
  let fold r ~init ~f =
    let acc = ref init in
    for i = 0 to r.size - 1 do
      acc := f !acc (get r i)
    done;
    !acc
end

let dummy_fiber = { fid = -1; label = "<free slot>"; resume = (fun () -> ()) }

let dummy_parked =
  { fiber = dummy_fiber; cond = (fun () -> false); reason = "<free slot>"; watched = 0 }

type t = {
  runnable : fiber Ring.t; (* front = oldest; FIFO pops the front *)
  waiters : parked Ring.t;
      (* version-keyed waiters in park order; [watched] is nondecreasing
         front to back and never exceeds the current clock value *)
  mutable polled : parked list; (* plain waiters, newest first, re-polled every sweep *)
  mutable next_fid : int;
  mutable current : fiber option;
  mutable steps : int;
  max_steps : int;
  rng : Asset_util.Rng.t option;
  chooser : (candidate array -> int) option;
  mutable on_stall : unit -> bool;
  mutable on_quiesce : unit -> unit;
  mutable clock : (unit -> int) option;
  mutable trace : (int * string) list; (* (fid, event), newest first *)
  record_trace : bool;
}

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait_until : ((unit -> bool) * string * int option) -> unit Effect.t

let create ?(policy = Fifo) ?(max_steps = 10_000_000) ?(record_trace = false) () =
  {
    runnable = Ring.create dummy_fiber;
    waiters = Ring.create dummy_parked;
    polled = [];
    next_fid = 0;
    current = None;
    steps = 0;
    max_steps;
    rng = (match policy with Random_seeded seed -> Some (Asset_util.Rng.create seed) | Fifo | Controlled _ -> None);
    chooser = (match policy with Controlled f -> Some f | Fifo | Random_seeded _ -> None);
    on_stall = (fun () -> false);
    on_quiesce = (fun () -> ());
    clock = None;
    trace = [];
    record_trace;
  }

let set_on_stall t f = t.on_stall <- f
let set_on_quiesce t f = t.on_quiesce <- f
let set_clock t f = t.clock <- Some f

let log_event t fid event = if t.record_trace then t.trace <- (fid, event) :: t.trace
let trace t = List.rev t.trace

let enqueue t fiber = Ring.push_back t.runnable fiber

(* Pop the next fiber according to the policy.  FIFO takes the front
   (oldest); random swap-removes a uniformly random element.  The
   random draw indexes from the *newest* end, matching the original
   newest-first list representation, so a given seed keeps selecting
   the same fiber at each decision point. *)
let pop_runnable t =
  let n = Ring.size t.runnable in
  if n = 0 then None
  else
    match t.chooser with
    | Some choose ->
        (* Choice point: the strategy sees every runnable fiber in
           stable (queue) order and picks one.  Invoked even when n = 1
           so a systematic explorer observes every scheduling segment
           boundary, not just the branching ones. *)
        let cands =
          Array.init n (fun i ->
              let f = Ring.get t.runnable i in
              { cfid = f.fid; clabel = f.label })
        in
        let i = choose cands in
        if i < 0 || i >= n then
          invalid_arg
            (Printf.sprintf "Scheduler: controlled choice %d out of range [0, %d)" i n);
        Some (Ring.remove_at t.runnable i)
    | None -> (
        match t.rng with
        | None -> Some (Ring.pop_front t.runnable)
        | Some rng ->
            let i = Asset_util.Rng.int rng n in
            Some (Ring.swap_remove t.runnable (n - 1 - i)))

let current_fid t = match t.current with Some f -> f.fid | None -> -1

(* Park the current fiber.  A watched park (with a registered clock)
   re-evaluates the condition once here: the caller's snapshot may be
   stale — the clock may have advanced between the caller reading it
   and the park — so a condition that is already true joins the polled
   list and wakes on the next sweep, and one that is false is enqueued
   with the *current* clock value as its watermark (the condition was
   just seen false at this clock reading, so nothing can be missed). *)
let park t entry ~watch =
  match (watch, t.clock) with
  | Some _, Some clock ->
      if entry.cond () then t.polled <- entry :: t.polled
      else begin
        entry.watched <- clock ();
        Ring.push_back t.waiters entry
      end
  | _ -> t.polled <- entry :: t.polled

let handler t fiber =
  {
    Effect.Deep.retc = (fun () -> log_event t fiber.fid "finished");
    exnc = (fun e -> raise (Fiber_failed (fiber.label, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                fiber.resume <- (fun () -> Effect.Deep.continue k ());
                log_event t fiber.fid "yield";
                enqueue t fiber)
        | Wait_until (cond, reason, watch) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                fiber.resume <- (fun () -> Effect.Deep.continue k ());
                log_event t fiber.fid ("park: " ^ reason);
                park t { fiber; cond; reason; watched = 0 } ~watch)
        | _ -> None);
  }

let spawn t ~label body =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  let fiber = { fid; label; resume = (fun () -> ()) } in
  fiber.resume <- (fun () -> Effect.Deep.match_with body () (handler t fiber));
  if Asset_obs.Trace.on () then Asset_obs.Trace.emit (Asset_obs.Trace.Sched_spawn { fid; label });
  log_event t fid ("spawn: " ^ label);
  enqueue t fiber;
  fid

(* Primitives available inside fibers. *)
let yield () = Effect.perform Yield

let wait_until ?(reason = "condition") ?watch cond =
  if not (cond ()) then Effect.perform (Wait_until (cond, reason, watch))

let wake t p =
  log_event t p.fiber.fid "wake";
  enqueue t p.fiber

(* Wake every parked fiber whose condition now holds.  Plain waiters
   are re-polled in park order; version-keyed waiters are re-evaluated
   only while their watermark is behind the clock, and a still-false
   condition is re-queued at the new watermark (the queue stays sorted
   because the clock is monotone).  Returns true if anything woke. *)
let wake_ready t =
  let woke = ref false in
  (match t.polled with
  | [] -> ()
  | ps ->
      let ready, still = List.partition (fun p -> p.cond ()) ps in
      t.polled <- still;
      List.iter
        (fun p ->
          woke := true;
          wake t p)
        (List.rev ready));
  (match t.clock with
  | None -> ()
  | Some clock ->
      let now = clock () in
      let continue = ref true in
      while !continue && not (Ring.is_empty t.waiters) do
        if (Ring.peek_front t.waiters).watched >= now then continue := false
        else begin
          let p = Ring.pop_front t.waiters in
          if p.cond () then begin
            woke := true;
            wake t p
          end
          else begin
            p.watched <- now;
            Ring.push_back t.waiters p
          end
        end
      done);
  !woke

let no_parked t = t.polled = [] && Ring.is_empty t.waiters

(* Parked reasons, newest park first (waiters back-to-front, then the
   polled list which is already newest first). *)
let parked_entries t =
  Ring.fold t.waiters ~init:t.polled ~f:(fun acc p -> p :: acc)

let run t =
  let rec loop () =
    t.steps <- t.steps + 1;
    if t.steps > t.max_steps then failwith "Scheduler.run: step budget exhausted (livelock?)";
    match pop_runnable t with
    | Some fiber ->
        t.current <- Some fiber;
        log_event t fiber.fid "run";
        let resume = fiber.resume in
        fiber.resume <- (fun () -> invalid_arg "fiber resumed twice");
        resume ();
        t.current <- None;
        ignore (wake_ready t);
        loop ()
    | None ->
        (* Quiescence point: no fiber is runnable.  The engine uses this
           hook to flush batched group-commit forces. *)
        t.on_quiesce ();
        if no_parked t then () (* all fibers done *)
        else if wake_ready t then loop ()
        else if begin
          (* Stall: nothing runnable, nothing wakeable — the moment the
             deadlock-resolution hook observes. *)
          if Asset_obs.Trace.on () then Asset_obs.Trace.emit Asset_obs.Trace.Sched_stall;
          t.on_stall ()
        end
        then begin
          ignore (wake_ready t);
          if Ring.is_empty t.runnable && not (wake_ready t) then
            raise
              (Deadlock
                 (List.map (fun p -> Printf.sprintf "%s: %s" p.fiber.label p.reason) (parked_entries t)))
          else loop ()
        end
        else
          raise
            (Deadlock
               (List.map (fun p -> Printf.sprintf "%s: %s" p.fiber.label p.reason) (parked_entries t)))
  in
  loop ()

(* Convenience: build a scheduler, spawn [main], run to completion. *)
let run_main ?policy ?max_steps ?record_trace main =
  let t = create ?policy ?max_steps ?record_trace () in
  ignore (spawn t ~label:"main" main);
  run t;
  t

let steps t = t.steps
let runnable_count t = Ring.size t.runnable
let parked_count t = List.length t.polled + Ring.size t.waiters
let parked_reasons t = List.map (fun p -> p.reason) (parked_entries t)
