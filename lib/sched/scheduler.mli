(** Deterministic cooperative scheduler over OCaml 5 effect handlers.

    Every transaction (and the application's main program) runs in a
    fiber; a blocking primitive parks its fiber under a wake condition
    and the engine re-evaluates conditions on every state change —
    preserving the section-4.2 "blocks and retries" structure while
    making every schedule reproducible (FIFO, or seeded random).

    The hot paths are O(1): the run queue is a circular-buffer deque
    (FIFO pop and the random policy's swap-remove are constant time),
    and parked fibers whose condition is guarded by the engine's
    version counter ({!wait_until} with [~watch], after {!set_clock})
    are only re-evaluated once the counter has advanced past the value
    at which the condition was last seen false.

    Deadlock is observable rather than a hang: when no fiber is
    runnable and no parked condition holds, the [on_stall] hook runs
    (the engine uses it to abort a deadlock victim); if it makes no
    progress, {!Deadlock} is raised with the parked fibers' reasons. *)

type candidate = { cfid : int; clabel : string }
(** One runnable fiber presented to a {!Controlled} strategy at a
    choice point, in stable run-queue order. *)

type policy =
  | Fifo
  | Random_seeded of int
  | Controlled of (candidate array -> int)
      (** Pluggable strategy: at every scheduling step the function is
          given the runnable fibers (stable order) and returns the index
          to run next — the hook systematic explorers drive to
          enumerate every interleaving.  Called even when only one
          fiber is runnable, so strategies observe every segment
          boundary.  An out-of-range return raises [Invalid_argument]. *)

type t

exception Deadlock of string list
exception Fiber_failed of string * exn

val create : ?policy:policy -> ?max_steps:int -> ?record_trace:bool -> unit -> t
(** [max_steps] (default 10M) bounds total scheduling steps, turning
    livelocks into failures. *)

val set_on_stall : t -> (unit -> bool) -> unit
(** The hook must return true iff it made progress (e.g. aborted a
    victim and bumped a version counter). *)

val set_on_quiesce : t -> (unit -> unit) -> unit
(** Called whenever the run queue empties (before wake conditions are
    re-examined).  The engine uses it to flush batched group-commit
    log forces.  The hook must not spawn or wake fibers. *)

val set_clock : t -> (unit -> int) -> unit
(** Register the monotone version counter that guards watched waits
    (the engine's state-change counter).  Without a clock, [~watch] is
    ignored and every parked condition is re-polled on each sweep. *)

val spawn : t -> label:string -> (unit -> unit) -> int
(** Enqueue a fiber; returns its id.  Callable from inside or outside
    fibers. *)

val run : t -> unit
(** Drive all fibers to completion.  Raises {!Deadlock} or
    {!Fiber_failed} (an uncaught exception in a fiber, which indicates
    a bug — engine-level aborts never escape). *)

val run_main :
  ?policy:policy -> ?max_steps:int -> ?record_trace:bool -> (unit -> unit) -> t
(** Create, spawn [main], run. *)

(** {2 Inside fibers} *)

val yield : unit -> unit

val wait_until : ?reason:string -> ?watch:int -> (unit -> bool) -> unit
(** Park until the condition holds (checked immediately first).
    [~watch:v] registers the clock snapshot the caller based its
    decision on and promises the condition only changes value when the
    clock advances; the scheduler then skips re-evaluating it until
    the clock passes the point where the condition was last seen
    false.  A stale snapshot is safe: the condition is re-checked at
    park time against the current clock reading. *)

(** {2 Introspection} *)

val current_fid : t -> int
(** The running fiber's id, or -1 outside any fiber. *)

val steps : t -> int
val runnable_count : t -> int
val parked_count : t -> int
val parked_reasons : t -> string list

val trace : t -> (int * string) list
(** The recorded event trace (oldest first) when [record_trace] was
    set. *)
