(* Lock modes and operation sets.

   The paper's lock request descriptor carries "the lock mode of the
   request (read, write, none)"; permits name the *operations* a grantee
   may perform.  The elementary operations here are read and write,
   plus — implementing the paper's section-5 plan to "exploit the
   concurrency semantics inherent in objects" — a commuting [Increment]
   operation: increments by different transactions commute, so
   Increment locks are compatible with each other while still
   conflicting with reads and writes (the multi-level-transaction
   treatment the paper cites from Weikum). *)

type t = Read | Write | Increment

let equal a b =
  match (a, b) with
  | Read, Read | Write, Write | Increment, Increment -> true
  | (Read | Write | Increment), _ -> false

let pp ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"
  | Increment -> Format.pp_print_string ppf "I"

(* Conflict matrix: R/R compatible; I/I compatible (increments
   commute); everything else conflicts. *)
let conflicts a b =
  match (a, b) with Read, Read -> false | Increment, Increment -> false | _ -> true

(* The same conflict relation on the single-character operation tags
   used by trace events ('R', 'W', 'I').  Unknown tags conservatively
   conflict with everything — a sound default for consumers (like the
   schedule explorer) that prune commuting steps. *)
let of_op_char = function
  | 'R' -> Some Read
  | 'W' -> Some Write
  | 'I' -> Some Increment
  | _ -> None

let conflicts_ops a b =
  match (of_op_char a, of_op_char b) with
  | Some ma, Some mb -> conflicts ma mb
  | _ -> true

(* "gl covers the requested lock": a Write lock allows any operation. *)
let covers ~held ~requested =
  match (held, requested) with
  | Write, _ -> true
  | Read, Read -> true
  | Increment, Increment -> true
  | (Read | Increment), _ -> false

(* The operation enabled by holding a lock in a mode, used when checking
   whether a permit's operation set excuses a conflict. *)
let as_op = function Read -> Read | Write -> Write | Increment -> Increment

module Ops = struct
  type nonrec t = { read : bool; write : bool; incr : bool }

  let all = { read = true; write = true; incr = true }
  let none = { read = false; write = false; incr = false }
  let read_only = { read = true; write = false; incr = false }
  let write_only = { read = false; write = true; incr = false }
  let incr_only = { read = false; write = false; incr = true }

  let of_list ops =
    List.fold_left
      (fun acc op ->
        match op with
        | Read -> { acc with read = true }
        | Write -> { acc with write = true }
        | Increment -> { acc with incr = true })
      none ops

  let mem op t = match op with Read -> t.read | Write -> t.write | Increment -> t.incr
  let inter a b = { read = a.read && b.read; write = a.write && b.write; incr = a.incr && b.incr }
  let is_empty t = (not t.read) && (not t.write) && not t.incr
  let equal a b = a.read = b.read && a.write = b.write && a.incr = b.incr

  let pp ppf t =
    if is_empty t then Format.pp_print_string ppf "-"
    else begin
      if t.read then Format.pp_print_string ppf "R";
      if t.write then Format.pp_print_string ppf "W";
      if t.incr then Format.pp_print_string ppf "I"
    end
end
