(* Lock modes and operation sets.

   The paper's lock request descriptor carries "the lock mode of the
   request (read, write, none)"; permits name the *operations* a grantee
   may perform.  The elementary operations here are read and write,
   plus — implementing the paper's section-5 plan to "exploit the
   concurrency semantics inherent in objects" — typed-object operation
   modes whose compatibility is the commutativity relation of the
   operations (Malta & Martinez):

   - [Increment]: unbounded counter increments commute, so Increment
     locks are compatible with each other while still conflicting with
     reads and writes (the multi-level-transaction treatment the paper
     cites from Weikum).
   - [Escrow]: bounded increments/decrements against a [lo, hi]
     interval.  Escrow locks are mutually compatible; the engine's
     escrow accounting guarantees the bounds hold for every completion
     order of the holders.  Escrow conflicts with plain Increment:
     an unbounded increment can invalidate a bound another holder was
     promised.
   - [Enqueue]: queue appends.  Enqueue/Enqueue is compatible (the
     queue's abstract state — the multiset of items — commutes; arrival
     order is the serialization order).
   - [Snapshot]: the virtual mode of a snapshot read by a read-only
     transaction.  It is never requested from the lock manager — that
     is the point — but it exists so trace-level op tags ('S') have a
     footprint entry that commutes with everything. *)

type t = Read | Write | Increment | Escrow | Enqueue | Snapshot

let equal a b =
  match (a, b) with
  | Read, Read | Write, Write | Increment, Increment -> true
  | Escrow, Escrow | Enqueue, Enqueue | Snapshot, Snapshot -> true
  | (Read | Write | Increment | Escrow | Enqueue | Snapshot), _ -> false

let pp ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"
  | Increment -> Format.pp_print_string ppf "I"
  | Escrow -> Format.pp_print_string ppf "E"
  | Enqueue -> Format.pp_print_string ppf "Q"
  | Snapshot -> Format.pp_print_string ppf "S"

(* Lock-table conflict matrix: R/R compatible; I/I compatible
   (increments commute); E/E compatible (escrow accounting keeps the
   bounds safe for any completion order); Q/Q compatible (enqueues
   commute on the multiset of items); Snapshot is compatible with
   everything (snapshot reads never touch the lock table).  Everything
   else conflicts — in particular E/I: an unbounded increment would
   invalidate the worst-case bound analysis escrow holders rely on. *)
let conflicts a b =
  match (a, b) with
  | Snapshot, _ | _, Snapshot -> false
  | Read, Read -> false
  | Increment, Increment -> false
  | Escrow, Escrow -> false
  | Enqueue, Enqueue -> false
  | _ -> true

(* Single-character operation tags used by trace events. *)
let of_op_char = function
  | 'R' -> Some Read
  | 'W' -> Some Write
  | 'I' -> Some Increment
  | 'E' -> Some Escrow
  | 'Q' -> Some Enqueue
  | 'S' -> Some Snapshot
  | _ -> None

(* Schedule-commutation relation on operation tags, used by the
   sleep-set explorer to prune redundant interleavings.  This is
   deliberately *stricter* than the lock table for E/E and Q/Q:

   - two escrow ops are lock-compatible, but reordering them can flip
     which one hits the bound and aborts, so their order is observable;
   - two enqueues are lock-compatible, but the concrete queue contents
     depend on arrival order.

   Snapshot reads ('S') commute with everything: they return a version
   fixed at begin time and write nothing.  Unknown tags conservatively
   conflict with everything — a sound default for consumers that prune
   commuting steps. *)
let conflicts_ops a b =
  match (a, b) with
  | 'S', _ | _, 'S' -> false
  | 'E', 'E' -> true
  | 'Q', 'Q' -> true
  | _ -> (
      match (of_op_char a, of_op_char b) with
      | Some ma, Some mb -> conflicts ma mb
      | _ -> true)

(* "gl covers the requested lock": a Write lock allows any operation,
   and any state of lock ownership covers a snapshot read (which needs
   no lock at all). *)
let covers ~held ~requested =
  match (held, requested) with
  | _, Snapshot -> true
  | Write, _ -> true
  | Read, Read -> true
  | Increment, Increment -> true
  | Escrow, Escrow -> true
  | Enqueue, Enqueue -> true
  | (Read | Increment | Escrow | Enqueue | Snapshot), _ -> false

(* Least upper bound of two held modes: what a granted lock must record
   when its holder acquires a second mode on the same object.  Equal
   modes join to themselves and Snapshot is the identity; any other
   pair joins to Write, the only mode that both covers each operand and
   conflicts with everything either operand conflicts with.  Replacing
   the held mode with the requested one instead (the old upgrade
   behaviour) loses the first mode's conflicts: I upgraded to plain R
   lets a second reader in while the increment's uncommitted delta is
   still live — a dirty read. *)
let join a b =
  if equal a b then a
  else
    match (a, b) with
    | Snapshot, m | m, Snapshot -> m
    | _ -> Write

(* The operation enabled by holding a lock in a mode, used when checking
   whether a permit's operation set excuses a conflict. *)
let as_op = function
  | Read -> Read
  | Write -> Write
  | Increment -> Increment
  | Escrow -> Escrow
  | Enqueue -> Enqueue
  | Snapshot -> Snapshot

module Ops = struct
  type nonrec t = { read : bool; write : bool; incr : bool; escrow : bool; enq : bool }

  let all = { read = true; write = true; incr = true; escrow = true; enq = true }
  let none = { read = false; write = false; incr = false; escrow = false; enq = false }
  let read_only = { none with read = true }
  let write_only = { none with write = true }
  let incr_only = { none with incr = true }

  let of_list ops =
    List.fold_left
      (fun acc op ->
        match op with
        | Read -> { acc with read = true }
        | Write -> { acc with write = true }
        | Increment -> { acc with incr = true }
        | Escrow -> { acc with escrow = true }
        | Enqueue -> { acc with enq = true }
        (* A permit for reads excuses snapshot visibility too. *)
        | Snapshot -> { acc with read = true })
      none ops

  let mem op t =
    match op with
    | Read -> t.read
    | Write -> t.write
    | Increment -> t.incr
    | Escrow -> t.escrow
    | Enqueue -> t.enq
    | Snapshot -> t.read

  let inter a b =
    {
      read = a.read && b.read;
      write = a.write && b.write;
      incr = a.incr && b.incr;
      escrow = a.escrow && b.escrow;
      enq = a.enq && b.enq;
    }

  let is_empty t = (not t.read) && (not t.write) && (not t.incr) && (not t.escrow) && not t.enq

  let equal a b =
    a.read = b.read && a.write = b.write && a.incr = b.incr && a.escrow = b.escrow
    && a.enq = b.enq

  let pp ppf t =
    if is_empty t then Format.pp_print_string ppf "-"
    else begin
      if t.read then Format.pp_print_string ppf "R";
      if t.write then Format.pp_print_string ppf "W";
      if t.incr then Format.pp_print_string ppf "I";
      if t.escrow then Format.pp_print_string ppf "E";
      if t.enq then Format.pp_print_string ppf "Q"
    end
end
