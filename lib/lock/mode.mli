(** Lock modes and operation sets.

    Read and write are the paper's elementary operations; [Increment]
    implements its section-5 plan to exploit operation semantics —
    increments commute, so Increment locks are mutually compatible
    while still conflicting with reads and writes. *)

type t = Read | Write | Increment

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val conflicts : t -> t -> bool
(** Conflict matrix: R/R and I/I are compatible; everything else
    conflicts. *)

val of_op_char : char -> t option
(** Decode the single-character operation tag used by trace events
    ('R', 'W', 'I'); [None] for anything else. *)

val conflicts_ops : char -> char -> bool
(** {!conflicts} lifted to trace-event operation tags.  Unknown tags
    conservatively conflict with everything, so independence judgements
    built on this relation stay sound. *)

val covers : held:t -> requested:t -> bool
(** Whether a lock held in [held] already satisfies a request for
    [requested] (a Write lock covers everything). *)

val as_op : t -> t
(** The operation a lock mode enables, for permit checks. *)

(** Sets of operations, closed under the intersection required by the
    transitive-permit rule. *)
module Ops : sig
  type mode := t
  type t

  val all : t
  val none : t
  val read_only : t
  val write_only : t
  val incr_only : t
  val of_list : mode list -> t
  val mem : mode -> t -> bool
  val inter : t -> t -> t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
