(** Lock modes and operation sets.

    Read and write are the paper's elementary operations; the remaining
    modes implement its section-5 plan to exploit operation semantics,
    with compatibility = commutativity (Malta & Martinez):

    - [Increment] — unbounded commuting counter increments;
    - [Escrow] — bounded increments/decrements against a [lo, hi]
      interval, mutually compatible while the engine's escrow
      accounting shows the bounds hold for every completion order;
    - [Enqueue] — queue appends, mutually compatible on the multiset of
      items;
    - [Snapshot] — the virtual mode of a lock-free snapshot read by a
      read-only transaction; never actually requested from the lock
      manager, but present so trace op tags have a footprint entry. *)

type t = Read | Write | Increment | Escrow | Enqueue | Snapshot

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val conflicts : t -> t -> bool
(** Lock-table conflict matrix: R/R, I/I, E/E and Q/Q are compatible,
    Snapshot is compatible with everything; everything else conflicts
    (in particular Escrow vs Increment). *)

val of_op_char : char -> t option
(** Decode the single-character operation tag used by trace events
    ('R', 'W', 'I', 'E', 'Q', 'S'); [None] for anything else. *)

val conflicts_ops : char -> char -> bool
(** Schedule-commutation relation on trace-event operation tags, used
    by the sleep-set explorer.  Deliberately stricter than {!conflicts}
    for 'E'/'E' and 'Q'/'Q' (lock-compatible, but reordering is
    observable: which escrow op hits the bound, concrete queue order);
    'S' commutes with everything.  Unknown tags conservatively conflict
    with everything, so independence judgements built on this relation
    stay sound. *)

val covers : held:t -> requested:t -> bool
(** Whether a lock held in [held] already satisfies a request for
    [requested] (a Write lock covers everything; anything covers
    Snapshot). *)

val join : t -> t -> t
(** Least upper bound of two held modes, for lock upgrades and
    delegation merges: equal modes join to themselves, Snapshot is the
    identity, and any other pair joins to Write — the only mode that
    covers both operands and preserves both operands' conflicts. *)

val as_op : t -> t
(** The operation a lock mode enables, for permit checks. *)

(** Sets of operations, closed under the intersection required by the
    transitive-permit rule. *)
module Ops : sig
  type mode := t
  type t

  val all : t
  val none : t
  val read_only : t
  val write_only : t
  val incr_only : t
  val of_list : mode list -> t
  val mem : mode -> t -> bool
  val inter : t -> t -> t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
