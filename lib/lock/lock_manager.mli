(** The lock manager: object descriptors (OD), lock request descriptors
    (LRD) and permit descriptors (PD), implementing the section-4.2
    read-lock / write-lock algorithm including permit-driven suspension
    of conflicting granted locks.

    The paper's Figure 1 shows an OD pointing at three lists — granted
    requests, pending requests, permissions; {!pp_od} renders exactly
    that structure.  PDs are doubly indexed by grantor and grantee tid,
    and permission is transitive with operation-set intersection
    (permit rule 3).

    The descriptor lists are shadowed by hash indexes (per-OD tid → lrd
    for granted and pending; per-transaction oid → lrd for held and
    pending requests; per-OD grantor → pd with memoised transitive
    reachability), and the manager maintains the waits-for graph
    incrementally: each pending request tracks its blocker set, updated
    whenever the OD's granted, pending, or permit lists change, so
    {!find_cycle} searches a live O(edges) graph instead of rebuilding
    it from every OD. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type lock_status =
  | Granted
  | Suspended
      (** Held, but a permitted conflicting lock is currently active;
          resumes when the conflict goes away. *)
  | Pending
  | Upgrading

val pp_status : Format.formatter -> lock_status -> unit

type t

val create : unit -> t

(** {2 Acquisition} *)

type outcome =
  | Acquired
  | Blocked_on of Tid.t list
      (** The conflicting holders; the request is registered in the
          OD's pending list and should be retried after a state
          change. *)

val acquire : t -> Tid.t -> Oid.t -> Mode.t -> outcome
(** The section-4.2 algorithm: own covering unsuspended lock — success;
    conflicting locks excused by permits suspend their holders;
    otherwise block. *)

val cancel_pending : t -> Tid.t -> Oid.t -> unit
val cancel_pending_all : t -> Tid.t -> unit

(** {2 Permits} *)

val add_permit :
  t -> grantor:Tid.t -> grantee:Tid.t option -> oid:Oid.t -> ops:Mode.Ops.t -> unit
(** [grantee = None] permits any transaction.  Empty operation sets are
    ignored. *)

val remove_permits : t -> Tid.t -> unit
(** Drop permissions given by and given to a transaction (commit step
    6 / abort cleanup). *)

val accessible_objects : t -> Tid.t -> Oid.t list
(** Objects the transaction has locked or been permitted on — the
    expansion set of the blanket permit forms. *)

(** {2 Release and delegation} *)

val release_all : t -> Tid.t -> Oid.t list
(** Release every lock held by a transaction; suspended locks of other
    transactions resume where possible.  Returns the released oids. *)

val delegate : t -> from_:Tid.t -> to_:Tid.t -> Oid.t list option -> Oid.t list
(** Move LRDs on the given objects ([None] = all) from [from_] to
    [to_], merging with [to_]'s existing locks (stronger mode wins),
    and rewrite PDs granted by [from_] to be granted by [to_].
    [from_]'s pending requests on the delegated objects are withdrawn
    (a blocked requester re-registers on retry), so no orphaned pending
    entries or stale waits-for edges survive.  Returns the moved
    oids. *)

(** {2 Introspection} *)

val holds : t -> Tid.t -> Oid.t -> (Mode.t * lock_status) option
val locked_objects : t -> Tid.t -> Oid.t list
val lock_count : t -> Tid.t -> int

val waits_for : t -> (Tid.t * Tid.t) list
(** Waits-for edges (requester, holder) recomputed from the pending
    lists, with permit-excused conflicts removed — the from-scratch
    debug/introspection view.  The live engine path uses the
    incrementally maintained graph; {!check_waits_for_invariant}
    cross-checks the two. *)

val waits_edges : t -> int
(** Distinct (waiter, holder) pairs in the incremental waits-for
    graph. *)

val check_waits_for_invariant : t -> bool
(** [true] iff the incrementally maintained waits-for graph carries
    exactly the edges a from-scratch rebuild derives from the ODs. *)

val find_cycle : t -> Tid.t list option
(** A deadlock cycle in the incrementally maintained waits-for graph,
    if any — O(edges). *)

val find_cycle_rebuild : t -> Tid.t list option
(** The pre-overhaul path: rebuild the waits-for graph from every OD,
    then search it.  Kept as the invariant cross-check and bench
    baseline. *)

val stats : t -> (string * int) list
(** Includes [waits_edges] (live incremental-graph size) and
    [cycle_checks] (deadlock searches run).  A pure read: no counter is
    reset by reading. *)

val reset_stats : t -> unit
(** Reset every statistics {e counter} to zero.  [waits_edges] is a
    live gauge over the refcounted waits-for adjacency, not a counter,
    and is deliberately left untouched. *)

val pp_od : t -> Format.formatter -> Oid.t -> unit
(** Render an object descriptor in the shape of the paper's Figure 1. *)

val granted_of : t -> Oid.t -> (Tid.t * Mode.t * lock_status) list
val pending_of : t -> Oid.t -> (Tid.t * Mode.t * lock_status) list
val permits_of : t -> Oid.t -> (Tid.t * Tid.t option * Mode.Ops.t) list
