(* The lock manager: object descriptors (OD), lock request descriptors
   (LRD) and permit descriptors (PD), implementing the read-lock /
   write-lock algorithm of section 4.2 including permit-driven
   suspension of conflicting granted locks.

   Figure 1 of the paper shows the OD pointing at three lists — granted
   lock requests, pending lock requests, and permissions; this module
   maintains exactly those lists (see [pp_od], which renders the
   figure's structure).  The lists are intrusive doubly-linked lists
   shadowed by per-OD [(tid -> lrd)] hash indexes, so membership tests
   and removals are O(1) while the Figure-1 ordering (newest request at
   the head) is preserved.  LRDs are linked both from their OD and from
   per-transaction tables (granted and pending separately) so that
   delegation, release and pending-cancellation traverse only the
   transaction's own descriptors; PDs are doubly indexed by grantor and
   grantee tid, as the paper prescribes ("doubly hashed on the tid of
   the two transactions involved"), plus a per-OD grantor index feeding
   the transitive-permission search, whose verdicts are memoised per OD
   until the OD's permit list changes.

   On top of the descriptors the manager keeps an incrementally
   maintained waits-for graph: a pending request records the holders
   that block it ([lrd_blockers]), and every mutation of an OD's
   granted list, pending list or permit list re-derives the blocker
   sets of that OD's pending requests only, diffing them into a global
   refcounted adjacency.  [find_cycle] therefore runs cycle detection
   on the live graph — O(edges) — instead of reconstructing it from
   every OD in the store. *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Trace = Asset_obs.Trace

let mode_char = function
  | Mode.Read -> 'R'
  | Mode.Write -> 'W'
  | Mode.Increment -> 'I'
  | Mode.Escrow -> 'E'
  | Mode.Enqueue -> 'Q'
  | Mode.Snapshot -> 'S'

(* Lock-transition trace events ([Trace.on] gates every call site, so
   the untraced cost is one load and one branch). *)
let trace_lock action tid oid mode =
  Trace.emit (Trace.Lock { tid; oid; mode = mode_char mode; action })

type lock_status = Granted | Suspended | Pending | Upgrading

let pp_status ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Suspended -> Format.pp_print_string ppf "suspended"
  | Pending -> Format.pp_print_string ppf "pending"
  | Upgrading -> Format.pp_print_string ppf "upgrading"

type lrd = {
  lrd_tid : Tid.t;
  lrd_oid : Oid.t;
  mutable lrd_mode : Mode.t;
  mutable lrd_status : lock_status;
  mutable lrd_blockers : Tid.t list;
      (* sorted; the waits-for edges this pending request contributes *)
  mutable lrd_prev : lrd option; (* intrusive links within the OD list *)
  mutable lrd_next : lrd option;
}

type pd = {
  pd_oid : Oid.t;
  mutable pd_grantor : Tid.t; (* mutable: delegation rewrites the grantor *)
  pd_grantee : Tid.t option; (* None = any transaction *)
  pd_ops : Mode.Ops.t;
}

(* An intrusive doubly-linked LRD list: O(1) push/remove, head = newest
   (the prepend order of the paper's Figure-1 lists). *)
type lrd_list = { mutable head : lrd option; mutable count : int }

let list_create () = { head = None; count = 0 }

let list_push l lrd =
  lrd.lrd_prev <- None;
  lrd.lrd_next <- l.head;
  (match l.head with Some h -> h.lrd_prev <- Some lrd | None -> ());
  l.head <- Some lrd;
  l.count <- l.count + 1

let list_remove l lrd =
  (match lrd.lrd_prev with
  | Some p -> p.lrd_next <- lrd.lrd_next
  | None -> l.head <- lrd.lrd_next);
  (match lrd.lrd_next with Some n -> n.lrd_prev <- lrd.lrd_prev | None -> ());
  lrd.lrd_prev <- None;
  lrd.lrd_next <- None;
  l.count <- l.count - 1

let list_iter f l =
  let rec go = function
    | None -> ()
    | Some x ->
        let next = x.lrd_next in
        f x;
        go next
  in
  go l.head

let list_exists p l =
  let rec go = function
    | None -> false
    | Some x -> p x || go x.lrd_next
  in
  go l.head

let list_elems l =
  let rec go acc = function None -> List.rev acc | Some x -> go (x :: acc) x.lrd_next in
  go [] l.head

type od = {
  od_oid : Oid.t;
  granted : lrd_list; (* granted + suspended requests *)
  granted_idx : (Tid.t, lrd) Hashtbl.t;
  pending : lrd_list; (* blocked + upgrading requests *)
  pending_idx : (Tid.t, lrd) Hashtbl.t;
  mutable permits : pd list;
  pd_by_grantor : (Tid.t, pd list) Hashtbl.t;
      (* per-OD grantor adjacency for the transitive-permission DFS *)
  reach_memo : (Tid.t * Tid.t * Mode.t, bool) Hashtbl.t;
      (* memoised permits_op verdicts; cleared whenever [permits] changes *)
}

type t = {
  objects : (Oid.t, od) Hashtbl.t;
  by_txn : (Tid.t, (Oid.t, lrd) Hashtbl.t) Hashtbl.t; (* granted LRDs, from the TD *)
  pending_by_txn : (Tid.t, (Oid.t, lrd) Hashtbl.t) Hashtbl.t;
  permits_by_grantor : (Tid.t, pd list ref) Hashtbl.t;
  permits_by_grantee : (Tid.t, pd list ref) Hashtbl.t;
  (* Incremental waits-for graph: waiter -> (holder -> refcount); the
     refcount is the number of pending requests of the waiter currently
     citing the holder as a blocker. *)
  wf_out : (Tid.t, (Tid.t, int) Hashtbl.t) Hashtbl.t;
  mutable wf_edges : int; (* live distinct (waiter, holder) pairs *)
  acquires : Asset_util.Stats.Counter.t;
  blocks : Asset_util.Stats.Counter.t;
  suspensions : Asset_util.Stats.Counter.t;
  permit_grants : Asset_util.Stats.Counter.t;
  cycle_checks : Asset_util.Stats.Counter.t;
}

let create () =
  {
    objects = Hashtbl.create 256;
    by_txn = Hashtbl.create 64;
    pending_by_txn = Hashtbl.create 64;
    permits_by_grantor = Hashtbl.create 64;
    permits_by_grantee = Hashtbl.create 64;
    wf_out = Hashtbl.create 64;
    wf_edges = 0;
    acquires = Asset_util.Stats.Counter.create "lock.acquires";
    blocks = Asset_util.Stats.Counter.create "lock.blocks";
    suspensions = Asset_util.Stats.Counter.create "lock.suspensions";
    permit_grants = Asset_util.Stats.Counter.create "lock.permit_grants";
    cycle_checks = Asset_util.Stats.Counter.create "lock.cycle_checks";
  }

let od t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some od -> od
  | None ->
      let od =
        {
          od_oid = oid;
          granted = list_create ();
          granted_idx = Hashtbl.create 4;
          pending = list_create ();
          pending_idx = Hashtbl.create 4;
          permits = [];
          pd_by_grantor = Hashtbl.create 4;
          reach_memo = Hashtbl.create 8;
        }
      in
      Hashtbl.replace t.objects oid od;
      od

let txn_table table tid =
  match Hashtbl.find_opt table tid with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace table tid h;
      h

let index_list table tid =
  match Hashtbl.find_opt table tid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace table tid l;
      l

(* ------------------------------------------------------------------ *)
(* The incremental waits-for graph                                     *)

let wf_add t waiter holder =
  let adj =
    match Hashtbl.find_opt t.wf_out waiter with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.wf_out waiter h;
        h
  in
  match Hashtbl.find_opt adj holder with
  | Some c -> Hashtbl.replace adj holder (c + 1)
  | None ->
      Hashtbl.replace adj holder 1;
      t.wf_edges <- t.wf_edges + 1

let wf_remove t waiter holder =
  match Hashtbl.find_opt t.wf_out waiter with
  | None -> ()
  | Some adj -> (
      match Hashtbl.find_opt adj holder with
      | Some 1 ->
          Hashtbl.remove adj holder;
          t.wf_edges <- t.wf_edges - 1;
          if Hashtbl.length adj = 0 then Hashtbl.remove t.wf_out waiter
      | Some c -> Hashtbl.replace adj holder (c - 1)
      | None -> ())

(* Re-point a pending request's waits-for contribution at [blockers]
   (sorted); the edge refcounts absorb the diff. *)
let set_blockers t p blockers =
  if p.lrd_blockers <> blockers then begin
    List.iter (fun b -> wf_remove t p.lrd_tid b) p.lrd_blockers;
    List.iter (fun b -> wf_add t p.lrd_tid b) blockers;
    p.lrd_blockers <- blockers
  end

let waits_edges t = t.wf_edges

(* ------------------------------------------------------------------ *)
(* Permits                                                             *)

(* Does [grantor] permit [grantee] to perform [op] on this object,
   directly or transitively?  Rule 3 of the permit semantics makes
   permission transitive with operation-set intersection:
   permit(ti,tj,ops) and permit(tj,tk,ops') act as permit(ti,tk,
   ops∩ops').  We search the OD's per-grantor PD index for a chain from
   grantor to grantee every link of which (and hence the intersection)
   includes [op]; a PD with [pd_grantee = None] reaches any
   transaction.  Verdicts are memoised on the OD — the permit list is
   the only input, so the memo is cleared whenever it changes. *)
let permits_op obj ~grantor ~grantee op =
  let key = (grantor, grantee, op) in
  match Hashtbl.find_opt obj.reach_memo key with
  | Some r -> r
  | None ->
      let pds_of tid =
        match Hashtbl.find_opt obj.pd_by_grantor tid with Some l -> l | None -> []
      in
      let rec reachable visited current =
        if Tid.equal current grantee then true
        else if List.exists (Tid.equal current) visited then false
        else
          List.exists
            (fun pd ->
              Mode.Ops.mem op pd.pd_ops
              &&
              match pd.pd_grantee with
              | None -> true (* open permission reaches everyone, incl. grantee *)
              | Some next -> reachable (current :: visited) next)
            (pds_of current)
      in
      let r =
        (* An open permission from the grantor short-circuits. *)
        List.exists (fun pd -> pd.pd_grantee = None && Mode.Ops.mem op pd.pd_ops) (pds_of grantor)
        || reachable [] grantor
      in
      Hashtbl.replace obj.reach_memo key r;
      r

(* The waits-for predicate: does granted/suspended [gl] block waiter
   [p_tid] requesting [p_mode]?  Shared by conflict checking and the
   incremental blocker refresh so the live graph and the from-scratch
   view can never disagree on semantics. *)
let blocks_waiter obj p_tid p_mode op gl =
  (not (Tid.equal gl.lrd_tid p_tid))
  && (gl.lrd_status = Granted || gl.lrd_status = Suspended)
  && Mode.conflicts gl.lrd_mode p_mode
  && not (permits_op obj ~grantor:gl.lrd_tid ~grantee:p_tid op)

let blockers_of obj p =
  let op = Mode.as_op p.lrd_mode in
  let acc = ref [] in
  list_iter
    (fun gl -> if blocks_waiter obj p.lrd_tid p.lrd_mode op gl then acc := gl.lrd_tid :: !acc)
    obj.granted;
  List.sort_uniq Tid.compare !acc

(* Re-derive the waits-for contribution of every pending request on
   [obj].  Called after any mutation of the OD's granted list or permit
   list (pending-entry changes update their own edges directly); the
   cost is O(pending × granted) on this object only. *)
let refresh_waits t obj = list_iter (fun p -> set_blockers t p (blockers_of obj p)) obj.pending

(* Per-OD permit indexing. *)
let od_pd_index obj pd =
  let l = match Hashtbl.find_opt obj.pd_by_grantor pd.pd_grantor with Some l -> l | None -> [] in
  Hashtbl.replace obj.pd_by_grantor pd.pd_grantor (pd :: l);
  Hashtbl.reset obj.reach_memo

let od_pd_unindex obj pd =
  (match Hashtbl.find_opt obj.pd_by_grantor pd.pd_grantor with
  | None -> ()
  | Some l -> (
      match List.filter (fun p -> p != pd) l with
      | [] -> Hashtbl.remove obj.pd_by_grantor pd.pd_grantor
      | l' -> Hashtbl.replace obj.pd_by_grantor pd.pd_grantor l'));
  Hashtbl.reset obj.reach_memo

let add_permit t ~grantor ~grantee ~oid ~ops =
  if Mode.Ops.is_empty ops then ()
  else begin
    let obj = od t oid in
    let pd = { pd_oid = oid; pd_grantor = grantor; pd_grantee = grantee; pd_ops = ops } in
    obj.permits <- pd :: obj.permits;
    od_pd_index obj pd;
    let gl = index_list t.permits_by_grantor grantor in
    gl := pd :: !gl;
    (match grantee with
    | Some g ->
        let el = index_list t.permits_by_grantee g in
        el := pd :: !el
    | None -> ());
    Asset_util.Stats.Counter.incr t.permit_grants;
    (* A new permission may excuse conflicts that pending requests on
       this object are currently blocked on. *)
    refresh_waits t obj
  end

(* Objects a transaction has accessed (holds an LRD on) or has been
   permitted to access — the traversal used by permit(ti, tj, op). *)
let accessible_objects t tid =
  let locked =
    match Hashtbl.find_opt t.by_txn tid with
    | None -> []
    | Some h -> Hashtbl.fold (fun oid _ acc -> oid :: acc) h []
  in
  let permitted =
    match Hashtbl.find_opt t.permits_by_grantee tid with
    | None -> []
    | Some pds -> List.map (fun pd -> pd.pd_oid) !pds
  in
  List.sort_uniq Oid.compare (locked @ permitted)

(* ------------------------------------------------------------------ *)
(* Acquisition: the section 4.2 read-lock / write-lock algorithm        *)

type outcome = Acquired | Blocked_on of Tid.t list

let find_lrd obj tid = Hashtbl.find_opt obj.granted_idx tid
let find_pending obj tid = Hashtbl.find_opt obj.pending_idx tid

(* Drop a pending request (and its waits-for edges). *)
let remove_pending t obj tid =
  match Hashtbl.find_opt obj.pending_idx tid with
  | None -> ()
  | Some p ->
      list_remove obj.pending p;
      Hashtbl.remove obj.pending_idx tid;
      (match Hashtbl.find_opt t.pending_by_txn tid with
      | Some h ->
          Hashtbl.remove h p.lrd_oid;
          if Hashtbl.length h = 0 then Hashtbl.remove t.pending_by_txn tid
      | None -> ());
      set_blockers t p []

(* Step 1b: for every conflicting lock gl in the granted list (granted
   or suspended — a suspended lock still guards its holder's
   uncommitted operations against third parties), check the permit
   list; permitted conflicts suspend gl, unpermitted ones block.
   Returns the blockers, or [] if the way is clear (after
   suspensions). *)
let check_conflicts t obj tid mode =
  let op = Mode.as_op mode in
  let blockers = ref [] in
  let to_suspend = ref [] in
  list_iter
    (fun gl ->
      if (not (Tid.equal gl.lrd_tid tid))
         && (gl.lrd_status = Granted || gl.lrd_status = Suspended)
         && Mode.conflicts gl.lrd_mode mode
      then
        if permits_op obj ~grantor:gl.lrd_tid ~grantee:tid op then begin
          if gl.lrd_status = Granted then to_suspend := gl :: !to_suspend
        end
        else blockers := gl.lrd_tid :: !blockers)
    obj.granted;
  if !blockers = [] then begin
    List.iter
      (fun gl ->
        gl.lrd_status <- Suspended;
        if Trace.on () then trace_lock Trace.Suspend gl.lrd_tid obj.od_oid gl.lrd_mode;
        Asset_util.Stats.Counter.incr t.suspensions)
      !to_suspend;
    []
  end
  else List.sort_uniq Tid.compare !blockers

let acquire t tid oid mode =
  let obj = od t oid in
  match find_lrd obj tid with
  | Some gl when gl.lrd_status <> Suspended && Mode.covers ~held:gl.lrd_mode ~requested:mode ->
      (* Step 1a: an unsuspended covering lock of our own. *)
      Acquired
  | existing -> (
      if Trace.on () then trace_lock Trace.Request tid oid mode;
      match check_conflicts t obj tid mode with
      | [] ->
          (* Step 2: t_i can now lock ob. *)
          remove_pending t obj tid;
          (match existing with
          | Some gl ->
              (* 2b: change the lock mode / remove suspension. *)
              let upgraded = not (Mode.covers ~held:gl.lrd_mode ~requested:mode) in
              if upgraded then gl.lrd_mode <- Mode.join gl.lrd_mode mode;
              let resumed = gl.lrd_status = Suspended in
              gl.lrd_status <- Granted;
              if Trace.on () then
                trace_lock (if upgraded then Trace.Upgrade else if resumed then Trace.Resume else Trace.Grant)
                  tid oid gl.lrd_mode;
              Asset_util.Stats.Counter.incr t.acquires
          | None ->
              (* 2a: create an LRD and link it from the OD and the TD. *)
              let lrd =
                {
                  lrd_tid = tid;
                  lrd_oid = oid;
                  lrd_mode = mode;
                  lrd_status = Granted;
                  lrd_blockers = [];
                  lrd_prev = None;
                  lrd_next = None;
                }
              in
              list_push obj.granted lrd;
              Hashtbl.replace obj.granted_idx tid lrd;
              Hashtbl.replace (txn_table t.by_txn tid) oid lrd;
              if Trace.on () then trace_lock Trace.Grant tid oid mode;
              Asset_util.Stats.Counter.incr t.acquires);
          (* The new/upgraded grant (and any suspensions) may block
             other transactions' pending requests on this object. *)
          refresh_waits t obj;
          Acquired
      | blockers ->
          (* Register a pending request (status upgrading when we already
             hold a weaker lock), so the OD shows the Figure-1 pending
             list and waits-for extraction sees the edge. *)
          let p =
            match find_pending obj tid with
            | Some p ->
                p.lrd_mode <- mode;
                p
            | None ->
                let status = if existing <> None then Upgrading else Pending in
                let p =
                  {
                    lrd_tid = tid;
                    lrd_oid = oid;
                    lrd_mode = mode;
                    lrd_status = status;
                    lrd_blockers = [];
                    lrd_prev = None;
                    lrd_next = None;
                  }
                in
                list_push obj.pending p;
                Hashtbl.replace obj.pending_idx tid p;
                Hashtbl.replace (txn_table t.pending_by_txn tid) oid p;
                p
          in
          (* The waits-for edges of this request are exactly the
             blockers just computed. *)
          set_blockers t p blockers;
          if Trace.on () then trace_lock Trace.Block tid oid mode;
          Asset_util.Stats.Counter.incr t.blocks;
          Blocked_on blockers)

(* Give up a pending request (e.g. the requester aborted while waiting). *)
let cancel_pending t tid oid =
  match Hashtbl.find_opt t.objects oid with None -> () | Some obj -> remove_pending t obj tid

(* Drop every pending request of [tid]; used when a waiting transaction
   is aborted (e.g. as a deadlock victim).  The per-transaction pending
   index makes this O(own pending requests), not O(objects). *)
let cancel_pending_all t tid =
  match Hashtbl.find_opt t.pending_by_txn tid with
  | None -> ()
  | Some h ->
      let lrds = Hashtbl.fold (fun _ p acc -> p :: acc) h [] in
      List.iter
        (fun p ->
          match Hashtbl.find_opt t.objects p.lrd_oid with
          | Some obj -> remove_pending t obj tid
          | None -> ())
        lrds

(* A suspended lock resumes when no granted lock conflicts with it any
   more (section 4.2 step 2b "remove suspension status" happens through
   re-acquisition; release-time resumption keeps cooperating
   transactions live without forcing a retry loop). *)
let resume_suspended obj =
  list_iter
    (fun sl ->
      if sl.lrd_status = Suspended then begin
        let conflicting =
          list_exists
            (fun gl ->
              (not (Tid.equal gl.lrd_tid sl.lrd_tid))
              && gl.lrd_status = Granted
              && Mode.conflicts gl.lrd_mode sl.lrd_mode)
            obj.granted
        in
        if not conflicting then begin
          sl.lrd_status <- Granted;
          if Trace.on () then trace_lock Trace.Resume sl.lrd_tid obj.od_oid sl.lrd_mode
        end
      end)
    obj.granted

(* ------------------------------------------------------------------ *)
(* Release, delegation, cleanup                                        *)

(* Unlink a granted LRD from its OD (guarded by physical equality so a
   stale descriptor is a no-op); does not refresh waits-for — callers
   do, once per object. *)
let od_remove_granted obj lrd =
  match Hashtbl.find_opt obj.granted_idx lrd.lrd_tid with
  | Some l when l == lrd ->
      list_remove obj.granted lrd;
      Hashtbl.remove obj.granted_idx lrd.lrd_tid
  | _ -> ()

let drop_lrd t lrd =
  if Trace.on () then trace_lock Trace.Release lrd.lrd_tid lrd.lrd_oid lrd.lrd_mode;
  (match Hashtbl.find_opt t.objects lrd.lrd_oid with
  | Some obj ->
      od_remove_granted obj lrd;
      resume_suspended obj;
      (* The departed holder's waits-for edges die with it. *)
      refresh_waits t obj
  | None -> ());
  match Hashtbl.find_opt t.by_txn lrd.lrd_tid with
  | Some h -> (
      match Hashtbl.find_opt h lrd.lrd_oid with
      | Some l when l == lrd -> Hashtbl.remove h lrd.lrd_oid
      | _ -> ())
  | None -> ()

(* Release all locks held by a transaction; returns the object ids that
   were locked (the engine uses them to wake waiters). *)
let release_all t tid =
  match Hashtbl.find_opt t.by_txn tid with
  | None -> []
  | Some h ->
      let lrds = Hashtbl.fold (fun _ l acc -> l :: acc) h [] in
      List.iter (drop_lrd t) lrds;
      Hashtbl.remove t.by_txn tid;
      List.map (fun l -> l.lrd_oid) lrds

(* Remove permissions given by and given to [tid] (commit step 6 /
   abort cleanup).  Each PD is removed eagerly from its OD, from the
   per-OD grantor index and from the *other* party's global index
   entry, so no full-table purge is ever needed. *)
let remove_permits t tid =
  let affected = ref [] in
  let drop_from_od pd =
    match Hashtbl.find_opt t.objects pd.pd_oid with
    | Some obj ->
        if List.memq pd obj.permits then begin
          obj.permits <- List.filter (fun p -> p != pd) obj.permits;
          od_pd_unindex obj pd;
          affected := obj :: !affected
        end
    | None -> ()
  in
  (match Hashtbl.find_opt t.permits_by_grantor tid with
  | Some l ->
      List.iter
        (fun pd ->
          drop_from_od pd;
          match pd.pd_grantee with
          | Some g when not (Tid.equal g tid) -> (
              match Hashtbl.find_opt t.permits_by_grantee g with
              | Some el -> el := List.filter (fun p -> p != pd) !el
              | None -> ())
          | _ -> ())
        !l
  | None -> ());
  (match Hashtbl.find_opt t.permits_by_grantee tid with
  | Some l ->
      List.iter
        (fun pd ->
          drop_from_od pd;
          if not (Tid.equal pd.pd_grantor tid) then
            match Hashtbl.find_opt t.permits_by_grantor pd.pd_grantor with
            | Some gl -> gl := List.filter (fun p -> p != pd) !gl
            | None -> ())
        !l
  | None -> ());
  Hashtbl.remove t.permits_by_grantor tid;
  Hashtbl.remove t.permits_by_grantee tid;
  (* A withdrawn permission may re-block pending requests it excused. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun obj ->
      if not (Hashtbl.mem seen obj.od_oid) then begin
        Hashtbl.replace seen obj.od_oid ();
        refresh_waits t obj
      end)
    !affected

(* delegate(ti, tj, ob_set): move the LRDs on the named objects from ti
   to tj and rewrite PDs granted by ti on them to be granted by tj.
   When tj already holds a lock on the same object the two requests
   merge, keeping the stronger mode.  ti's *pending* requests on the
   delegated objects are cancelled: responsibility for performed
   operations moves, but an in-flight request is simply withdrawn (a
   blocked requester re-registers it on its next retry), so no orphaned
   pending entries or stale waits-for edges survive the delegation. *)
let delegate t ~from_ ~to_ oids =
  let covers oid = match oids with None -> true | Some l -> List.exists (Oid.equal oid) l in
  let from_h = txn_table t.by_txn from_ in
  let moving =
    Hashtbl.fold (fun _ lrd acc -> if covers lrd.lrd_oid then lrd :: acc else acc) from_h []
  in
  let to_h = txn_table t.by_txn to_ in
  let touched = ref [] in
  List.iter
    (fun lrd ->
      Hashtbl.remove from_h lrd.lrd_oid;
      match Hashtbl.find_opt t.objects lrd.lrd_oid with
      | None -> ()
      | Some obj -> (
          touched := obj :: !touched;
          match Hashtbl.find_opt to_h lrd.lrd_oid with
          | Some existing ->
              (* Merge into tj's existing request. *)
              existing.lrd_mode <- Mode.join existing.lrd_mode lrd.lrd_mode;
              od_remove_granted obj lrd;
              resume_suspended obj
          | None ->
              (* Replace the OD's entry with a re-owned LRD. *)
              od_remove_granted obj lrd;
              let lrd' =
                {
                  lrd with
                  lrd_tid = to_;
                  lrd_blockers = [];
                  lrd_prev = None;
                  lrd_next = None;
                }
              in
              list_push obj.granted lrd';
              Hashtbl.replace obj.granted_idx to_ lrd';
              Hashtbl.replace to_h lrd.lrd_oid lrd'))
    moving;
  (* Withdraw ti's in-flight requests on the delegated objects. *)
  (match Hashtbl.find_opt t.pending_by_txn from_ with
  | None -> ()
  | Some h ->
      let stale = Hashtbl.fold (fun _ p acc -> if covers p.lrd_oid then p :: acc else acc) h [] in
      List.iter
        (fun p ->
          match Hashtbl.find_opt t.objects p.lrd_oid with
          | Some obj -> remove_pending t obj from_
          | None -> ())
        stale);
  (* Rewrite PDs (ti, tk, op) to (tj, tk, op) for the delegated objects. *)
  (match Hashtbl.find_opt t.permits_by_grantor from_ with
  | Some l ->
      let moving_pds, staying_pds = List.partition (fun pd -> covers pd.pd_oid) !l in
      l := staying_pds;
      List.iter
        (fun pd ->
          (match Hashtbl.find_opt t.objects pd.pd_oid with
          | Some obj ->
              od_pd_unindex obj pd;
              pd.pd_grantor <- to_;
              od_pd_index obj pd;
              touched := obj :: !touched
          | None -> pd.pd_grantor <- to_))
        moving_pds;
      if moving_pds <> [] then begin
        let tl = index_list t.permits_by_grantor to_ in
        tl := moving_pds @ !tl
      end
  | None -> ());
  (* Re-derive waits-for contributions of every object whose holders or
     permits changed: waiters on ti now wait on tj. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun obj ->
      if not (Hashtbl.mem seen obj.od_oid) then begin
        Hashtbl.replace seen obj.od_oid ();
        refresh_waits t obj
      end)
    !touched;
  if Trace.on () then List.iter (fun lrd -> trace_lock Trace.Transfer to_ lrd.lrd_oid lrd.lrd_mode) moving;
  List.map (fun lrd -> lrd.lrd_oid) moving

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let holds t tid oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> None
  | Some obj -> (
      match find_lrd obj tid with
      | Some lrd when lrd.lrd_status = Granted || lrd.lrd_status = Suspended ->
          Some (lrd.lrd_mode, lrd.lrd_status)
      | _ -> None)

let locked_objects t tid =
  match Hashtbl.find_opt t.by_txn tid with
  | None -> []
  | Some h -> Hashtbl.fold (fun oid _ acc -> oid :: acc) h []

let lock_count t tid =
  match Hashtbl.find_opt t.by_txn tid with None -> 0 | Some h -> Hashtbl.length h

(* Waits-for edges recomputed from the pending lists: requester -> each
   granted holder whose lock conflicts (and is not excused by a
   permit).  This is the from-scratch debug/introspection view; the
   live engine path reads the incremental graph instead. *)
let waits_for t =
  Hashtbl.fold
    (fun _ obj acc ->
      let acc = ref acc in
      list_iter
        (fun p ->
          let op = Mode.as_op p.lrd_mode in
          list_iter
            (fun gl ->
              if blocks_waiter obj p.lrd_tid p.lrd_mode op gl then
                acc := (p.lrd_tid, gl.lrd_tid) :: !acc)
            obj.granted)
        obj.pending;
      !acc)
    t.objects []

(* The incremental graph's edge set (distinct pairs). *)
let waits_for_incremental t =
  Hashtbl.fold
    (fun waiter adj acc -> Hashtbl.fold (fun holder _ acc -> (waiter, holder) :: acc) adj acc)
    t.wf_out []

(* Invariant: the incrementally maintained graph carries exactly the
   edges a from-scratch rebuild would derive from the ODs. *)
let check_waits_for_invariant t =
  let cmp (a, b) (c, d) =
    match Tid.compare a c with 0 -> Tid.compare b d | n -> n
  in
  let norm l = List.sort_uniq cmp l in
  norm (waits_for t) = norm (waits_for_incremental t)

(* DFS cycle search shared by the incremental and rebuild paths.
   [roots] lists the nodes with outgoing edges; [succs] their
   successors. *)
let cycle_search roots succs =
  let exception Found of Tid.t list in
  let visited = Hashtbl.create 16 in
  (* [path] holds the current DFS stack, most recent first; on revisiting
     a node already on the stack, the stack prefix down to that node is
     the cycle. *)
  let rec dfs path node =
    if List.exists (Tid.equal node) path then begin
      let rec take acc = function
        | [] -> acc
        | x :: rest -> if Tid.equal x node then x :: acc else take (x :: acc) rest
      in
      raise (Found (take [] path))
    end
    else if not (Hashtbl.mem visited node) then begin
      Hashtbl.replace visited node ();
      List.iter (dfs (node :: path)) (succs node)
    end
  in
  match List.iter (fun node -> dfs [] node) roots with
  | () -> None
  | exception Found cycle -> Some cycle

(* Find a cycle in the live waits-for graph, if any; used for deadlock
   victim selection.  O(edges) — no reconstruction from the ODs. *)
let find_cycle t =
  Asset_util.Stats.Counter.incr t.cycle_checks;
  if t.wf_edges = 0 then None
  else
    let roots = Hashtbl.fold (fun node _ acc -> node :: acc) t.wf_out [] in
    let succs node =
      match Hashtbl.find_opt t.wf_out node with
      | Some adj -> Hashtbl.fold (fun s _ acc -> s :: acc) adj []
      | None -> []
    in
    cycle_search roots succs

(* The pre-overhaul path, kept as the cross-check and bench baseline:
   rebuild the whole graph from the ODs, then search it. *)
let find_cycle_rebuild t =
  let edges = waits_for t in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let l = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: l))
    edges;
  let roots = Hashtbl.fold (fun node _ acc -> node :: acc) adj [] in
  let succs node = match Hashtbl.find_opt adj node with Some l -> l | None -> [] in
  cycle_search roots succs

(* Counters reset only here, never on read.  [waits_edges] is exempt:
   it is a live gauge mirroring the refcounted waits-for adjacency, so
   zeroing it outside the graph's own bookkeeping would corrupt it. *)
let reset_stats t =
  List.iter Asset_util.Stats.Counter.reset
    [ t.acquires; t.blocks; t.suspensions; t.permit_grants; t.cycle_checks ]

let stats t =
  [
    ("acquires", Asset_util.Stats.Counter.get t.acquires);
    ("blocks", Asset_util.Stats.Counter.get t.blocks);
    ("suspensions", Asset_util.Stats.Counter.get t.suspensions);
    ("permit_grants", Asset_util.Stats.Counter.get t.permit_grants);
    ("waits_edges", t.wf_edges);
    ("cycle_checks", Asset_util.Stats.Counter.get t.cycle_checks);
  ]

(* Render an object descriptor in the shape of the paper's Figure 1:
   the object id with its granted-lock list, pending-request list and
   permission list. *)
let pp_od t ppf oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> Format.fprintf ppf "OD(%a): <no descriptor>" Oid.pp oid
  | Some obj ->
      let pp_lrd ppf l =
        Format.fprintf ppf "(%a,%a,%a)" Tid.pp l.lrd_tid Mode.pp l.lrd_mode pp_status l.lrd_status
      in
      let pp_pd ppf pd =
        Format.fprintf ppf "(%a,%s,%a)" Tid.pp pd.pd_grantor
          (match pd.pd_grantee with Some g -> Format.asprintf "%a" Tid.pp g | None -> "*")
          Mode.Ops.pp pd.pd_ops
      in
      Format.fprintf ppf "OD(%a)@.  granted: %a@.  pending: %a@.  permits: %a" Oid.pp oid
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_lrd)
        (list_elems obj.granted)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_lrd)
        (list_elems obj.pending)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pd)
        obj.permits

let granted_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun l -> (l.lrd_tid, l.lrd_mode, l.lrd_status)) (list_elems obj.granted)

let pending_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun l -> (l.lrd_tid, l.lrd_mode, l.lrd_status)) (list_elems obj.pending)

let permits_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun pd -> (pd.pd_grantor, pd.pd_grantee, pd.pd_ops)) obj.permits
