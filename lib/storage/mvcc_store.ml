(* Multi-version wrapper over any base store.

   The base store keeps playing its existing role: it holds the
   *working* latest state, which strict 2PL transactions read and
   mutate in place (and which may therefore be dirty with uncommitted
   data mid-transaction).  This wrapper adds per-OID chains of
   *committed* versions stamped with commit timestamps, so read-only
   transactions can read the newest version committed before their
   begin timestamp without taking any lock.

   Invariant: once an oid has a chain, the chain holds its full
   committed history (trimmed from the back by GC, never past the
   newest version at-or-below the GC watermark).  The engine seeds the
   chain via [preserve] with the pre-image of the *first* engine write
   to the oid — i.e. its committed state at that point — so a dirty
   base value is never visible through [read_at].  An oid with no
   chain has never been written through the engine, and its base value
   is by construction committed (initial population), read as
   timestamp 0.

   GC: the watermark is the minimum begin timestamp among active
   snapshots (or the current commit timestamp when none are active).
   A chain is trimmed to the versions newer than the watermark plus
   one anchor — the newest version at or below it, which some active
   snapshot may still need.  With no readers the chain is exactly the
   head.  Chains are trimmed opportunistically on [publish] and in
   bulk when the oldest snapshot closes. *)

module Oid = Asset_util.Id.Oid

type version = { ts : int; value : Value.t option (* None = absent at this time *) }

type t = {
  chains : (Oid.t, version list) Hashtbl.t; (* newest first *)
  snapshots : (int, int) Hashtbl.t; (* begin ts -> active reader count *)
  mutable commit_ts : int;
}

let create () = { chains = Hashtbl.create 64; snapshots = Hashtbl.create 8; commit_ts = 0 }

let watermark t = Hashtbl.fold (fun ts _ acc -> min ts acc) t.snapshots t.commit_ts

(* Trim to versions newer than the watermark plus the anchor (newest
   version at or below it). *)
let rec trim wm = function
  | [] -> []
  | v :: rest -> if v.ts > wm then v :: trim wm rest else [ v ]

let stamp_commit t =
  t.commit_ts <- t.commit_ts + 1;
  t.commit_ts

let preserve t oid before =
  if not (Hashtbl.mem t.chains oid) then Hashtbl.replace t.chains oid [ { ts = 0; value = before } ]

let publish t oid ts value =
  let value = Some value in
  let chain =
    match Hashtbl.find_opt t.chains oid with
    | Some (head :: rest) when head.ts = ts ->
        (* Another member of the same commit group already published
           this oid; the replay of the later member subsumes it. *)
        { ts; value } :: rest
    | Some chain -> { ts; value } :: chain
    | None -> [ { ts; value } ]
  in
  Hashtbl.replace t.chains oid (trim (watermark t) chain)

let read_at base t oid ts =
  match Hashtbl.find_opt t.chains oid with
  | Some chain -> (
      match List.find_opt (fun v -> v.ts <= ts) chain with
      | Some v -> (v.ts, v.value)
      | None ->
          (* GC never trims past the newest version <= any active
             snapshot, so this means the oid did not exist at [ts]. *)
          (0, None))
  | None ->
      (* Never engine-written: the base value is the committed initial
         state. *)
      (0, Store.read base oid)

let committed_head base t oid =
  match Hashtbl.find_opt t.chains oid with
  | Some (head :: _) -> head.value
  | Some [] | None -> Store.read base oid

let gc t =
  let wm = watermark t in
  let trimmed = Hashtbl.fold (fun oid chain acc -> (oid, trim wm chain) :: acc) t.chains [] in
  List.iter (fun (oid, chain) -> Hashtbl.replace t.chains oid chain) trimmed

let begin_snapshot t =
  let ts = t.commit_ts in
  let n = Option.value (Hashtbl.find_opt t.snapshots ts) ~default:0 in
  Hashtbl.replace t.snapshots ts (n + 1);
  ts

let end_snapshot t ts =
  (match Hashtbl.find_opt t.snapshots ts with
  | Some n when n > 1 -> Hashtbl.replace t.snapshots ts (n - 1)
  | Some _ -> Hashtbl.remove t.snapshots ts
  | None -> ());
  (* Only a departing minimum can move the watermark. *)
  if not (Hashtbl.mem t.snapshots ts) then gc t

let max_chain t = Hashtbl.fold (fun _ chain acc -> max (List.length chain) acc) t.chains 0
let version_count t = Hashtbl.fold (fun _ chain acc -> acc + List.length chain) t.chains 0

(* Wrap a base store: same name and base surface (so content-comparison
   helpers and recovery are unaffected), plus the mvcc operations.
   Idempotent on stores that already carry them. *)
let wrap (base : Store.t) : Store.t =
  match base.Store.mvcc with
  | Some _ -> base
  | None ->
      let t = create () in
      {
        base with
        Store.mvcc =
          Some
            {
              Store.stamp_commit = (fun () -> stamp_commit t);
              current_ts = (fun () -> t.commit_ts);
              preserve = (fun oid before -> preserve t oid before);
              publish = (fun oid ts v -> publish t oid ts v);
              read_at = (fun oid ts -> read_at base t oid ts);
              committed_head = (fun oid -> committed_head base t oid);
              begin_snapshot = (fun () -> begin_snapshot t);
              end_snapshot = (fun ts -> end_snapshot t ts);
              gc = (fun () -> gc t);
              max_chain = (fun () -> max_chain t);
              version_count = (fun () -> version_count t);
            };
      }
