(** Buffer pool: a bounded page cache over the pager with pinning,
    dirty tracking and O(1) LRU eviction among unpinned frames.

    The paper's shared-cache operating mode ("the application operates
    directly on the objects in a shared cache") corresponds to handing
    out frame bytes directly: callers mutate them in place and mark the
    frame dirty.

    Unpinned frames are threaded on an intrusive doubly-linked LRU
    list; eviction pops the head (least recently released) without
    scanning the frame table.  The [lru_*] fields are the intrusive
    links — treat them as private. *)

type frame = {
  page_id : int;
  bytes : Bytes.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable lru_prev : frame option;
  mutable lru_next : frame option;
  mutable in_lru : bool;
}

type t

val create : ?capacity:int -> Pager.t -> t

val pin : t -> int -> frame
(** Fetch (possibly evicting) and pin a page.  Raises [Failure] when
    every frame is pinned. *)

val unpin : t -> frame -> unit
(** Release one pin; on the last unpin the frame becomes the
    most-recently-used eviction candidate. *)

val mark_dirty : frame -> unit

val with_page : t -> int -> (frame -> 'a) -> 'a
(** Pin/unpin bracket, exception-safe. *)

val flush_all : t -> unit
(** Write back every dirty frame and sync the pager. *)

val crash : t -> unit
(** Drop all cached frames {e without} writing them back — simulates
    losing the volatile cache. *)

val hit_count : t -> int
val miss_count : t -> int
val eviction_count : t -> int
val cached_pages : t -> int
