(* Object values.

   EOS stores untyped byte sequences; objects acquire structure only
   through the operations invoked on them.  We keep the same stance: a
   value is an immutable byte string, with a few codecs for the payloads
   the tests, examples and benchmarks use (integers, counters, small
   records). *)

type t = string

let of_string s = s
let to_string v = v
let length = String.length
let equal = String.equal
let empty = ""

let pp ppf v =
  if String.length v <= 32 && String.for_all (fun c -> c >= ' ' && c <= '~') v then
    Format.fprintf ppf "%S" v
  else Format.fprintf ppf "<%d bytes>" (String.length v)

(* Fixed-width integer codec, used heavily by tests (counter objects)
   and by the workload generator (account balances). *)

let of_int i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Bytes.unsafe_to_string b

let to_int v =
  if String.length v <> 8 then invalid_arg "Value.to_int: not an 8-byte integer value";
  Int64.to_int (String.get_int64_le v 0)

let incr_int v delta = of_int (to_int v + delta)

(* Queue codec: a queue value is a sequence of length-prefixed items
   (4-byte LE length, then the bytes).  Used by the engine's [enqueue]
   operation; the empty value is the empty queue. *)

let of_queue items =
  let b = Buffer.create 64 in
  List.iter
    (fun item ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 (Int32.of_int (String.length item));
      Buffer.add_bytes b hdr;
      Buffer.add_string b item)
    items;
  Buffer.contents b

let to_queue v =
  let n = String.length v in
  let rec go pos acc =
    if pos = n then List.rev acc
    else if pos + 4 > n then invalid_arg "Value.to_queue: truncated item header"
    else
      let len = Int32.to_int (String.get_int32_le v pos) in
      if len < 0 || pos + 4 + len > n then invalid_arg "Value.to_queue: truncated item"
      else go (pos + 4 + len) (String.sub v (pos + 4) len :: acc)
  in
  go 0 []

let queue_push v item = of_queue (to_queue v @ [ item ])

(* Remove the last occurrence of [item] — the logical undo of an
   append.  A no-op when the item is absent (the enqueue never
   reached the store). *)
let queue_remove_last v item =
  let items = to_queue v in
  let rec drop_last = function
    | [] -> []
    | x :: rest ->
        if String.equal x item && not (List.exists (String.equal item) rest) then rest
        else x :: drop_last rest
  in
  of_queue (drop_last items)

(* Association-list codec for small record-like objects, e.g. the
   reservation objects in the travel-workflow example:
   "field=value;field=value".  Fields and values must not contain '=' or
   ';'. *)

let of_fields fields =
  List.iter
    (fun (k, v) ->
      if String.exists (fun c -> c = '=' || c = ';') (k ^ v) then
        invalid_arg "Value.of_fields: field contains reserved character")
    fields;
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let to_fields v =
  if String.length v = 0 then []
  else
    String.split_on_char ';' v
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> (kv, ""))

let field v key = List.assoc_opt key (to_fields v)

let set_field v key value =
  let fields = to_fields v in
  let fields =
    if List.mem_assoc key fields then
      List.map (fun (k, old) -> if String.equal k key then (k, value) else (k, old)) fields
    else fields @ [ (key, value) ]
  in
  of_fields fields
