(* In-memory object store: a hash table from oid to value.

   This models the EOS shared object cache in the paper's "operate
   directly on the objects in a shared cache" mode, without the disk
   behind it.  It is the store used by the concurrency tests and all
   benchmarks that are not about recovery. *)

module Oid = Asset_util.Id.Oid

type t = (Oid.t, Value.t) Hashtbl.t

let create ?(initial_size = 256) () : t = Hashtbl.create initial_size

let to_store ?(name = "heap") (t : t) : Store.t =
  {
    Store.name;
    read = (fun oid -> Hashtbl.find_opt t oid);
    write = (fun oid v -> Hashtbl.replace t oid v);
    delete = (fun oid -> Hashtbl.remove t oid);
    exists = (fun oid -> Hashtbl.mem t oid);
    iter = (fun f -> Hashtbl.iter f t);
    size = (fun () -> Hashtbl.length t);
    flush = (fun () -> ());
    mvcc = None;
  }

let store ?name ?initial_size () = to_store ?name (create ?initial_size ())

(* Populate [n] objects with ids 1..n, each holding [value i]. *)
let populate store ~n ~value =
  for i = 1 to n do
    Store.write store (Oid.of_int i) (value i)
  done
