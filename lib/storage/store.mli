(** The object-store interface the transaction engine runs against.

    Implementations: {!Heap_store} (in-memory) and {!Persistent_store}
    (paged, buffer-pooled, durable via [flush]). *)

module Oid = Asset_util.Id.Oid

(** Multi-version extension surfaced by {!Mvcc_store.wrap}: per-OID
    committed-version chains stamped with commit timestamps, snapshot
    registration, and GC to the minimum active snapshot.  Plain stores
    carry [None]; the engine wraps them on creation. *)
type mvcc = {
  stamp_commit : unit -> int;
  current_ts : unit -> int;
  preserve : Oid.t -> Value.t option -> unit;
  publish : Oid.t -> int -> Value.t -> unit;
  read_at : Oid.t -> int -> int * Value.t option;
  committed_head : Oid.t -> Value.t option;
  begin_snapshot : unit -> int;
  end_snapshot : int -> unit;
  gc : unit -> unit;
  max_chain : unit -> int;
  version_count : unit -> int;
}

type t = {
  name : string;
  read : Oid.t -> Value.t option;
  write : Oid.t -> Value.t -> unit;
  delete : Oid.t -> unit;
  exists : Oid.t -> bool;
  iter : (Oid.t -> Value.t -> unit) -> unit;
  size : unit -> int;
  flush : unit -> unit;
  mvcc : mvcc option;
}

val name : t -> string
val read : t -> Oid.t -> Value.t option

val read_exn : t -> Oid.t -> Value.t
(** Raises [Invalid_argument] when the object does not exist. *)

val write : t -> Oid.t -> Value.t -> unit
val delete : t -> Oid.t -> unit
val exists : t -> Oid.t -> bool
val iter : t -> (Oid.t -> Value.t -> unit) -> unit
val size : t -> int

val flush : t -> unit
(** Make the current contents durable (no-op for the heap store). *)

val dump : t -> (Oid.t * Value.t) list
(** Full contents as an oid-sorted association list; a debugging
    iterator used by tests to compare outcomes (not a snapshot in the
    MVCC sense — see {!mvcc}). *)

val equal_content : t -> t -> bool
