(* Persistent object store: slotted pages behind a buffer pool.

   The object table (oid -> page/slot) and the per-page free-space hints
   are volatile; both are rebuilt by scanning pages at open time, which
   is possible because every record carries its oid (see
   [Slotted_page]).  Crash-consistency of object *contents* is the job
   of the write-ahead log in [Asset_wal]; this layer only guarantees
   that [flush] makes the current cache contents durable. *)

module Oid = Asset_util.Id.Oid
module Fault = Asset_fault.Fault

(* Fires at the top of every [write] — before the object table or any
   page is touched, so an injected failure leaves the store unchanged
   and a crash loses only volatile state. *)
let site_write = Fault.register "pstore.write"

type location = { page_id : int; slot : int }

type t = {
  pager : Pager.t;
  pool : Buffer_pool.t;
  table : (Oid.t, location) Hashtbl.t;
  (* Free-space hints: conservative per-page total_free values.  Kept
     approximate; the insert path re-checks against the real page. *)
  free_hints : (int, int) Hashtbl.t;
}

let scan_page t page_id =
  Buffer_pool.with_page t.pool page_id (fun frame ->
      let page = Slotted_page.of_bytes frame.Buffer_pool.bytes in
      Slotted_page.iter page (fun slot oid _body ->
          Hashtbl.replace t.table oid { page_id; slot });
      Hashtbl.replace t.free_hints page_id (Slotted_page.total_free page))

let rebuild t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.free_hints;
  for page_id = 1 to Pager.npages t.pager do
    scan_page t page_id
  done

let create ?page_size ?pool_capacity path =
  let pager = Pager.create ?page_size path in
  let pool = Buffer_pool.create ?capacity:pool_capacity pager in
  { pager; pool; table = Hashtbl.create 256; free_hints = Hashtbl.create 64 }

let open_existing ?pool_capacity path =
  let pager = Pager.open_existing path in
  let pool = Buffer_pool.create ?capacity:pool_capacity pager in
  let t = { pager; pool; table = Hashtbl.create 256; free_hints = Hashtbl.create 64 } in
  rebuild t;
  t

let read t oid =
  match Hashtbl.find_opt t.table oid with
  | None -> None
  | Some { page_id; slot } ->
      Buffer_pool.with_page t.pool page_id (fun frame ->
          let page = Slotted_page.of_bytes frame.Buffer_pool.bytes in
          match Slotted_page.read page slot with
          | Some (stored_oid, body) ->
              assert (Oid.equal stored_oid oid);
              Some (Value.of_string body)
          | None -> None)

let update_hint t page_id page =
  Hashtbl.replace t.free_hints page_id (Slotted_page.total_free page)

(* Pick a page whose free hint can hold [need] bytes, or allocate. *)
let find_target_page t ~need =
  let found =
    Hashtbl.fold
      (fun page_id free acc ->
        match acc with Some _ -> acc | None -> if free >= need then Some page_id else None)
      t.free_hints None
  in
  match found with
  | Some page_id -> page_id
  | None ->
      let page_id = Pager.alloc_page t.pager in
      Buffer_pool.with_page t.pool page_id (fun frame ->
          let page = Slotted_page.init frame.Buffer_pool.bytes in
          Buffer_pool.mark_dirty frame;
          update_hint t page_id page);
      page_id

let delete t oid =
  match Hashtbl.find_opt t.table oid with
  | None -> ()
  | Some { page_id; slot } ->
      Buffer_pool.with_page t.pool page_id (fun frame ->
          let page = Slotted_page.of_bytes frame.Buffer_pool.bytes in
          Slotted_page.delete page slot;
          Buffer_pool.mark_dirty frame;
          update_hint t page_id page);
      Hashtbl.remove t.table oid

let rec insert t oid body =
  let need = Slotted_page.record_header + String.length body + Slotted_page.slot_size in
  let page_id = find_target_page t ~need in
  let inserted =
    Buffer_pool.with_page t.pool page_id (fun frame ->
        let page = Slotted_page.of_bytes frame.Buffer_pool.bytes in
        match Slotted_page.insert_with_compaction page oid body with
        | slot ->
            Buffer_pool.mark_dirty frame;
            update_hint t page_id page;
            Some slot
        | exception Slotted_page.Page_full ->
            (* Hint was stale; fix it and retry elsewhere. *)
            update_hint t page_id page;
            None)
  in
  match inserted with
  | Some slot -> Hashtbl.replace t.table oid { page_id; slot }
  | None -> insert t oid body

let write t oid value =
  Fault.hit_io site_write;
  let body = Value.to_string value in
  if String.length body > 65535 then
    invalid_arg "Persistent_store.write: object larger than a slot (large objects unsupported)";
  match Hashtbl.find_opt t.table oid with
  | Some { page_id; slot } ->
      let in_place =
        Buffer_pool.with_page t.pool page_id (fun frame ->
            let page = Slotted_page.of_bytes frame.Buffer_pool.bytes in
            let ok = Slotted_page.update_in_place page slot body in
            if ok then begin
              Buffer_pool.mark_dirty frame;
              update_hint t page_id page
            end;
            ok)
      in
      if not in_place then begin
        delete t oid;
        insert t oid body
      end
  | None -> insert t oid body

let exists t oid = Hashtbl.mem t.table oid

let iter t f =
  (* Iterate via the object table so dead records are skipped. *)
  let oids = Hashtbl.fold (fun oid _ acc -> oid :: acc) t.table [] in
  List.iter
    (fun oid -> match read t oid with Some v -> f oid v | None -> ())
    oids

let size t = Hashtbl.length t.table
let flush t = Buffer_pool.flush_all t.pool

let close t =
  flush t;
  Pager.close t.pager

(* Simulate a crash: throw away the volatile cache and object table,
   then rebuild from what reached the disk.  Used by recovery tests. *)
let crash_and_reopen t =
  Buffer_pool.crash t.pool;
  rebuild t

let to_store ?(name = "persistent") t : Store.t =
  {
    Store.name;
    read = (fun oid -> read t oid);
    write = (fun oid v -> write t oid v);
    delete = (fun oid -> delete t oid);
    exists = (fun oid -> exists t oid);
    iter = (fun f -> iter t f);
    size = (fun () -> size t);
    flush = (fun () -> flush t);
    mvcc = None;
  }
