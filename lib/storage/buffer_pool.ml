(* Buffer pool: a bounded cache of pages over the pager, with pinning,
   dirty tracking and LRU eviction among unpinned frames.

   The shared-cache operating mode described in the paper ("the
   application operates directly on the objects in a shared cache
   without first copying the object to its private address space") maps
   to handing out the frame's bytes directly; callers mutate them in
   place and mark the frame dirty.

   Eviction is O(1): unpinned frames are threaded on an intrusive
   doubly-linked LRU list (head = least recently released, tail = most
   recently released).  A frame leaves the list while pinned and
   rejoins at the tail on its last unpin, so the victim is always the
   list head — no scan over the frame table. *)

module Fault = Asset_fault.Fault

(* Fires once per dirty-frame writeback — a crash here models power
   loss midway through [flush_all], leaving an arbitrary subset of the
   dirty pages on disk. *)
let site_flush = Fault.register "pool.flush_frame"

type frame = {
  page_id : int;
  bytes : Bytes.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable lru_prev : frame option;
  mutable lru_next : frame option;
  mutable in_lru : bool;
}

type t = {
  pager : Pager.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable lru_head : frame option; (* least recently used unpinned frame *)
  mutable lru_tail : frame option;
  hits : Asset_util.Stats.Counter.t;
  misses : Asset_util.Stats.Counter.t;
  evictions : Asset_util.Stats.Counter.t;
}

let create ?(capacity = 64) pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    pager;
    capacity;
    frames = Hashtbl.create capacity;
    lru_head = None;
    lru_tail = None;
    hits = Asset_util.Stats.Counter.create "pool.hits";
    misses = Asset_util.Stats.Counter.create "pool.misses";
    evictions = Asset_util.Stats.Counter.create "pool.evictions";
  }

let lru_unlink t frame =
  if frame.in_lru then begin
    (match frame.lru_prev with
    | Some p -> p.lru_next <- frame.lru_next
    | None -> t.lru_head <- frame.lru_next);
    (match frame.lru_next with
    | Some n -> n.lru_prev <- frame.lru_prev
    | None -> t.lru_tail <- frame.lru_prev);
    frame.lru_prev <- None;
    frame.lru_next <- None;
    frame.in_lru <- false
  end

let lru_push_tail t frame =
  frame.lru_prev <- t.lru_tail;
  frame.lru_next <- None;
  frame.in_lru <- true;
  (match t.lru_tail with Some p -> p.lru_next <- Some frame | None -> t.lru_head <- Some frame);
  t.lru_tail <- Some frame

let flush_frame t frame =
  if frame.dirty then begin
    Fault.hit_io site_flush;
    Pager.write_page t.pager frame.page_id frame.bytes;
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame — the LRU list head.
   Raises if every frame is pinned (the list is empty) — a genuine
   resource-exhaustion condition the caller must avoid by unpinning. *)
let evict_one t =
  match t.lru_head with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some frame ->
      lru_unlink t frame;
      flush_frame t frame;
      Hashtbl.remove t.frames frame.page_id;
      Asset_util.Stats.Counter.incr t.evictions

(* Pin a page and return its frame bytes.  The caller must [unpin]. *)
let pin t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
      Asset_util.Stats.Counter.incr t.hits;
      if frame.pins = 0 then lru_unlink t frame;
      frame.pins <- frame.pins + 1;
      frame
  | None ->
      Asset_util.Stats.Counter.incr t.misses;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      let bytes = Pager.read_page t.pager page_id in
      let frame =
        { page_id; bytes; pins = 1; dirty = false; lru_prev = None; lru_next = None; in_lru = false }
      in
      Hashtbl.replace t.frames page_id frame;
      frame

let unpin t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_pool.unpin: frame not pinned";
  frame.pins <- frame.pins - 1;
  if frame.pins = 0 then lru_push_tail t frame

let mark_dirty frame = frame.dirty <- true

let with_page t page_id f =
  let frame = pin t page_id in
  match f frame with
  | result ->
      unpin t frame;
      result
  | exception e ->
      unpin t frame;
      raise e

let flush_all t =
  Hashtbl.iter (fun _ frame -> flush_frame t frame) t.frames;
  Pager.sync t.pager

(* Drop all cached frames without writing them back: used by the
   recovery tests to simulate a crash that loses the volatile cache. *)
let crash t =
  Hashtbl.reset t.frames;
  t.lru_head <- None;
  t.lru_tail <- None

let hit_count t = Asset_util.Stats.Counter.get t.hits
let miss_count t = Asset_util.Stats.Counter.get t.misses
let eviction_count t = Asset_util.Stats.Counter.get t.evictions
let cached_pages t = Hashtbl.length t.frames
