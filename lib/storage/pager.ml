(* The pager: a file of fixed-size pages.

   Page 0 is the store header (magic, page size, allocated page count);
   data pages are numbered from 1.  All I/O goes through [read_page] /
   [write_page]; the buffer pool sits on top.  Durability is obtained by
   [sync] (fsync).

   Failpoints: "pager.read_page", "pager.write_page", "pager.sync", and
   "pager.torn_write" — the last writes only the first half of the page
   and then crashes, modelling a torn multi-sector page write.  Raw I/O
   failures (injected or real) surface as [Fault.Storage_error]. *)

module Fault = Asset_fault.Fault

let site_read = Fault.register "pager.read_page"
let site_write = Fault.register "pager.write_page"
let site_torn = Fault.register "pager.torn_write"
let site_sync = Fault.register "pager.sync"
let magic = "ASSETPG1"
let default_page_size = 4096

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  mutable npages : int; (* data pages allocated (excludes header page) *)
  reads : Asset_util.Stats.Counter.t;
  writes : Asset_util.Stats.Counter.t;
}

let pread fd buf off =
  let len = Bytes.length buf in
  let rec loop pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n = 0 then invalid_arg "Pager: short read" else loop (pos + n)
    end
  in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  loop 0

let pwrite ?len fd buf off =
  let len = match len with Some l -> l | None -> Bytes.length buf in
  let rec loop pos =
    if pos < len then begin
      let n = Unix.write fd buf pos (len - pos) in
      loop (pos + n)
    end
  in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  loop 0

let write_header t =
  let b = Bytes.make t.page_size '\000' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int32_le b 8 (Int32.of_int t.page_size);
  Bytes.set_int32_le b 12 (Int32.of_int t.npages);
  Fault.protect "pager.write_header" (fun () -> pwrite t.fd b 0)

let create ?(page_size = default_page_size) path =
  if page_size < 64 then invalid_arg "Pager.create: page size too small";
  let fd =
    Fault.protect "pager.open" (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
  in
  let t =
    {
      fd;
      path;
      page_size;
      npages = 0;
      reads = Asset_util.Stats.Counter.create "pager.reads";
      writes = Asset_util.Stats.Counter.create "pager.writes";
    }
  in
  write_header t;
  t

let open_existing path =
  let fd = Fault.protect "pager.open" (fun () -> Unix.openfile path [ Unix.O_RDWR ] 0o644) in
  let header = Bytes.create 16 in
  Fault.protect "pager.open" (fun () -> pread fd header 0);
  if Bytes.sub_string header 0 8 <> magic then begin
    Unix.close fd;
    Fmt.invalid_arg "Pager.open_existing: %s is not an ASSET page file" path
  end;
  let page_size = Int32.to_int (Bytes.get_int32_le header 8) in
  let npages = Int32.to_int (Bytes.get_int32_le header 12) in
  {
    fd;
    path;
    page_size;
    npages;
    reads = Asset_util.Stats.Counter.create "pager.reads";
    writes = Asset_util.Stats.Counter.create "pager.writes";
  }

let page_size t = t.page_size
let npages t = t.npages
let path t = t.path

let check_page_id t page_id =
  if page_id < 1 || page_id > t.npages then
    Fmt.invalid_arg "Pager: page %d out of range (1..%d)" page_id t.npages

let alloc_page t =
  t.npages <- t.npages + 1;
  let b = Bytes.make t.page_size '\000' in
  Fault.protect "pager.alloc_page" (fun () -> pwrite t.fd b (t.npages * t.page_size));
  write_header t;
  t.npages

let read_page t page_id =
  check_page_id t page_id;
  let b = Bytes.create t.page_size in
  Fault.io site_read (fun () -> pread t.fd b (page_id * t.page_size));
  Asset_util.Stats.Counter.incr t.reads;
  b

let write_page t page_id bytes =
  check_page_id t page_id;
  if Bytes.length bytes <> t.page_size then invalid_arg "Pager.write_page: wrong size";
  (match Fault.check site_torn with
  | Some _ ->
      (* A torn page write: the first half reaches the disk, then power
         loss.  Rebuild-after-crash must cope with the mixed page. *)
      Fault.protect "pager.torn_write" (fun () ->
          pwrite ~len:(t.page_size / 2) t.fd bytes (page_id * t.page_size));
      raise (Fault.Crash "pager.torn_write")
  | None -> Fault.io site_write (fun () -> pwrite t.fd bytes (page_id * t.page_size)));
  Asset_util.Stats.Counter.incr t.writes

let sync t = Fault.io site_sync (fun () -> Unix.fsync t.fd)

let close t =
  write_header t;
  Fault.protect "pager.close" (fun () ->
      Unix.fsync t.fd;
      Unix.close t.fd)

let read_count t = Asset_util.Stats.Counter.get t.reads
let write_count t = Asset_util.Stats.Counter.get t.writes
