(* The object-store interface the transaction engine runs against.

   Two implementations exist: [Heap_store] (in-memory, used by benchmarks
   and most tests) and [Persistent_store] (paged, buffer-pooled, used by
   the recovery experiments).  The engine only needs this small surface;
   recovery-time concerns (flush, close) are handled by whoever owns the
   store. *)

module Oid = Asset_util.Id.Oid

(* Multi-version extension: a store may additionally expose per-OID
   committed-version chains stamped with commit timestamps, enabling
   lock-free snapshot reads by read-only transactions.  The closures
   are filled in by [Mvcc_store.wrap]; plain stores carry [None] and
   the engine wraps them on creation. *)
type mvcc = {
  stamp_commit : unit -> int;
      (* allocate the next commit timestamp (monotonic from 1) *)
  current_ts : unit -> int; (* last allocated commit timestamp *)
  preserve : Oid.t -> Value.t option -> unit;
      (* seed a missing chain with the pre-image of the first engine
         write to this oid — its committed state at timestamp 0
         ([None] = the object did not exist yet) *)
  publish : Oid.t -> int -> Value.t -> unit;
      (* append a committed version at a timestamp; replaces the head
         when it already carries the same timestamp (group commit) *)
  read_at : Oid.t -> int -> int * Value.t option;
      (* newest committed version with timestamp <= the snapshot's:
         (version timestamp, value — [None] = absent at that time) *)
  committed_head : Oid.t -> Value.t option;
      (* newest committed version irrespective of snapshots *)
  begin_snapshot : unit -> int; (* register a reader; returns its ts *)
  end_snapshot : int -> unit; (* unregister; may trigger GC *)
  gc : unit -> unit; (* trim chains to the min active snapshot *)
  max_chain : unit -> int; (* longest chain, for GC-bound tests *)
  version_count : unit -> int; (* total stored versions *)
}

type t = {
  name : string;
  read : Oid.t -> Value.t option;
  write : Oid.t -> Value.t -> unit;
  delete : Oid.t -> unit;
  exists : Oid.t -> bool;
  iter : (Oid.t -> Value.t -> unit) -> unit;
  size : unit -> int;
  flush : unit -> unit;
  mvcc : mvcc option;
}

let name t = t.name
let read t oid = t.read oid

let read_exn t oid =
  match t.read oid with
  | Some v -> v
  | None -> Fmt.invalid_arg "Store.read_exn: %a not found" Oid.pp oid

let write t oid v = t.write oid v
let delete t oid = t.delete oid
let exists t oid = t.exists oid
let iter t f = t.iter f
let size t = t.size ()
let flush t = t.flush ()

(* Full dump as a sorted association list; used by tests to compare the
   outcome of a concurrent schedule against a serial reference run.
   (This is a debugging iterator over latest state, not a snapshot —
   snapshots in the MVCC sense live behind [mvcc].) *)
let dump t =
  let acc = ref [] in
  t.iter (fun oid v -> acc := (oid, v) :: !acc);
  List.sort (fun (a, _) (b, _) -> Oid.compare a b) !acc

let equal_content a b =
  let sa = dump a and sb = dump b in
  List.length sa = List.length sb
  && List.for_all2 (fun (o1, v1) (o2, v2) -> Oid.equal o1 o2 && Value.equal v1 v2) sa sb
