(** Object values: immutable byte strings, as in EOS.

    Objects acquire structure only through the operations invoked on
    them; this module also provides the codecs used by tests, examples
    and workloads (fixed-width integers, field lists). *)

type t

val of_string : string -> t
val to_string : t -> string
val length : t -> int
val equal : t -> t -> bool
val empty : t
val pp : Format.formatter -> t -> unit

(** {2 Integer codec} *)

val of_int : int -> t
(** An 8-byte little-endian integer value. *)

val to_int : t -> int
(** Raises [Invalid_argument] when the value is not 8 bytes. *)

val incr_int : t -> int -> t
(** [incr_int v d] is [of_int (to_int v + d)]. *)

(** {2 Queue codec}

    A queue value is a sequence of length-prefixed items; the empty
    value is the empty queue.  Used by the engine's enqueue
    operation. *)

val of_queue : string list -> t
val to_queue : t -> string list
(** Raises [Invalid_argument] on a malformed queue value. *)

val queue_push : t -> string -> t
(** Append one item. *)

val queue_remove_last : t -> string -> t
(** Remove the last occurrence of an item — the logical undo of an
    append; a no-op when the item is absent. *)

(** {2 Field-list codec}

    Small record-like objects as ["k=v;k=v"].  Keys and values must not
    contain ['='] or [';']. *)

val of_fields : (string * string) list -> t
val to_fields : t -> (string * string) list
val field : t -> string -> string option

val set_field : t -> string -> string -> t
(** Replace or append one field, preserving the order of the others. *)
