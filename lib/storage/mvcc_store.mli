(** Multi-version wrapper over any base store.

    [wrap base] returns a store with the same base surface (reads and
    writes still hit [base], which holds the working latest state) plus
    {!Store.mvcc} operations: per-OID committed-version chains stamped
    with commit timestamps, snapshot registration, and GC to the
    minimum active snapshot's watermark.  Idempotent on stores already
    carrying the extension. *)

val wrap : Store.t -> Store.t
