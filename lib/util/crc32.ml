(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

   Used by the WAL frame format to detect bit rot and torn writes
   inside a record body.  The checksum is kept as a plain [int] masked
   to 32 bits so callers can store it with [Bytes.set_int32_le]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
