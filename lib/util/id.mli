(** Identifier types shared across the system.

    Transaction identifiers ([Tid]) are the opaque handles returned by
    [initiate]; object identifiers ([Oid]) name persistent objects in
    the store.  Both are private integers with a null value, cheap
    equality/hashing, and monotonic generators — the module types keep
    them from being mixed up. *)

module type S = sig
  type t

  val null : t
  (** The null identifier.  [initiate] returns it when resources are
      exhausted; [parent] returns it for top-level transactions. *)

  val is_null : t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val to_int : t -> int
  (** The raw integer behind the identifier (for encoding in logs and
      values). *)

  val of_int : int -> t
  (** Rebuild an identifier from its raw integer (log decoding). *)

  val partition : t -> int -> int
  (** [partition t n] is the bucket in [0, n) this identifier hashes
      to.  The system's one placement function: the sharded engine
      (home shard of an object) and parallel recovery (redo queue of
      an object) both route through it, so placements always agree.
      Raises [Invalid_argument] when [n] is below 1. *)

  val pp : Format.formatter -> t -> unit

  type gen
  (** A monotonic generator of fresh identifiers. *)

  val generator : ?start:int -> ?stride:int -> unit -> gen
  (** [generator ()] yields 1, 2, 3, ...  [generator ~start ~stride ()]
      yields [start], [start+stride], ... — shard [i] of [n] engines
      passes [~start:(i+1) ~stride:n] so identifiers minted on
      different domains never collide.  Raises [Invalid_argument] when
      [start] or [stride] is below 1. *)

  val fresh : gen -> t
  (** A fresh, never-null identifier; successive calls are strictly
      increasing. *)
end

module Make (_ : sig
  val prefix : string
end) : S
(** Build a fresh identifier type whose printed form starts with
    [prefix]. *)

module Tid : S
(** Transaction identifiers (printed [t1], [t2], ...). *)

module Oid : S
(** Object identifiers (printed [ob1], [ob2], ...). *)
