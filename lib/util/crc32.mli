(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The WAL frames every record with this checksum so recovery can
    distinguish a bit-flipped record from a valid one. *)

val string : string -> int
(** 32-bit checksum of the whole string (in the low 32 bits). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] over [s.[pos .. pos+len-1]];
    [update 0 s 0 (String.length s) = string s]. *)
