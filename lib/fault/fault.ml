(* Deterministic fault injection: named failpoints at every I/O site.

   A failpoint is a registered site ("wal.append", "pager.write_page",
   ...) holding an injectable policy.  Instrumented code calls [hit]
   (or [check], for sites that need custom semantics such as torn
   writes) on its site at the point where the real I/O happens; with
   the policy [Off] — the production state — that costs one load and
   one branch.

   Two injectable outcomes:

   - a *failure* raises [Injected], modelling an I/O error (EIO, short
     write, failed fsync).  Instrumented layers wrap it — together with
     real [Unix_error]/[Sys_error] — into [Storage_error], so the
     engine sees one classifiable error type whatever the source.

   - a *crash* raises [Crash], modelling power loss at that
     instruction.  Nothing catches it below the torture harness, which
     discards all volatile state (staging buffers, buffer pool, object
     table) and re-opens from disk, exactly as a restart would.

   All randomized triggers draw from the repository's SplitMix64 RNG so
   every fault schedule is reproducible from a seed. *)

exception Crash of string
(** Simulated power loss at the named site. *)

exception Injected of string
(** Simulated I/O failure at the named site. *)

exception Storage_error of string * exn
(** A storage-layer primitive failed: the site ("wal.append",
    "pager.sync", ...) and the underlying cause ([Injected] or a real
    [Unix.Unix_error]/[Sys_error]). *)

type policy =
  | Off
  | Fail_once
  | Fail_nth of int (* fail the nth hit from now (1-based), then disarm *)
  | Fail_prob of float * Asset_util.Rng.t
  | Crash_once
  | Crash_nth of int
  | Crash_prob of float * Asset_util.Rng.t
  | Disk_full of int (* byte budget; appends fail once it is exhausted *)

type site = {
  name : string;
  mutable policy : policy;
  mutable hits : int; (* times the site was evaluated *)
  mutable fired : int; (* times an action actually triggered *)
}

(* The registry is process-global and shared by every domain (a WAL
   instance on shard 3 and one on shard 0 both resolve "wal.append" to
   the same site), so its structure is mutex-protected.  Per-site
   counters are plain mutable ints: domains race on [hits], which can
   lose increments, but an unarmed site's counter is diagnostic only.
   Arming/disarming while other domains are running is not supported —
   tests arm sites before spawning shards (or only ever trip them from
   the driving domain). *)
let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let register name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some site -> site
      | None ->
          let site = { name; policy = Off; hits = 0; fired = 0 } in
          Hashtbl.add registry name site;
          site)

let find name = locked (fun () -> Hashtbl.find_opt registry name)
let sites () = locked (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) registry []) |> List.sort compare
let arm site policy = site.policy <- policy

let arm_name name policy =
  match find name with
  | Some site ->
      arm site policy;
      true
  | None -> false

let off site = site.policy <- Off

let reset site =
  site.policy <- Off;
  site.hits <- 0;
  site.fired <- 0

let reset_all () = locked (fun () -> Hashtbl.iter (fun _ site -> reset site) registry)
let hits site = site.hits
let fired site = site.fired

(* Evaluate the site's policy for one hit.  One-shot triggers disarm
   themselves so a fired fault never re-fires across a recovery. *)
let check site =
  site.hits <- site.hits + 1;
  match site.policy with
  | Off -> None
  | Fail_once ->
      site.policy <- Off;
      site.fired <- site.fired + 1;
      Some `Fail
  | Fail_nth n ->
      if n <= 1 then begin
        site.policy <- Off;
        site.fired <- site.fired + 1;
        Some `Fail
      end
      else begin
        site.policy <- Fail_nth (n - 1);
        None
      end
  | Fail_prob (p, rng) ->
      if Asset_util.Rng.float rng < p then begin
        site.fired <- site.fired + 1;
        Some `Fail
      end
      else None
  | Crash_once ->
      site.policy <- Off;
      site.fired <- site.fired + 1;
      Some `Crash
  | Crash_nth n ->
      if n <= 1 then begin
        site.policy <- Off;
        site.fired <- site.fired + 1;
        Some `Crash
      end
      else begin
        site.policy <- Crash_nth (n - 1);
        None
      end
  | Crash_prob (p, rng) ->
      if Asset_util.Rng.float rng < p then begin
        site.fired <- site.fired + 1;
        Some `Crash
      end
      else None
  (* A plain (sizeless) hit on a disk-full site models a zero-byte
     probe: it only fails once the budget is already exhausted. *)
  | Disk_full budget ->
      if budget > 0 then None
      else begin
        site.fired <- site.fired + 1;
        Some `Fail
      end

(* Evaluate one hit that wants to consume [bytes] of disk.  [Disk_full]
   is the only size-aware policy: the write passes while the budget
   covers it, and once the budget is exhausted every further write
   fails — the policy stays armed (a full disk stays full), so clean
   abort paths must cope with appends failing repeatedly. *)
let check_bytes site bytes =
  match site.policy with
  | Disk_full budget ->
      site.hits <- site.hits + 1;
      if bytes <= budget then begin
        site.policy <- Disk_full (budget - bytes);
        None
      end
      else begin
        site.fired <- site.fired + 1;
        Some `Fail
      end
  | _ -> check site

let hit site =
  match check site with
  | None -> ()
  | Some `Fail -> raise (Injected site.name)
  | Some `Crash -> raise (Crash site.name)

let hit_bytes site bytes =
  match check_bytes site bytes with
  | None -> ()
  | Some `Fail -> raise (Injected site.name)
  | Some `Crash -> raise (Crash site.name)

(* Run an I/O action under a site's typed-error discipline: injected
   and real I/O failures surface as [Storage_error]; [Crash] — and any
   already-classified [Storage_error] from a nested site — passes
   through untouched. *)
let protect name f =
  try f () with (Unix.Unix_error _ | Sys_error _ | Injected _) as cause -> raise (Storage_error (name, cause))

(* The production fast path: [Off] must cost one load and one branch on
   the I/O hot paths (every WAL append goes through here), so skip the
   closure and the handler entirely unless the site is armed. *)
let hit_io site =
  match site.policy with
  | Off -> site.hits <- site.hits + 1
  | _ -> protect site.name (fun () -> hit site)

let hit_io_bytes site bytes =
  match site.policy with
  | Off -> site.hits <- site.hits + 1
  | _ -> protect site.name (fun () -> hit_bytes site bytes)

let io site f =
  match site.policy with
  | Off ->
      site.hits <- site.hits + 1;
      protect site.name f
  | _ ->
      protect site.name (fun () ->
          hit site;
          f ())

let pp_site ppf site =
  let policy =
    match site.policy with
    | Off -> "off"
    | Fail_once -> "fail-once"
    | Fail_nth n -> Printf.sprintf "fail-nth %d" n
    | Fail_prob (p, _) -> Printf.sprintf "fail-prob %.3f" p
    | Crash_once -> "crash-once"
    | Crash_nth n -> Printf.sprintf "crash-nth %d" n
    | Crash_prob (p, _) -> Printf.sprintf "crash-prob %.3f" p
    | Disk_full budget -> Printf.sprintf "disk-full %dB" budget
  in
  Format.fprintf ppf "%s: %s (hits=%d fired=%d)" site.name policy site.hits site.fired
