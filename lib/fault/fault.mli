(** Deterministic fault injection: named failpoints at every I/O site.

    Instrumented layers register a {!site} ("wal.append",
    "pager.write_page", ...) and call {!hit} where the real I/O
    happens.  Tests and the torture harness {!arm} a site with a
    {!policy}; production leaves every site [Off], which costs one
    load and one branch per hit.  Randomized triggers draw from the
    repository's SplitMix64 RNG, so fault schedules are reproducible
    from a seed. *)

exception Crash of string
(** Simulated power loss at the named site.  Never caught below the
    torture harness, which discards all volatile state and re-opens
    from disk. *)

exception Injected of string
(** Simulated I/O failure at the named site. *)

exception Storage_error of string * exn
(** A storage-layer primitive failed: the site name and the underlying
    cause ({!Injected} or a real [Unix.Unix_error]/[Sys_error]). *)

type policy =
  | Off
  | Fail_once
  | Fail_nth of int  (** fail the nth hit from now (1-based), then disarm *)
  | Fail_prob of float * Asset_util.Rng.t
  | Crash_once
  | Crash_nth of int
  | Crash_prob of float * Asset_util.Rng.t
  | Disk_full of int
      (** [ENOSPC] model: a remaining byte budget.  Size-aware hits
          ({!hit_bytes}, {!hit_io_bytes}) consume the budget and pass
          while it covers the write; once exhausted, every further
          write fails — and the policy stays armed, because a full
          disk stays full.  Sizeless hits are zero-byte probes: they
          fail only after exhaustion. *)

type site

val register : string -> site
(** Find-or-create: idempotent, so an instrumented module can register
    its sites at initialisation and tests can re-register by name. *)

val find : string -> site option
val sites : unit -> site list

val arm : site -> policy -> unit
val arm_name : string -> policy -> bool
(** False when no such site is registered. *)

val off : site -> unit

val reset : site -> unit
(** Disarm and zero the counters. *)

val reset_all : unit -> unit
(** Reset every registered site — the torture harness calls this at
    each simulated power-off so a recovery never re-fires a fault. *)

val hits : site -> int
val fired : site -> int

val check : site -> [ `Fail | `Crash ] option
(** Evaluate one hit without raising — for sites with custom fault
    semantics (e.g. torn writes, which write half the bytes before
    crashing).  One-shot triggers disarm themselves. *)

val check_bytes : site -> int -> [ `Fail | `Crash ] option
(** {!check} for a hit that wants to consume [bytes] of disk — the
    size-aware evaluation a {!policy.Disk_full} budget needs.  Other
    policies ignore the size. *)

val hit : site -> unit
(** Evaluate one hit; raises {!Injected} or {!Crash} when the policy
    fires. *)

val hit_bytes : site -> int -> unit
(** {!hit} with a byte size, for {!policy.Disk_full} sites. *)

val hit_io : site -> unit
(** {!hit}, with {!Injected} wrapped into {!Storage_error}. *)

val hit_io_bytes : site -> int -> unit
(** {!hit_bytes}, with {!Injected} wrapped into {!Storage_error}. *)

val protect : string -> (unit -> 'a) -> 'a
(** Run an I/O action under the typed-error discipline: {!Injected}
    and real [Unix_error]/[Sys_error] surface as {!Storage_error};
    {!Crash} and nested [Storage_error]s pass through. *)

val io : site -> (unit -> 'a) -> 'a
(** [protect site.name (fun () -> hit site; f ())]. *)

val pp_site : Format.formatter -> site -> unit
