(* Bounded MPMC mailbox: Queue + Mutex + two Conditions.

   This is deliberately the boring textbook construction — the shard
   layer's correctness story leans on the channel being trivially
   auditable.  All waiting is on condition variables (no spinning), so
   a shard domain blocked on an empty inbox consumes no CPU, and a
   producer blocked on a full inbox exerts real backpressure. *)

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  (* counters, all under [mutex] *)
  mutable sends : int;
  mutable recvs : int;
  mutable send_blocks : int;
  mutable recv_blocks : int;
  mutable hwm : int;
}

exception Closed

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  {
    q = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    sends = 0;
    recvs = 0;
    send_blocks = 0;
    recv_blocks = 0;
    hwm = 0;
  }

let locked ch f =
  Mutex.lock ch.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ch.mutex) f

let send ch v =
  locked ch (fun () ->
      if ch.closed then raise Closed;
      if Queue.length ch.q >= ch.capacity then begin
        ch.send_blocks <- ch.send_blocks + 1;
        while (not ch.closed) && Queue.length ch.q >= ch.capacity do
          Condition.wait ch.not_full ch.mutex
        done;
        if ch.closed then raise Closed
      end;
      Queue.push v ch.q;
      ch.sends <- ch.sends + 1;
      if Queue.length ch.q > ch.hwm then ch.hwm <- Queue.length ch.q;
      Condition.signal ch.not_empty)

let try_send ch v =
  locked ch (fun () ->
      if ch.closed then raise Closed;
      if Queue.length ch.q >= ch.capacity then false
      else begin
        Queue.push v ch.q;
        ch.sends <- ch.sends + 1;
        if Queue.length ch.q > ch.hwm then ch.hwm <- Queue.length ch.q;
        Condition.signal ch.not_empty;
        true
      end)

let recv ch =
  locked ch (fun () ->
      if Queue.is_empty ch.q && not ch.closed then begin
        ch.recv_blocks <- ch.recv_blocks + 1;
        while Queue.is_empty ch.q && not ch.closed do
          Condition.wait ch.not_empty ch.mutex
        done
      end;
      match Queue.take_opt ch.q with
      | None -> None (* closed and drained *)
      | Some v ->
          ch.recvs <- ch.recvs + 1;
          Condition.signal ch.not_full;
          Some v)

let try_recv ch =
  locked ch (fun () ->
      match Queue.take_opt ch.q with
      | None -> None
      | Some v ->
          ch.recvs <- ch.recvs + 1;
          Condition.signal ch.not_full;
          Some v)

let wait_nonempty ch =
  locked ch (fun () ->
      while Queue.is_empty ch.q && not ch.closed do
        Condition.wait ch.not_empty ch.mutex
      done;
      not (Queue.is_empty ch.q))

let close ch =
  locked ch (fun () ->
      if not ch.closed then begin
        ch.closed <- true;
        Condition.broadcast ch.not_empty;
        Condition.broadcast ch.not_full
      end)

let is_closed ch = locked ch (fun () -> ch.closed)
let is_empty ch = locked ch (fun () -> Queue.is_empty ch.q)
let length ch = locked ch (fun () -> Queue.length ch.q)

let stats ch =
  locked ch (fun () ->
      [
        ("sends", ch.sends);
        ("recvs", ch.recvs);
        ("send_blocks", ch.send_blocks);
        ("recv_blocks", ch.recv_blocks);
        ("hwm", ch.hwm);
      ])
