(** Bounded multi-producer multi-consumer mailboxes between domains.

    The shard layer's only cross-domain communication primitive: every
    message between the coordinator and a shard server travels through
    one of these.  A channel is a mutex-protected queue with two
    condition variables; [send] blocks when the channel is full — the
    backpressure that keeps a fast producer from flooding a busy shard
    — and [recv] blocks when it is empty.

    Closing is how shards learn a conversation is over: after [close],
    senders get {!Closed}, drained receivers get [None], and every
    blocked party wakes.  A shard server that sees its inbox closed and
    empty presumes abort for any undecided cross-shard transaction
    (2PC presumed abort: no decision record, no commit). *)

type 'a t

exception Closed
(** Raised by [send] on (or woken into by the close of) a closed
    channel. *)

val create : ?capacity:int -> unit -> 'a t
(** A fresh channel holding at most [capacity] (default 256, must be
    positive) undelivered messages. *)

val send : 'a t -> 'a -> unit
(** Enqueue, blocking while the channel is full.  Raises {!Closed} if
    the channel is (or becomes, while blocked) closed. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send: [false] when full.  Raises {!Closed} when
    closed. *)

val recv : 'a t -> 'a option
(** Dequeue, blocking while the channel is empty; [None] once the
    channel is closed and drained. *)

val try_recv : 'a t -> 'a option
(** Non-blocking dequeue: [None] when nothing is available (whether or
    not the channel is closed — pair with {!is_closed} to tell). *)

val wait_nonempty : 'a t -> bool
(** Block until a message is available ([true]) or the channel is
    closed and empty ([false]).  Does not consume anything — the shard
    server's stall hook parks here, then lets the scheduler's pump
    fiber do the actual receive. *)

val close : 'a t -> unit
(** Mark the channel closed and wake every blocked sender and
    receiver.  Already-queued messages remain receivable.
    Idempotent. *)

val is_closed : 'a t -> bool
val is_empty : 'a t -> bool
val length : 'a t -> int

val stats : 'a t -> (string * int) list
(** Counters: ["sends"], ["recvs"], ["send_blocks"] (sends that had to
    wait for space — the backpressure observable), ["recv_blocks"],
    and ["hwm"] (queue-length high-water mark). *)
