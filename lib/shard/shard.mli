(** Multicore sharded engine: OID-hash partitioning across OCaml 5
    domains with the paper's own distributed-transaction construction
    as the cross-shard commit protocol.

    Every shard is a complete, independent instance of the
    single-domain system — its own object store, lock manager,
    dependency graph, WAL and cooperative scheduler — running on its
    own domain, in the H-Store/Calvin style: all single-shard
    transactions execute with zero cross-domain synchronisation.  The
    only communication between domains is typed messages over bounded
    {!Channel} mailboxes.

    Cross-shard transactions are instances of the paper's distributed
    model (section 6 / [lib/models/distributed.ml]): on each involved
    shard the coordinator installs a {e participant} transaction (the
    shard-local work) joined by a local GC dependency to a {e decision
    stub} transaction whose body merely awaits the coordinator's
    verdict.  Participant completion is the 2PC "prepared" vote —
    strict 2PL means its locks are held and its updates undoable;
    committing the stub then drags the participant through the
    engine's own group-commit machinery, and aborting it (explicit
    verdict, or {e presumed abort} when the mailbox closes with no
    verdict — the coordinator-crash case) aborts the participant by GC
    propagation.  Group atomicity across shards therefore reduces to
    [form_dependency GC] plus one message in each direction.

    The coordinator stitches the per-shard stubs together with "XGC"
    [Dep] trace events, so a merged history ({!merged_trace}) carries
    the cross-shard obligation and the oracle can check it
    (both-or-neither across separate per-shard Commit events). *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Trace = Asset_obs.Trace

type t

val default_engine_config : E.config
(** {!E.default_config} with [max_transactions] effectively unbounded
    and [lock_wait_timeout_steps] armed: a participant holding
    prepared locks can block another cross-shard transaction's
    participant on a {e different} shard, a waits-for pattern no
    single shard's deadlock detector can see, so the lock-wait timeout
    is the distributed-deadlock liveness backstop. *)

val create :
  ?engine_config:E.config ->
  ?inbox_capacity:int ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?max_steps:int ->
  ?objects:int ->
  ?init:(int -> Asset_storage.Value.t) ->
  domains:int ->
  unit ->
  t
(** Spawn [domains] shard servers, each on its own domain.  Objects
    1..[objects] are pre-populated, each on its home shard
    ({!shard_of}) only.  With [~trace:true] every shard domain runs
    its own {!Trace} recorder (shard ids 1..n) and a driver-side
    recorder (shard 0, capturing the coordinator's XGC events) is
    installed if the calling domain has none; {!merged_trace} combines
    them after {!shutdown}. *)

val domains : t -> int

val shard_of : t -> Oid.t -> int
(** The partition function: [Oid.to_int oid mod domains]. *)

val engine : t -> int -> E.t
(** Shard [i]'s engine — only for inspection from the driver once the
    system is idle ({!drain}) or stopped ({!shutdown}); engines are
    domain-local while running. *)

val submit : ?max_retries:int -> t -> shard:int -> (E.t -> unit) -> unit
(** Enqueue a single-shard transaction: the body runs under
    initiate/begin/commit on the shard's engine, retried up to
    [max_retries] (default 10) times on transient aborts (deadlock
    victim, lock timeout, escrow violation).  Blocks when the shard's
    inbox is full — backpressure, not an error. *)

val pending : t -> int
(** Submitted single-shard transactions not yet finished. *)

val drain : t -> unit
(** Block until {!pending} is zero.  Re-raises a shard server failure
    if one occurred. *)

val shutdown : t -> unit
(** Close every inbox (waking blocked shards; undecided cross-shard
    transactions are presumed aborted), join the domains, stop the
    recorders.  Idempotent.  Re-raises the first shard server failure,
    if any. *)

val merged_trace : t -> Trace.entry list
(** The per-shard histories and the driver lane merged into one
    oracle-replayable history ({!Trace.merge}).  Call after
    {!shutdown}. *)

val stats : t -> (string * int) list
(** Engine counters summed across shards, plus mailbox counters under
    ["chan."].  Exact only once idle or stopped. *)

(** {2 Cross-shard transactions} *)

module Coord : sig
  type coord
  (** A 2PC coordinator over the sharded engine.  It lives on the
      driving domain: {!submit} registers participants,
      {!step}/{!drain} process votes and outcomes from its reply
      mailbox.  Multiple transactions are kept in flight, capped at
      [max_inflight]. *)

  val decide_site : string
  (** Failpoint name ("shard.coord.decide") hit between collecting the
      last vote and sending any verdict — the classic 2PC
      coordinator-crash window.  Arm it with [Fault] to test presumed
      abort. *)

  val create : ?max_inflight:int -> ?max_retries:int -> ?ordered:bool -> t -> coord
  (** With [~ordered:true] participants are dispatched serially, each
      only after the previous one's prepare vote, in the caller's list
      order.  Callers that order every group's participants by a
      global criterion (least object id touched, say) get total-order
      lock acquisition: no group holds a later-ordered lock while
      waiting on an earlier one, so cross-shard transactions cannot
      form a distributed deadlock — at the price of one verdict-
      latency round per extra participant.  Default is parallel
      dispatch. *)

  val submit : coord -> (int * (E.t -> unit)) list -> unit
  (** Register one cross-shard transaction: a participant body per
      (distinct) shard.  Blocks processing replies while [max_inflight]
      transactions are outstanding.  A group that aborts on every shard
      (the transient contention outcomes: lock-wait timeout, deadlock
      victim) is relaunched up to [max_retries] (default 10) times
      before counting as {!aborted}.  The coordinator emits its XGC
      decision record only for Commit verdicts — 2PC presumed abort:
      aborts leave no decision record.  Under [ordered], list order is
      dispatch (hence lock-acquisition) order. *)

  val drain : coord -> unit
  (** Process replies until every submitted transaction has a final
      outcome.  Propagates an armed {!decide_site} crash. *)

  val try_step : coord -> bool
  (** Process one pending reply without blocking; [false] when none
      was waiting.  Interleave with other driver work so verdicts keep
      flowing while e.g. a single-shard drain is in progress. *)

  val inflight_count : coord -> int
  (** Cross-shard transactions without a final outcome yet. *)

  val committed : coord -> int
  (** Cross-shard transactions whose every participant committed. *)

  val aborted : coord -> int
  (** Cross-shard transactions whose every participant aborted. *)

  val mixed : coord -> int
  (** Transactions with both committed and aborted participants —
      atomicity violations; must be zero. *)
end
