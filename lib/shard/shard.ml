(* Sharded engine: one complete single-domain ASSET instance per OCaml
   domain, typed messages over bounded mailboxes between them, and the
   paper's form_dependency GC machinery as the cross-shard commit
   protocol (see shard.mli and DESIGN.md §11 for the protocol story).

   Threading discipline: a shard's engine, scheduler and decision
   table are touched only by its own domain.  The driver touches them
   only through the inbox while the domain runs, and directly only
   after [shutdown] has joined it.  The only shared mutable state is
   the mailboxes (internally locked), the per-shard pending/error
   cells (atomics) and the trace sink refs (written by the shard
   domain, read by the driver after join). *)

module E = Asset_core.Engine
module Sched = Asset_sched.Scheduler
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Trace = Asset_obs.Trace
module Dep_type = Asset_deps.Dep_type
module Fault = Asset_fault.Fault
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Heap_store = Asset_storage.Heap_store
module Workload = Asset_workload.Workload

type decision = Commit | Abort

type vote = { v_gid : int; v_shard : int; v_prepared : bool; v_stub : Tid.t }
type outcome = { o_gid : int; o_shard : int; o_committed : bool }
type reply = Vote of vote | Outcome of outcome

type msg =
  | Exec of { body : E.t -> unit; max_retries : int }
  | Participate of { gid : int; body : E.t -> unit; reply : reply Channel.t }
  | Decide of { gid : int; verdict : decision }

type shard_state = {
  id : int;
  engine : E.t;
  inbox : msg Channel.t;
  mem : Trace.entry list ref; (* this shard's trace history, newest first *)
  exec_pending : int Atomic.t;
  error : exn option Atomic.t;
  mutable domain : unit Domain.t option;
}

type t = {
  n : int;
  shards : shard_state array;
  gid_gen : int Atomic.t;
  main_mem : Trace.entry list ref option; (* driver-lane recorder we installed *)
  mutable closed : bool;
}

let default_engine_config =
  {
    E.default_config with
    E.max_transactions = 1_000_000;
    (* Distributed-deadlock backstop: a prepared participant's locks
       can block another cross-shard transaction's participant on a
       different shard — invisible to any single shard's cycle
       detector — so lock waiters must eventually time out, vote
       unprepared, and let the coordinator abort the group. *)
    lock_wait_timeout_steps = 400;
  }

(* ------------------------------------------------------------------ *)
(* Shard server: runs on its own domain. *)

(* Replies outlive the coordinator on the crash path (nobody drains
   them), so sends must neither block nor raise: the reply channel is
   sized for the worst case by [Coord.create], and [Closed] just means
   the coordinator is gone — presumed abort already covers us. *)
let reply_send reply r = try Channel.send reply r with Channel.Closed -> ()

let handle_exec st body max_retries =
  let eng = st.engine in
  E.spawn eng ~label:"exec" (fun () ->
      let rec attempt k =
        let tid = E.initiate eng (fun () -> body eng) in
        if Tid.is_null tid then begin
          (* engine at max_transactions; let in-flight work finish *)
          Sched.yield ();
          attempt k
        end
        else if E.begin_ eng tid && E.commit eng tid then ()
        else if k < max_retries && Workload.retryable (E.failure_of eng tid) then begin
          E.note_retry eng;
          attempt (k + 1)
        end
        else E.note_give_up eng
      in
      attempt 0;
      Atomic.decr st.exec_pending)

(* One cross-shard participant: the paper-native construction.  [part]
   does the shard-local work; [stub] is the decision transaction,
   GC-joined to it.  Participant completion (strict 2PL: locks held,
   updates undoable) is the "prepared" vote; the verdict then drives
   the stub, and the GC edge drags [part] along either way. *)
let handle_participate st decisions gid body reply =
  let eng = st.engine in
  let dec = ref None in
  Hashtbl.replace decisions gid dec;
  let part = E.initiate eng (fun () -> body eng) in
  (* The wait condition is re-polled by the scheduler's wake sweep,
     outside any fiber, where [E.self] is null — so the stub watches
     its own tid through a ref filled in right after initiate. *)
  let stub_tid = ref Tid.null in
  let stub =
    E.initiate eng (fun () ->
        Sched.wait_until ~reason:"xshard decision" (fun () ->
            !dec <> None
            || ((not (Tid.is_null !stub_tid)) && E.is_aborted eng !stub_tid));
        if E.is_aborted eng !stub_tid then raise (E.Txn_aborted !stub_tid))
  in
  stub_tid := stub;
  if Tid.is_null part || Tid.is_null stub then begin
    if not (Tid.is_null part) then ignore (E.abort eng part : bool);
    if not (Tid.is_null stub) then ignore (E.abort eng stub : bool);
    Hashtbl.remove decisions gid;
    reply_send reply (Vote { v_gid = gid; v_shard = st.id; v_prepared = false; v_stub = Tid.null });
    reply_send reply (Outcome { o_gid = gid; o_shard = st.id; o_committed = false })
  end
  else begin
    ignore (E.form_dependency eng Dep_type.GC part stub : bool);
    ignore (E.begin_ eng part : bool);
    ignore (E.begin_ eng stub : bool);
    E.spawn eng ~label:(Printf.sprintf "xshard-mon g%d" gid) (fun () ->
        let prepared = E.wait eng part in
        reply_send reply (Vote { v_gid = gid; v_shard = st.id; v_prepared = prepared; v_stub = stub });
        Sched.wait_until ~reason:"xshard verdict" (fun () -> !dec <> None);
        let committed =
          match !dec with
          | Some Commit -> E.commit eng stub
          | Some Abort | None ->
              ignore (E.abort eng stub : bool);
              false
        in
        Hashtbl.remove decisions gid;
        reply_send reply (Outcome { o_gid = gid; o_shard = st.id; o_committed = committed }))
  end

let handle st decisions = function
  | Exec { body; max_retries } -> handle_exec st body max_retries
  | Participate { gid; body; reply } -> handle_participate st decisions gid body reply
  | Decide { gid; verdict } -> (
      match Hashtbl.find_opt decisions gid with
      | Some dec -> if !dec = None then dec := Some verdict
      | None -> ())

(* Presumed abort: the inbox closed with cross-shard transactions
   still undecided — the coordinator is gone and no verdict can ever
   arrive, so every undecided stub aborts (2PC: no decision record
   means abort).  Their monitors wake, abort, and release everything
   through the normal GC-propagation path. *)
let presume_abort decisions =
  Hashtbl.iter (fun _ dec -> if !dec = None then dec := Some Abort) decisions

(* The pump fiber: drains the inbox from inside the scheduler, so
   message handling interleaves cooperatively with transaction
   fibers.  Parks on a polled condition; the stall hook below does the
   actual cross-domain blocking. *)
let rec pump st decisions =
  match Channel.try_recv st.inbox with
  | Some m ->
      handle st decisions m;
      pump st decisions
  | None ->
      if Channel.is_closed st.inbox then presume_abort decisions
      else begin
        Sched.wait_until ~reason:"shard inbox" (fun () ->
            (not (Channel.is_empty st.inbox)) || Channel.is_closed st.inbox);
        pump st decisions
      end

(* The cross-domain wakeup path.  Stall order matters: messages first
   (they can unblock anything), then the engine's own resolution
   (deadlock victim / timeout tick), then genuinely block on the
   mailbox — zero CPU until another domain sends.  After close, report
   progress once so the pump can run its presumed-abort sweep, then
   let a true stall surface as Deadlock. *)
let make_on_stall st =
  let saw_close = ref false in
  fun () ->
    if not (Channel.is_empty st.inbox) then true
    else if E.resolve_stall st.engine then begin
      (* Progress was engine-internal (e.g. a lock-wait timeout tick).
         Yield the OS timeslice, not just the pipeline: on few-core
         hosts the remote verdict can only arrive if the other domains
         actually get scheduled, and the timeout rounds must burn real
         time, not microseconds, or waiters give up long before any
         cross-domain round-trip could complete. *)
      if Channel.is_empty st.inbox then Unix.sleepf 2e-5;
      true
    end
    else if Channel.is_closed st.inbox then
      if !saw_close then false
      else begin
        saw_close := true;
        true
      end
    else begin
      ignore (Channel.wait_nonempty st.inbox : bool);
      true
    end

let server st ~trace ~trace_capacity ~max_steps =
  if trace then Trace.start ~capacity:trace_capacity ~shard:(st.id + 1) ~sinks:[ Trace.Memory st.mem ] ();
  Fun.protect
    ~finally:(fun () -> if trace then Trace.stop ())
    (fun () ->
      let sched = Sched.create ~max_steps () in
      E.attach_scheduler st.engine sched;
      Sched.set_on_stall sched (make_on_stall st);
      let decisions : (int, decision option ref) Hashtbl.t = Hashtbl.create 32 in
      ignore (Sched.spawn sched ~label:"pump" (fun () -> pump st decisions) : int);
      match Sched.run sched with
      | () -> E.flush_pending_commits st.engine
      | exception e -> Atomic.set st.error (Some e))

(* ------------------------------------------------------------------ *)
(* Driver-side surface. *)

let shard_of t oid = Oid.partition oid t.n

let create ?(engine_config = default_engine_config) ?(inbox_capacity = 256) ?(trace = false)
    ?(trace_capacity = 65536) ?(max_steps = 200_000_000) ?(objects = 0)
    ?(init = fun _ -> Value.of_int 0) ~domains () =
  if domains < 1 then invalid_arg "Shard.create: domains must be >= 1";
  let shards =
    Array.init domains (fun i ->
        let store = Heap_store.store ~name:(Printf.sprintf "shard%d" i) () in
        for oid = 1 to objects do
          if oid mod domains = i then Store.write store (Oid.of_int oid) (init oid)
        done;
        {
          id = i;
          engine =
            E.create ~config:engine_config
              ~tid_gen:(Tid.generator ~start:(i + 1) ~stride:domains ())
              store;
          inbox = Channel.create ~capacity:inbox_capacity ();
          mem = ref [];
          exec_pending = Atomic.make 0;
          error = Atomic.make None;
          domain = None;
        })
  in
  (* Driver-lane recorder (shard id 0): captures the coordinator's XGC
     events.  Only if the caller has not installed their own. *)
  let main_mem =
    if trace && not (Trace.on ()) then begin
      let l, sink = Trace.memory_sink () in
      Trace.start ~capacity:trace_capacity ~shard:0 ~sinks:[ sink ] ();
      Some l
    end
    else None
  in
  let t = { n = domains; shards; gid_gen = Atomic.make 1; main_mem; closed = false } in
  Array.iter (fun st -> st.domain <- Some (Domain.spawn (fun () -> server st ~trace ~trace_capacity ~max_steps))) shards;
  t

let domains t = t.n
let engine t i = t.shards.(i).engine

let check_errors t =
  Array.iter (fun st -> match Atomic.get st.error with Some e -> raise e | None -> ()) t.shards

let submit ?(max_retries = 10) t ~shard body =
  if t.closed then invalid_arg "Shard.submit: already shut down";
  let st = t.shards.(shard) in
  Atomic.incr st.exec_pending;
  Channel.send st.inbox (Exec { body; max_retries })

let pending t = Array.fold_left (fun acc st -> acc + Atomic.get st.exec_pending) 0 t.shards

let drain t =
  while pending t > 0 do
    check_errors t;
    Unix.sleepf 0.0002
  done;
  check_errors t

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun st -> Channel.close st.inbox) t.shards;
    Array.iter
      (fun st ->
        match st.domain with
        | Some d ->
            Domain.join d;
            st.domain <- None
        | None -> ())
      t.shards;
    if t.main_mem <> None then Trace.stop ();
    check_errors t
  end

let merged_trace t =
  if not t.closed then invalid_arg "Shard.merged_trace: call shutdown first";
  let shard_histories = Array.to_list (Array.map (fun st -> Trace.entries st.mem) t.shards) in
  let driver = match t.main_mem with Some l -> [ Trace.entries l ] | None -> [] in
  Trace.merge (driver @ shard_histories)

let stats t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add (k, v) = Hashtbl.replace tbl k (v + Option.value (Hashtbl.find_opt tbl k) ~default:0) in
  Array.iter
    (fun st ->
      List.iter add (E.stats st.engine);
      List.iter (fun (k, v) -> add ("chan." ^ k, v)) (Channel.stats st.inbox))
    t.shards;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The 2PC coordinator. *)

module Coord = struct
  type inflight = {
    i_parts : (int * (E.t -> unit)) list;
    i_retries : int;
    mutable i_sent : int;
    mutable i_votes : vote list;
    mutable i_outcomes : (int * bool) list;
  }

  type coord = {
    sys : t;
    reply : reply Channel.t;
    inflight : (int, inflight) Hashtbl.t;
    max_inflight : int;
    max_retries : int;
    ordered : bool;
    site : Fault.site;
    mutable c_committed : int;
    mutable c_aborted : int;
    mutable c_mixed : int;
  }

  let decide_site = "shard.coord.decide"

  let create ?(max_inflight = 16) ?(max_retries = 10) ?(ordered = false) sys =
    if max_inflight < 1 then invalid_arg "Coord.create: max_inflight must be >= 1";
    {
      sys;
      (* every in-flight gid can owe one vote and one outcome per
         shard, and sends must never block the shard domains — size
         for the worst case *)
      reply = Channel.create ~capacity:(2 * sys.n * (max_inflight + 1)) ();
      inflight = Hashtbl.create 32;
      max_inflight;
      max_retries;
      ordered;
      site = Fault.register decide_site;
      c_committed = 0;
      c_aborted = 0;
      c_mixed = 0;
    }

  let dispatch c gid f =
    let s, body = List.nth f.i_parts f.i_sent in
    f.i_sent <- f.i_sent + 1;
    Channel.send c.sys.shards.(s).inbox (Participate { gid; body; reply = c.reply })

  (* Install one attempt of a cross-shard transaction under a fresh
     gid.  Also the retry path: an all-aborted outcome (a lock-wait
     timeout or deadlock victim on some shard — transient, contention-
     induced) is relaunched rather than surfaced, just as [handle_exec]
     retries transient single-shard aborts.

     With [ordered], participants are dispatched one at a time, each
     only after the previous one voted to prepare: if callers list
     participants in a globally consistent order (say, by least object
     id touched), no group ever holds a later-ordered lock while
     waiting on an earlier one, so cross-shard transactions cannot form
     a distributed deadlock — total-order acquisition, at the price of
     one extra verdict-latency round per participant. *)
  let launch c f =
    let gid = Atomic.fetch_and_add c.sys.gid_gen 1 in
    f.i_sent <- 0;
    Hashtbl.replace c.inflight gid f;
    if c.ordered then dispatch c gid f
    else while f.i_sent < List.length f.i_parts do dispatch c gid f done

  (* Process one reply.  A complete vote set is the decision point: if
     every participant prepared, chain XGC trace edges over the stubs —
     the coordinator's commit decision record, and the cross-shard
     group-commit obligation the oracle checks (aborts are presumed and
     need no record) — then pass the crash failpoint, then send the
     verdict to every participant shard. *)
  let process c = function
    | Vote v -> (
        match Hashtbl.find_opt c.inflight v.v_gid with
        | None -> ()
        | Some f ->
            f.i_votes <- v :: f.i_votes;
            if List.length f.i_votes = f.i_sent then begin
              let all_prepared = List.for_all (fun v -> v.v_prepared) f.i_votes in
              if all_prepared && f.i_sent < List.length f.i_parts then
                (* ordered dispatch: this vote admits the next
                   participant; the decision point is still ahead *)
                dispatch c v.v_gid f
              else begin
              let votes = List.sort (fun a b -> compare a.v_shard b.v_shard) f.i_votes in
              let verdict = if all_prepared then Commit else Abort in
              if verdict = Commit && Trace.on () then begin
                let rec chain = function
                  | a :: (b :: _ as rest) ->
                      if not (Tid.is_null a.v_stub || Tid.is_null b.v_stub) then
                        Trace.emit (Trace.Dep { dtype = "XGC"; master = a.v_stub; dependent = b.v_stub });
                      chain rest
                  | _ -> ()
                in
                chain votes
              end;
              Fault.hit c.site;
              List.iter
                (fun v ->
                  if not (Tid.is_null v.v_stub) then
                    Channel.send c.sys.shards.(v.v_shard).inbox (Decide { gid = v.v_gid; verdict }))
                votes
              end
            end)
    | Outcome o -> (
        match Hashtbl.find_opt c.inflight o.o_gid with
        | None -> ()
        | Some f ->
            (* [f.i_sent], not the participant count: under ordered
               dispatch an aborted group may never have dispatched its
               tail participants, and they owe no outcome. *)
            f.i_outcomes <- (o.o_shard, o.o_committed) :: f.i_outcomes;
            if List.length f.i_outcomes = f.i_sent then begin
              Hashtbl.remove c.inflight o.o_gid;
              match List.sort_uniq compare (List.map snd f.i_outcomes) with
              | [ true ] -> c.c_committed <- c.c_committed + 1
              | [ false ] ->
                  if f.i_retries < c.max_retries then
                    launch c { f with i_retries = f.i_retries + 1; i_votes = []; i_outcomes = [] }
                  else c.c_aborted <- c.c_aborted + 1
              | _ -> c.c_mixed <- c.c_mixed + 1
            end)

  let step c = match Channel.recv c.reply with None -> () | Some r -> process c r

  (* Non-blocking step, for interleaving coordinator progress with
     other driver-side work (e.g. waiting out single-shard drains):
     verdicts keep flowing, prepared participants release their locks
     promptly instead of stalling everything queued behind them. *)
  let try_step c = match Channel.try_recv c.reply with None -> false | Some r -> process c r; true

  let inflight_count c = Hashtbl.length c.inflight

  let submit c parts =
    if parts = [] then invalid_arg "Coord.submit: no participants";
    let shards = List.map fst parts in
    if List.length (List.sort_uniq compare shards) <> List.length shards then
      invalid_arg "Coord.submit: duplicate participant shard";
    while Hashtbl.length c.inflight >= c.max_inflight do
      step c
    done;
    launch c { i_parts = parts; i_retries = 0; i_sent = 0; i_votes = []; i_outcomes = [] }

  let drain c =
    while Hashtbl.length c.inflight > 0 do
      check_errors c.sys;
      step c
    done

  let committed c = c.c_committed
  let aborted c = c.c_aborted
  let mixed c = c.c_mixed
end
