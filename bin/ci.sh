#!/bin/sh
# CI entry point: type-check, build, run every test suite, then smoke
# the benchmark harness (tiny quotas — shape check only, not numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Model-conformance shard (E20 harness, see DESIGN.md / EXPERIMENTS.md).
# The fixed seed set [1, 200] per model already ran under dune runtest
# above — that is the reproducible bar.  Here: one extra time-boxed run
# from a fresh random base seed, hunting schedules the fixed set
# misses.  Every failure message prints the model and exact seed, so a
# red run is replayed with CONFORMANCE_BASE_SEED=<seed> CONFORMANCE_SEEDS=1.
RANDOM_BASE=$(od -An -N3 -tu4 /dev/urandom | tr -d ' ')
echo "== conformance: random base seed ${RANDOM_BASE} (time-boxed) =="
CONFORMANCE_BASE_SEED="${RANDOM_BASE}" CONFORMANCE_SEEDS=50 \
  timeout 120 dune exec test/test_conformance.exe

echo "== bench smoke (E1 + E17/hotpath + E18/lockpath + E19/faults + E20/obs) =="
dune exec bench/main.exe -- --only e1,hotpath,lockpath,faults,obs --smoke

echo "CI OK"
