#!/bin/sh
# CI entry point: type-check, build, run every test suite, then smoke
# the benchmark harness (tiny quotas — shape check only, not numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (E1 + E17/hotpath + E18/lockpath + E19/faults) =="
dune exec bench/main.exe -- --only e1,hotpath,lockpath,faults --smoke

echo "CI OK"
