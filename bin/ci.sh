#!/bin/sh
# CI entry point: type-check, build, run every test suite, then smoke
# the benchmark harness (tiny quotas — shape check only, not numbers).
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# Model-conformance shard (E20 harness, see DESIGN.md / EXPERIMENTS.md).
# The fixed seed set [1, 200] per model already ran under dune runtest
# above — that is the reproducible bar.  Here: one extra time-boxed run
# from a fresh random base seed, hunting schedules the fixed set
# misses.  Every failure message prints the model and exact seed, so a
# red run is replayed with CONFORMANCE_BASE_SEED=<seed> CONFORMANCE_SEEDS=1.
RANDOM_BASE=$(od -An -N3 -tu4 /dev/urandom | tr -d ' ')
echo "== conformance: random base seed ${RANDOM_BASE} (time-boxed) =="
CONFORMANCE_BASE_SEED="${RANDOM_BASE}" CONFORMANCE_SEEDS=50 \
  timeout 120 dune exec test/test_conformance.exe

# Explorer smoke shard (E21 harness, see DESIGN.md §9).  The full
# canned-scenario matrix already ran under dune runtest above; this
# re-runs the small scenarios plus the complete mutation kill matrix
# through the bench entry point, and fails if any mutation survives.
echo "== explorer smoke (small scenarios + mutation kill matrix) =="
dune exec bench/main.exe -- --only check --smoke | tee /tmp/check_smoke.out
if grep -q "| NO " /tmp/check_smoke.out; then
  echo "explorer smoke: a seeded mutation was NOT killed" >&2
  exit 1
fi

# Semantic-concurrency smoke shard (E22, see DESIGN.md §10).  Beyond
# the schema check below, assert the two structural invariants the
# full run must also show: zero read-only aborts in snapshot mode, and
# the version chain collapsing once the pinning snapshot closes.
echo "== mvcc smoke (snapshot readers + escrow + version GC) =="
dune exec bench/main.exe -- --only mvcc --smoke | tee /tmp/mvcc_smoke.out
if ! grep -Eq "^snapshot \| +[0-9]+ +\| 0 " /tmp/mvcc_smoke.out; then
  echo "mvcc smoke: snapshot readers aborted (expected zero)" >&2
  exit 1
fi
if ! grep -Eq "after close: 1 " /tmp/mvcc_smoke.out; then
  echo "mvcc smoke: version chain did not collapse after snapshot close" >&2
  exit 1
fi

# Multicore shard smoke (E23, see DESIGN.md §11).  Two real domains,
# single-shard and 10%-cross-shard curves at tiny quotas, then the
# structural assertions: the 2-domain merged multi-domain trace must
# replay through the oracle with zero violations (and actually carry
# cross-shard XGC decision records), and no point may leave a mixed
# (atomicity-violating) cross-shard outcome.  CI_DOMAINS overrides the
# domain count on wider runners.
echo "== shard smoke (E23: 2 domains, cross-shard 2PC, merged-trace oracle) =="
dune exec bench/main.exe -- --only shard --smoke --domains "${CI_DOMAINS:-2}" | tee /tmp/shard_smoke.out
if ! grep -Eq "^E23 conformance: .* 0 violations \[OK\]$" /tmp/shard_smoke.out; then
  echo "shard smoke: merged multi-domain history failed the oracle" >&2
  exit 1
fi
if grep -Eq "conformance: .* [^0-9]0 xgc edges" /tmp/shard_smoke.out; then
  echo "shard smoke: no cross-shard decision records in merged history" >&2
  exit 1
fi
if ! awk -F'|' '/^[0-9]+ +\|/ { gsub(/ /,"",$5); if ($5 != "0") exit 1 }' /tmp/shard_smoke.out; then
  echo "shard smoke: mixed cross-shard outcome (atomicity violation)" >&2
  exit 1
fi

# Durability smoke shard (E24, see DESIGN.md §12).  Recovery-time
# curves at tiny quotas, then the structural assertions: every
# parallel replay must match serial replay object-for-object (zero
# divergence), and the sustained-write run must show the segmented log
# staying bounded under checkpoint-driven retirement.
echo "== recovery smoke (E24: fuzzy ckpt anchors, N-domain replay, retirement) =="
dune exec bench/main.exe -- --only recovery --smoke | tee /tmp/recovery_smoke.out
if ! grep -Eq "^E24 parallel replay: .* divergence 0 \[OK\]$" /tmp/recovery_smoke.out; then
  echo "recovery smoke: parallel replay diverged from serial" >&2
  exit 1
fi
if ! grep -Eq "^E24 retirement: log stays bounded \[OK\]$" /tmp/recovery_smoke.out; then
  echo "recovery smoke: segmented log did not stay bounded" >&2
  exit 1
fi

# Workload smoke shard (E25 harness, see DESIGN.md §13).  The fixed
# seed set already ran under dune runtest above (both families, clean
# and 8% injected faults, through the oracle).  Here: a time-boxed
# re-run from a fresh random base seed hunting schedules the fixed set
# misses — a red run replays with WORKLOAD_BASE_SEED=<seed>
# WORKLOAD_SEEDS=1 — then the E25 mix at tiny quotas with its
# structural assertion: every engine config and the agentic saga must
# conserve money, goods, budget and audit entries.
WORKLOAD_RANDOM_BASE=$(od -An -N3 -tu4 /dev/urandom | tr -d ' ')
echo "== workloads: random base seed ${WORKLOAD_RANDOM_BASE} (time-boxed) =="
WORKLOAD_BASE_SEED="${WORKLOAD_RANDOM_BASE}" WORKLOAD_SEEDS=40 \
  timeout 120 dune exec test/test_workloads.exe

echo "== oltp smoke (E25: class mix across engine configs + agentic saga) =="
dune exec bench/main.exe -- --only oltp --smoke | tee /tmp/oltp_smoke.out
if ! grep -Eq "^E25 conservation: .* \[OK\]$" /tmp/oltp_smoke.out; then
  echo "oltp smoke: a conservation law failed" >&2
  exit 1
fi

echo "== bench smoke (E1 + E17/hotpath + E18/lockpath + E19/faults + E20/obs + E21/check + E22/mvcc) =="
dune exec bench/main.exe -- --only e1,hotpath,lockpath,faults,obs,check,mvcc --smoke

echo "== bench artifact sanity (BENCH_*.json schemas) =="
dune exec bin/bench_sanity.exe

echo "CI OK"
