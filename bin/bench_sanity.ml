(* Sanity checker for the committed BENCH_*.json artifacts.

   Each benchmark experiment that tracks a perf or state-space
   trajectory emits a machine-readable JSON file; CI and reviewers
   diff them across PRs.  A malformed or silently-truncated artifact
   defeats that, so this tool parses every BENCH_*.json in the
   repository root and checks the schema: the experiment tag, and the
   presence and types of the metric keys each experiment promises.

   Usage: bench_sanity [dir]   (default: current directory)
   Exit 0 when every file is well-formed, 1 otherwise. *)

(* ------------------------------------------------------------------ *)
(* A minimal JSON value + recursive-descent parser: the artifacts use
   numbers (int and float), strings, bools, null, arrays, objects. *)

type json =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let string_ () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                (* artifacts only escape control chars; keep the code point raw *)
                if !pos + 4 >= n then fail "bad \\u escape";
                pos := !pos + 4
            | c -> Buffer.add_char b c);
            incr pos;
            loop ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            loop ()
    in
    loop ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end"
    else
      match s.[!pos] with
      | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec fields acc =
              let k = string_ () in
              expect ':';
              let v = value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                skip_ws ();
                fields ((k, v) :: acc)
              end
              else begin
                expect '}';
                Obj (List.rev ((k, v) :: acc))
              end
            in
            fields []
      | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && s.[!pos] = ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              if !pos < n && s.[!pos] = ',' then begin
                incr pos;
                elems (v :: acc)
              end
              else begin
                expect ']';
                Arr (List.rev (v :: acc))
              end
            in
            elems []
      | '"' -> Str (string_ ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Schema checks. *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

type field = Fnum | Fstr | Fbool | Fnum_or_null

let type_ok f v =
  match (f, v) with
  | Fnum, Num _ | Fstr, Str _ | Fbool, Bool _ -> true
  | Fnum_or_null, (Num _ | Null) -> true
  | _ -> false

let field_name = function
  | Fnum -> "number"
  | Fstr -> "string"
  | Fbool -> "bool"
  | Fnum_or_null -> "number|null"

(* Per-experiment schema: each top-level member is an array of
   records, a single record, or a curve section — a record that also
   carries a non-empty "points" array of records (the E23 shape).
   Every schema also implies the top-level "experiment" and "smoke"
   tags checked for all files. *)
type member_shape =
  | Arr_of of (string * field) list
  | One_of of (string * field) list
  | Curve_of of (string * field) list * (string * field) list

let schemas =
  [
    ( "E17-hotpath",
      [
        ( "scheduler_step",
          Arr_of
            [ ("parked", Fnum); ("mode", Fstr); ("ns_per_step", Fnum); ("steps", Fnum) ] );
        ( "commit_throughput",
          Arr_of
            [
              ("txns", Fnum);
              ("group_commit_size", Fnum);
              ("seconds", Fnum);
              ("txn_per_s", Fnum);
              ("log_forces", Fnum);
              ("committed", Fnum);
              ("group_commits", Fnum);
            ] );
      ] );
    ( "E18-lockpath",
      [
        ( "acquire_release",
          Arr_of [ ("objects", Fnum); ("holders", Fnum); ("ns_per_op", Fnum) ] );
        ( "deadlock_check",
          Arr_of
            [
              ("txns", Fnum); ("pending", Fnum); ("incremental_us", Fnum); ("rebuild_us", Fnum);
            ] );
        ( "workload",
          Arr_of
            [
              ("name", Fstr);
              ("committed", Fnum);
              ("victims", Fnum);
              ("lock_waits", Fnum);
              ("txn_per_s", Fnum);
            ] );
      ] );
    ( "E19-faults",
      [
        ( "boundary_sweep",
          Arr_of
            [
              ("group_commit_size", Fnum);
              ("boundaries", Fnum);
              ("crashes", Fnum);
              ("violations", Fnum);
              ("recovery_total_s", Fnum);
            ] );
        ( "random_schedules",
          One_of
            [
              ("runs", Fnum); ("crashes", Fnum); ("violations", Fnum); ("recovery_total_s", Fnum);
            ] );
        ( "retry",
          Arr_of
            [
              ("fault_rate", Fnum);
              ("txns", Fnum);
              ("committed", Fnum);
              ("retries", Fnum);
              ("gave_up", Fnum);
              ("seconds", Fnum);
              ("conserved", Fbool);
            ] );
        ( "lock_timeout",
          One_of
            [
              ("txns", Fnum);
              ("timeout_steps", Fnum);
              ("committed", Fnum);
              ("lock_timeouts", Fnum);
              ("retries", Fnum);
              ("gave_up", Fnum);
              ("seconds", Fnum);
            ] );
      ] );
    ( "E20-obs",
      [
        ("emit_site", Arr_of [ ("recorder", Fstr); ("ns_per_site", Fnum) ]);
        ( "workload",
          Arr_of
            [
              ("recorder", Fstr);
              ("txns", Fnum);
              ("writes_per_txn", Fnum);
              ("us_per_txn", Fnum);
              ("events", Fnum);
              ("overhead_pct", Fnum);
            ] );
      ] );
    ( "E21-check",
      [
        ( "scenarios",
          Arr_of
            [
              ("scenario", Fstr);
              ("schedules", Fnum);
              ("pruned", Fnum);
              ("choice_points", Fnum);
              ("completed", Fbool);
              ("naive_schedules", Fnum_or_null);
              ("seconds", Fnum);
            ] );
        ( "mutations",
          Arr_of
            [
              ("mutation", Fstr);
              ("killed", Fbool);
              ("schedules", Fnum);
              ("minimized_len", Fnum_or_null);
              ("seconds", Fnum);
            ] );
      ] );
    ( "E22-mvcc",
      [
        ( "readonly",
          Arr_of
            [
              ("mode", Fstr);
              ("readers", Fnum);
              ("reader_aborts", Fnum);
              ("writer_txns", Fnum);
              ("seconds", Fnum);
              ("readers_per_s", Fnum);
            ] );
        ( "escrow",
          Arr_of
            [
              ("mode", Fstr);
              ("txns", Fnum);
              ("committed", Fnum);
              ("violations", Fnum);
              ("final_ok", Fbool);
              ("seconds", Fnum);
            ] );
        ( "delegation",
          Arr_of
            [
              ("mode", Fstr);
              ("workers", Fnum);
              ("ops", Fnum);
              ("commits", Fnum);
              ("delegations", Fnum);
              ("final", Fnum);
              ("final_ok", Fbool);
              ("seconds", Fnum);
            ] );
        ( "gc",
          One_of
            [
              ("writes", Fnum);
              ("chain_pinned", Fnum);
              ("versions_pinned", Fnum);
              ("chain_after_close", Fnum);
              ("versions_after_close", Fnum);
            ] );
      ] );
    ( "E23-shard",
      (let curve_point =
         [
           ("domains", Fnum);
           ("committed", Fnum);
           ("cross_committed", Fnum);
           ("cross_aborted", Fnum);
           ("mixed", Fnum);
           ("gave_up", Fnum);
           ("retries", Fnum);
           ("conserved", Fbool);
           ("seconds", Fnum);
           ("txns_per_s", Fnum);
           ("speedup_vs_1", Fnum);
         ]
       and curve_cfg =
         [
           ("wave", Fnum); ("waves", Fnum); ("objects", Fnum); ("zipf_theta", Fnum); ("io_us", Fnum);
         ]
       in
       [
         ("single_shard", Curve_of (curve_cfg, curve_point));
         ("cross_mix", Curve_of (curve_cfg, curve_point));
         ( "conformance",
           One_of
             [ ("domains", Fnum); ("events", Fnum); ("xgc_edges", Fnum); ("violations", Fnum) ] );
       ]) );
    ( "E24-recovery",
      [
        ( "recovery_time",
          Arr_of
            [
              ("log_updates", Fnum);
              ("ckpt", Fstr);
              ("domains", Fnum);
              ("updates_redone", Fnum);
              ("seconds", Fnum);
              ("divergence", Fnum);
            ] );
        ( "retirement",
          Arr_of
            [
              ("rounds", Fnum);
              ("txns", Fnum);
              ("checkpoints", Fnum);
              ("segments_created", Fnum);
              ("segments_retired", Fnum);
              ("segments_live", Fnum);
              ("bounded", Fbool);
            ] );
      ] );
    ( "E25-oltp",
      [
        ( "mix",
          Arr_of
            [
              ("config", Fstr);
              ("class", Fstr);
              ("committed", Fnum);
              ("aborted", Fnum);
              ("retries", Fnum);
              ("gave_up", Fnum);
              ("p50_us", Fnum_or_null);
              ("p99_us", Fnum_or_null);
            ] );
        ( "configs",
          Arr_of
            [
              ("config", Fstr);
              ("txns", Fnum);
              ("seconds", Fnum);
              ("txn_per_s", Fnum);
              ("conserved", Fbool);
            ] );
        ( "agentic",
          One_of
            [
              ("agents", Fnum);
              ("plans_failed", Fnum);
              ("steps_committed", Fnum);
              ("compensations", Fnum);
              ("retries", Fnum);
              ("gave_up", Fnum);
              ("conserved", Fbool);
              ("seconds", Fnum);
            ] );
      ] );
  ]

let errors = ref 0

let err file fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "%s: %s\n" file msg)
    fmt

let check_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match parse contents with
  | exception Bad msg -> err file "unparsable: %s" msg
  | json -> (
      match member "experiment" json with
      | Some (Str tag) -> (
          (match member "smoke" json with
          | Some (Bool _) -> ()
          | _ -> err file "missing or non-bool \"smoke\"");
          match List.assoc_opt tag schemas with
          | None -> err file "unknown experiment tag %S" tag
          | Some members ->
              let check_record key i fields elem =
                List.iter
                  (fun (fk, ft) ->
                    match member fk elem with
                    | Some v when type_ok ft v -> ()
                    | Some _ -> err file "%s%s.%s: expected %s" key i fk (field_name ft)
                    | None -> err file "%s%s: missing %S" key i fk)
                  fields
              in
              List.iter
                (fun (key, shape) ->
                  match (shape, member key json) with
                  | Arr_of _, Some (Arr []) -> err file "array %S is empty" key
                  | Arr_of fields, Some (Arr elems) ->
                      List.iteri
                        (fun i elem ->
                          check_record key (Printf.sprintf "[%d]" i) fields elem)
                        elems
                  | Arr_of _, Some _ -> err file "%S is not an array" key
                  | One_of fields, Some (Obj _ as o) -> check_record key "" fields o
                  | One_of _, Some _ -> err file "%S is not an object" key
                  | Curve_of (cfg, point), Some (Obj _ as o) -> (
                      check_record key "" cfg o;
                      match member "points" o with
                      | Some (Arr []) -> err file "%s.points is empty" key
                      | Some (Arr elems) ->
                          List.iteri
                            (fun i elem ->
                              check_record key (Printf.sprintf ".points[%d]" i) point elem)
                            elems
                      | _ -> err file "%s: missing or non-array \"points\"" key)
                  | Curve_of _, Some _ -> err file "%S is not an object" key
                  | _, None -> err file "missing member %S" key)
                members)
      | _ -> err file "missing or non-string \"experiment\"")

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then begin
    Printf.eprintf "bench_sanity: no BENCH_*.json found in %s\n" dir;
    exit 1
  end;
  List.iter check_file files;
  if !errors = 0 then
    Printf.printf "bench_sanity: %d artifact(s) OK: %s\n" (List.length files)
      (String.concat ", " (List.map Filename.basename files))
  else begin
    Printf.printf "bench_sanity: %d error(s) across %d artifact(s)\n" !errors
      (List.length files);
    exit 1
  end
