(* The appendix workflow: X's trip to the June 1994 conference.

   "X prefers to fly on Delta, United, or American in that order ...
   X must stay at hotel Equator ... The car must be rented from Avis or
   National ... If no flight or hotel is available, the whole trip is
   canceled.  If a car cannot be rented, the trip can still proceed."

   The appendix hand-codes this with initiate/begin/commit/wait/abort;
   here the same activity is expressed in the Workflow DSL — ordered
   Alternatives for the flight, a mandatory Task for the hotel (whose
   failure compensates the flight already booked), and an Optional Race
   between the two rental companies ("Whichever of t5, t6 completes
   first wins").

   The scenario is run four times against different availability
   patterns, including the hotel-full case that exercises flight
   compensation.

   Run with:  dune exec examples/travel_workflow.exe
   Pass [--trace FILE] to dump the first scenario's event history as
   JSONL for offline oracle replay (one scenario per trace: each
   scenario runs a fresh engine, so tids would collide across them).
   test/test_conformance.ml loads it back through the oracle. *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Workflow = Asset_models.Workflow

(* Reservation objects: one per vendor, holding the count of bookings
   made (a real system would store seat/room assignments). *)
let vendors = [ "Delta"; "United"; "American"; "Equator"; "National"; "Avis" ]
let oid_of_vendor v =
  let rec index i = function
    | [] -> invalid_arg v
    | x :: rest -> if String.equal x v then i else index (i + 1) rest
  in
  Oid.of_int (1 + index 0 vendors)

type world = { available : (string, bool) Hashtbl.t }

let make_world pairs =
  let available = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace available v true) vendors;
  List.iter (fun (v, ok) -> Hashtbl.replace available v ok) pairs;
  { available }

(* A reservation transaction: fails (aborting itself) when the vendor
   has no availability; otherwise increments the vendor's booking
   count.  The compensating transaction decrements it — a semantic
   undo, exactly what the appendix's cancel_* functions are. *)
let reserve db world vendor =
  Workflow.task vendor
    ~compensate:(fun () ->
      let oid = oid_of_vendor vendor in
      let v = Option.value (E.read db oid) ~default:(Value.of_int 0) in
      E.write db oid (Value.incr_int v (-1)))
    (fun () ->
      if not (Hashtbl.find world.available vendor) then failwith (vendor ^ ": sold out");
      let oid = oid_of_vendor vendor in
      let v = Option.value (E.read db oid) ~default:(Value.of_int 0) in
      E.write db oid (Value.incr_int v 1))

let x_conference db world =
  Workflow.(
    Seq
      [
        (* Flight: Delta, then United, then American, in that order. *)
        Alternatives
          [
            Task (reserve db world "Delta");
            Task (reserve db world "United");
            Task (reserve db world "American");
          ];
        (* Hotel Equator is mandatory; its failure rolls the flight
           back. *)
        Task (reserve db world "Equator");
        (* The rental car is optional and raced between companies. *)
        Optional (Race [ reserve db world "National"; reserve db world "Avis" ]);
      ])

let bookings store =
  List.filter_map
    (fun v ->
      match Store.read store (oid_of_vendor v) with
      | Some value when Value.to_int value > 0 -> Some (v, Value.to_int value)
      | _ -> None)
    vendors

let trace_file =
  let rec scan = function
    | "--trace" :: f :: _ -> Some f
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let with_trace_maybe traced f =
  match if traced then trace_file else None with
  | None -> f ()
  | Some path ->
      let oc = open_out path in
      Asset_obs.Trace.start ~sinks:[ Asset_obs.Trace.jsonl_sink oc ] ();
      Fun.protect
        ~finally:(fun () ->
          Asset_obs.Trace.stop ();
          close_out oc)
        f

let scenario ?(traced = false) name world_spec =
  let store = Asset_storage.Heap_store.store () in
  let db = E.create store in
  let world = make_world world_spec in
  Format.printf "--- scenario: %s ---@." name;
  with_trace_maybe traced (fun () ->
      Runtime.run_exn db (fun () ->
          let outcome = Workflow.run db (x_conference db world) in
          Format.printf "  activity %s@."
            (if outcome.Workflow.success then "SUCCEEDED" else "FAILED");
          List.iter (fun e -> Format.printf "  . %a@." Workflow.pp_event e) outcome.Workflow.events));
  (match bookings store with
  | [] -> Format.printf "  final bookings: none@."
  | l -> List.iter (fun (v, n) -> Format.printf "  final booking: %s x%d@." v n) l);
  store

let () =
  (* Everything available: Delta + Equator + a car. *)
  let s1 = scenario ~traced:true "all available" [] in
  assert (bookings s1 |> List.mem_assoc "Delta");
  assert (bookings s1 |> List.mem_assoc "Equator");

  (* Delta and United full: falls through to American. *)
  let s2 = scenario "Delta and United full" [ ("Delta", false); ("United", false) ] in
  assert (bookings s2 |> List.mem_assoc "American");

  (* Hotel full: the flight reservation must be compensated and the
     whole activity fails. *)
  let s3 = scenario "hotel full" [ ("Equator", false) ] in
  assert (bookings s3 = []);

  (* No car anywhere: the trip still proceeds (the car is optional). *)
  let s4 = scenario "no rental cars" [ ("National", false); ("Avis", false) ] in
  assert (bookings s4 |> List.mem_assoc "Delta");
  assert (bookings s4 |> List.mem_assoc "Equator");
  assert (not (bookings s4 |> List.mem_assoc "National"));
  assert (not (bookings s4 |> List.mem_assoc "Avis"));
  Format.printf "travel_workflow: OK@."
