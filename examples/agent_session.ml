(* An agent session as extended transactions (DESIGN.md §13).

   One agent works through a research-and-publish workflow using the
   agentic workload layer: every tool call is its own committing
   transaction with a registered compensation (a saga), speculative
   tool calls run as contingent alternates under pairwise EXC — the
   first success force-aborts its siblings — a sub-agent handoff
   transfers the child's effects (locks, escrow reservations) to the
   adopting step via delegate, and context gathering reads a lock-free
   multi-version snapshot.  A second plan then fails mid-flight and
   compensates its committed prefix in reverse order, refunding every
   token it spent.

   Run with:  dune exec examples/agent_session.exe
   Pass [--trace FILE] to dump the full event history as JSONL for
   offline oracle replay (test/test_workloads.ml loads it back and
   checks the history, contracts included, against the oracle). *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Rng = Asset_util.Rng
module Agentic = Asset_workload.Agentic

let trace_file =
  let rec scan = function
    | "--trace" :: f :: _ -> Some f
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let with_trace f =
  match trace_file with
  | None -> f ()
  | Some path ->
      let oc = open_out path in
      Asset_obs.Trace.start ~sinks:[ Asset_obs.Trace.jsonl_sink oc ] ();
      Fun.protect
        ~finally:(fun () ->
          Asset_obs.Trace.stop ();
          close_out oc)
        f

(* The research plan: fetch a source, speculatively try two search
   tools (the cheap one wins and cancels the expensive one), hand the
   summary off to a sub-agent, then gather the docs read-only. *)
let research =
  {
    Agentic.agent = 0;
    steps =
      [
        Agentic.Call { tool = "fetch"; cost = 3; d = 0 };
        Agentic.Speculate { tool = "search"; costs = [ 5; 2 ]; d = 1; winner = 1 };
        Agentic.Handoff { tool = "summarise"; cost = 4; d = 2 };
        Agentic.Gather { tool = "review"; ds = [ 0; 1; 2 ] };
      ];
    fail_at = None;
  }

(* The publish plan: two committed steps, then the notify tool fails —
   the saga compensates publish and write-draft in reverse order and
   every token comes back. *)
let publish =
  {
    Agentic.agent = 1;
    steps =
      [
        Agentic.Call { tool = "write-draft"; cost = 6; d = 3 };
        Agentic.Call { tool = "publish"; cost = 5; d = 0 };
        Agentic.Call { tool = "notify"; cost = 1; d = 1 };
      ];
    fail_at = Some 2;
  }

let () =
  let budget0 = 50 and docs = 4 in
  let store = Asset_storage.Heap_store.store () in
  Agentic.setup store ~docs ~budget0;
  let db = E.create store in

  with_trace @@ fun () ->
  let outcomes = ref [] in
  Runtime.run_exn db (fun () ->
      let rng = Rng.create 2026 in
      let a = Agentic.run_plan ~rng db research in
      Format.printf "research: %d steps committed, spend %d, failed=%b@."
        a.Agentic.o_committed a.Agentic.o_spend a.Agentic.o_failed;
      assert ((not a.Agentic.o_failed) && a.Agentic.o_spend = 9);
      (* Exactly one speculation group, exactly one winner inside it. *)
      assert (List.length a.Agentic.o_contract.Agentic.exclusive = 1);
      (* The handoff left one delegation edge: sub-agent -> adopter. *)
      assert (List.length a.Agentic.o_contract.Agentic.delegations = 1);

      let b = Agentic.run_plan ~rng db publish in
      Format.printf "publish: rolled back, %d compensations, net spend %d@."
        b.Agentic.o_compensated b.Agentic.o_spend;
      assert (b.Agentic.o_failed && b.Agentic.o_compensated = 2 && b.Agentic.o_spend = 0);
      outcomes := [ a; b ]);

  let budget = Value.to_int (Store.read_exn store Agentic.budget) in
  let audit = List.length (Value.to_queue (Store.read_exn store Agentic.audit)) in
  Format.printf "final: budget=%d audit entries=%d@." budget audit;
  assert (budget = budget0 - Agentic.total_spend !outcomes);
  assert (audit = Agentic.total_audit !outcomes);
  Format.printf "agent_session: OK@."
