(* An order-processing saga (section 3.1.6).

   A long-lived order activity as a saga of independently-committing
   component transactions — reserve stock, charge the customer, book a
   shipment, send the confirmation — each compensable except the last.
   Component commits release their locks immediately, so other orders
   interleave freely (isolation is per component); when a later step
   fails, the committed prefix is compensated in reverse order, each
   compensation retried until it commits.

   Run with:  dune exec examples/saga_orders.exe
   Pass [--trace FILE] to dump the full event history as JSONL for
   offline oracle replay (test/test_conformance.ml loads it back and
   checks the history against the saga axioms). *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Saga = Asset_models.Saga

(* Objects: stock level, customer balance, shipments booked,
   confirmations sent. *)
let stock = Oid.of_int 1
let balance = Oid.of_int 2
let shipments = Oid.of_int 3
let confirmations = Oid.of_int 4

let get db oid = Value.to_int (Option.value (E.read db oid) ~default:(Value.of_int 0))
let add db oid delta = E.write db oid (Value.of_int (get db oid + delta))

let order db ~price ~payment_ok ~shipper_ok =
  [
    Saga.step ~label:"reserve-stock"
      ~compensate:(fun () -> add db stock 1)
      (fun () ->
        if get db stock <= 0 then failwith "out of stock";
        add db stock (-1));
    Saga.step ~label:"charge-customer"
      ~compensate:(fun () -> add db balance price)
      (fun () ->
        if not payment_ok then failwith "payment declined";
        if get db balance < price then failwith "insufficient funds";
        add db balance (-price));
    Saga.step ~label:"book-shipment"
      ~compensate:(fun () -> add db shipments (-1))
      (fun () ->
        if not shipper_ok then failwith "no shipping capacity";
        add db shipments 1);
    (* The last component needs no compensation: its commit commits the
       saga. *)
    Saga.step ~label:"send-confirmation" (fun () -> add db confirmations 1);
  ]

let snapshot store =
  let v oid = Value.to_int (Store.read_exn store oid) in
  (v stock, v balance, v shipments, v confirmations)

let trace_file =
  let rec scan = function
    | "--trace" :: f :: _ -> Some f
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let with_trace f =
  match trace_file with
  | None -> f ()
  | Some path ->
      let oc = open_out path in
      Asset_obs.Trace.start ~sinks:[ Asset_obs.Trace.jsonl_sink oc ] ();
      Fun.protect
        ~finally:(fun () ->
          Asset_obs.Trace.stop ();
          close_out oc)
        f

let () =
  let store = Asset_storage.Heap_store.store () in
  Store.write store stock (Value.of_int 5);
  Store.write store balance (Value.of_int 1_000);
  Store.write store shipments (Value.of_int 0);
  Store.write store confirmations (Value.of_int 0);
  let db = E.create store in

  with_trace @@ fun () ->
  Runtime.run_exn db (fun () ->
      (* A successful order: all four components commit in order. *)
      let r = Saga.run db (order db ~price:100 ~payment_ok:true ~shipper_ok:true) in
      assert (Saga.committed r);
      Format.printf "order 1: committed@.";

      (* Shipment fails: stock reservation and the charge are
         compensated, in reverse order. *)
      (match Saga.run db (order db ~price:100 ~payment_ok:true ~shipper_ok:false) with
      | Saga.Rolled_back { failed_step; compensated } ->
          Format.printf "order 2: rolled back at step %d, %d compensations@." failed_step
            compensated;
          assert (failed_step = 2 && compensated = 2)
      | Saga.Committed -> assert false);

      (* Payment fails: only the stock reservation needs compensation. *)
      (match Saga.run db (order db ~price:100 ~payment_ok:false ~shipper_ok:true) with
      | Saga.Rolled_back { failed_step; compensated } ->
          Format.printf "order 3: rolled back at step %d, %d compensations@." failed_step
            compensated;
          assert (failed_step = 1 && compensated = 1)
      | Saga.Committed -> assert false));

  let st, bal, sh, conf = snapshot store in
  Format.printf "final state: stock=%d balance=%d shipments=%d confirmations=%d@." st bal sh conf;
  (* Exactly one order went through. *)
  assert (st = 4 && bal = 900 && sh = 1 && conf = 1);
  Format.printf "saga_orders: OK@."
