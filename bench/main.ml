(* The ASSET benchmark harness.

   The paper has no quantitative evaluation (see DESIGN.md); this
   harness regenerates its one structural figure and produces the
   characterisation tables E1-E12 that DESIGN.md defines in its place.
   Each experiment prints one table; `dune exec bench/main.exe` runs
   them all.  Micro-benchmarks (E1, E4, E12) use Bechamel; workload
   experiments report wall-clock throughput and engine counters. *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module Sched = Asset_sched.Scheduler
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Heap = Asset_storage.Heap_store
module Lm = Asset_lock.Lock_manager
module Ops = Asset_lock.Mode.Ops
module Mode = Asset_lock.Mode
module Dt = Asset_deps.Dep_type
module Dg = Asset_deps.Dep_graph
module Log = Asset_wal.Log
module Record = Asset_wal.Record
module Recovery = Asset_wal.Recovery
module Table = Asset_util.Table
module Rng = Asset_util.Rng
module Workload = Asset_workload.Workload
module Bank = Asset_workload.Bank
open Asset_models

let oid = Oid.of_int
let vi = Value.of_int

(* --smoke shrinks every knob so a CI run finishes in seconds; the
   tables are then only smoke signals, not measurements. *)
let smoke = ref false

let fresh_db ?config ~objects () =
  let store = Heap.store () in
  Heap.populate store ~n:objects ~value:(fun _ -> vi 0);
  E.create ?config store

let stat db name = List.assoc name (E.stats db)

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Bechamel helper: measure a list of thunks, return ns/run            *)

let bechamel_measure cases =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" tests in
  let quota = if !smoke then 0.02 else 0.25 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt results name with
      | Some est -> (
          match Analyze.OLS.estimates est with
          | Some (ns :: _) -> Some (name, ns)
          | _ -> None)
      | None -> None)
    cases

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — the object descriptor                                *)

let fig1 () =
  let lm = Lm.create () in
  let t n = Tid.of_int n in
  ignore (Lm.acquire lm (t 1) (oid 1) Mode.Read);
  ignore (Lm.acquire lm (t 2) (oid 1) Mode.Read);
  ignore (Lm.acquire lm (t 3) (oid 1) Mode.Write);
  Lm.add_permit lm ~grantor:(t 1) ~grantee:(Some (t 4)) ~oid:(oid 1) ~ops:Ops.write_only;
  Format.printf "@.== F1: Figure 1 — object descriptor structure ==@.";
  Format.printf "%a@." (Lm.pp_od lm) (oid 1)

(* ------------------------------------------------------------------ *)
(* E1: primitive overhead                                              *)

let e1_primitives () =
  let run_txn n_writes () =
    let db = fresh_db ~objects:16 () in
    R.run_exn db (fun () ->
        let t =
          E.initiate db (fun () ->
              for i = 1 to n_writes do
                E.write db (oid i) (vi i)
              done)
        in
        ignore (E.begin_ db t);
        ignore (E.commit db t))
  in
  let baseline () =
    let db = fresh_db ~objects:16 () in
    R.run_exn db (fun () -> ())
  in
  let results =
    bechamel_measure
      [
        ("scheduler only (no txn)", baseline);
        ("empty transaction", run_txn 0);
        ("transaction, 1 write", run_txn 1);
        ("transaction, 8 writes", run_txn 8);
      ]
  in
  let t = Table.create ~title:"E1: primitive overhead (initiate/begin/commit path)"
      ~header:[ "case"; "ns/run" ] in
  List.iter (fun (name, ns) -> Table.add_row t [ name; Table.fmt_f ~digits:0 ns ]) results;
  Table.print t

(* ------------------------------------------------------------------ *)
(* E2: lock manager scalability                                        *)

let e2_lockmgr () =
  let t =
    Table.create ~title:"E2: lock manager under contention (64 txns x 8 ops)"
      ~header:[ "objects"; "w%"; "theta"; "committed"; "victims"; "lock waits"; "txn/s" ]
  in
  List.iter
    (fun n_objects ->
      List.iter
        (fun write_ratio ->
          List.iter
            (fun theta ->
              let m =
                Workload.run
                  {
                    Workload.default_spec with
                    Workload.n_objects;
                    n_txns = 64;
                    ops_per_txn = 8;
                    write_ratio;
                    theta;
                    seed = 7;
                  }
              in
              Table.add_row t
                [
                  Table.fmt_i n_objects;
                  Table.fmt_i (int_of_float (write_ratio *. 100.));
                  Table.fmt_f ~digits:1 theta;
                  Table.fmt_i m.Workload.committed;
                  Table.fmt_i m.Workload.deadlock_victims;
                  Table.fmt_i m.Workload.lock_waits;
                  Table.fmt_f ~digits:0 m.Workload.throughput;
                ])
            [ 0.0; 0.9 ])
        [ 0.1; 0.5 ])
    [ 16; 256; 4096 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E3: permit vs blocking on a hot object                              *)

let e3_permit () =
  let run ~n_txns ~with_permits =
    let db = fresh_db ~objects:4 () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              let bodies =
                List.init n_txns (fun _ () ->
                    for _ = 1 to 4 do
                      E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 1);
                      Sched.yield ()
                    done)
              in
              let tids = List.map (fun b -> E.initiate db b) bodies in
              if with_permits then begin
                (* Everyone cooperates on the hot object: blanket
                   permits plus a commit group. *)
                List.iter
                  (fun ti ->
                    List.iter
                      (fun tj ->
                        if not (Tid.equal ti tj) then
                          E.permit db ~from_:ti ~to_:tj ~oids:[ oid 1 ] ~ops:Ops.all)
                      tids)
                  tids;
                let rec chain = function
                  | a :: (b :: _ as rest) ->
                      ignore (E.form_dependency db Dt.GC a b);
                      chain rest
                  | _ -> ()
                in
                chain tids
              end;
              List.iter (fun t -> ignore (E.begin_ db t)) tids;
              List.iter
                (fun t -> E.spawn db ~label:"c" (fun () -> ignore (E.commit db t)))
                tids;
              E.await_terminated db tids))
    in
    (db, dt)
  in
  let t =
    Table.create ~title:"E3: cooperative sharing — permit vs blocking (hot object, 4 RMW each)"
      ~header:[ "txns"; "mode"; "committed"; "lock waits"; "suspensions"; "ms" ]
  in
  List.iter
    (fun n_txns ->
      List.iter
        (fun with_permits ->
          let db, dt = run ~n_txns ~with_permits in
          Table.add_row t
            [
              Table.fmt_i n_txns;
              (if with_permits then "permit" else "blocking");
              Table.fmt_i (stat db "commits");
              Table.fmt_i (stat db "lock_waits");
              Table.fmt_i (stat db "lock.suspensions");
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ false; true ])
    [ 2; 8; 16 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E4: delegation cost                                                 *)

let e4_delegate () =
  let t =
    Table.create ~title:"E4: delegate cost vs locked objects (split transaction)"
      ~header:[ "objects delegated"; "us/delegate"; "us/object" ]
  in
  List.iter
    (fun k ->
      let db = fresh_db ~objects:(k + 1) () in
      let total = ref 0.0 in
      let rounds = 20 in
      R.run_exn db (fun () ->
          for _ = 1 to rounds do
            let holder =
              E.initiate db (fun () ->
                  for i = 1 to k do
                    E.write db (oid i) (vi 1)
                  done)
            in
            let target = E.initiate db (fun () -> ()) in
            ignore (E.begin_ db holder);
            ignore (E.wait db holder);
            let _, dt = time_of (fun () -> E.delegate db ~from_:holder ~to_:target) in
            total := !total +. dt;
            ignore (E.begin_ db target);
            ignore (E.commit db target);
            ignore (E.commit db holder)
          done);
      let us = !total /. float_of_int rounds *. 1e6 in
      Table.add_row t
        [ Table.fmt_i k; Table.fmt_f ~digits:1 us; Table.fmt_f ~digits:3 (us /. float_of_int k) ])
    [ 1; 16; 256; 1024 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E5: nested transactions — depth and fanout                          *)

let e5_nested () =
  let t =
    Table.create ~title:"E5: nested transactions vs flat (same total writes)"
      ~header:[ "shape"; "writes"; "mode"; "ms"; "abort contained" ]
  in
  let flat_time writes =
    let db = fresh_db ~objects:(writes + 1) () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              ignore
                (Atomic.run db (fun () ->
                     for i = 1 to writes do
                       E.write db (oid i) (vi i)
                     done))))
    in
    dt
  in
  let nested_time ~depth ~fanout =
    let counter = ref 0 in
    let db = fresh_db ~objects:1024 () in
    let rec build level () =
      if level = 0 then begin
        incr counter;
        E.write db (oid !counter) (vi 1)
      end
      else
        for _ = 1 to fanout do
          Nested.sub_exn db (build (level - 1))
        done
    in
    let _, dt = time_of (fun () -> R.run_exn db (fun () -> ignore (Nested.root db (build depth)))) in
    (dt, !counter)
  in
  List.iter
    (fun (depth, fanout) ->
      let dt, writes = nested_time ~depth ~fanout in
      let flat = flat_time writes in
      Table.add_row t
        [
          Printf.sprintf "depth=%d fanout=%d" depth fanout;
          Table.fmt_i writes;
          "nested";
          Table.fmt_f ~digits:2 (dt *. 1000.);
          "-";
        ];
      Table.add_row t
        [
          Printf.sprintf "depth=%d fanout=%d" depth fanout;
          Table.fmt_i writes;
          "flat";
          Table.fmt_f ~digits:2 (flat *. 1000.);
          "-";
        ])
    [ (1, 4); (2, 4); (3, 4); (6, 2) ];
  (* Abort containment: a failing child under `Report leaves the parent
     free to commit. *)
  let db = fresh_db ~objects:8 () in
  let contained = ref false in
  R.run_exn db (fun () ->
      let r =
        Nested.root db (fun () ->
            ignore (Nested.sub db (fun () -> failwith "child"));
            E.write db (oid 1) (vi 1))
      in
      contained := r = `Committed);
  Table.add_row t
    [ "child abort, report policy"; "1"; "nested"; "-"; string_of_bool !contained ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E6: sagas vs long atomic transactions                               *)

let e6_saga () =
  let t =
    Table.create
      ~title:"E6: saga vs flat atomic — lock exposure and abort cost (chain of n steps)"
      ~header:[ "n"; "abort@"; "mode"; "committed txns"; "compensations"; "max locks held"; "ms" ]
  in
  let saga_steps db n ~fail_at =
    List.init n (fun i ->
        if i = n - 1 && fail_at = None then
          Saga.step ~label:"last" (fun () -> E.write db (oid (i + 1)) (vi 1))
        else
          Saga.step ~label:(string_of_int i)
            ~compensate:(fun () -> E.write db (oid (i + 1)) (vi 0))
            (fun () ->
              if fail_at = Some i then failwith "injected";
              E.write db (oid (i + 1)) (vi 1)))
  in
  let run_saga n ~fail_at =
    let db = fresh_db ~objects:(n + 1) () in
    let comps = ref 0 in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              match Saga.run db (saga_steps db n ~fail_at) with
              | Saga.Committed -> ()
              | Saga.Rolled_back { compensated; _ } -> comps := compensated))
    in
    (db, dt, !comps)
  in
  let run_flat n ~fail_at =
    let db = fresh_db ~objects:(n + 1) () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              ignore
                (Atomic.run db (fun () ->
                     for i = 1 to n do
                       if fail_at = Some (i - 1) then failwith "injected";
                       E.write db (oid i) (vi 1)
                     done))))
    in
    (db, dt)
  in
  List.iter
    (fun n ->
      List.iter
        (fun fail_at ->
          let db, dt, comps = run_saga n ~fail_at in
          let fail_label = match fail_at with None -> "-" | Some k -> string_of_int k in
          Table.add_row t
            [
              Table.fmt_i n;
              fail_label;
              "saga";
              Table.fmt_i (stat db "commits");
              Table.fmt_i comps;
              (* Each saga component holds at most its own step's lock. *)
              "1";
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ];
          let db, dt = run_flat n ~fail_at in
          Table.add_row t
            [
              Table.fmt_i n;
              fail_label;
              "flat";
              Table.fmt_i (stat db "commits");
              "0";
              Table.fmt_i (match fail_at with None -> n | Some k -> k);
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ None; Some (n / 2) ])
    [ 4; 16; 32 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E7: group commit resolution                                         *)

let e7_groupcommit () =
  let t =
    Table.create ~title:"E7: group commit (GC mark handshake), commit order permuted"
      ~header:[ "group size"; "order seed"; "committed"; "commit records"; "retries"; "ms" ]
  in
  List.iter
    (fun size ->
      List.iter
        (fun seed ->
          let db = fresh_db ~objects:(size + 1) () in
          let _, dt =
            time_of (fun () ->
                R.run_exn db (fun () ->
                    let tids =
                      List.init size (fun i ->
                          E.initiate db (fun () -> E.write db (oid (i + 1)) (vi 1)))
                    in
                    let rec chain = function
                      | a :: (b :: _ as rest) ->
                          ignore (E.form_dependency db Dt.GC a b);
                          chain rest
                      | _ -> ()
                    in
                    chain tids;
                    List.iter (fun x -> ignore (E.begin_ db x)) tids;
                    (* Commit in a permuted order from separate fibers. *)
                    let arr = Array.of_list tids in
                    Rng.shuffle_in_place (Rng.create seed) arr;
                    Array.iter
                      (fun x -> E.spawn db ~label:"c" (fun () -> ignore (E.commit db x)))
                      arr;
                    E.await_terminated db tids))
          in
          let commit_records = ref 0 in
          Log.iter (E.log db) (fun _ r ->
              match r with Record.Commit _ -> incr commit_records | _ -> ());
          Table.add_row t
            [
              Table.fmt_i size;
              Table.fmt_i seed;
              Table.fmt_i (stat db "commits");
              Table.fmt_i !commit_records;
              Table.fmt_i (stat db "commit_retries");
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ 1; 2 ])
    [ 2; 8; 64 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E8: cursor stability vs repeatable read                             *)

let e8_cursor () =
  let t =
    Table.create
      ~title:"E8: cursor stability vs strict 2PL (1 scanner over R records, W writers)"
      ~header:[ "records"; "writers"; "mode"; "writer waits"; "writers done before scan end" ]
  in
  let run ~records ~writers ~stable =
    let db = fresh_db ~objects:(records + 1) () in
    let early = ref 0 in
    R.run_exn db (fun () ->
        let record_oids = List.init records (fun i -> oid (i + 1)) in
        let scanner =
          E.initiate db (fun () ->
              if stable then Cursor_stability.scan db record_oids ~f:(fun _ _ -> Sched.yield ())
              else Cursor_stability.scan_repeatable db record_oids ~f:(fun _ _ -> Sched.yield ()))
        in
        let writer_tids =
          List.init writers (fun w ->
              E.initiate db (fun () ->
                  E.write db (oid ((w mod records) + 1)) (vi 99);
                  if not (E.is_terminated db scanner) then incr early))
        in
        ignore (E.begin_ db scanner);
        Sched.yield ();
        List.iter (fun w -> ignore (E.begin_ db w)) writer_tids;
        List.iter
          (fun w -> E.spawn db ~label:"cw" (fun () -> ignore (E.commit db w)))
          writer_tids;
        ignore (E.commit db scanner);
        E.await_terminated db (scanner :: writer_tids));
    (db, !early)
  in
  List.iter
    (fun (records, writers) ->
      List.iter
        (fun stable ->
          let db, early = run ~records ~writers ~stable in
          Table.add_row t
            [
              Table.fmt_i records;
              Table.fmt_i writers;
              (if stable then "cursor-stability" else "repeatable-read");
              Table.fmt_i (stat db "lock_waits");
              Table.fmt_i early;
            ])
        [ true; false ])
    [ (8, 4); (32, 8) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E9: recovery                                                        *)

let e9_recovery () =
  let t =
    Table.create ~title:"E9: recovery time vs log volume"
      ~header:[ "updates"; "loser frac"; "redone"; "undone"; "ms" ]
  in
  List.iter
    (fun n_updates ->
      List.iter
        (fun loser_frac ->
          let log = Log.in_memory () in
          let store = Heap.store () in
          let n_objects = 64 in
          for o = 1 to n_objects do
            Store.write store (oid o) (vi 0)
          done;
          let rng = Rng.create 13 in
          let per_txn = 10 in
          let n_txns = n_updates / per_txn in
          for txn = 1 to n_txns do
            let tid = Tid.of_int txn in
            for u = 1 to per_txn do
              let o = 1 + Rng.int rng n_objects in
              ignore
                (Log.append log
                   (Record.Update
                      { tid; oid = oid o; before = Some (vi 0); after = vi ((txn * 100) + u) }))
            done;
            if Rng.float rng >= loser_frac then ignore (Log.append log (Record.Commit [ tid ]))
          done;
          let report, dt = time_of (fun () -> Recovery.recover log store) in
          Table.add_row t
            [
              Table.fmt_i n_updates;
              Table.fmt_f ~digits:1 loser_frac;
              Table.fmt_i report.Recovery.updates_redone;
              Table.fmt_i report.Recovery.updates_undone;
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ 0.0; 0.5 ])
    [ 100; 1_000; 10_000; 100_000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E10: the appendix workflow under failure injection                  *)

let e10_workflow () =
  let t =
    Table.create ~title:"E10: appendix trip workflow under per-step failure probability"
      ~header:[ "p(fail)"; "runs"; "succeeded"; "avg compensations"; "car booked (of successes)" ]
  in
  let vendors = [ "Delta"; "United"; "American"; "Equator"; "National"; "Avis" ] in
  List.iter
    (fun p ->
      let runs = 200 in
      let rng = Rng.create 21 in
      let successes = ref 0 and comps = ref 0 and cars = ref 0 in
      for _ = 1 to runs do
        let db = fresh_db ~objects:8 () in
        let avail = List.map (fun v -> (v, Rng.float rng >= p)) vendors in
        R.run_exn db (fun () ->
            let mk i v =
              Workflow.task v
                ~compensate:(fun () -> E.write db (oid (i + 1)) (vi 0))
                (fun () ->
                  if not (List.assoc v avail) then failwith "unavailable";
                  E.write db (oid (i + 1)) (vi 1))
            in
            let wf =
              Workflow.(
                Seq
                  [
                    Alternatives
                      [ Task (mk 0 "Delta"); Task (mk 1 "United"); Task (mk 2 "American") ];
                    Task (mk 3 "Equator");
                    Optional (Race [ mk 4 "National"; mk 5 "Avis" ]);
                  ])
            in
            let o = Workflow.run db wf in
            if o.Workflow.success then begin
              incr successes;
              let car o' = Value.to_int (Store.read_exn (E.store db) (oid o')) = 1 in
              if car 5 || car 6 then incr cars
            end;
            comps := !comps + List.length (Workflow.compensated_labels o))
      done;
      Table.add_row t
        [
          Table.fmt_f ~digits:1 p;
          Table.fmt_i runs;
          Table.fmt_i !successes;
          Table.fmt_f ~digits:2 (float_of_int !comps /. float_of_int runs);
          Table.fmt_i !cars;
        ])
    [ 0.0; 0.1; 0.3; 0.5 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E11: contingent and distributed model costs                         *)

let e11_models () =
  let t =
    Table.create ~title:"E11: contingent alternatives and distributed group size"
      ~header:[ "model"; "param"; "txns initiated"; "committed"; "ms" ]
  in
  (* Contingent: first k-1 alternatives fail. *)
  List.iter
    (fun k ->
      let db = fresh_db ~objects:4 () in
      let _, dt =
        time_of (fun () ->
            R.run_exn db (fun () ->
                let alts =
                  List.init k (fun i () ->
                      if i < k - 1 then failwith "alt fails" else E.write db (oid 1) (vi 1))
                in
                match Contingent.run db alts with
                | `Committed _ -> ()
                | _ -> failwith "contingent must succeed"))
      in
      Table.add_row t
        [
          "contingent";
          Printf.sprintf "alts=%d" k;
          Table.fmt_i (E.transaction_count db);
          Table.fmt_i (stat db "commits");
          Table.fmt_f ~digits:2 (dt *. 1000.);
        ])
    [ 1; 4; 8 ];
  (* Distributed: group size sweep. *)
  List.iter
    (fun g ->
      let db = fresh_db ~objects:(g + 1) () in
      let _, dt =
        time_of (fun () ->
            R.run_exn db (fun () ->
                let comps = List.init g (fun i () -> E.write db (oid (i + 1)) (vi 1)) in
                match Distributed.run db comps with
                | `Committed -> ()
                | _ -> failwith "distributed must succeed"))
      in
      Table.add_row t
        [
          "distributed";
          Printf.sprintf "group=%d" g;
          Table.fmt_i (E.transaction_count db);
          Table.fmt_i (stat db "commits");
          Table.fmt_f ~digits:2 (dt *. 1000.);
        ])
    [ 2; 8; 32 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E12: dependency graph ablation                                      *)

let e12_deps () =
  let t =
    Table.create ~title:"E12: dependency graph — cycle check cost (random CD/AD edges)"
      ~header:[ "edges"; "cycle check"; "accepted"; "rejected"; "us/edge" ]
  in
  List.iter
    (fun n_edges ->
      List.iter
        (fun check ->
          let g = Dg.create ~cycle_check:check () in
          let rng = Rng.create 3 in
          let n_nodes = max 8 (n_edges / 4) in
          let accepted = ref 0 and rejected = ref 0 in
          let _, dt =
            time_of (fun () ->
                for _ = 1 to n_edges do
                  let a = 1 + Rng.int rng n_nodes and b = 1 + Rng.int rng n_nodes in
                  if a <> b then
                    match
                      Dg.add g
                        (if Rng.bool rng then Dt.CD else Dt.AD)
                        ~master:(Tid.of_int a) ~dependent:(Tid.of_int b)
                    with
                    | () -> incr accepted
                    | exception Dg.Cycle_rejected _ -> incr rejected
                done)
          in
          Table.add_row t
            [
              Table.fmt_i n_edges;
              string_of_bool check;
              Table.fmt_i !accepted;
              Table.fmt_i !rejected;
              Table.fmt_f ~digits:3 (dt /. float_of_int n_edges *. 1e6);
            ])
        [ true; false ])
    [ 10; 100; 1_000; 10_000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E13: semantic increments vs write locks vs permits on a hot counter *)

let e13_increment () =
  let t =
    Table.create
      ~title:"E13: hot counter — Increment locks vs RMW write locks vs permits (4 ops/txn)"
      ~header:[ "txns"; "mode"; "committed"; "victims"; "lock waits"; "final = expected"; "ms" ]
  in
  let run ~n_txns ~mode =
    let db = fresh_db ~objects:4 () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              let body () =
                for _ = 1 to 4 do
                  (match mode with
                  | `Increment -> E.increment db (oid 1) 1
                  | `Rmw | `Permit ->
                      E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 1));
                  Sched.yield ()
                done
              in
              let tids = List.init n_txns (fun _ -> E.initiate db body) in
              if mode = `Permit then
                List.iter
                  (fun ti ->
                    List.iter
                      (fun tj ->
                        if not (Tid.equal ti tj) then
                          E.permit db ~from_:ti ~to_:tj ~oids:[ oid 1 ] ~ops:Ops.all)
                      tids)
                  tids;
              List.iter (fun x -> ignore (E.begin_ db x)) tids;
              List.iter (fun x -> E.spawn db ~label:"c" (fun () -> ignore (E.commit db x))) tids;
              E.await_terminated db tids))
    in
    (db, dt)
  in
  List.iter
    (fun n_txns ->
      List.iter
        (fun mode ->
          let db, dt = run ~n_txns ~mode in
          let committed = stat db "commits" in
          let final =
            Value.to_int (Store.read_exn (E.store db) (oid 1))
          in
          Table.add_row t
            [
              Table.fmt_i n_txns;
              (match mode with `Increment -> "increment" | `Rmw -> "rmw-2pl" | `Permit -> "permit");
              Table.fmt_i committed;
              Table.fmt_i (stat db "deadlock_victims");
              Table.fmt_i (stat db "lock_waits");
              string_of_bool (final = committed * 4);
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ `Rmw; `Permit; `Increment ])
    [ 4; 16 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E14: ablations — latches on/off, scheduling policy                  *)

let e14_ablations () =
  let t =
    Table.create ~title:"E14: ablations (bank workload, 16 accounts, 100 transfers)"
      ~header:[ "variant"; "committed"; "victims"; "total conserved"; "ms" ]
  in
  let run ~use_latches ~policy label =
    let config = { E.default_config with E.use_latches } in
    let store = Heap.store () in
    Bank.setup store ~accounts:16 ~balance:1_000;
    let db = E.create ~config store in
    let committed = ref 0 and aborted = ref 0 in
    let _, dt =
      time_of (fun () ->
          R.run_exn ~policy db (fun () ->
              let c, a = Bank.run_transfers db ~accounts:16 ~n_txns:100 in
              committed := c;
              aborted := a))
    in
    Table.add_row t
      [
        label;
        Table.fmt_i !committed;
        Table.fmt_i !aborted;
        string_of_bool (Bank.total db ~accounts:16 = 16_000);
        Table.fmt_f ~digits:2 (dt *. 1000.);
      ]
  in
  run ~use_latches:true ~policy:Sched.Fifo "latches on, fifo";
  run ~use_latches:false ~policy:Sched.Fifo "latches off, fifo";
  run ~use_latches:true ~policy:(Sched.Random_seeded 1) "latches on, random seed 1";
  run ~use_latches:true ~policy:(Sched.Random_seeded 2) "latches on, random seed 2";
  Table.print t

(* ------------------------------------------------------------------ *)
(* E15: shared-cache vs private-workspace operating mode               *)

let e15_workspace () =
  let t =
    Table.create
      ~title:"E15: operating modes — shared cache vs private workspace (k updates on m objects)"
      ~header:[ "objects"; "updates/object"; "mode"; "log records"; "ms" ]
  in
  let count_updates db =
    let n = ref 0 in
    Log.iter (E.log db) (fun _ r -> match r with Record.Update _ -> incr n | _ -> ());
    !n
  in
  let run ~objects ~updates ~mode =
    let db = fresh_db ~objects () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              ignore
                (Atomic.run db (fun () ->
                     match mode with
                     | `Shared ->
                         for o = 1 to objects do
                           for u = 1 to updates do
                             E.write db (oid o) (vi u)
                           done
                         done
                     | `Workspace ->
                         Asset_core.Workspace.with_workspace db (fun w ->
                             for o = 1 to objects do
                               for u = 1 to updates do
                                 Asset_core.Workspace.set w (oid o) (vi u)
                               done
                             done)))))
    in
    (count_updates db, dt)
  in
  List.iter
    (fun (objects, updates) ->
      List.iter
        (fun mode ->
          let log_records, dt = run ~objects ~updates ~mode in
          Table.add_row t
            [
              Table.fmt_i objects;
              Table.fmt_i updates;
              (match mode with `Shared -> "shared cache" | `Workspace -> "workspace");
              Table.fmt_i log_records;
              Table.fmt_f ~digits:2 (dt *. 1000.);
            ])
        [ `Shared; `Workspace ])
    [ (8, 10); (8, 100); (64, 100) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E16: index substrate — in-memory vs paged B+tree                    *)

let e16_index () =
  let t =
    Table.create ~title:"E16: index substrate — in-memory vs paged B+tree (n inserts + n lookups)"
      ~header:[ "n"; "structure"; "insert ms"; "lookup ms"; "scan ms" ]
  in
  List.iter
    (fun n ->
      (* In-memory. *)
      let mem = Asset_index.Btree.create () in
      let _, ti =
        time_of (fun () ->
            for k = 1 to n do
              Asset_index.Btree.insert mem (k * 7 mod n) k
            done)
      in
      let _, tl =
        time_of (fun () ->
            for k = 1 to n do
              ignore (Asset_index.Btree.find mem (k mod n))
            done)
      in
      let _, ts = time_of (fun () -> Asset_index.Btree.iter mem (fun _ _ -> ())) in
      Table.add_row t
        [
          Table.fmt_i n;
          "in-memory";
          Table.fmt_f ~digits:2 (ti *. 1000.);
          Table.fmt_f ~digits:2 (tl *. 1000.);
          Table.fmt_f ~digits:2 (ts *. 1000.);
        ];
      (* Paged. *)
      let path = Filename.temp_file "asset_bench" ".btree" in
      let paged = Asset_index.Paged_btree.create ~page_size:4096 ~pool_capacity:256 path in
      let _, ti =
        time_of (fun () ->
            for k = 1 to n do
              Asset_index.Paged_btree.insert paged (k * 7 mod n) k
            done)
      in
      let _, tl =
        time_of (fun () ->
            for k = 1 to n do
              ignore (Asset_index.Paged_btree.find paged (k mod n))
            done)
      in
      let _, ts = time_of (fun () -> Asset_index.Paged_btree.iter paged (fun _ _ -> ())) in
      Asset_index.Paged_btree.close paged;
      Sys.remove path;
      Table.add_row t
        [
          Table.fmt_i n;
          "paged (4K pages)";
          Table.fmt_f ~digits:2 (ti *. 1000.);
          Table.fmt_f ~digits:2 (tl *. 1000.);
          Table.fmt_f ~digits:2 (ts *. 1000.);
        ])
    [ 1_000; 10_000; 100_000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E17: hot-path gates (ISSUE 1 "E13") — scheduler step cost with many
   parked fibers, and WAL group-commit throughput.  Emits the
   machine-readable BENCH_hotpath.json so the perf trajectory is
   tracked across PRs. *)

(* One busy fiber takes [yields] steps while [parked] fibers sit on a
   wake condition.  "versioned" parks register a version watch, so the
   scheduler skips them while the version is unchanged; "polled" parks
   re-run every condition after every step — the pre-overhaul O(n)
   behaviour, kept as the in-binary baseline. *)
let hotpath_sched_case ~parked ~yields ~versioned =
  let s = Sched.create () in
  let ver = ref 0 in
  Sched.set_clock s (fun () -> !ver);
  for _ = 1 to parked do
    ignore
      (Sched.spawn s ~label:"parked" (fun () ->
           let v = !ver in
           if versioned then Sched.wait_until ~reason:"parked" ~watch:v (fun () -> !ver > v)
           else Sched.wait_until ~reason:"parked" (fun () -> !ver > v)))
  done;
  ignore
    (Sched.spawn s ~label:"worker" (fun () ->
         for _ = 1 to yields do
           Sched.yield ()
         done;
         incr ver));
  let (), dt = time_of (fun () -> Sched.run s) in
  (dt, Sched.steps s)

(* [n_txns] independent single-write transactions, each committed from
   its own fiber, over a file-backed log.  group_commit_size=1 is the
   force-per-commit baseline; larger sizes coalesce K commit records
   into one fsync. *)
let hotpath_commit_case ~n_txns ~gcs =
  let path = Filename.temp_file "asset_hotpath" ".wal" in
  let log = Log.create_file path in
  let config = { E.default_config with E.group_commit_size = gcs } in
  let store = Heap.store () in
  Heap.populate store ~n:(n_txns + 1) ~value:(fun _ -> vi 0);
  let db = E.create ~config ~log store in
  let (), dt =
    time_of (fun () ->
        R.run_exn db (fun () ->
            let tids =
              List.init n_txns (fun i -> E.initiate db (fun () -> E.write db (oid (i + 1)) (vi 1)))
            in
            List.iter (fun t -> ignore (E.begin_ db t)) tids;
            List.iter (fun t -> E.spawn db ~label:"c" (fun () -> ignore (E.commit db t))) tids;
            E.await_terminated db tids))
  in
  let forces = Log.force_count log in
  let commits = stat db "commits" in
  let group_commits = stat db "group_commits" in
  Log.close log;
  Sys.remove path;
  (dt, forces, commits, group_commits)

let e17_hotpath () =
  let parked_counts = if !smoke then [ 10; 100 ] else [ 10; 100; 1000 ] in
  let yields = if !smoke then 2_000 else 20_000 in
  let txn_counts = if !smoke then [ 10; 50 ] else [ 10; 100; 1000 ] in
  let gcs_values = if !smoke then [ 1; 8 ] else [ 1; 8; 64 ] in
  (* Scheduler step cost. *)
  let sched_rows =
    List.concat_map
      (fun parked ->
        List.map
          (fun versioned ->
            let dt, steps = hotpath_sched_case ~parked ~yields ~versioned in
            let ns = dt /. float_of_int steps *. 1e9 in
            (parked, (if versioned then "versioned" else "polled"), ns, steps))
          [ false; true ])
      parked_counts
  in
  let t =
    Table.create
      ~title:"E17a: scheduler step cost vs parked fibers (polled = pre-overhaul wake behaviour)"
      ~header:[ "parked"; "wakeups"; "ns/step"; "steps" ]
  in
  List.iter
    (fun (parked, mode, ns, steps) ->
      Table.add_row t [ Table.fmt_i parked; mode; Table.fmt_f ~digits:1 ns; Table.fmt_i steps ])
    sched_rows;
  Table.print t;
  (* Commit throughput on a file-backed (fsynced) log. *)
  let commit_rows =
    List.concat_map
      (fun n_txns ->
        List.map
          (fun gcs ->
            let dt, forces, commits, group_commits = hotpath_commit_case ~n_txns ~gcs in
            let tps = float_of_int commits /. dt in
            (n_txns, gcs, dt, tps, forces, commits, group_commits))
          gcs_values)
      txn_counts
  in
  let t =
    Table.create
      ~title:"E17b: commit throughput on a file-backed log vs group_commit_size"
      ~header:[ "txns"; "gc size"; "committed"; "log forces"; "group commits"; "txn/s" ]
  in
  List.iter
    (fun (n_txns, gcs, _dt, tps, forces, commits, group_commits) ->
      Table.add_row t
        [
          Table.fmt_i n_txns;
          Table.fmt_i gcs;
          Table.fmt_i commits;
          Table.fmt_i forces;
          Table.fmt_i group_commits;
          Table.fmt_f ~digits:0 tps;
        ])
    commit_rows;
  Table.print t;
  (* Machine-readable gate for the perf trajectory. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E17-hotpath\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"scheduler_step\": [\n";
  List.iteri
    (fun i (parked, mode, ns, steps) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"parked\": %d, \"mode\": \"%s\", \"ns_per_step\": %.2f, \"steps\": %d}%s\n"
           parked mode ns steps
           (if i = List.length sched_rows - 1 then "" else ",")))
    sched_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"commit_throughput\": [\n";
  List.iteri
    (fun i (n_txns, gcs, dt, tps, forces, commits, group_commits) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"txns\": %d, \"group_commit_size\": %d, \"seconds\": %.6f, \"txn_per_s\": %.1f, \
            \"log_forces\": %d, \"committed\": %d, \"group_commits\": %d}%s\n"
           n_txns gcs dt tps forces commits group_commits
           (if i = List.length commit_rows - 1 then "" else ",")))
    commit_rows;
  Buffer.add_string buf "  ]\n}\n";
  (* Smoke runs get their own file so CI never clobbers the committed
     full-run numbers. *)
  let path = if !smoke then "BENCH_hotpath_smoke.json" else "BENCH_hotpath.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E18: lock-manager hot path (ISSUE 2) — indexed descriptors and the
   incrementally maintained waits-for graph.  Emits BENCH_lockpath.json
   so the lock-path perf trajectory is tracked across PRs. *)

(* Acquire+release cost seen by one transaction when every object
   already carries [holders] granted Read locks: the conflict scan
   walks [holders] entries, but all descriptor bookkeeping (find,
   insert, release) should stay O(1). *)
let lockpath_acquire_case ~objects ~holders ~iters =
  let lm = Lm.create () in
  for h = 1 to holders do
    for o = 1 to objects do
      ignore (Lm.acquire lm (Tid.of_int h) (oid o) Mode.Read)
    done
  done;
  let me = Tid.of_int (holders + 1) in
  let (), dt =
    time_of (fun () ->
        for _ = 1 to iters do
          for o = 1 to objects do
            ignore (Lm.acquire lm me (oid o) Mode.Read)
          done;
          ignore (Lm.release_all lm me)
        done)
  in
  dt /. float_of_int (iters * objects) *. 1e9

(* The stall hook's deadlock search.  [objects] transactions each hold
   their own object (live-transaction count scales with the store) and
   [waiters] further transactions form a blocked chain with no cycle —
   the worst case, since the search cannot stop early.  The incremental
   graph searches O(edges) = O(waiters); the rebuild path re-derives
   the graph from every OD first. *)
let lockpath_deadlock_case ~objects ~waiters ~checks =
  let lm = Lm.create () in
  for o = 1 to objects do
    ignore (Lm.acquire lm (Tid.of_int o) (oid o) Mode.Write)
  done;
  for w = 1 to waiters do
    ignore (Lm.acquire lm (Tid.of_int (w + 1)) (oid w) Mode.Write)
  done;
  let time_checks f =
    let (), dt =
      time_of (fun () ->
          for _ = 1 to checks do
            assert (f lm = None)
          done)
    in
    dt /. float_of_int checks *. 1e6
  in
  let incremental_us = time_checks Lm.find_cycle in
  let rebuild_us = time_checks Lm.find_cycle_rebuild in
  (incremental_us, rebuild_us)

(* End-to-end: Zipf-contended read-modify-write batches (the classic
   upgrade-deadlock pattern) and the bank-transfer workload, both of
   which hammer acquire/block/abort and the stall hook. *)
let lockpath_workload_case ~theta ~n_txns =
  let m =
    Workload.run
      {
        Workload.default_spec with
        Workload.n_objects = 64;
        n_txns;
        ops_per_txn = 8;
        write_ratio = 0.5;
        theta;
        seed = 11;
        read_modify_write = true;
      }
  in
  (m.Workload.committed, m.Workload.deadlock_victims, m.Workload.lock_waits, m.Workload.throughput)

let lockpath_bank_case ~n_txns =
  let accounts = 8 in
  let store = Heap.store () in
  Bank.setup store ~accounts ~balance:1_000;
  let db = E.create store in
  let result = ref (0, 0) in
  let (), dt =
    time_of (fun () -> R.run_exn db (fun () -> result := Bank.run_transfers db ~accounts ~n_txns))
  in
  let committed, victims = !result in
  (committed, victims, stat db "lock_waits", float_of_int committed /. dt)

let e18_lockpath () =
  let object_counts = if !smoke then [ 16; 256 ] else [ 16; 256; 1024 ] in
  let holder_counts = if !smoke then [ 1; 8 ] else [ 1; 8; 32 ] in
  let dl_objects = if !smoke then [ 100; 1_000 ] else [ 100; 1_000; 10_000 ] in
  let dl_waiters = if !smoke then [ 8 ] else [ 8; 64 ] in
  let checks = if !smoke then 50 else 500 in
  let wl_txns = if !smoke then 48 else 256 in
  let bank_txns = if !smoke then 50 else 400 in
  (* Acquire/release ns per op. *)
  let acq_rows =
    List.concat_map
      (fun objects ->
        List.map
          (fun holders ->
            let iters = max 1 ((if !smoke then 20_000 else 200_000) / objects) in
            let ns = lockpath_acquire_case ~objects ~holders ~iters in
            (objects, holders, ns))
          holder_counts)
      object_counts
  in
  let t =
    Table.create
      ~title:"E18a: acquire+release cost vs objects and granted holders per object"
      ~header:[ "objects"; "holders"; "ns/op" ]
  in
  List.iter
    (fun (objects, holders, ns) ->
      Table.add_row t [ Table.fmt_i objects; Table.fmt_i holders; Table.fmt_f ~digits:1 ns ])
    acq_rows;
  Table.print t;
  (* Stall-hook deadlock-check cost: live incremental graph vs rebuild. *)
  let dl_rows =
    List.concat_map
      (fun objects ->
        List.map
          (fun waiters ->
            let inc_us, reb_us = lockpath_deadlock_case ~objects ~waiters ~checks in
            (objects, waiters, inc_us, reb_us))
          dl_waiters)
      dl_objects
  in
  let t =
    Table.create
      ~title:"E18b: deadlock-check cost vs live txns (one per object) and pending requests"
      ~header:[ "txns"; "pending"; "incremental us"; "rebuild us" ]
  in
  List.iter
    (fun (objects, waiters, inc_us, reb_us) ->
      Table.add_row t
        [
          Table.fmt_i objects;
          Table.fmt_i waiters;
          Table.fmt_f ~digits:2 inc_us;
          Table.fmt_f ~digits:2 reb_us;
        ])
    dl_rows;
  Table.print t;
  (* Contended workloads end to end. *)
  let wl_rows =
    List.map
      (fun theta ->
        let committed, victims, waits, tps = lockpath_workload_case ~theta ~n_txns:wl_txns in
        (Printf.sprintf "rmw zipf %.2f" theta, committed, victims, waits, tps))
      [ 0.0; 0.99 ]
    @ [
        (let committed, victims, waits, tps = lockpath_bank_case ~n_txns:bank_txns in
         ("bank transfers", committed, victims, waits, tps));
      ]
  in
  let t =
    Table.create
      ~title:"E18c: contended workload throughput through the overhauled lock path"
      ~header:[ "workload"; "committed"; "victims"; "lock waits"; "txn/s" ]
  in
  List.iter
    (fun (name, committed, victims, waits, tps) ->
      Table.add_row t
        [
          name;
          Table.fmt_i committed;
          Table.fmt_i victims;
          Table.fmt_i waits;
          Table.fmt_f ~digits:0 tps;
        ])
    wl_rows;
  Table.print t;
  (* Machine-readable gate for the perf trajectory. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E18-lockpath\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"acquire_release\": [\n";
  List.iteri
    (fun i (objects, holders, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"objects\": %d, \"holders\": %d, \"ns_per_op\": %.2f}%s\n" objects
           holders ns
           (if i = List.length acq_rows - 1 then "" else ",")))
    acq_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"deadlock_check\": [\n";
  List.iteri
    (fun i (objects, waiters, inc_us, reb_us) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"txns\": %d, \"pending\": %d, \"incremental_us\": %.3f, \"rebuild_us\": %.3f}%s\n"
           objects waiters inc_us reb_us
           (if i = List.length dl_rows - 1 then "" else ",")))
    dl_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"workload\": [\n";
  List.iteri
    (fun i (name, committed, victims, waits, tps) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"committed\": %d, \"victims\": %d, \"lock_waits\": %d, \
            \"txn_per_s\": %.1f}%s\n"
           name committed victims waits tps
           (if i = List.length wl_rows - 1 then "" else ",")))
    wl_rows;
  Buffer.add_string buf "  ]\n}\n";
  (* Smoke runs get their own file so CI never clobbers the committed
     full-run numbers. *)
  let path = if !smoke then "BENCH_lockpath_smoke.json" else "BENCH_lockpath.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E19: fault injection and recovery (ISSUE 3) — crash-recovery torture
   throughput, recovery latency, bounded retry under transient fault
   rates, and the lock-wait timeout backstop.  Emits BENCH_faults.json. *)

module Torture = Asset_workload.Torture

(* Crossed lock-order pairs with deadlock detection off: only the
   lock-wait timeout keeps the batch live.  Victims are retried by the
   bounded-retry combinator, so every transfer eventually commits. *)
let faults_timeout_case ~pairs ~timeout_steps ~max_retries =
  let config =
    { E.default_config with deadlock_detection = false; lock_wait_timeout_steps = timeout_steps }
  in
  let db = fresh_db ~config ~objects:(2 * pairs) () in
  let body a b () =
    E.modify db (oid a) (fun _ -> vi a);
    Sched.yield ();
    E.modify db (oid b) (fun _ -> vi b)
  in
  let bodies =
    List.concat_map
      (fun i -> [ body ((2 * i) + 1) ((2 * i) + 2); body ((2 * i) + 2) ((2 * i) + 1) ])
      (List.init pairs (fun i -> i))
  in
  let rng = Rng.create 0x19f in
  let metrics = ref { Workload.r_committed = 0; r_retries = 0; r_gave_up = 0 } in
  let (), dt =
    time_of (fun () ->
        R.run_exn db (fun () -> metrics := Workload.run_bodies_with_retry ~max_retries ~rng db bodies))
  in
  (!metrics, stat db "lock_timeouts", dt)

let e19_faults () =
  (* E19a: the exhaustive WAL-boundary crash sweep, per commit-batch size. *)
  let spec = Torture.default_spec in
  let gcs_values = if !smoke then [ 1 ] else [ 1; 3; 8 ] in
  let sweeps =
    List.map
      (fun gcs ->
        let s = Torture.crash_at_every_boundary { spec with group_commit_size = gcs } in
        (gcs, s))
      gcs_values
  in
  let t =
    Table.create ~title:"E19a: crash at every WAL record boundary (bank workload)"
      ~header:[ "gc size"; "boundaries"; "crashes"; "violations"; "recover ms/run" ]
  in
  List.iter
    (fun (gcs, (s : Torture.sweep)) ->
      Table.add_row t
        [
          Table.fmt_i gcs;
          Table.fmt_i s.boundaries;
          Table.fmt_i s.crashes;
          Table.fmt_i (List.length s.sweep_failures);
          Table.fmt_f ~digits:3 (s.total_recovery_s /. float_of_int (max 1 s.runs) *. 1e3);
        ])
    sweeps;
  Table.print t;
  (* E19b: seeded random crash schedules across every failpoint site. *)
  let n_schedules = if !smoke then 50 else 500 in
  let random = Torture.random_crash_schedules ~n:n_schedules spec in
  let t =
    Table.create ~title:"E19b: seeded random crash schedules"
      ~header:[ "schedules"; "crashes"; "violations"; "recover ms/run" ]
  in
  Table.add_row t
    [
      Table.fmt_i random.runs;
      Table.fmt_i random.crashes;
      Table.fmt_i (List.length random.sweep_failures);
      Table.fmt_f ~digits:3 (random.total_recovery_s /. float_of_int (max 1 random.runs) *. 1e3);
    ];
  Table.print t;
  (* E19c: bounded retry under transient fault rates. *)
  let rates = if !smoke then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.2; 0.5 ] in
  let retry_spec = { spec with n_txns = (if !smoke then 12 else 48) } in
  let retry_rows =
    List.map
      (fun rate ->
        let r = Torture.run_retry_workload ~fault_rate:rate ~max_retries:6 retry_spec in
        (rate, r))
      rates
  in
  let t =
    Table.create ~title:"E19c: bounded retry vs transient fault rate"
      ~header:[ "fault rate"; "txns"; "committed"; "retries"; "gave up"; "conserved" ]
  in
  List.iter
    (fun (rate, (r : Torture.retry_outcome)) ->
      Table.add_row t
        [
          Table.fmt_f ~digits:2 rate;
          Table.fmt_i retry_spec.n_txns;
          Table.fmt_i r.committed;
          Table.fmt_i r.retries;
          Table.fmt_i r.gave_up;
          (if r.conserved then "yes" else "NO");
        ])
    retry_rows;
  Table.print t;
  (* E19d: the lock-wait timeout backstop (deadlock detection off). *)
  let pairs = if !smoke then 4 else 16 in
  let timeout_steps = 8 in
  let tm, timeouts, dt = faults_timeout_case ~pairs ~timeout_steps ~max_retries:8 in
  let t =
    Table.create ~title:"E19d: lock-wait timeout breaks stalls (detection off)"
      ~header:[ "txns"; "timeout steps"; "committed"; "lock timeouts"; "retries"; "gave up" ]
  in
  Table.add_row t
    [
      Table.fmt_i (2 * pairs);
      Table.fmt_i timeout_steps;
      Table.fmt_i tm.Workload.r_committed;
      Table.fmt_i timeouts;
      Table.fmt_i tm.Workload.r_retries;
      Table.fmt_i tm.Workload.r_gave_up;
    ];
  Table.print t;
  (* Machine-readable gate for the robustness trajectory. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E19-faults\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"boundary_sweep\": [\n";
  List.iteri
    (fun i (gcs, (s : Torture.sweep)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"group_commit_size\": %d, \"boundaries\": %d, \"crashes\": %d, \"violations\": \
            %d, \"recovery_total_s\": %.6f}%s\n"
           gcs s.boundaries s.crashes
           (List.length s.sweep_failures)
           s.total_recovery_s
           (if i = List.length sweeps - 1 then "" else ",")))
    sweeps;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"random_schedules\": {\"runs\": %d, \"crashes\": %d, \"violations\": %d, \
        \"recovery_total_s\": %.6f},\n"
       random.runs random.crashes
       (List.length random.sweep_failures)
       random.total_recovery_s);
  Buffer.add_string buf "  \"retry\": [\n";
  List.iteri
    (fun i (rate, (r : Torture.retry_outcome)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"fault_rate\": %.2f, \"txns\": %d, \"committed\": %d, \"retries\": %d, \
            \"gave_up\": %d, \"seconds\": %.6f, \"conserved\": %b}%s\n"
           rate retry_spec.n_txns r.committed r.retries r.gave_up r.duration_s r.conserved
           (if i = List.length retry_rows - 1 then "" else ",")))
    retry_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"lock_timeout\": {\"txns\": %d, \"timeout_steps\": %d, \"committed\": %d, \
        \"lock_timeouts\": %d, \"retries\": %d, \"gave_up\": %d, \"seconds\": %.6f}\n"
       (2 * pairs) timeout_steps tm.Workload.r_committed timeouts tm.Workload.r_retries
       tm.Workload.r_gave_up dt);
  Buffer.add_string buf "}\n";
  let path = if !smoke then "BENCH_faults_smoke.json" else "BENCH_faults.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E20: observability overhead (ISSUE 4) — the event recorder's cost on
   the engine hot path.  Off mode is the acceptance gate: every hot
   site guards its emit behind [Trace.on] (one load, one branch), so an
   uninstalled recorder must price at a handful of ns and leave E17/E18
   unmoved.  Ring-only and memory-sink modes price full tracing.
   Emits BENCH_obs.json. *)

module Trace = Asset_obs.Trace

(* The guard exactly as the hot sites spell it: event construction sits
   inside the branch, so Off mode allocates nothing. *)
let obs_guard_case () =
  if Trace.on () then Trace.emit (Trace.Op { tid = Tid.of_int 1; oid = oid 1; op = 'W' })

let obs_start = function
  | `Off -> ()
  | `Ring -> Trace.start ~capacity:4096 ()
  | `Memory ->
      let _store, sink = Trace.memory_sink () in
      Trace.start ~sinks:[ sink ] ()

let obs_mode_label = function `Off -> "off" | `Ring -> "ring" | `Memory -> "memory sink"

(* n sequential single-fiber transactions of k writes each: the densest
   stream of emit sites (initiate/begin/lock/op/wal/commit) per unit of
   real work the engine can produce. *)
let obs_workload_case ~recorder ~n_txns ~writes =
  let db = fresh_db ~objects:(writes + 1) () in
  obs_start recorder;
  let (), dt =
    time_of (fun () ->
        R.run_exn db (fun () ->
            for _ = 1 to n_txns do
              let t =
                E.initiate db (fun () ->
                    for i = 1 to writes do
                      E.write db (oid i) (vi i)
                    done)
              in
              ignore (E.begin_ db t);
              ignore (E.commit db t)
            done))
  in
  let events = Trace.seq () in
  Trace.stop ();
  (dt, events)

let e20_obs () =
  (* Guard cost per emit site, recorder uninstalled vs installed. *)
  let micro_rows =
    List.concat_map
      (fun recorder ->
        obs_start recorder;
        let r = bechamel_measure [ (obs_mode_label recorder, obs_guard_case) ] in
        Trace.stop ();
        List.map (fun (name, ns) -> (name, ns)) r)
      [ `Off; `Ring; `Memory ]
  in
  let t =
    Table.create ~title:"E20a: per-site emit cost (guard + record when installed)"
      ~header:[ "recorder"; "ns/site" ]
  in
  List.iter
    (fun (name, ns) -> Table.add_row t [ name; Table.fmt_f ~digits:2 ns ])
    micro_rows;
  Table.print t;
  (* End-to-end engine overhead. *)
  let n_txns = if !smoke then 200 else 2_000 in
  let writes = 8 in
  (* One discarded pass so allocator/caches are warm before the off
     baseline is taken. *)
  ignore (obs_workload_case ~recorder:`Off ~n_txns ~writes);
  let base, _ = obs_workload_case ~recorder:`Off ~n_txns ~writes in
  let wl_rows =
    List.map
      (fun recorder ->
        let dt, events = obs_workload_case ~recorder ~n_txns ~writes in
        let us_per_txn = dt /. float_of_int n_txns *. 1e6 in
        let overhead = (dt -. base) /. base *. 100. in
        (obs_mode_label recorder, us_per_txn, events, overhead))
      [ `Off; `Ring; `Memory ]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E20b: engine overhead, %d txns x %d writes (overhead vs off re-run)"
           n_txns writes)
      ~header:[ "recorder"; "us/txn"; "events"; "overhead %" ]
  in
  List.iter
    (fun (name, us, events, ov) ->
      Table.add_row t
        [ name; Table.fmt_f ~digits:2 us; Table.fmt_i events; Table.fmt_f ~digits:1 ov ])
    wl_rows;
  Table.print t;
  (* Machine-readable gate for the observability-overhead trajectory. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E20-obs\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"emit_site\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"recorder\": \"%s\", \"ns_per_site\": %.2f}%s\n" name ns
           (if i = List.length micro_rows - 1 then "" else ",")))
    micro_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"workload\": [\n";
  List.iteri
    (fun i (name, us, events, ov) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"recorder\": \"%s\", \"txns\": %d, \"writes_per_txn\": %d, \"us_per_txn\": \
            %.3f, \"events\": %d, \"overhead_pct\": %.2f}%s\n"
           name n_txns writes us events ov
           (if i = List.length wl_rows - 1 then "" else ",")))
    wl_rows;
  Buffer.add_string buf "  ]\n}\n";
  let path = if !smoke then "BENCH_obs_smoke.json" else "BENCH_obs.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E21: systematic schedule exploration (lib/check).  State-space size
   and sleep-set reduction per canned scenario, plus the mutation
   self-validation matrix.  Emits BENCH_check.json. *)

let e21_check () =
  let module C = Asset_check.Explore in
  let module Scen = Asset_check.Scenario in
  let scenarios =
    if !smoke then
      List.filter_map Scen.by_name [ "handoff"; "cross-locks"; "cd-chain" ]
    else Scen.all
  in
  (* Naive (no-POR) comparison only where the unreduced tree is small
     enough to finish; elsewhere report the POR-only numbers. *)
  let naive_set = [ "handoff"; "cross-locks"; "cd-chain" ] in
  let rows =
    List.map
      (fun (s : Scen.t) ->
        let (r : C.report), dt = time_of (fun () -> C.explore s) in
        let naive =
          if List.mem s.name naive_set then
            Some (C.explore ~options:{ C.default_options with por = false } s)
          else None
        in
        (s.name, r, dt, naive))
      scenarios
  in
  let t =
    Table.create ~title:"E21: systematic schedule exploration (sleep-set POR)"
      ~header:[ "scenario"; "schedules"; "pruned"; "choice pts"; "naive"; "ratio"; "s" ]
  in
  List.iter
    (fun (name, (r : C.report), dt, naive) ->
      Table.add_row t
        [
          name;
          Table.fmt_i r.schedules;
          Table.fmt_i r.pruned;
          Table.fmt_i r.choice_points;
          (match naive with Some (n : C.report) -> Table.fmt_i n.schedules | None -> "-");
          (match naive with
          | Some n ->
              Table.fmt_f ~digits:1
                (float_of_int n.schedules /. float_of_int (max 1 r.schedules))
          | None -> "-");
          Table.fmt_f ~digits:2 dt;
        ])
    rows;
  Table.print t;
  let kills =
    List.map
      (fun m ->
        let scen = C.mutate m (C.kill_scenario m) in
        let (r : C.report), dt = time_of (fun () -> C.explore scen) in
        (scen.name, r, dt))
      C.mutations
  in
  let mt =
    Table.create ~title:"E21b: mutation self-validation"
      ~header:[ "mutation"; "killed"; "schedules"; "counterexample"; "minimized"; "s" ]
  in
  List.iter
    (fun (name, (r : C.report), dt) ->
      let killed, sched, min_ =
        match r.failure with
        | Some f ->
            (true, C.choices_to_string f.schedule, C.choices_to_string f.minimized)
        | None -> (false, "-", "-")
      in
      Table.add_row mt
        [
          name;
          (if killed then "yes" else "NO");
          Table.fmt_i r.schedules;
          (if sched = "" then "(default)" else sched);
          (if killed && min_ = "" then "(default)" else min_);
          Table.fmt_f ~digits:2 dt;
        ])
    kills;
  Table.print mt;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E21-check\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"scenarios\": [\n";
  List.iteri
    (fun i (name, (r : C.report), dt, naive) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"scenario\": \"%s\", \"schedules\": %d, \"pruned\": %d, \
            \"choice_points\": %d, \"completed\": %b, \"naive_schedules\": %s, \
            \"seconds\": %.3f}%s\n"
           name r.schedules r.pruned r.choice_points r.completed
           (match naive with
           | Some (n : C.report) -> string_of_int n.schedules
           | None -> "null")
           dt
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"mutations\": [\n";
  List.iteri
    (fun i (name, (r : C.report), dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mutation\": \"%s\", \"killed\": %b, \"schedules\": %d, \
            \"minimized_len\": %s, \"seconds\": %.3f}%s\n"
           name
           (r.failure <> None)
           r.schedules
           (match r.failure with
           | Some f -> string_of_int (List.length f.minimized)
           | None -> "null")
           dt
           (if i = List.length kills - 1 then "" else ",")))
    kills;
  Buffer.add_string buf "  ]\n}\n";
  let path = if !smoke then "BENCH_check_smoke.json" else "BENCH_check.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E22: semantic concurrency — multi-version snapshot reads vs 2PL
   readers under write interference, escrow vs increment vs RMW on the
   hot counter, and version-chain GC.  Emits BENCH_mvcc.json. *)

let e22_mvcc () =
  let accounts = if !smoke then 8 else 16 in
  let n_readers = if !smoke then 16 else 64 in
  (* Readers scan every account; writers are a continuous background
     load of deadlock-prone RMW transfers that stops once the last
     reader finishes, so elapsed time measures reader progress under
     constant interference.  `2pl` runs the scans as ordinary
     transactions (read locks, upgrade deadlocks, retries); `snapshot`
     runs them read-only against begin-timestamp snapshots. *)
  let run_readers mode =
    let store = Heap.store () in
    Bank.setup store ~accounts ~balance:1_000;
    let db = E.create store in
    let reader_commits = ref 0 and reader_aborts = ref 0 in
    let writer_commits = ref 0 in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              let stop = ref false in
              let finished = ref 0 in
              let rng = Rng.create 4242 in
              for w = 1 to 4 do
                E.spawn db ~label:(Printf.sprintf "writer-%d" w) (fun () ->
                    while not !stop do
                      let t = E.initiate db (Bank.random_transfer db ~accounts ~rng) in
                      if (not (Tid.is_null t)) && E.begin_ db t && E.commit db t then
                        incr writer_commits;
                      Sched.yield ()
                    done)
              done;
              let scan () =
                for a = 1 to accounts do
                  ignore (E.read db (Bank.account a));
                  Sched.yield ()
                done
              in
              for r = 1 to n_readers do
                E.spawn db ~label:(Printf.sprintf "reader-%d" r) (fun () ->
                    let rec attempt () =
                      let t =
                        match mode with
                        | `Two_pl -> E.initiate db scan
                        | `Snapshot -> E.initiate ~read_only:true db scan
                      in
                      if (not (Tid.is_null t)) && E.begin_ db t && E.commit db t then
                        incr reader_commits
                      else begin
                        incr reader_aborts;
                        attempt ()
                      end
                    in
                    attempt ();
                    incr finished)
              done;
              Sched.wait_until ~reason:"await readers" (fun () -> !finished = n_readers);
              stop := true))
    in
    (db, !reader_commits, !reader_aborts, !writer_commits, dt)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E22a: %d read-only scans of %d accounts under continuous RMW transfers"
           n_readers accounts)
      ~header:
        [ "mode"; "readers"; "aborts"; "writer txns"; "lock waits"; "victims"; "snap reads"; "ms"; "readers/s" ]
  in
  let readonly_rows =
    List.map
      (fun mode ->
        let db, commits, aborts, wcommits, dt = run_readers mode in
        let name = match mode with `Two_pl -> "2pl" | `Snapshot -> "snapshot" in
        let per_s = float_of_int commits /. dt in
        Table.add_row t
          [
            name;
            Table.fmt_i commits;
            Table.fmt_i aborts;
            Table.fmt_i wcommits;
            Table.fmt_i (stat db "lock_waits");
            Table.fmt_i (stat db "deadlock_victims");
            Table.fmt_i (stat db "snapshot_reads");
            Table.fmt_f ~digits:2 (dt *. 1000.);
            Table.fmt_f ~digits:0 per_s;
          ];
        (name, commits, aborts, wcommits, dt, per_s))
      [ `Two_pl; `Snapshot ]
  in
  Table.print t;
  let speedup =
    match readonly_rows with
    | [ (_, _, _, _, _, base); (_, _, _, _, _, snap) ] -> snap /. base
    | _ -> 0.
  in
  Format.printf "read-only speedup (snapshot vs 2pl): %.1fx@." speedup;
  (* E22b: the E13 hot counter with the escrow path alongside.  Escrow
     with a slack bound must match the increment row (same commuting
     lock mode, one extra admission test); the tight bound shows the
     admission test refusing exactly the overdraft. *)
  let et =
    Table.create
      ~title:"E22b: hot counter — escrow vs increment vs rmw (4 ops/txn)"
      ~header:[ "txns"; "mode"; "committed"; "victims"; "lock waits"; "violations"; "final ok"; "ms" ]
  in
  let escrow_rows = ref [] in
  let run_counter ~n_txns ~mode =
    let db = fresh_db ~objects:4 () in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              let body () =
                for _ = 1 to 4 do
                  (match mode with
                  | `Increment -> E.increment db (oid 1) 1
                  | `Escrow -> E.escrow db (oid 1) 1 ~lo:0 ~hi:max_int
                  | `Escrow_tight -> E.escrow db (oid 1) 1 ~lo:0 ~hi:8
                  | `Rmw -> E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 1));
                  Sched.yield ()
                done
              in
              let tids = List.init n_txns (fun _ -> E.initiate db body) in
              List.iter (fun x -> ignore (E.begin_ db x)) tids;
              List.iter (fun x -> E.spawn db ~label:"c" (fun () -> ignore (E.commit db x))) tids;
              E.await_terminated db tids))
    in
    let committed = stat db "commits" in
    let violations = stat db "escrow_violations" in
    let final = Value.to_int (Store.read_exn (E.store db) (oid 1)) in
    let final_ok =
      match mode with
      | `Escrow_tight -> final = committed * 4 && final <= 8
      | _ -> final = committed * 4
    in
    let name =
      match mode with
      | `Increment -> "increment"
      | `Escrow -> "escrow"
      | `Escrow_tight -> "escrow[0,8]"
      | `Rmw -> "rmw-2pl"
    in
    escrow_rows :=
      (name, n_txns, committed, violations, final_ok, dt) :: !escrow_rows;
    Table.add_row et
      [
        Table.fmt_i n_txns;
        name;
        Table.fmt_i committed;
        Table.fmt_i (stat db "deadlock_victims");
        Table.fmt_i (stat db "lock_waits");
        Table.fmt_i violations;
        string_of_bool final_ok;
        Table.fmt_f ~digits:2 (dt *. 1000.);
      ]
  in
  List.iter
    (fun n_txns ->
      List.iter (fun mode -> run_counter ~n_txns ~mode) [ `Rmw; `Increment; `Escrow; `Escrow_tight ])
    [ 4; 16 ];
  Table.print et;
  (* E22c: version-chain GC.  A pinned snapshot holds every version a
     writer burst creates; closing it collapses the chain back to the
     committed head. *)
  let writes = if !smoke then 50 else 200 in
  let store = Heap.store () in
  Heap.populate store ~n:1 ~value:(fun _ -> vi 0);
  let db = E.create store in
  let pinned_chain = ref 0 and pinned_versions = ref 0 in
  R.run_exn db (fun () ->
      let release = ref false in
      let reader =
        E.initiate ~read_only:true db (fun () ->
            ignore (E.read db (oid 1));
            Sched.wait_until ~reason:"pin snapshot" (fun () -> !release))
      in
      ignore (E.begin_ db reader);
      for i = 1 to writes do
        let w = E.initiate db (fun () -> E.write db (oid 1) (vi i)) in
        ignore (E.begin_ db w);
        ignore (E.commit db w)
      done;
      pinned_chain := E.mvcc_max_chain db;
      pinned_versions := E.mvcc_version_count db;
      release := true;
      ignore (E.commit db reader));
  let after_chain = E.mvcc_max_chain db and after_versions = E.mvcc_version_count db in
  Format.printf
    "E22c: %d committed writes — chain pinned by snapshot: %d (%d versions); after close: %d (%d versions)@."
    writes !pinned_chain !pinned_versions after_chain after_versions;
  (* E22d: escrow under delegation.  Workers reserve on the hot counter
     with escrow, then split-transaction style hand their reservation
     (lock, in-flight delta and all) to a collector that commits the
     batch — the paper's delegate composed with the escrow lock mode.
     Against the baseline where every worker commits individually, the
     delta must survive the handoff bit-for-bit: same final counter,
     zero in-flight reservations left behind. *)
  let dt_ =
    Table.create
      ~title:"E22d: escrow under delegation — batch handoff vs individual commits"
      ~header:[ "mode"; "workers"; "ops"; "commits"; "delegations"; "final"; "final ok"; "ms" ]
  in
  let delegation_rows = ref [] in
  let run_delegation ~mode ~batches ~workers ~ops =
    let db = fresh_db ~objects:4 () in
    let delegations = ref 0 in
    let _, dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              for _b = 1 to batches do
                let work () =
                  for _ = 1 to ops do
                    E.escrow db (oid 1) 1 ~lo:0 ~hi:max_int;
                    Sched.yield ()
                  done
                in
                match mode with
                | `Individual ->
                    let tids = List.init workers (fun _ -> E.initiate db work) in
                    List.iter (fun x -> ignore (E.begin_ db x : bool)) tids;
                    List.iter
                      (fun x -> E.spawn db ~label:"w" (fun () -> ignore (E.commit db x : bool)))
                      tids;
                    E.await_terminated db tids
                | `Delegated ->
                    let collector = E.initiate db (fun () -> ()) in
                    let tids = List.init workers (fun _ -> E.initiate db work) in
                    List.iter (fun x -> ignore (E.begin_ db x : bool)) tids;
                    List.iter
                      (fun x ->
                        ignore (E.wait db x : bool);
                        E.delegate db ~from_:x ~to_:collector;
                        incr delegations)
                      tids;
                    ignore (E.begin_ db collector : bool);
                    ignore (E.commit db collector : bool);
                    List.iter (fun x -> ignore (E.commit db x : bool)) tids;
                    E.await_terminated db (collector :: tids)
              done))
    in
    let final = Value.to_int (Store.read_exn (E.store db) (oid 1)) in
    let final_ok = final = batches * workers * ops && E.escrow_inflight_count db = 0 in
    let name = match mode with `Individual -> "individual" | `Delegated -> "delegated" in
    delegation_rows := (name, workers, ops, stat db "commits", !delegations, final, final_ok, dt) :: !delegation_rows;
    Table.add_row dt_
      [
        name;
        Table.fmt_i workers;
        Table.fmt_i ops;
        Table.fmt_i (stat db "commits");
        Table.fmt_i !delegations;
        Table.fmt_i final;
        string_of_bool final_ok;
        Table.fmt_f ~digits:2 (dt *. 1000.);
      ]
  in
  let batches = if !smoke then 2 else 8 in
  List.iter
    (fun (workers, ops) ->
      run_delegation ~mode:`Individual ~batches ~workers ~ops;
      run_delegation ~mode:`Delegated ~batches ~workers ~ops)
    (if !smoke then [ (4, 4) ] else [ (4, 4); (16, 4) ]);
  Table.print dt_;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E22-mvcc\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"readonly\": [\n";
  List.iteri
    (fun i (name, commits, aborts, wcommits, dt, per_s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"readers\": %d, \"reader_aborts\": %d, \
            \"writer_txns\": %d, \"seconds\": %.4f, \"readers_per_s\": %.0f}%s\n"
           name commits aborts wcommits dt per_s
           (if i = List.length readonly_rows - 1 then "" else ",")))
    readonly_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"readonly_speedup\": %.2f,\n" speedup);
  Buffer.add_string buf "  \"escrow\": [\n";
  let er = List.rev !escrow_rows in
  List.iteri
    (fun i (name, n_txns, committed, violations, final_ok, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"txns\": %d, \"committed\": %d, \
            \"violations\": %d, \"final_ok\": %b, \"seconds\": %.4f}%s\n"
           name n_txns committed violations final_ok dt
           (if i = List.length er - 1 then "" else ",")))
    er;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"delegation\": [\n";
  let dr = List.rev !delegation_rows in
  List.iteri
    (fun i (name, workers, ops, commits, delegations, final, final_ok, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"workers\": %d, \"ops\": %d, \"commits\": %d, \
            \"delegations\": %d, \"final\": %d, \"final_ok\": %b, \"seconds\": %.4f}%s\n"
           name workers ops commits delegations final final_ok dt
           (if i = List.length dr - 1 then "" else ",")))
    dr;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gc\": {\"writes\": %d, \"chain_pinned\": %d, \"versions_pinned\": %d, \
        \"chain_after_close\": %d, \"versions_after_close\": %d}\n"
       writes !pinned_chain !pinned_versions after_chain after_versions);
  Buffer.add_string buf "}\n";
  let path = if !smoke then "BENCH_mvcc_smoke.json" else "BENCH_mvcc.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E23: multicore sharded engine — aggregate throughput vs domain
   count under OID-hash partitioning, single-shard vs a 10%
   cross-shard 2PC mix, Zipf-skewed object choice; plus a conformance
   shard: the merged multi-domain history replayed through the oracle.
   Emits BENCH_shard.json.

   Scaling story on few-core hosts: the monolith's costs are
   superlinear in concurrent load — the scheduler's wake sweep visits
   every parked fiber per version bump and the hot locks build long
   queues — so partitioning S in-flight sessions into d independent
   engines (S/d parked fibers each, d-way-split lock queues) wins even
   before true parallelism is available, and the domains add real
   parallelism on multicore. *)

module Shard = Asset_shard.Shard
module Oracle = Asset_obs.Oracle

let domains_cap = ref 0 (* 0 = auto: min(available cores, 8) *)

(* Zipf(theta) over ranks 0..n-1 via the cumulative weight table; rank
   r maps to oid r+1, which [shard_of] then spreads round-robin, so
   consecutive hot ranks land on different shards. *)
let zipf_cdf ~n ~theta =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_pick rng cdf =
  let u = Rng.float rng in
  let n = Array.length cdf in
  let rec go i = if i >= n - 1 || cdf.(i) >= u then i else go (i + 1) in
  go 0

let e23_shard () =
  let cap =
    if !domains_cap > 0 then !domains_cap else min 8 (Domain.recommended_domain_count ())
  in
  (* One curve point: [waves] waves of [wave] transactions each; the
     wave boundary bounds in-flight sessions identically at every
     domain count, so the monolith and the sharded runs face the same
     offered load.  [mix_pct] percent of submissions are cross-shard
     transfers through the 2PC coordinator (on one domain they
     degenerate to single-participant groups — same protocol, no
     second shard).  While a wave drains, the driver keeps stepping
     the coordinator so verdicts flow and prepared participants
     release their locks promptly. *)
  (* [io_us]: each single-shard session performs one synchronous
     device access of that many microseconds inside the transaction —
     the paper's disk-resident objects (any blocking syscall behaves
     the same).  This is the decisive single-core effect: a
     one-domain cooperative engine blocks EVERY session behind each
     synchronous access, while sharded domains overlap them — the OS
     runs another shard whenever one is down a syscall — so aggregate
     throughput scales with domains even before extra cores are
     available, and multiplies with them. *)
  let run ~domains:d ~mix_pct ~wave ~waves ~objects ~theta ~io_us ~engine_config =
    let sys = Shard.create ~engine_config ~objects ~init:(fun _ -> vi 1_000) ~domains:d () in
    (* Two cross-shard contention controls, both load-bearing under
       Zipf skew: a small in-flight cap (a prepared participant holds
       its hot locks for the whole verdict round-trip, so many
       concurrent groups chain through every shard's hot queue — a
       distributed lock convoy), and ordered dispatch with
       participants listed lowest-object-first (total-order lock
       acquisition: opposite-direction transfers over the same hot
       pair would otherwise deadlock through their prepared
       participants, invisible to any one shard's detector, leaving
       the lock-wait backstop to break them at ~100ms a cycle). *)
    let coord = Shard.Coord.create ~max_inflight:4 ~ordered:true sys in
    let rng = Rng.create (0xE23 + d + (mix_pct * 131)) in
    let cdf = zipf_cdf ~n:objects ~theta in
    let n_singles = ref 0 and n_cross = ref 0 in
    let (), dt =
      time_of (fun () ->
          for _w = 1 to waves do
            for k = 1 to wave do
              let o1 = 1 + zipf_pick rng cdf in
              if mix_pct > 0 && k mod (100 / mix_pct) = 0 then begin
                incr n_cross;
                (* transfer o1 -> o2; force distinct home shards when
                   there is more than one *)
                let o2 =
                  let c = 1 + zipf_pick rng cdf in
                  if d = 1 || Shard.shard_of sys (oid c) <> Shard.shard_of sys (oid o1) then c
                  else 1 + (o1 mod objects)
                in
                let dec eng = E.modify eng (oid o1) (fun v -> Value.incr_int (Option.get v) (-1)) in
                let inc eng = E.modify eng (oid o2) (fun v -> Value.incr_int (Option.get v) 1) in
                if Shard.shard_of sys (oid o1) = Shard.shard_of sys (oid o2) then
                  Shard.Coord.submit coord
                    [ (Shard.shard_of sys (oid o1), fun eng -> dec eng; inc eng) ]
                else
                  let parts =
                    [ (Shard.shard_of sys (oid o1), dec); (Shard.shard_of sys (oid o2), inc) ]
                  in
                  Shard.Coord.submit coord (if o1 <= o2 then parts else List.rev parts)
              end
              else begin
                incr n_singles;
                Shard.submit sys ~max_retries:100 ~shard:(Shard.shard_of sys (oid o1))
                  (fun eng ->
                    E.modify eng (oid o1) (fun v -> Value.incr_int (Option.get v) 1);
                    if io_us > 0 then Unix.sleepf (float_of_int io_us *. 1e-6))
              end
            done;
            while Shard.pending sys > 0 do
              if not (Shard.Coord.try_step coord) then Unix.sleepf 1e-4
            done
          done;
          Shard.Coord.drain coord;
          Shard.drain sys)
    in
    let stats = Shard.stats sys in
    Shard.shutdown sys;
    let gave_up = List.assoc "gave_up" stats in
    let singles_done = !n_singles - gave_up in
    let logical = singles_done + Shard.Coord.committed coord in
    (* conservation: every committed single adds 1, transfers are net
       zero, and an aborted group must leave no partial effect *)
    let total_value = ref 0 in
    for i = 0 to d - 1 do
      Store.iter (E.store (Shard.engine sys i)) (fun _ v -> total_value := !total_value + Value.to_int v)
    done;
    let conserved = !total_value = (objects * 1_000) + singles_done in
    ( logical,
      !n_cross,
      Shard.Coord.committed coord,
      Shard.Coord.aborted coord,
      Shard.Coord.mixed coord,
      gave_up,
      List.assoc "retries" stats,
      conserved,
      dt )
  in
  let points = List.filter (fun d -> d <= cap) [ 1; 2; 4; 8 ] in
  let curve ~tag ~mix_pct ~wave ~waves ~objects ~theta ~io_us ~engine_config =
    let tbl =
      Table.create
        ~title:
          (Printf.sprintf "E23%s: %d txns/wave x %d waves, %d objects, %s, %dus sync IO — %s" tag
             wave waves objects
             (if theta = 0.0 then "uniform" else Printf.sprintf "zipf %.2f" theta)
             io_us
             (if mix_pct = 0 then "single-shard only" else Printf.sprintf "%d%% cross-shard 2PC" mix_pct))
        ~header:
          [ "domains"; "committed"; "x-committed"; "x-aborted"; "mixed"; "gave up"; "conserved"; "ms"; "txns/s"; "vs 1" ]
    in
    let base = ref 0.0 in
    let rows =
      List.map
        (fun d ->
          let logical, _n_cross, xc, xa, xm, gave_up, retries, conserved, dt =
            run ~domains:d ~mix_pct ~wave ~waves ~objects ~theta ~io_us ~engine_config
          in
          let tps = float_of_int logical /. dt in
          if d = 1 then base := tps;
          let speedup = if !base > 0.0 then tps /. !base else 0.0 in
          Table.add_row tbl
            [
              Table.fmt_i d;
              Table.fmt_i logical;
              Table.fmt_i xc;
              Table.fmt_i xa;
              Table.fmt_i xm;
              Table.fmt_i gave_up;
              string_of_bool conserved;
              Table.fmt_f ~digits:1 (dt *. 1000.);
              Table.fmt_f ~digits:0 tps;
              Table.fmt_f ~digits:2 speedup;
            ];
          (d, logical, xc, xa, xm, gave_up, retries, conserved, dt, tps, speedup))
        points
    in
    Table.print tbl;
    (wave, waves, objects, theta, io_us, rows)
  in
  (* E23a: pure single-shard load, uniform over enough objects that
     per-object queues stay shallow (a queue on one object has the
     same depth at every domain count — a single object cannot be
     split — so skew would only mask the scaling; E23b carries the
     skew dimension).  Single-object transactions cannot deadlock, so
     the distributed lock-wait backstop is off for this curve. *)
  let a_cfg = { Shard.default_engine_config with E.lock_wait_timeout_steps = 0 } in
  let single_rows =
    curve ~tag:"a" ~mix_pct:0
      ~wave:(if !smoke then 128 else 512)
      ~waves:(if !smoke then 2 else 8)
      ~objects:(if !smoke then 64 else 512)
      ~theta:0.0
      ~io_us:(if !smoke then 20 else 100)
      ~engine_config:a_cfg
  in
  (* E23b: 10% of submissions are cross-shard 2PC transfers under
     Zipf-skewed object choice; moderate session counts (every verdict
     is a cross-domain round-trip), with the lock-wait backstop armed
     as the distributed-deadlock net — but sized for the verdict
     latency: a prepared participant legitimately holds its (hot)
     locks for a full coordinator round-trip, and a backstop tuned
     for local stalls would time out every session queued behind it
     into fruitless retry storms. *)
  let b_cfg = { Shard.default_engine_config with E.lock_wait_timeout_steps = 5_000 } in
  let mix_rows =
    curve ~tag:"b" ~mix_pct:10
      ~wave:(if !smoke then 64 else 256)
      ~waves:(if !smoke then 2 else 4)
      ~objects:(if !smoke then 32 else 64)
      ~theta:0.99
      ~io_us:(if !smoke then 20 else 100)
      ~engine_config:b_cfg
  in
  (* Conformance shard: a small traced 2-domain mixed run whose merged
     multi-domain history must satisfy the oracle's strict axioms, with
     the coordinator's XGC edges carrying the cross-shard obligation. *)
  let conf_events, conf_xgc, conf_violations =
    let d = 2 in
    let conf_objects = 16 in
    let sys = Shard.create ~trace:true ~objects:conf_objects ~init:(fun _ -> vi 100) ~domains:d () in
    let coord = Shard.Coord.create sys in
    let rng = Rng.create 232323 in
    for k = 1 to 150 do
      if k mod 10 = 0 then begin
        let a = 1 + Rng.int rng conf_objects in
        let b =
          let c = 1 + Rng.int rng conf_objects in
          if Shard.shard_of sys (oid c) <> Shard.shard_of sys (oid a) then c else 1 + (a mod conf_objects)
        in
        Shard.Coord.submit coord
          [
            (Shard.shard_of sys (oid a), fun eng -> E.modify eng (oid a) (fun v -> Value.incr_int (Option.get v) (-1)));
            (Shard.shard_of sys (oid b), fun eng -> E.modify eng (oid b) (fun v -> Value.incr_int (Option.get v) 1));
          ]
      end
      else
        let o = 1 + Rng.int rng conf_objects in
        Shard.submit sys ~shard:(Shard.shard_of sys (oid o))
          (fun eng -> E.modify eng (oid o) (fun v -> Value.incr_int (Option.get v) 1))
    done;
    Shard.Coord.drain coord;
    Shard.drain sys;
    Shard.shutdown sys;
    let merged = Shard.merged_trace sys in
    let xgc =
      List.length
        (List.filter
           (fun (e : Trace.entry) -> match e.ev with Trace.Dep { dtype = "XGC"; _ } -> true | _ -> false)
           merged)
    in
    let violations = Oracle.check_strict_history merged in
    List.iter (fun v -> Format.printf "  %a@." Oracle.pp_violation v) violations;
    (List.length merged, xgc, List.length violations)
  in
  Format.printf "E23 conformance: 2-domain merged history — %d events, %d xgc edges, %d violations%s@."
    conf_events conf_xgc conf_violations
    (if conf_violations = 0 then " [OK]" else " [FAIL]");
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E23-shard\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf (Printf.sprintf "  \"domains_cap\": %d,\n" cap);
  let emit_rows name (wave, waves, objects, theta, io_us, rows) =
    Buffer.add_string buf
      (Printf.sprintf
         "  \"%s\": {\"wave\": %d, \"waves\": %d, \"objects\": %d, \"zipf_theta\": %.2f, \
          \"io_us\": %d, \"points\": [\n"
         name wave waves objects theta io_us);
    List.iteri
      (fun i (d, logical, xc, xa, xm, gave_up, retries, conserved, dt, tps, speedup) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"domains\": %d, \"committed\": %d, \"cross_committed\": %d, \
              \"cross_aborted\": %d, \"mixed\": %d, \"gave_up\": %d, \"retries\": %d, \
              \"conserved\": %b, \"seconds\": %.4f, \"txns_per_s\": %.0f, \"speedup_vs_1\": %.2f}%s\n"
             d logical xc xa xm gave_up retries conserved dt tps speedup
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]},\n"
  in
  emit_rows "single_shard" single_rows;
  emit_rows "cross_mix" mix_rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"conformance\": {\"domains\": 2, \"events\": %d, \"xgc_edges\": %d, \"violations\": %d}\n"
       conf_events conf_xgc conf_violations);
  Buffer.add_string buf "}\n";
  let path = if !smoke then "BENCH_shard_smoke.json" else "BENCH_shard.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* E24: durability at sustained scale — recovery time vs log volume    *)
(* (serial vs N-domain replay, fuzzy vs quiescent anchors) and the     *)
(* segmented WAL's bounded-log behaviour under checkpoint-driven       *)
(* retirement.  Emits BENCH_recovery.json.                             *)

let e24_recovery () =
  let n_objects = 256 in
  (* A synthetic history in the e9 style: [n_updates] updates across
     [n_txns] transactions, ~30% losers, an optional checkpoint at the
     midpoint.  The fuzzy variant holds one transaction open across
     the checkpoint so the ATT capture has real content; the quiescent
     variant checkpoints at a genuinely quiescent midpoint (its
     contract).  Returns the log and the disk image at crash time: the
     checkpoint's flushed store for anchored logs, zeros otherwise. *)
  let build ~n_updates ~ckpt =
    let log = Log.in_memory () in
    let disk = Heap.store () in
    for o = 1 to n_objects do
      Store.write disk (oid o) (vi 0)
    done;
    let rng = Rng.create 29 in
    let per_txn = 10 in
    let n_txns = n_updates / per_txn in
    let mid = max 1 (n_txns / 2) in
    let open_tid = Tid.of_int (n_txns + 1) in
    let base = ref [] in
    for txn = 1 to n_txns do
      let tid = Tid.of_int txn in
      for u = 1 to per_txn do
        let o = 1 + Rng.int rng n_objects in
        let before = Store.read disk (oid o) in
        let after = vi ((txn * 100) + u) in
        ignore (Log.append log (Record.Update { tid; oid = oid o; before; after }));
        Store.write disk (oid o) after
      done;
      if Rng.float rng >= 0.3 then
        ignore (Log.append ~force_commit:false log (Record.Commit [ tid ]));
      if txn = mid then begin
        (match ckpt with
        | `None -> ()
        | `Quiescent -> ignore (Recovery.checkpoint log disk)
        | `Fuzzy ->
            (* Updates by a transaction that stays in flight across the
               checkpoint — captured in the ATT, never committed. *)
            let open_updates = ref [] in
            for u = 1 to 3 do
              let o = 1 + Rng.int rng n_objects in
              let before = Store.read disk (oid o) in
              let after = vi (1_000_000 + u) in
              let lsn =
                Log.append log (Record.Update { tid = open_tid; oid = oid o; before; after })
              in
              Store.write disk (oid o) after;
              open_updates :=
                {
                  Record.cu_lsn = lsn;
                  cu_oid = oid o;
                  cu_undo = Record.Ckpt_physical before;
                  cu_after = after;
                }
                :: !open_updates
            done;
            let att_updates = List.rev !open_updates in
            let active = [ { Record.att_tid = open_tid; att_updates } ] in
            let dirty = List.map (fun u -> u.Record.cu_oid) att_updates in
            ignore (Recovery.fuzzy_checkpoint log disk ~active ~dirty));
        base := Store.dump disk
      end
    done;
    let base =
      match ckpt with `None -> List.init n_objects (fun i -> (oid (i + 1), vi 0)) | _ -> !base
    in
    (log, base)
  in
  let store_from base =
    let s = Heap.store () in
    List.iter (fun (o, v) -> Store.write s o v) base;
    s
  in
  let sizes = if !smoke then [ 2_000; 5_000 ] else [ 10_000; 50_000; 200_000 ] in
  let domain_counts = [ 1; 2; 4 ] in
  let t =
    Table.create ~title:"E24: recovery time vs log volume, anchor kind, replay domains"
      ~header:[ "updates"; "ckpt"; "domains"; "redone"; "ms"; "speedup"; "diverged" ]
  in
  let rows = ref [] in
  let total_divergence = ref 0 in
  List.iter
    (fun n_updates ->
      List.iter
        (fun (ckpt, ckpt_name) ->
          let log, base = build ~n_updates ~ckpt in
          (* Serial reference: the oracle every parallel run must match. *)
          let ref_store = store_from base in
          let _, ref_s = time_of (fun () -> Recovery.recover ~domains:1 log ref_store) in
          let ref_dump = List.sort compare (Store.dump ref_store) in
          List.iter
            (fun domains ->
              let s = store_from base in
              let report, dt = time_of (fun () -> Recovery.recover ~domains log s) in
              let dump = List.sort compare (Store.dump s) in
              let diverged =
                List.length (List.filter (fun kv -> not (List.mem kv ref_dump)) dump)
              in
              total_divergence := !total_divergence + diverged;
              Table.add_row t
                [
                  Table.fmt_i n_updates;
                  ckpt_name;
                  Table.fmt_i domains;
                  Table.fmt_i report.Recovery.updates_redone;
                  Table.fmt_f ~digits:2 (dt *. 1000.);
                  Table.fmt_f ~digits:2 (ref_s /. dt);
                  Table.fmt_i diverged;
                ];
              rows :=
                (n_updates, ckpt_name, domains, report.Recovery.updates_redone, dt, diverged)
                :: !rows)
            domain_counts)
        [ (`None, "none"); (`Quiescent, "quiescent"); (`Fuzzy, "fuzzy") ])
    sizes;
  Table.print t;
  Format.printf "E24 parallel replay: %d runs, serial/parallel divergence %d%s@."
    (List.length !rows) !total_divergence
    (if !total_divergence = 0 then " [OK]" else " [FAIL]");
  (* Bounded-log behaviour: sustained transfer rounds over one
     segmented WAL with the commit-path checkpoint trigger on. *)
  let round_counts = if !smoke then [ 4 ] else [ 8; 16 ] in
  let t2 =
    Table.create ~title:"E24: segment retirement under sustained writes"
      ~header:[ "rounds"; "txns"; "ckpts"; "segs created"; "retired"; "live"; "bounded" ]
  in
  let retirement =
    List.map
      (fun rounds ->
        let s = Torture.sustained_run ~rounds Torture.default_spec in
        Table.add_row t2
          [
            Table.fmt_i s.Torture.s_rounds;
            Table.fmt_i s.Torture.s_txns;
            Table.fmt_i s.Torture.s_checkpoints;
            Table.fmt_i s.Torture.s_segments_created;
            Table.fmt_i s.Torture.s_segments_retired;
            Table.fmt_i s.Torture.s_segments_live;
            (if s.Torture.s_failures = [] then "yes" else "NO");
          ];
        s)
      round_counts
  in
  Table.print t2;
  let bounded_ok = List.for_all (fun s -> s.Torture.s_failures = []) retirement in
  Format.printf "E24 retirement: log stays bounded %s@." (if bounded_ok then "[OK]" else "[FAIL]");
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E24-recovery\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"recovery_time\": [\n";
  let rows = List.rev !rows in
  List.iteri
    (fun i (n, ckpt, domains, redone, dt, diverged) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"log_updates\": %d, \"ckpt\": \"%s\", \"domains\": %d, \"updates_redone\": \
            %d, \"seconds\": %.6f, \"divergence\": %d}%s\n"
           n ckpt domains redone dt diverged
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"retirement\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"rounds\": %d, \"txns\": %d, \"checkpoints\": %d, \"segments_created\": %d, \
            \"segments_retired\": %d, \"segments_live\": %d, \"bounded\": %b}%s\n"
           s.Torture.s_rounds s.Torture.s_txns s.Torture.s_checkpoints s.Torture.s_segments_created
           s.Torture.s_segments_retired s.Torture.s_segments_live (s.Torture.s_failures = [])
           (if i = List.length retirement - 1 then "" else ",")))
    retirement;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  let path = if !smoke then "BENCH_recovery_smoke.json" else "BENCH_recovery.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E25: the workload families (PR 9) — the TPC-C-flavoured multi-class
   mix across engine configurations (plain-2PL RMW baseline, semantic
   escrow/queue ops, semantic + MVCC stock-checks, 2-domain sharded
   2PC) with per-class latency percentiles and abort/retry rates, plus
   the agentic tool-call saga's compensation economics.  Emits
   BENCH_oltp.json.  Correctness — conservation, oracle conformance —
   is pinned by test/test_workloads.ml; this reports the cost. *)

module Oltp = Asset_workload.Oltp
module Agentic = Asset_workload.Agentic

let e25_oltp () =
  let txns = if !smoke then 60 else 600 in
  let cfg = { Oltp.default_config with Oltp.accounts = 16; items = 32 } in
  let balance0 = 1_000 and stock0 = 1_000 in
  let seed = 7 in
  let percentile p lats =
    match lats with
    | [] -> None
    | l ->
        let a = Array.of_list l in
        Array.sort compare a;
        let idx = min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a - 1))) in
        Some (a.(idx) *. 1e6)
  in
  (* One single-engine configuration: run the mix, return per-class
     rows and the config summary. *)
  let run_single ~label ~snapshot_readers ~rmw =
    let db = fresh_db ~objects:0 () in
    Oltp.setup (E.store db) cfg ~balance0 ~stock0;
    let stats = ref [] in
    let (), dt =
      time_of (fun () ->
          R.run_exn db (fun () ->
              stats := Oltp.run_mix ~snapshot_readers ~rmw db ~seed ~txns cfg))
    in
    let conserved =
      List.for_all snd (Oltp.check_conservation (E.store db) cfg ~balance0 ~stock0)
    in
    let rows =
      List.map
        (fun (k, (s : Oltp.class_stats)) ->
          ( label,
            Oltp.klass_name k,
            s.Oltp.s_committed,
            s.Oltp.s_aborted,
            s.Oltp.s_retries,
            s.Oltp.s_gave_up,
            percentile 0.50 s.Oltp.s_lat,
            percentile 0.99 s.Oltp.s_lat ))
        !stats
    in
    (rows, (label, dt, conserved))
  in
  (* The sharded configuration: each generated transaction becomes a
     cross-shard 2PC group, submitted and drained one at a time so the
     measured latency is the full coordinator round-trip. *)
  let run_sharded ~label ~domains =
    let init o =
      if o = 3 || o = 4 then Value.of_queue []
      else if o >= 1000 && o < 1000 + cfg.Oltp.accounts then vi balance0
      else if o >= 2000 && o < 2000 + cfg.Oltp.items then vi stock0
      else vi 0
    in
    let sys = Shard.create ~domains ~objects:(2000 + cfg.Oltp.items) ~init () in
    let coord = Shard.Coord.create sys in
    let acc = List.map (fun k -> (k, (ref 0, ref 0, ref []))) Oltp.all_klasses in
    let (), dt =
      time_of (fun () ->
          for j = 0 to txns - 1 do
            let rng = Rng.create (seed + (j * 104729)) in
            let txn = Oltp.gen_txn ~rng cfg in
            let by_shard = Hashtbl.create 4 in
            List.iter
              (fun (o, op) ->
                let s = Shard.shard_of sys o in
                let prev = try Hashtbl.find by_shard s with Not_found -> [] in
                Hashtbl.replace by_shard s ((o, op) :: prev))
              (Oltp.ops_of txn);
            let parts =
              Hashtbl.fold
                (fun s ops l -> (s, fun eng -> List.iter (Oltp.apply eng) (List.rev ops)) :: l)
                by_shard []
            in
            let committed, aborted, lats = List.assoc txn.Oltp.t_klass acc in
            let before = Shard.Coord.committed coord in
            let (), lat =
              time_of (fun () ->
                  Shard.Coord.submit coord parts;
                  Shard.Coord.drain coord)
            in
            if Shard.Coord.committed coord > before then begin
              incr committed;
              lats := lat :: !lats
            end
            else incr aborted
          done)
    in
    Shard.shutdown sys;
    let mixed = Shard.Coord.mixed coord in
    let read_across f =
      let t = ref 0 in
      for s = 0 to domains - 1 do
        t := !t + f (E.store (Shard.engine sys s))
      done;
      !t
    in
    let cell st o = match Store.read st o with Some v -> Value.to_int v | None -> 0 in
    let sum_cells n mk st =
      let t = ref 0 in
      for i = 0 to n - 1 do
        t := !t + cell st (mk i)
      done;
      !t
    in
    let money =
      read_across (sum_cells cfg.Oltp.accounts Oltp.account)
      + read_across (fun st -> cell st Oltp.ledger)
    in
    let goods =
      read_across (sum_cells cfg.Oltp.items Oltp.stock)
      + read_across (fun st -> cell st Oltp.reserved)
      + read_across (fun st -> cell st Oltp.delivered)
    in
    let conserved =
      mixed = 0
      && money = cfg.Oltp.accounts * balance0
      && goods = cfg.Oltp.items * stock0
    in
    let rows =
      List.map
        (fun (k, (committed, aborted, lats)) ->
          ( label,
            Oltp.klass_name k,
            !committed,
            !aborted,
            0,
            0,
            percentile 0.50 !lats,
            percentile 0.99 !lats ))
        acc
    in
    (rows, (label, dt, conserved))
  in
  let singles =
    [
      run_single ~label:"plain-rmw" ~snapshot_readers:false ~rmw:true;
      run_single ~label:"semantic" ~snapshot_readers:false ~rmw:false;
      run_single ~label:"semantic+mvcc" ~snapshot_readers:true ~rmw:false;
    ]
  in
  let sharded = run_sharded ~label:"sharded-2pc-2dom" ~domains:2 in
  let all = singles @ [ sharded ] in
  let rows = List.concat_map fst all in
  let configs = List.map snd all in
  (* The agentic saga economics on the default engine. *)
  let agents = if !smoke then 8 else 48 in
  let a_docs = 8 and a_budget0 = 100_000 in
  let a_db = fresh_db ~objects:0 () in
  Agentic.setup (E.store a_db) ~docs:a_docs ~budget0:a_budget0;
  let outcomes = ref [] in
  let (), a_dt =
    time_of (fun () ->
        R.run_exn a_db (fun () ->
            outcomes := Agentic.run_agents a_db ~seed ~agents ~docs:a_docs))
  in
  let os = !outcomes in
  let a_conserved =
    (match Store.read (E.store a_db) Agentic.budget with
    | Some v -> Value.to_int v = a_budget0 - Agentic.total_spend os
    | None -> false)
    && match Store.read (E.store a_db) Agentic.audit with
       | Some v -> List.length (Value.to_queue v) = Agentic.total_audit os
       | None -> false
  in
  let sum f = List.fold_left (fun a o -> a + f o) 0 os in
  let t =
    Table.create ~title:"E25: OLTP mix across engine configurations"
      ~header:[ "config"; "class"; "committed"; "aborted"; "retries"; "gave up"; "p50 us"; "p99 us" ]
  in
  let fmt_opt = function None -> "-" | Some v -> Table.fmt_f ~digits:1 v in
  List.iter
    (fun (config, klass, committed, aborted, retries, gave_up, p50, p99) ->
      Table.add_row t
        [
          config;
          klass;
          string_of_int committed;
          string_of_int aborted;
          string_of_int retries;
          string_of_int gave_up;
          fmt_opt p50;
          fmt_opt p99;
        ])
    rows;
  Table.print t;
  let t2 =
    Table.create ~title:"E25: agentic saga economics"
      ~header:[ "agents"; "failed plans"; "steps"; "compensations"; "retries"; "gave up"; "conserved" ]
  in
  Table.add_row t2
    [
      string_of_int agents;
      string_of_int (sum (fun o -> if o.Agentic.o_failed then 1 else 0));
      string_of_int (sum (fun o -> o.Agentic.o_committed));
      string_of_int (sum (fun o -> o.Agentic.o_compensated));
      string_of_int (sum (fun o -> o.Agentic.o_retries));
      string_of_int (sum (fun o -> o.Agentic.o_gave_up));
      string_of_bool a_conserved;
    ];
  Table.print t2;
  let all_conserved = List.for_all (fun (_, _, c) -> c) configs && a_conserved in
  Format.printf "E25 conservation: %d engine configs + agentic saga %s@.@."
    (List.length configs)
    (if all_conserved then "[OK]" else "[FAIL]");
  let buf = Buffer.create 4_096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"experiment\": \"E25-oltp\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf "  \"mix\": [\n";
  let json_opt = function None -> "null" | Some v -> Printf.sprintf "%.1f" v in
  List.iteri
    (fun i (config, klass, committed, aborted, retries, gave_up, p50, p99) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"config\": \"%s\", \"class\": \"%s\", \"committed\": %d, \"aborted\": %d, \
            \"retries\": %d, \"gave_up\": %d, \"p50_us\": %s, \"p99_us\": %s}%s\n"
           config klass committed aborted retries gave_up (json_opt p50) (json_opt p99)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"configs\": [\n";
  List.iteri
    (fun i (label, dt, conserved) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"config\": \"%s\", \"txns\": %d, \"seconds\": %.6f, \"txn_per_s\": %.1f, \
            \"conserved\": %b}%s\n"
           label txns dt
           (float_of_int txns /. dt)
           conserved
           (if i = List.length configs - 1 then "" else ",")))
    configs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"agentic\": {\"agents\": %d, \"plans_failed\": %d, \"steps_committed\": %d, \
        \"compensations\": %d, \"retries\": %d, \"gave_up\": %d, \"conserved\": %b, \
        \"seconds\": %.6f}\n"
       agents
       (sum (fun o -> if o.Agentic.o_failed then 1 else 0))
       (sum (fun o -> o.Agentic.o_committed))
       (sum (fun o -> o.Agentic.o_compensated))
       (sum (fun o -> o.Agentic.o_retries))
       (sum (fun o -> o.Agentic.o_gave_up))
       a_conserved a_dt);
  Buffer.add_string buf "}\n";
  let path = if !smoke then "BENCH_oltp_smoke.json" else "BENCH_oltp.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

let experiments =
  [
    ("f1", fig1);
    ("e1", e1_primitives);
    ("e2", e2_lockmgr);
    ("e3", e3_permit);
    ("e4", e4_delegate);
    ("e5", e5_nested);
    ("e6", e6_saga);
    ("e7", e7_groupcommit);
    ("e8", e8_cursor);
    ("e9", e9_recovery);
    ("e10", e10_workflow);
    ("e11", e11_models);
    ("e12", e12_deps);
    ("e13", e13_increment);
    ("e14", e14_ablations);
    ("e15", e15_workspace);
    ("e16", e16_index);
    ("e17", e17_hotpath);
    ("hotpath", e17_hotpath);
    ("e18", e18_lockpath);
    ("lockpath", e18_lockpath);
    ("e19", e19_faults);
    ("faults", e19_faults);
    ("e20", e20_obs);
    ("obs", e20_obs);
    ("e21", e21_check);
    ("check", e21_check);
    ("e22", e22_mvcc);
    ("mvcc", e22_mvcc);
    ("e23", e23_shard);
    ("shard", e23_shard);
    ("e24", e24_recovery);
    ("recovery", e24_recovery);
    ("e25", e25_oltp);
    ("oltp", e25_oltp);
  ]

let () =
  let only = ref [] in
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s -> only := !only @ String.split_on_char ',' (String.lowercase_ascii s)),
        "KEYS  comma-separated experiment keys (f1, e1..e25, hotpath, lockpath, faults, obs, check, mvcc, shard, recovery, oltp); default: all" );
      ("--smoke", Arg.Set smoke, "  tiny quotas for CI smoke runs");
      ( "--domains",
        Arg.Set_int domains_cap,
        "N  cap the E23 domain-count curve at N (default: available cores, capped at 8)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "bench/main.exe [--only e1,hotpath,lockpath] [--smoke] [--domains N]";
  let selected =
    match !only with
    | [] ->
        (* the eNN keys cover the aliases *)
        List.filter
          (fun (k, _) ->
            k <> "hotpath" && k <> "lockpath" && k <> "faults" && k <> "obs" && k <> "check"
            && k <> "mvcc" && k <> "shard" && k <> "recovery" && k <> "oltp")
          experiments
    | keys ->
        List.map
          (fun k ->
            match List.assoc_opt k experiments with
            | Some f -> (k, f)
            | None -> failwith ("unknown experiment: " ^ k))
          keys
  in
  Format.printf "ASSET benchmark harness — experiments F1, E1-E23 (see DESIGN.md)%s@."
    (if !smoke then " [smoke]" else "");
  List.iter (fun (_, f) -> f ()) selected;
  Format.printf "@.done.@."
