(* asset_demo: a small CLI for poking at the ASSET engine.

   Subcommands:
     workload  — run a synthetic read/write workload and print metrics
     bank      — run the bank-transfer workload and check conservation
     saga      — run a saga chain with an optional injected failure
     trip      — run the appendix travel workflow with chosen availability
     trace     — run a tiny contended schedule and dump the fiber trace

   Examples:
     dune exec bin/asset_demo.exe -- workload --txns 64 --theta 0.9
     dune exec bin/asset_demo.exe -- bank --accounts 32 --txns 200
     dune exec bin/asset_demo.exe -- saga --steps 8 --fail-at 5
     dune exec bin/asset_demo.exe -- trip --unavailable Delta,Equator
     dune exec bin/asset_demo.exe -- trace --seed 3 *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module Sched = Asset_sched.Scheduler
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Heap = Asset_storage.Heap_store
module Workload = Asset_workload.Workload
module Bank = Asset_workload.Bank
open Asset_models
open Cmdliner

let oid = Oid.of_int
let vi = Value.of_int

let print_stats db =
  Format.printf "@.engine statistics:@.%a" E.pp_stats db

(* ------------------------------------------------------------------ *)
(* workload                                                            *)

let workload_cmd =
  let run txns objects ops write_pct theta seed rmw =
    let spec =
      {
        Workload.n_objects = objects;
        n_txns = txns;
        ops_per_txn = ops;
        write_ratio = float_of_int write_pct /. 100.;
        theta;
        seed;
        yield_between_ops = true;
        read_modify_write = rmw;
      }
    in
    let m = Workload.run spec in
    Format.printf "%a@." Workload.pp_metrics m
  in
  let txns = Arg.(value & opt int 64 & info [ "txns" ] ~doc:"Number of transactions.") in
  let objects = Arg.(value & opt int 256 & info [ "objects" ] ~doc:"Keyspace size.") in
  let ops = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Operations per transaction.") in
  let write_pct = Arg.(value & opt int 50 & info [ "write-pct" ] ~doc:"Write percentage.") in
  let theta = Arg.(value & opt float 0.0 & info [ "theta" ] ~doc:"Zipf skew.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let rmw =
    Arg.(value & flag & info [ "rmw" ] ~doc:"Read-modify-write updates (lock upgrades).")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a synthetic read/write workload")
    Term.(const run $ txns $ objects $ ops $ write_pct $ theta $ seed $ rmw)

(* ------------------------------------------------------------------ *)
(* bank                                                                *)

let bank_cmd =
  let run accounts txns =
    let store = Heap.store () in
    Bank.setup store ~accounts ~balance:1_000;
    let db = E.create store in
    R.run_exn db (fun () ->
        let committed, aborted = Bank.run_transfers db ~accounts ~n_txns:txns in
        Format.printf "committed=%d deadlock-victims=%d@." committed aborted);
    let total = Bank.total db ~accounts in
    Format.printf "total=%d expected=%d %s@." total (accounts * 1_000)
      (if total = accounts * 1_000 then "(conserved)" else "(VIOLATION!)");
    print_stats db
  in
  let accounts = Arg.(value & opt int 32 & info [ "accounts" ] ~doc:"Number of accounts.") in
  let txns = Arg.(value & opt int 200 & info [ "txns" ] ~doc:"Number of transfers.") in
  Cmd.v
    (Cmd.info "bank" ~doc:"Run contended bank transfers and verify conservation")
    Term.(const run $ accounts $ txns)

(* ------------------------------------------------------------------ *)
(* saga                                                                *)

let saga_cmd =
  let run steps fail_at =
    let store = Heap.store () in
    Heap.populate store ~n:(steps + 1) ~value:(fun _ -> vi 0);
    let db = E.create store in
    R.run_exn db (fun () ->
        let step i =
          if i = steps - 1 && fail_at < 0 then
            Saga.step ~label:(Printf.sprintf "t%d" (i + 1)) (fun () ->
                E.write db (oid (i + 1)) (vi 1))
          else
            Saga.step
              ~label:(Printf.sprintf "t%d" (i + 1))
              ~compensate:(fun () ->
                Format.printf "  compensating t%d@." (i + 1);
                E.write db (oid (i + 1)) (vi 0))
              (fun () ->
                if i = fail_at then failwith "injected failure";
                Format.printf "  committing t%d@." (i + 1);
                E.write db (oid (i + 1)) (vi 1))
        in
        match Saga.run db (List.init steps step) with
        | Saga.Committed -> Format.printf "saga committed@."
        | Saga.Rolled_back { failed_step; compensated } ->
            Format.printf "saga rolled back at step %d (%d compensations)@." failed_step
              compensated);
    print_stats db
  in
  let steps = Arg.(value & opt int 5 & info [ "steps" ] ~doc:"Chain length.") in
  let fail_at =
    Arg.(value & opt int (-1) & info [ "fail-at" ] ~doc:"0-based step to fail (-1 = none).")
  in
  Cmd.v (Cmd.info "saga" ~doc:"Run a saga chain") Term.(const run $ steps $ fail_at)

(* ------------------------------------------------------------------ *)
(* trip                                                                *)

let trip_cmd =
  let run unavailable =
    let unavailable = String.split_on_char ',' unavailable |> List.filter (fun s -> s <> "") in
    let vendors = [ "Delta"; "United"; "American"; "Equator"; "National"; "Avis" ] in
    let store = Heap.store () in
    Heap.populate store ~n:8 ~value:(fun _ -> vi 0);
    let db = E.create store in
    R.run_exn db (fun () ->
        let mk i v =
          Workflow.task v
            ~compensate:(fun () -> E.write db (oid (i + 1)) (vi 0))
            (fun () ->
              if List.mem v unavailable then failwith (v ^ " unavailable");
              E.write db (oid (i + 1)) (vi 1))
        in
        let wf =
          Workflow.(
            Seq
              [
                Alternatives [ Task (mk 0 "Delta"); Task (mk 1 "United"); Task (mk 2 "American") ];
                Task (mk 3 "Equator");
                Optional (Race [ mk 4 "National"; mk 5 "Avis" ]);
              ])
        in
        let o = Workflow.run db wf in
        Format.printf "activity %s@." (if o.Workflow.success then "SUCCEEDED" else "FAILED");
        List.iter (fun e -> Format.printf "  %a@." Workflow.pp_event e) o.Workflow.events;
        List.iteri
          (fun i v ->
            if Value.to_int (Option.value (Store.read (E.store db) (oid (i + 1))) ~default:(vi 0)) = 1
            then Format.printf "booked: %s@." v)
          vendors)
  in
  let unavailable =
    Arg.(
      value & opt string ""
      & info [ "unavailable" ] ~doc:"Comma-separated unavailable vendors (e.g. Delta,Equator).")
  in
  Cmd.v
    (Cmd.info "trip" ~doc:"Run the appendix travel workflow")
    Term.(const run $ unavailable)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let run seed =
    let store = Heap.store () in
    Heap.populate store ~n:4 ~value:(fun _ -> vi 0);
    let db = E.create store in
    let policy = if seed = 0 then Sched.Fifo else Sched.Random_seeded seed in
    let s = Sched.create ~policy ~record_trace:true () in
    E.attach_scheduler db s;
    ignore
      (Sched.spawn s ~label:"main" (fun () ->
           let t1 =
             E.initiate db (fun () ->
                 E.write db (oid 1) (vi 1);
                 Sched.yield ();
                 E.write db (oid 2) (vi 1))
           in
           let t2 =
             E.initiate db (fun () ->
                 E.write db (oid 2) (vi 2);
                 Sched.yield ();
                 E.write db (oid 3) (vi 2))
           in
           ignore (E.begin_ db t1);
           ignore (E.begin_ db t2);
           ignore (E.commit db t1);
           ignore (E.commit db t2)));
    (try Sched.run s with Sched.Deadlock _ -> Format.printf "(deadlocked)@.");
    Format.printf "fiber trace (policy=%s):@." (if seed = 0 then "fifo" else "random");
    List.iter (fun (fid, event) -> Format.printf "  [%d] %s@." fid event) (Sched.trace s);
    print_stats db
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Schedule seed (0 = FIFO policy).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the fiber trace of a small contended schedule")
    Term.(const run $ seed)

(* ------------------------------------------------------------------ *)
(* recover                                                             *)

let recover_cmd =
  let run dir txns =
    let pages = Filename.concat dir "asset_demo.pages" in
    let logf = Filename.concat dir "asset_demo.log" in
    let ps = Asset_storage.Persistent_store.create ~page_size:4096 pages in
    let store = Asset_storage.Persistent_store.to_store ps in
    for i = 1 to 8 do
      Store.write store (oid i) (vi 0)
    done;
    Store.flush store;
    let log = Asset_wal.Log.create_file logf in
    let db = E.create ~log store in
    (* Run a mix of committed, aborted and in-flight transactions, then
       "crash" before anything else reaches the data pages. *)
    R.run_exn db (fun () ->
        for i = 1 to txns do
          ignore
            (Atomic.run db (fun () ->
                 E.write db (oid ((i mod 8) + 1)) (vi i);
                 if i mod 5 = 0 then failwith "injected abort"))
        done;
        (* One in-flight transaction: completed, never committed. *)
        let t = E.initiate db (fun () -> E.write db (oid 1) (vi 999_999)) in
        ignore (E.begin_ db t);
        ignore (E.wait db t));
    Asset_wal.Log.force log;
    Asset_wal.Log.close log;
    Asset_storage.Persistent_store.crash_and_reopen ps;
    Format.printf "crashed: volatile cache dropped, reloading %s@." logf;
    let recovered = Asset_wal.Log.load logf in
    let report = Asset_wal.Recovery.recover recovered store in
    Format.printf "%a@." Asset_wal.Recovery.pp_report report;
    for i = 1 to 8 do
      Format.printf "  ob%d = %d@." i
        (Value.to_int (Option.value (Store.read store (oid i)) ~default:(vi 0)))
    done;
    Asset_storage.Persistent_store.close ps;
    Sys.remove pages;
    Sys.remove logf
  in
  let dir =
    Arg.(value & opt string (Filename.get_temp_dir_name ()) & info [ "dir" ] ~doc:"Scratch directory.")
  in
  let txns = Arg.(value & opt int 20 & info [ "txns" ] ~doc:"Transactions before the crash.") in
  Cmd.v
    (Cmd.info "recover" ~doc:"Run transactions, crash, and recover from the write-ahead log")
    Term.(const run $ dir $ txns)

let () =
  let info = Cmd.info "asset_demo" ~doc:"Drive the ASSET extended-transaction engine" in
  exit (Cmd.eval (Cmd.group info [ workload_cmd; bank_cmd; saga_cmd; trip_cmd; trace_cmd; recover_cmd ]))
