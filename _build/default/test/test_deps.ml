(* Tests for the transaction dependency graph: edge management, the
   cycle-prevention check of form_dependency, GC groups and marks, and
   the extension types (BD, EXC). *)

module Tid = Asset_util.Id.Tid
module Dt = Asset_deps.Dep_type
module Dg = Asset_deps.Dep_graph

let tid = Tid.of_int

let test_dep_type_classification () =
  Alcotest.(check bool) "CD blocks commit" true (Dt.blocks_commit Dt.CD);
  Alcotest.(check bool) "AD blocks commit" true (Dt.blocks_commit Dt.AD);
  Alcotest.(check bool) "GC does not" false (Dt.blocks_commit Dt.GC);
  Alcotest.(check bool) "CD is core" false (Dt.is_extension Dt.CD);
  Alcotest.(check bool) "BD is extension" true (Dt.is_extension Dt.BD);
  Alcotest.(check bool) "EXC is extension" true (Dt.is_extension Dt.EXC)

let test_add_and_query () =
  let g = Dg.create () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  Alcotest.(check int) "edge count" 1 (Dg.edge_count g);
  Alcotest.(check bool) "mem" true (Dg.mem g Dt.CD ~master:(tid 1) ~dependent:(tid 2));
  Alcotest.(check int) "outgoing of dependent" 1 (List.length (Dg.outgoing g (tid 2)));
  Alcotest.(check int) "incoming of master" 1 (List.length (Dg.incoming g (tid 1)));
  Alcotest.(check int) "nothing for strangers" 0 (List.length (Dg.outgoing g (tid 3)))

let test_duplicate_edges_collapse () =
  let g = Dg.create () in
  Dg.add g Dt.AD ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.AD ~master:(tid 1) ~dependent:(tid 2);
  Alcotest.(check int) "one edge" 1 (Dg.edge_count g);
  (* A different type between the same pair is a separate edge. *)
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  Alcotest.(check int) "two edges" 2 (Dg.edge_count g)

let test_self_dependency_rejected () =
  let g = Dg.create () in
  Alcotest.check_raises "self dep" (Invalid_argument "Dep_graph.add: self dependency") (fun () ->
      Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 1))

let test_cd_cycle_rejected () =
  let g = Dg.create () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  (* 2 waits for 1; adding 1 waits for 2 closes a commit-wait cycle. *)
  (match Dg.add g Dt.CD ~master:(tid 2) ~dependent:(tid 1) with
  | exception Dg.Cycle_rejected _ -> ()
  | () -> Alcotest.fail "expected cycle rejection");
  Alcotest.(check int) "edge not added" 1 (Dg.edge_count g)

let test_ad_cd_mixed_cycle_rejected () =
  let g = Dg.create () in
  Dg.add g Dt.AD ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.CD ~master:(tid 2) ~dependent:(tid 3);
  match Dg.add g Dt.AD ~master:(tid 3) ~dependent:(tid 1) with
  | exception Dg.Cycle_rejected _ -> ()
  | () -> Alcotest.fail "expected 3-cycle rejection"

let test_gc_cycle_allowed () =
  (* GC edges do not form commit-wait cycles: a GC "cycle" is just a
     commit group. *)
  let g = Dg.create () in
  Dg.add g Dt.GC ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.GC ~master:(tid 2) ~dependent:(tid 1);
  Alcotest.(check int) "both edges" 2 (Dg.edge_count g)

let test_cycle_check_can_be_disabled () =
  let g = Dg.create ~cycle_check:false () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.CD ~master:(tid 2) ~dependent:(tid 1);
  Alcotest.(check int) "cycle admitted" 2 (Dg.edge_count g)

let test_gc_group_closure () =
  let g = Dg.create () in
  Dg.add g Dt.GC ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.GC ~master:(tid 2) ~dependent:(tid 3);
  Dg.add g Dt.GC ~master:(tid 5) ~dependent:(tid 6);
  Alcotest.(check (list int)) "closure of 1" [ 1; 2; 3 ]
    (List.map Tid.to_int (Dg.gc_group g (tid 1)));
  Alcotest.(check (list int)) "closure of 3" [ 1; 2; 3 ]
    (List.map Tid.to_int (Dg.gc_group g (tid 3)));
  Alcotest.(check (list int)) "disjoint group" [ 5; 6 ]
    (List.map Tid.to_int (Dg.gc_group g (tid 5)));
  Alcotest.(check (list int)) "singleton" [ 9 ] (List.map Tid.to_int (Dg.gc_group g (tid 9)))

let test_gc_marks () =
  let g = Dg.create () in
  Dg.add g Dt.GC ~master:(tid 1) ~dependent:(tid 2);
  match Dg.gc_edges g (tid 1) with
  | [ e ] ->
      Alcotest.(check bool) "unmarked" false (Dg.gc_marked e (tid 1));
      Dg.mark_gc e (tid 1);
      Alcotest.(check bool) "t1 marked" true (Dg.gc_marked e (tid 1));
      Alcotest.(check bool) "t2 not yet" false (Dg.gc_marked e (tid 2));
      Alcotest.(check int) "other end" 2 (Tid.to_int (Dg.gc_other e (tid 1)));
      Dg.mark_gc e (tid 2);
      Alcotest.(check bool) "handshake complete" true
        (Dg.gc_marked e (tid 1) && Dg.gc_marked e (tid 2))
  | l -> Alcotest.failf "expected one GC edge, got %d" (List.length l)

let test_mark_gc_rejects_stranger () =
  let g = Dg.create () in
  Dg.add g Dt.GC ~master:(tid 1) ~dependent:(tid 2);
  match Dg.gc_edges g (tid 1) with
  | [ e ] ->
      Alcotest.check_raises "stranger" (Invalid_argument "Dep_graph.mark_gc: tid not on edge")
        (fun () -> Dg.mark_gc e (tid 7))
  | _ -> Alcotest.fail "expected one edge"

let test_remove_involving () =
  let g = Dg.create () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.AD ~master:(tid 2) ~dependent:(tid 3);
  Dg.add g Dt.GC ~master:(tid 3) ~dependent:(tid 4);
  Dg.remove_involving g (tid 2);
  Alcotest.(check int) "only 3-4 left" 1 (Dg.edge_count g);
  Alcotest.(check int) "t1 clean" 0 (List.length (Dg.incoming g (tid 1)));
  Alcotest.(check int) "t3 keeps the GC edge" 1 (List.length (Dg.incoming g (tid 3)))

let test_exc_partners () =
  let g = Dg.create () in
  Dg.add g Dt.EXC ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.EXC ~master:(tid 3) ~dependent:(tid 1);
  Alcotest.(check (list int)) "partners of 1 (both directions)" [ 2; 3 ]
    (List.map Tid.to_int (Dg.exc_partners g (tid 1)));
  Alcotest.(check (list int)) "partners of 2" [ 1 ]
    (List.map Tid.to_int (Dg.exc_partners g (tid 2)))

let test_bd_masters () =
  let g = Dg.create () in
  Dg.add g Dt.BD ~master:(tid 1) ~dependent:(tid 3);
  Dg.add g Dt.BD ~master:(tid 2) ~dependent:(tid 3);
  Dg.add g Dt.CD ~master:(tid 4) ~dependent:(tid 3);
  Alcotest.(check (list int)) "BD masters only" [ 1; 2 ]
    (List.sort Int.compare (List.map Tid.to_int (Dg.bd_masters g (tid 3))))

let test_commit_relevant () =
  let g = Dg.create () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  Dg.add g Dt.GC ~master:(tid 2) ~dependent:(tid 3);
  Dg.add g Dt.BD ~master:(tid 4) ~dependent:(tid 2);
  (* t2's commit must consider the CD (as dependent) and the GC (as
     master), but not the BD. *)
  let relevant = Dg.commit_relevant g (tid 2) in
  Alcotest.(check int) "two relevant edges" 2 (List.length relevant)

let test_stats_and_pp () =
  let g = Dg.create () in
  Dg.add g Dt.CD ~master:(tid 1) ~dependent:(tid 2);
  (try Dg.add g Dt.CD ~master:(tid 2) ~dependent:(tid 1) with Dg.Cycle_rejected _ -> ());
  let stats = Dg.stats g in
  Alcotest.(check int) "formed" 1 (List.assoc "formed" stats);
  Alcotest.(check int) "rejected" 1 (List.assoc "rejected" stats);
  Alcotest.(check int) "live" 1 (List.assoc "live_edges" stats);
  let s = Format.asprintf "%a" Dg.pp g in
  Alcotest.(check bool) "pp nonempty" true (String.length s > 6)

(* Property: the cycle checker is exactly "no commit-wait cycles": any
   sequence of CD/AD adds that all succeed leaves an acyclic CD/AD
   subgraph (verified by topological sort). *)
let prop_accepted_edges_acyclic =
  QCheck2.Test.make ~name:"accepted CD/AD edges stay acyclic" ~count:300
    QCheck2.Gen.(list_size (int_range 1 30) (tup3 (int_range 1 6) (int_range 1 6) bool))
    (fun edges ->
      let g = Dg.create () in
      List.iter
        (fun (a, b, ad) ->
          if a <> b then
            try Dg.add g (if ad then Dt.AD else Dt.CD) ~master:(tid a) ~dependent:(tid b)
            with Dg.Cycle_rejected _ -> ())
        edges;
      (* Kahn's algorithm over the commit-wait subgraph. *)
      let nodes = List.init 6 (fun i -> tid (i + 1)) in
      let edges =
        List.concat_map
          (fun n ->
            Dg.outgoing g n
            |> List.filter (fun e -> Dt.blocks_commit e.Dg.dtype)
            |> List.map (fun e -> (e.Dg.dependent, e.Dg.master)))
          nodes
      in
      let in_deg = Hashtbl.create 8 in
      List.iter (fun n -> Hashtbl.replace in_deg n 0) nodes;
      List.iter (fun (_, m) -> Hashtbl.replace in_deg m (Hashtbl.find in_deg m + 1)) edges;
      let removed = ref 0 in
      let rec loop () =
        match
          List.find_opt
            (fun n -> Hashtbl.mem in_deg n && Hashtbl.find in_deg n = 0)
            nodes
        with
        | None -> ()
        | Some n ->
            Hashtbl.remove in_deg n;
            incr removed;
            List.iter
              (fun (d, m) ->
                if Tid.equal d n && Hashtbl.mem in_deg m then
                  Hashtbl.replace in_deg m (Hashtbl.find in_deg m - 1))
              edges;
            loop ()
      in
      loop ();
      !removed = List.length nodes)

(* Property: gc_group is symmetric — b ∈ group(a) iff a ∈ group(b). *)
let prop_gc_group_symmetric =
  QCheck2.Test.make ~name:"gc_group is symmetric" ~count:300
    QCheck2.Gen.(list_size (int_range 1 15) (tup2 (int_range 1 6) (int_range 1 6)))
    (fun pairs ->
      let g = Dg.create () in
      List.iter
        (fun (a, b) -> if a <> b then Dg.add g Dt.GC ~master:(tid a) ~dependent:(tid b))
        pairs;
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let a_in_b = List.exists (Tid.equal (tid a)) (Dg.gc_group g (tid b)) in
              let b_in_a = List.exists (Tid.equal (tid b)) (Dg.gc_group g (tid a)) in
              a_in_b = b_in_a)
            (List.init 6 (fun i -> i + 1)))
        (List.init 6 (fun i -> i + 1)))

let () =
  Alcotest.run "asset_deps"
    [
      ( "types",
        [ Alcotest.test_case "classification" `Quick test_dep_type_classification ] );
      ( "edges",
        [
          Alcotest.test_case "add and query" `Quick test_add_and_query;
          Alcotest.test_case "duplicates collapse" `Quick test_duplicate_edges_collapse;
          Alcotest.test_case "self dependency rejected" `Quick test_self_dependency_rejected;
          Alcotest.test_case "remove involving" `Quick test_remove_involving;
          Alcotest.test_case "stats and pp" `Quick test_stats_and_pp;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "CD cycle rejected" `Quick test_cd_cycle_rejected;
          Alcotest.test_case "AD/CD mixed cycle rejected" `Quick test_ad_cd_mixed_cycle_rejected;
          Alcotest.test_case "GC cycle allowed" `Quick test_gc_cycle_allowed;
          Alcotest.test_case "check can be disabled" `Quick test_cycle_check_can_be_disabled;
          QCheck_alcotest.to_alcotest prop_accepted_edges_acyclic;
        ] );
      ( "gc",
        [
          Alcotest.test_case "group closure" `Quick test_gc_group_closure;
          Alcotest.test_case "marks" `Quick test_gc_marks;
          Alcotest.test_case "mark rejects stranger" `Quick test_mark_gc_rejects_stranger;
          QCheck_alcotest.to_alcotest prop_gc_group_symmetric;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "exc partners" `Quick test_exc_partners;
          Alcotest.test_case "bd masters" `Quick test_bd_masters;
          Alcotest.test_case "commit relevant" `Quick test_commit_relevant;
        ] );
    ]
