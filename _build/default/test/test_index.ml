(* Tests for the B+tree index and the transactional collections built
   on it. *)

module Btree = Asset_index.Btree
module E = Asset_core.Engine
module R = Asset_core.Runtime
module Collection = Asset_core.Collection
module Sched = Asset_sched.Scheduler
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store

let oid = Oid.of_int
let vi = Value.of_int

let check_valid t =
  match Btree.validate t with
  | None -> ()
  | Some msg -> Alcotest.failf "invariant violated: %s" msg

(* ------------------------------------------------------------------ *)
(* B+tree                                                              *)

let test_btree_empty () =
  let t = Btree.create () in
  Alcotest.(check int) "size" 0 (Btree.size t);
  Alcotest.(check bool) "find" true (Btree.find t 5 = None);
  Alcotest.(check bool) "min" true (Btree.min_binding t = None);
  check_valid t

let test_btree_insert_find () =
  let t = Btree.create ~min_keys:2 () in
  List.iter (fun k -> Btree.insert t k (k * 10)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "size" 5 (Btree.size t);
  List.iter
    (fun k -> Alcotest.(check (option int)) "find" (Some (k * 10)) (Btree.find t k))
    [ 1; 3; 5; 7; 9 ];
  Alcotest.(check (option int)) "missing" None (Btree.find t 4);
  check_valid t

let test_btree_overwrite () =
  let t = Btree.create () in
  Btree.insert t 1 "a";
  Btree.insert t 1 "b";
  Alcotest.(check int) "size unchanged" 1 (Btree.size t);
  Alcotest.(check (option string)) "overwritten" (Some "b") (Btree.find t 1)

let test_btree_splits () =
  let t = Btree.create ~min_keys:2 () in
  for k = 1 to 100 do
    Btree.insert t k k;
    check_valid t
  done;
  Alcotest.(check int) "size" 100 (Btree.size t);
  Alcotest.(check (list (pair int int))) "sorted iteration"
    (List.init 100 (fun i -> (i + 1, i + 1)))
    (Btree.to_list t)

let test_btree_descending_inserts () =
  let t = Btree.create ~min_keys:2 () in
  for k = 100 downto 1 do
    Btree.insert t k k
  done;
  check_valid t;
  Alcotest.(check int) "size" 100 (Btree.size t);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Btree.min_binding t)

let test_btree_delete_rebalance () =
  let t = Btree.create ~min_keys:2 () in
  for k = 1 to 60 do
    Btree.insert t k k
  done;
  (* Delete every other key, validating invariants throughout. *)
  for k = 1 to 60 do
    if k mod 2 = 0 then begin
      Alcotest.(check bool) "deleted" true (Btree.delete t k);
      check_valid t
    end
  done;
  Alcotest.(check int) "half left" 30 (Btree.size t);
  for k = 1 to 60 do
    Alcotest.(check bool) "membership" (k mod 2 = 1) (Btree.mem t k)
  done

let test_btree_delete_all () =
  let t = Btree.create ~min_keys:2 () in
  for k = 1 to 40 do
    Btree.insert t k k
  done;
  for k = 1 to 40 do
    ignore (Btree.delete t k);
    check_valid t
  done;
  Alcotest.(check int) "empty" 0 (Btree.size t);
  Alcotest.(check bool) "delete absent" false (Btree.delete t 1)

let test_btree_range () =
  let t = Btree.create ~min_keys:2 () in
  List.iter (fun k -> Btree.insert t k ()) (List.init 50 (fun i -> (i + 1) * 2));
  (* keys 2,4,...,100 *)
  let acc = ref [] in
  Btree.range t ~lo:11 ~hi:21 (fun k () -> acc := k :: !acc);
  Alcotest.(check (list int)) "range [11,21]" [ 12; 14; 16; 18; 20 ] (List.rev !acc);
  let acc = ref [] in
  Btree.range t ~lo:0 ~hi:5 (fun k () -> acc := k :: !acc);
  Alcotest.(check (list int)) "range from below" [ 2; 4 ] (List.rev !acc);
  let acc = ref [] in
  Btree.range t ~lo:99 ~hi:500 (fun k () -> acc := k :: !acc);
  Alcotest.(check (list int)) "range past end" [ 100 ] (List.rev !acc)

(* Model-based property: a B+tree under random insert/delete behaves
   like a Map and keeps its invariants. *)
let prop_btree_model =
  QCheck2.Test.make ~name:"btree matches map model" ~count:200
    QCheck2.Gen.(
      pair (int_range 2 4)
        (list_size (int_range 0 200)
           (oneof
              [
                map (fun k -> `Insert k) (int_range 0 100);
                map (fun k -> `Delete k) (int_range 0 100);
              ])))
    (fun (min_keys, ops) ->
      let t = Btree.create ~min_keys () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert k ->
              Btree.insert t k (k * 3);
              Hashtbl.replace model k (k * 3)
          | `Delete k ->
              let removed = Btree.delete t k in
              let expected = Hashtbl.mem model k in
              Hashtbl.remove model k;
              assert (removed = expected))
        ops;
      Btree.validate t = None
      && Btree.size t = Hashtbl.length model
      && Hashtbl.fold (fun k v ok -> ok && Btree.find t k = Some v) model true
      && Btree.to_list t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

(* ------------------------------------------------------------------ *)
(* Paged B+tree                                                        *)

module Pbt = Asset_index.Paged_btree

let tmp_btree =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "asset_pbt_%d_%d.btree" (Unix.getpid ()) !n)

let check_pvalid t =
  match Pbt.validate t with
  | None -> ()
  | Some msg -> Alcotest.failf "paged btree invariant: %s" msg

let test_pbt_basic () =
  let path = tmp_btree () in
  let t = Pbt.create ~page_size:256 path in
  Alcotest.(check int) "empty" 0 (Pbt.size t);
  Pbt.insert t 5 50;
  Pbt.insert t 1 10;
  Pbt.insert t 9 90;
  Alcotest.(check (option int)) "find" (Some 50) (Pbt.find t 5);
  Alcotest.(check (option int)) "missing" None (Pbt.find t 4);
  Pbt.insert t 5 55;
  Alcotest.(check (option int)) "overwrite" (Some 55) (Pbt.find t 5);
  Alcotest.(check int) "size counts distinct keys" 3 (Pbt.size t);
  check_pvalid t;
  Pbt.close t;
  Sys.remove path

let test_pbt_many_splits () =
  let path = tmp_btree () in
  (* Small pages force deep trees quickly. *)
  let t = Pbt.create ~page_size:128 path in
  for k = 1 to 500 do
    Pbt.insert t k (k * 2)
  done;
  Alcotest.(check int) "size" 500 (Pbt.size t);
  check_pvalid t;
  Alcotest.(check (list (pair int int))) "sorted"
    (List.init 500 (fun i -> (i + 1, (i + 1) * 2)))
    (Pbt.to_list t);
  Pbt.close t;
  Sys.remove path

let test_pbt_descending_and_random_inserts () =
  let path = tmp_btree () in
  let t = Pbt.create ~page_size:128 path in
  for k = 300 downto 1 do
    Pbt.insert t (k * 7 mod 301) k
  done;
  check_pvalid t;
  Pbt.close t;
  Sys.remove path

let test_pbt_range () =
  let path = tmp_btree () in
  let t = Pbt.create ~page_size:128 path in
  for k = 1 to 100 do
    Pbt.insert t (k * 2) k
  done;
  let acc = ref [] in
  Pbt.range t ~lo:11 ~hi:21 (fun k _ -> acc := k :: !acc);
  Alcotest.(check (list int)) "range" [ 12; 14; 16; 18; 20 ] (List.rev !acc);
  Pbt.close t;
  Sys.remove path

let test_pbt_delete () =
  let path = tmp_btree () in
  let t = Pbt.create ~page_size:128 path in
  for k = 1 to 200 do
    Pbt.insert t k k
  done;
  for k = 1 to 200 do
    if k mod 2 = 0 then Alcotest.(check bool) "deleted" true (Pbt.delete t k)
  done;
  Alcotest.(check bool) "absent delete" false (Pbt.delete t 2);
  Alcotest.(check int) "half left" 100 (Pbt.size t);
  check_pvalid t;
  for k = 1 to 200 do
    Alcotest.(check bool) "membership" (k mod 2 = 1) (Pbt.mem t k)
  done;
  Pbt.close t;
  Sys.remove path

let test_pbt_persistence () =
  let path = tmp_btree () in
  let t = Pbt.create ~page_size:256 path in
  for k = 1 to 150 do
    Pbt.insert t k (k * 3)
  done;
  ignore (Pbt.delete t 75);
  Pbt.close t;
  let t2 = Pbt.open_existing path in
  Alcotest.(check int) "size survives reopen" 149 (Pbt.size t2);
  Alcotest.(check (option int)) "value survives" (Some 300) (Pbt.find t2 100);
  Alcotest.(check (option int)) "deletion survives" None (Pbt.find t2 75);
  check_pvalid t2;
  Pbt.close t2;
  Sys.remove path

let test_pbt_rejects_garbage_file () =
  let path = tmp_btree () in
  let oc = open_out path in
  output_string oc (String.make 4096 'x');
  close_out oc;
  (match Pbt.open_existing path with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected magic check");
  Sys.remove path

let prop_pbt_model =
  QCheck2.Test.make ~name:"paged btree matches map model" ~count:60
    QCheck2.Gen.(
      list_size (int_range 0 300)
        (oneof
           [
             map (fun (k, v) -> `Insert (k, v)) (pair (int_range 0 150) (int_range 0 1000));
             map (fun k -> `Delete k) (int_range 0 150);
           ]))
    (fun ops ->
      let path = tmp_btree () in
      let t = Pbt.create ~page_size:128 path in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              Pbt.insert t k v;
              Hashtbl.replace model k v
          | `Delete k ->
              let removed = Pbt.delete t k in
              let expected = Hashtbl.mem model k in
              Hashtbl.remove model k;
              assert (removed = expected))
        ops;
      let ok =
        Pbt.validate t = None
        && Pbt.size t = Hashtbl.length model
        && Pbt.to_list t
           = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      Pbt.close t;
      Sys.remove path;
      ok)

(* ------------------------------------------------------------------ *)
(* Collections                                                         *)

let with_db program = R.with_fresh_db ~objects:0 program

let test_collection_create_and_find () =
  ignore
    (with_db (fun db ->
         ignore
           (Asset_models.Atomic.run db (fun () ->
                let c = Collection.create db ~name:"parts" () in
                Alcotest.(check string) "name" "parts" c.Collection.name));
         ignore
           (Asset_models.Atomic.run db (fun () ->
                (match Collection.find db ~name:"parts" () with
                | Some _ -> ()
                | None -> Alcotest.fail "collection not found");
                Alcotest.(check bool) "absent name" true
                  (Collection.find db ~name:"nope" () = None)))))

let test_collection_duplicate_name_rejected () =
  ignore
    (with_db (fun db ->
         ignore
           (Asset_models.Atomic.run db (fun () ->
                ignore (Collection.create db ~name:"dup" ());
                match Collection.create db ~name:"dup" () with
                | exception Invalid_argument _ -> ()
                | _ -> Alcotest.fail "expected duplicate rejection"))))

let test_collection_membership () =
  ignore
    (with_db (fun db ->
         ignore
           (Asset_models.Atomic.run db (fun () ->
                let c = Collection.create db ~name:"c" ~chunk_capacity:4 () in
                (* Insert enough members to span several chunks. *)
                List.iter
                  (fun i ->
                    E.write db (oid i) (vi (i * 2));
                    Alcotest.(check bool) "added" true (Collection.add db c (oid i)))
                  (List.init 20 (fun i -> 20 - i));
                Alcotest.(check bool) "duplicate add" false (Collection.add db c (oid 5));
                Alcotest.(check int) "cardinal" 20 (Collection.cardinal db c);
                Alcotest.(check bool) "mem" true (Collection.mem db c (oid 7));
                Alcotest.(check bool) "not mem" false (Collection.mem db c (oid 21));
                (* members come back sorted regardless of insert order *)
                Alcotest.(check (list int)) "sorted members"
                  (List.init 20 (fun i -> i + 1))
                  (List.map Oid.to_int (Collection.members db c));
                Alcotest.(check (list int)) "range"
                  [ 5; 6; 7 ]
                  (List.map Oid.to_int (Collection.range db c ~lo:(oid 5) ~hi:(oid 7)));
                Alcotest.(check bool) "remove" true (Collection.remove db c (oid 7));
                Alcotest.(check bool) "remove absent" false (Collection.remove db c (oid 7));
                Alcotest.(check int) "cardinal after remove" 19 (Collection.cardinal db c)))))

let test_collection_abort_rolls_back_membership () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               let c = Collection.create db ~name:"c" () in
               ignore (Collection.add db c (oid 1))));
        (* A transaction adds members then aborts. *)
        ignore
          (Asset_models.Atomic.run db (fun () ->
               let c = Option.get (Collection.find db ~name:"c" ()) in
               ignore (Collection.add db c (oid 2));
               ignore (Collection.add db c (oid 3));
               failwith "abort"));
        ignore
          (Asset_models.Atomic.run db (fun () ->
               let c = Option.get (Collection.find db ~name:"c" ()) in
               Alcotest.(check (list int)) "only the committed member" [ 1 ]
                 (List.map Oid.to_int (Collection.members db c)))))
  in
  ignore db

let test_collection_scan_cursor_stability () =
  (* A scan with cursor stability lets a writer update records behind
     the cursor before the scanner commits. *)
  let writer_ran_early = ref false in
  ignore
    (with_db (fun db ->
         ignore
           (Asset_models.Atomic.run db (fun () ->
                let c = Collection.create db ~name:"rel" () in
                List.iter
                  (fun i ->
                    E.write db (oid i) (vi 0);
                    ignore (Collection.add db c (oid i)))
                  [ 1; 2; 3; 4 ]));
         let scanner =
           E.initiate db (fun () ->
               let c = Option.get (Collection.find db ~name:"rel" ()) in
               Collection.scan ~stability:`Cursor db c ~f:(fun _ _ -> Sched.yield ()))
         in
         let writer =
           E.initiate db (fun () ->
               E.write db (oid 1) (vi 99);
               writer_ran_early := not (E.is_terminated db scanner))
         in
         ignore (E.begin_ db scanner);
         Sched.yield ();
         ignore (E.begin_ db writer);
         ignore (E.commit db writer);
         ignore (E.commit db scanner)));
  Alcotest.(check bool) "writer proceeded during scan" true !writer_ran_early

let test_collection_concurrent_adders_serialize () =
  (* Two transactions adding to the same collection contend on the
     chunk objects; both must commit (possibly after waiting) and both
     members must be present. *)
  ignore
    (with_db (fun db ->
         ignore
           (Asset_models.Atomic.run db (fun () ->
                ignore (Collection.create db ~name:"c" ())));
         let adder n =
           E.initiate db (fun () ->
               let c = Option.get (Collection.find db ~name:"c" ()) in
               E.write db (oid n) (vi n);
               ignore (Collection.add db c (oid n)))
         in
         let t1 = adder 1 and t2 = adder 2 in
         ignore (E.begin_ db t1);
         ignore (E.begin_ db t2);
         E.spawn db ~label:"c1" (fun () -> ignore (E.commit db t1));
         E.spawn db ~label:"c2" (fun () -> ignore (E.commit db t2));
         E.await_terminated db [ t1; t2 ];
         let committed = List.filter (fun t -> E.is_committed db t) [ t1; t2 ] in
         (* Under 2PL both serialize; a deadlock victim is possible but
            at least one commits. *)
         Alcotest.(check bool) "at least one committed" true (List.length committed >= 1);
         ignore
           (Asset_models.Atomic.run db (fun () ->
                let c = Option.get (Collection.find db ~name:"c" ()) in
                Alcotest.(check int) "cardinal matches commits" (List.length committed)
                  (Collection.cardinal db c)))))

let prop_collection_matches_set_model =
  QCheck2.Test.make ~name:"collection matches set model" ~count:60
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 60)
           (oneof
              [
                map (fun k -> `Add k) (int_range 1 30);
                map (fun k -> `Remove k) (int_range 1 30);
              ])))
    (fun (chunk_capacity, ops) ->
      let result = ref true in
      ignore
        (with_db (fun db ->
             ignore
               (Asset_models.Atomic.run db (fun () ->
                    let c = Collection.create db ~name:"m" ~chunk_capacity () in
                    let model = Hashtbl.create 16 in
                    List.iter
                      (fun op ->
                        match op with
                        | `Add k ->
                            let added = Collection.add db c (oid k) in
                            let expected = not (Hashtbl.mem model k) in
                            Hashtbl.replace model k ();
                            if added <> expected then result := false
                        | `Remove k ->
                            let removed = Collection.remove db c (oid k) in
                            let expected = Hashtbl.mem model k in
                            Hashtbl.remove model k;
                            if removed <> expected then result := false)
                      ops;
                    let expected_members =
                      Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare
                    in
                    if List.map Oid.to_int (Collection.members db c) <> expected_members then
                      result := false;
                    if Collection.cardinal db c <> List.length expected_members then
                      result := false))));
      !result)

let () =
  Alcotest.run "asset_index"
    [
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "overwrite" `Quick test_btree_overwrite;
          Alcotest.test_case "splits" `Quick test_btree_splits;
          Alcotest.test_case "descending inserts" `Quick test_btree_descending_inserts;
          Alcotest.test_case "delete rebalance" `Quick test_btree_delete_rebalance;
          Alcotest.test_case "delete all" `Quick test_btree_delete_all;
          Alcotest.test_case "range" `Quick test_btree_range;
          QCheck_alcotest.to_alcotest prop_btree_model;
        ] );
      ( "paged_btree",
        [
          Alcotest.test_case "basic" `Quick test_pbt_basic;
          Alcotest.test_case "many splits" `Quick test_pbt_many_splits;
          Alcotest.test_case "descending/random inserts" `Quick
            test_pbt_descending_and_random_inserts;
          Alcotest.test_case "range" `Quick test_pbt_range;
          Alcotest.test_case "delete" `Quick test_pbt_delete;
          Alcotest.test_case "persistence" `Quick test_pbt_persistence;
          Alcotest.test_case "rejects garbage file" `Quick test_pbt_rejects_garbage_file;
          QCheck_alcotest.to_alcotest prop_pbt_model;
        ] );
      ( "collection",
        [
          Alcotest.test_case "create and find" `Quick test_collection_create_and_find;
          Alcotest.test_case "duplicate name" `Quick test_collection_duplicate_name_rejected;
          Alcotest.test_case "membership" `Quick test_collection_membership;
          Alcotest.test_case "abort rolls back" `Quick test_collection_abort_rolls_back_membership;
          Alcotest.test_case "cursor-stability scan" `Quick test_collection_scan_cursor_stability;
          Alcotest.test_case "concurrent adders" `Quick test_collection_concurrent_adders_serialize;
          QCheck_alcotest.to_alcotest prop_collection_matches_set_model;
        ] );
    ]
