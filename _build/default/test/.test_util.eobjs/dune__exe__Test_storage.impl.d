test/test_storage.ml: Alcotest Asset_storage Asset_util Bytes Filename Hashtbl List Option Printf QCheck2 QCheck_alcotest String Sys Unix
