test/test_latch.mli:
