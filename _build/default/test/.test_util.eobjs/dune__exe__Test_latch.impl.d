test/test_latch.ml: Alcotest Asset_latch Format List QCheck2 QCheck_alcotest String
