test/test_lock.ml: Alcotest Asset_lock Asset_util Format Int List QCheck2 QCheck_alcotest String
