test/test_sched.ml: Alcotest Asset_sched List Printexc QCheck2 QCheck_alcotest String
