test/test_util.ml: Alcotest Array Asset_util Format Fun Int List QCheck2 QCheck_alcotest String
