test/test_engine.ml: Alcotest Asset_core Asset_deps Asset_lock Asset_models Asset_sched Asset_storage Asset_util Asset_wal List Option Printf
