test/test_index.ml: Alcotest Asset_core Asset_index Asset_models Asset_sched Asset_storage Asset_util Filename Hashtbl List Option Printf QCheck2 QCheck_alcotest String Sys Unix
