test/test_recovery.ml: Alcotest Asset_core Asset_deps Asset_models Asset_storage Asset_util Asset_wal Filename List Printf Sys Unix
