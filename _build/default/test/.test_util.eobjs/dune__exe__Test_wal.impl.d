test/test_wal.ml: Alcotest Asset_storage Asset_util Asset_wal Bytes Char Filename Format Hashtbl List Option Printf QCheck2 QCheck_alcotest Sys Unix
