test/test_deps.ml: Alcotest Asset_deps Asset_util Format Hashtbl Int List QCheck2 QCheck_alcotest String
