test/test_properties.ml: Alcotest Array Asset_core Asset_models Asset_sched Asset_storage Asset_util Asset_workload List Option Printf QCheck2 QCheck_alcotest
