test/test_workspace.ml: Alcotest Asset_core Asset_models Asset_sched Asset_storage Asset_util Asset_wal List Option Printf QCheck2 QCheck_alcotest
