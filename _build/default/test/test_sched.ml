(* Tests for the cooperative scheduler: fiber spawning, yield
   interleaving, wait conditions, deadlock detection, the stall hook,
   policy determinism and failure propagation. *)

module S = Asset_sched.Scheduler

let run_with_log policy f =
  let events = ref [] in
  let push e = events := e :: !events in
  let s = S.create ~policy () in
  f s push;
  S.run s;
  List.rev !events

let test_single_fiber_runs () =
  let events = run_with_log S.Fifo (fun s push -> ignore (S.spawn s ~label:"a" (fun () -> push "ran"))) in
  Alcotest.(check (list string)) "ran" [ "ran" ] events

let test_fifo_round_robin () =
  let events =
    run_with_log S.Fifo (fun s push ->
        ignore
          (S.spawn s ~label:"a" (fun () ->
               push "a1";
               S.yield ();
               push "a2"));
        ignore
          (S.spawn s ~label:"b" (fun () ->
               push "b1";
               S.yield ();
               push "b2")))
  in
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] events

let test_spawn_from_fiber () =
  let events =
    run_with_log S.Fifo (fun s push ->
        ignore
          (S.spawn s ~label:"parent" (fun () ->
               push "parent";
               ignore (S.spawn s ~label:"child" (fun () -> push "child")))))
  in
  Alcotest.(check (list string)) "child ran after parent" [ "parent"; "child" ] events

let test_wait_until_parks_and_wakes () =
  let flag = ref false in
  let events =
    run_with_log S.Fifo (fun s push ->
        ignore
          (S.spawn s ~label:"waiter" (fun () ->
               S.wait_until ~reason:"flag" (fun () -> !flag);
               push "woke"));
        ignore
          (S.spawn s ~label:"setter" (fun () ->
               push "setting";
               flag := true)))
  in
  Alcotest.(check (list string)) "order" [ "setting"; "woke" ] events

let test_wait_until_true_does_not_park () =
  let events =
    run_with_log S.Fifo (fun s push ->
        ignore
          (S.spawn s ~label:"a" (fun () ->
               S.wait_until (fun () -> true);
               push "immediate")))
  in
  Alcotest.(check (list string)) "no park" [ "immediate" ] events

let test_deadlock_detected () =
  let s = S.create () in
  ignore (S.spawn s ~label:"stuck" (fun () -> S.wait_until ~reason:"never" (fun () -> false)));
  match S.run s with
  | exception S.Deadlock reasons ->
      Alcotest.(check (list string)) "reason" [ "stuck: never" ] reasons
  | () -> Alcotest.fail "expected deadlock"

let test_on_stall_can_resolve () =
  let rescued = ref false in
  let s = S.create () in
  S.set_on_stall s (fun () ->
      rescued := true;
      true);
  ignore (S.spawn s ~label:"waiter" (fun () -> S.wait_until ~reason:"rescue" (fun () -> !rescued)));
  S.run s;
  Alcotest.(check bool) "stall hook ran" true !rescued

let test_on_stall_without_progress_deadlocks () =
  let s = S.create () in
  S.set_on_stall s (fun () -> false);
  ignore (S.spawn s ~label:"w" (fun () -> S.wait_until ~reason:"never" (fun () -> false)));
  match S.run s with
  | exception S.Deadlock _ -> ()
  | () -> Alcotest.fail "expected deadlock"

let test_fiber_failure_propagates () =
  let s = S.create () in
  ignore (S.spawn s ~label:"bad" (fun () -> failwith "kaboom"));
  match S.run s with
  | exception S.Fiber_failed (label, Failure msg) when label = "bad" && msg = "kaboom" -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | () -> Alcotest.fail "expected failure"

let test_step_budget () =
  let s = S.create ~max_steps:10 () in
  ignore
    (S.spawn s ~label:"spinner" (fun () ->
         while true do
           S.yield ()
         done));
  match S.run s with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions livelock" true
        (String.length msg > 0 && String.exists (fun c -> c = 'l') msg)
  | () -> Alcotest.fail "expected step budget exhaustion"

let interleaving policy =
  let order = ref [] in
  let s = S.create ~policy () in
  for i = 1 to 5 do
    ignore
      (S.spawn s ~label:(string_of_int i) (fun () ->
           order := (i, 1) :: !order;
           S.yield ();
           order := (i, 2) :: !order))
  done;
  S.run s;
  List.rev !order

let test_fifo_deterministic () =
  Alcotest.(check bool) "same schedule twice" true (interleaving S.Fifo = interleaving S.Fifo)

let test_random_seeded_reproducible () =
  let a = interleaving (S.Random_seeded 99) in
  let b = interleaving (S.Random_seeded 99) in
  Alcotest.(check bool) "same seed, same schedule" true (a = b)

let test_random_seeds_vary () =
  (* Across many seeds at least one schedule must differ from FIFO. *)
  let fifo = interleaving S.Fifo in
  let differs =
    List.exists (fun seed -> interleaving (S.Random_seeded seed) <> fifo) [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "some seed deviates from FIFO" true differs

let test_trace_recorded () =
  let s = S.create ~record_trace:true () in
  ignore (S.spawn s ~label:"a" (fun () -> S.yield ()));
  S.run s;
  let trace = S.trace s in
  Alcotest.(check bool) "spawn event" true
    (List.exists (fun (_, e) -> e = "spawn: a") trace);
  Alcotest.(check bool) "yield event" true (List.exists (fun (_, e) -> e = "yield") trace);
  Alcotest.(check bool) "finish event" true (List.exists (fun (_, e) -> e = "finished") trace)

let test_current_fid () =
  let seen = ref [] in
  let s = S.create () in
  let fid_a = S.spawn s ~label:"a" (fun () -> ()) in
  ignore fid_a;
  ignore
    (S.spawn s ~label:"b" (fun () ->
         seen := S.current_fid s :: !seen;
         S.yield ();
         seen := S.current_fid s :: !seen));
  S.run s;
  match !seen with
  | [ x; y ] -> Alcotest.(check int) "stable across yields" x y
  | _ -> Alcotest.fail "expected two observations"

let test_counts () =
  let s = S.create () in
  ignore (S.spawn s ~label:"a" (fun () -> ()));
  Alcotest.(check int) "runnable" 1 (S.runnable_count s);
  Alcotest.(check int) "parked" 0 (S.parked_count s);
  S.run s;
  Alcotest.(check bool) "steps counted" true (S.steps s >= 1)

(* Property: for any program built from yields, FIFO scheduling runs
   every fiber to completion and executes each step exactly once. *)
let prop_all_fibers_complete =
  QCheck2.Test.make ~name:"all fibers complete under fifo" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 0 5))
    (fun yield_counts ->
      let s = S.create () in
      let completed = ref 0 in
      List.iteri
        (fun i yields ->
          ignore
            (S.spawn s ~label:(string_of_int i) (fun () ->
                 for _ = 1 to yields do
                   S.yield ()
                 done;
                 incr completed)))
        yield_counts;
      S.run s;
      !completed = List.length yield_counts)

let () =
  Alcotest.run "asset_sched"
    [
      ( "basics",
        [
          Alcotest.test_case "single fiber" `Quick test_single_fiber_runs;
          Alcotest.test_case "fifo round robin" `Quick test_fifo_round_robin;
          Alcotest.test_case "spawn from fiber" `Quick test_spawn_from_fiber;
          Alcotest.test_case "current fid" `Quick test_current_fid;
          Alcotest.test_case "counts" `Quick test_counts;
          QCheck_alcotest.to_alcotest prop_all_fibers_complete;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "wait_until parks and wakes" `Quick test_wait_until_parks_and_wakes;
          Alcotest.test_case "true condition doesn't park" `Quick test_wait_until_true_does_not_park;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "stall hook resolves" `Quick test_on_stall_can_resolve;
          Alcotest.test_case "stall without progress deadlocks" `Quick
            test_on_stall_without_progress_deadlocks;
          Alcotest.test_case "step budget" `Quick test_step_budget;
        ] );
      ( "failures",
        [ Alcotest.test_case "fiber failure propagates" `Quick test_fiber_failure_propagates ] );
      ( "policies",
        [
          Alcotest.test_case "fifo deterministic" `Quick test_fifo_deterministic;
          Alcotest.test_case "random seeded reproducible" `Quick test_random_seeded_reproducible;
          Alcotest.test_case "random seeds vary" `Quick test_random_seeds_vary;
          Alcotest.test_case "trace recorded" `Quick test_trace_recorded;
        ] );
    ]
