(* Tests for the extended-transaction-model library (section 3): each
   model's success path, failure path, and the properties the paper
   states for it. *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module Sched = Asset_sched.Scheduler
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
open Asset_models

let oid = Oid.of_int
let vi = Value.of_int
let with_db ?(objects = 16) program = R.with_fresh_db ~objects program
let geti db o = Value.to_int (Store.read_exn (E.store db) (oid o))

(* ------------------------------------------------------------------ *)
(* Atomic (3.1.1)                                                      *)

let test_atomic_commit () =
  let db =
    with_db (fun db ->
        match Atomic.run db (fun () -> E.write db (oid 1) (vi 7)) with
        | `Committed -> ()
        | _ -> Alcotest.fail "expected commit")
  in
  Alcotest.(check int) "persisted" 7 (geti db 1)

let test_atomic_abort_on_exception () =
  let db =
    with_db (fun db ->
        match
          Atomic.run db (fun () ->
              E.write db (oid 1) (vi 7);
              failwith "no")
        with
        | `Aborted -> ()
        | _ -> Alcotest.fail "expected abort")
  in
  Alcotest.(check int) "rolled back" 0 (geti db 1)

let test_atomic_retries () =
  ignore
    (with_db (fun db ->
         let attempts = ref 0 in
         let result =
           Atomic.run_with_retries ~attempts:5 db (fun () ->
               incr attempts;
               if !attempts < 3 then failwith "flaky")
         in
         Alcotest.(check bool) "eventually commits" true (result = `Committed);
         Alcotest.(check int) "three attempts" 3 !attempts))

let test_atomic_retries_exhausted () =
  ignore
    (with_db (fun db ->
         let result = Atomic.run_with_retries ~attempts:3 db (fun () -> failwith "always") in
         Alcotest.(check bool) "gives up" true (result = `Aborted)))

(* ------------------------------------------------------------------ *)
(* Distributed (3.1.2)                                                 *)

let test_distributed_commit_all () =
  let db =
    with_db (fun db ->
        let r =
          Distributed.run db
            [
              (fun () -> E.write db (oid 1) (vi 1));
              (fun () -> E.write db (oid 2) (vi 2));
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        in
        Alcotest.(check bool) "committed" true (r = `Committed))
  in
  Alcotest.(check (list int)) "all effects" [ 1; 2; 3 ] [ geti db 1; geti db 2; geti db 3 ]

let test_distributed_abort_all () =
  let db =
    with_db (fun db ->
        let r =
          Distributed.run db
            [
              (fun () -> E.write db (oid 1) (vi 1));
              (fun () -> failwith "component fails");
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        in
        Alcotest.(check bool) "aborted" true (r = `Aborted))
  in
  Alcotest.(check (list int)) "no effects" [ 0; 0; 0 ] [ geti db 1; geti db 2; geti db 3 ]

let test_distributed_empty_and_singleton () =
  ignore
    (with_db (fun db ->
         Alcotest.(check bool) "empty" true (Distributed.run db [] = `Committed);
         Alcotest.(check bool) "singleton" true
           (Distributed.run db [ (fun () -> E.write db (oid 1) (vi 1)) ] = `Committed)))

(* ------------------------------------------------------------------ *)
(* Contingent (3.1.3)                                                  *)

let test_contingent_first_wins () =
  ignore
    (with_db (fun db ->
         match
           Contingent.run db
             [ (fun () -> E.write db (oid 1) (vi 1)); (fun () -> E.write db (oid 2) (vi 2)) ]
         with
         | `Committed 0 -> ()
         | _ -> Alcotest.fail "expected alternative 0"))

let test_contingent_fallback_order () =
  let db =
    with_db (fun db ->
        match
          Contingent.run db
            [
              (fun () -> failwith "alt0");
              (fun () -> failwith "alt1");
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        with
        | `Committed 2 -> ()
        | _ -> Alcotest.fail "expected alternative 2")
  in
  Alcotest.(check int) "only alt2's effect" 3 (geti db 3);
  Alcotest.(check int) "alt0 rolled back" 0 (geti db 1)

let test_contingent_all_fail () =
  ignore
    (with_db (fun db ->
         match Contingent.run db [ (fun () -> failwith "a"); (fun () -> failwith "b") ] with
         | `All_aborted -> ()
         | _ -> Alcotest.fail "expected all aborted"))

let test_contingent_declarative_exclusion () =
  (* The EXC-based variant: committing one alternative force-aborts the
     others, and at most one effect reaches the store. *)
  let db =
    with_db (fun db ->
        match
          Contingent.run_declarative db
            [
              (fun () -> failwith "alt0");
              (fun () -> E.write db (oid 2) (vi 2));
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        with
        | `Committed 1 -> ()
        | _ -> Alcotest.fail "expected alternative 1")
  in
  Alcotest.(check int) "winner's effect" 2 (geti db 2);
  Alcotest.(check int) "loser never ran to commit" 0 (geti db 3)

(* ------------------------------------------------------------------ *)
(* Nested (3.1.4)                                                      *)

let test_nested_success_delegates_up () =
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              Nested.sub_exn db (fun () -> E.write db (oid 1) (vi 1));
              Nested.sub_exn db (fun () -> E.write db (oid 2) (vi 2)))
        in
        Alcotest.(check bool) "committed" true (r = `Committed))
  in
  Alcotest.(check int) "child 1" 1 (geti db 1);
  Alcotest.(check int) "child 2" 2 (geti db 2)

let test_nested_child_failure_aborts_parent () =
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              Nested.sub_exn db (fun () -> E.write db (oid 1) (vi 1));
              Nested.sub_exn db (fun () -> failwith "child dies"))
        in
        Alcotest.(check bool) "aborted" true (r = `Aborted))
  in
  Alcotest.(check int) "first child's delegated work undone" 0 (geti db 1)

let test_nested_report_policy_parent_survives () =
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              let ok = Nested.sub db (fun () -> failwith "child dies") in
              Alcotest.(check bool) "failure reported" false ok;
              E.write db (oid 2) (vi 2))
        in
        Alcotest.(check bool) "parent commits" true (r = `Committed))
  in
  Alcotest.(check int) "parent's own work" 2 (geti db 2)

let test_nested_child_sees_parent_objects () =
  (* The child reads an object the parent currently holds a write lock
     on — possible only through the parent's permit. *)
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              E.write db (oid 1) (vi 5);
              Nested.sub_exn db (fun () ->
                  let v = E.read_exn db (oid 1) in
                  E.write db (oid 2) v))
        in
        Alcotest.(check bool) "committed" true (r = `Committed))
  in
  Alcotest.(check int) "child read parent's uncommitted value" 5 (geti db 2)

let test_nested_three_levels () =
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              Nested.sub_exn db (fun () ->
                  E.write db (oid 1) (vi 1);
                  Nested.sub_exn db (fun () -> E.write db (oid 2) (vi 2))))
        in
        Alcotest.(check bool) "committed" true (r = `Committed))
  in
  Alcotest.(check int) "level 2" 1 (geti db 1);
  Alcotest.(check int) "level 3" 2 (geti db 2)

let test_nested_abort_containment_leaves_prior_siblings () =
  (* A failed sibling under `Report does not undo the earlier sibling's
     delegated effects if the parent goes on to commit. *)
  let db =
    with_db (fun db ->
        let r =
          Nested.root db (fun () ->
              Nested.sub_exn db (fun () -> E.write db (oid 1) (vi 1));
              ignore (Nested.sub db (fun () -> E.write db (oid 2) (vi 2); failwith "dies")))
        in
        Alcotest.(check bool) "committed" true (r = `Committed))
  in
  Alcotest.(check int) "sibling 1 committed with parent" 1 (geti db 1);
  Alcotest.(check int) "failed sibling undone" 0 (geti db 2)

let test_nested_sub_outside_transaction_rejected () =
  ignore
    (with_db (fun db ->
         match Nested.sub db (fun () -> ()) with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected rejection"))

(* ------------------------------------------------------------------ *)
(* Split / join (3.1.5)                                                *)

let test_split_independent_outcomes () =
  let db =
    with_db (fun db ->
        let split_tid = ref Tid.null in
        let t =
          E.initiate db (fun () ->
              E.write db (oid 1) (vi 1);
              E.write db (oid 2) (vi 2);
              match Split_join.split_idle ~objs:[ oid 1 ] db with
              | Some s -> split_tid := s
              | None -> Alcotest.fail "split failed")
        in
        ignore (E.begin_ db t);
        ignore (E.wait db t);
        (* The splitter aborts; the split transaction commits its part. *)
        ignore (E.abort db t);
        Alcotest.(check bool) "split commits" true (E.commit db !split_tid))
  in
  Alcotest.(check int) "split part survives" 1 (geti db 1);
  Alcotest.(check int) "splitter part undone" 0 (geti db 2)

let test_split_runs_new_work () =
  let db =
    with_db (fun db ->
        let split_tid = ref Tid.null in
        let t =
          E.initiate db (fun () ->
              E.write db (oid 1) (vi 1);
              match Split_join.split ~objs:[ oid 1 ] db (fun () -> E.write db (oid 3) (vi 3)) with
              | Some s -> split_tid := s
              | None -> Alcotest.fail "split failed")
        in
        ignore (E.begin_ db t);
        ignore (E.wait db t);
        ignore (E.commit db t);
        Alcotest.(check bool) "split commits" true (E.commit db !split_tid))
  in
  Alcotest.(check int) "delegated object" 1 (geti db 1);
  Alcotest.(check int) "split's own work" 3 (geti db 3)

let test_join_merges_into_target () =
  let db =
    with_db (fun db ->
        let s_tid = ref Tid.null in
        let t =
          E.initiate db (fun () ->
              E.write db (oid 1) (vi 1);
              match Split_join.split_idle ~objs:[ oid 1 ] db with
              | Some s -> s_tid := s
              | None -> Alcotest.fail "split failed")
        in
        ignore (E.begin_ db t);
        ignore (E.wait db t);
        (* Join the split transaction back into t. *)
        Split_join.join db !s_tid t;
        (* Now t is responsible again: abort undoes everything. *)
        ignore (E.abort db t))
  in
  Alcotest.(check int) "rejoined work undone with t" 0 (geti db 1)

(* ------------------------------------------------------------------ *)
(* Saga (3.1.6)                                                        *)

let saga_step db ~n ?(fails = false) () =
  Saga.step
    ~label:(string_of_int n)
    ~compensate:(fun () -> E.write db (oid n) (vi 0))
    (fun () ->
      if fails then failwith "step fails";
      E.write db (oid n) (vi n))

let test_saga_commit_in_order () =
  let db =
    with_db (fun db ->
        let r =
          Saga.run db
            [
              saga_step db ~n:1 ();
              saga_step db ~n:2 ();
              Saga.step ~label:"last" (fun () -> E.write db (oid 3) (vi 3));
            ]
        in
        Alcotest.(check bool) "committed" true (Saga.committed r))
  in
  Alcotest.(check (list int)) "effects" [ 1; 2; 3 ] [ geti db 1; geti db 2; geti db 3 ]

let test_saga_compensates_in_reverse () =
  let order = ref [] in
  let step db n =
    Saga.step ~label:(string_of_int n)
      ~compensate:(fun () ->
        order := n :: !order;
        E.write db (oid n) (vi 0))
      (fun () -> E.write db (oid n) (vi n))
  in
  let db =
    with_db (fun db ->
        match
          Saga.run db
            [ step db 1; step db 2; step db 3; saga_step db ~n:4 ~fails:true () ]
        with
        | Saga.Rolled_back { failed_step; compensated } ->
            Alcotest.(check int) "failed at 3" 3 failed_step;
            Alcotest.(check int) "three compensated" 3 compensated
        | Saga.Committed -> Alcotest.fail "expected rollback")
  in
  Alcotest.(check (list int)) "reverse order ct3 ct2 ct1" [ 3; 2; 1 ] (List.rev !order);
  Alcotest.(check (list int)) "all compensated" [ 0; 0; 0 ]
    [ geti db 1; geti db 2; geti db 3 ]

let test_saga_component_commits_are_visible_early () =
  (* Isolation is per component: after t1 commits, another transaction
     can see its effect even though the saga is still running. *)
  ignore
    (with_db (fun db ->
         let observed = ref (-1) in
         let r =
           Saga.run db
             [
               Saga.step ~label:"t1" ~compensate:(fun () -> ())
                 (fun () -> E.write db (oid 1) (vi 10));
               Saga.step ~label:"t2"
                 (fun () ->
                   (* A different transaction in the middle of the saga *)
                   observed := Value.to_int (E.read_exn db (oid 1)));
             ]
         in
         Alcotest.(check bool) "saga committed" true (Saga.committed r);
         Alcotest.(check int) "partial result visible" 10 !observed))

let test_saga_first_step_fails_no_compensation () =
  ignore
    (with_db (fun db ->
         match Saga.run db [ saga_step db ~n:1 ~fails:true (); saga_step db ~n:2 () ] with
         | Saga.Rolled_back { failed_step = 0; compensated = 0 } -> ()
         | _ -> Alcotest.fail "expected failure at step 0 with nothing to compensate"))

let test_saga_rejects_missing_compensation () =
  ignore
    (with_db (fun db ->
         match
           Saga.run db
             [ Saga.step ~label:"no-comp" (fun () -> ()); saga_step db ~n:2 () ]
         with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected rejection"))

let test_saga_compensation_retried () =
  ignore
    (with_db (fun db ->
         let attempts = ref 0 in
         let flaky_comp () =
           incr attempts;
           if !attempts < 3 then failwith "compensation flaky"
         in
         match
           Saga.run db
             [
               Saga.step ~label:"t1" ~compensate:flaky_comp (fun () -> ());
               saga_step db ~n:2 ~fails:true ();
             ]
         with
         | Saga.Rolled_back { compensated = 1; _ } ->
             Alcotest.(check int) "retried until commit" 3 !attempts
         | _ -> Alcotest.fail "expected rollback"))

(* Property: for a saga failing at step k of n, exactly the first k
   steps' effects are compensated and none of the later steps ran. *)
let prop_saga_failure_leaves_clean_state =
  QCheck2.Test.make ~name:"saga failure leaves clean state" ~count:100
    QCheck2.Gen.(pair (int_range 1 8) (int_range 0 8))
    (fun (n, fail_at) ->
      let fail_at = min fail_at n in
      let db =
        with_db ~objects:16 (fun db ->
            let steps =
              List.init (n + 1) (fun i ->
                  if i = fail_at then saga_step db ~n:(i + 1) ~fails:true ()
                  else saga_step db ~n:(i + 1) ())
            in
            match Saga.run db steps with
            | Saga.Rolled_back { failed_step; compensated } ->
                assert (failed_step = fail_at);
                assert (compensated = fail_at)
            | Saga.Committed -> assert false)
      in
      List.for_all (fun i -> geti db (i + 1) = 0) (List.init (n + 1) Fun.id))

(* ------------------------------------------------------------------ *)
(* Chained transactions                                                *)

let test_chained_commits_links_and_carries () =
  let observed_between = ref (-1) in
  let db =
    with_db (fun db ->
        let carry _ = [ oid 1 ] in
        let r =
          Chained.run db ~carry
            [
              (fun () ->
                E.write db (oid 1) (vi 10);
                (* Non-carried work commits at the link boundary. *)
                E.write db (oid 2) (vi 2));
              (fun () ->
                (* The carried object arrives locked, with its
                   uncommitted value visible to this link only. *)
                observed_between := Value.to_int (E.read_exn db (oid 1));
                E.write db (oid 1) (vi 20));
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        in
        Alcotest.(check bool) "chain committed" true (Chained.committed r))
  in
  Alcotest.(check int) "link 2 saw the carried value" 10 !observed_between;
  Alcotest.(check int) "final carried value" 20 (geti db 1);
  Alcotest.(check int) "link 1 side effect" 2 (geti db 2);
  Alcotest.(check int) "link 3 side effect" 3 (geti db 3)

let test_chained_carried_state_invisible_between_links () =
  (* Another transaction trying to read the carried object between
     links must wait until the chain ends — delegation keeps the lock
     alive across the commit boundary. *)
  let order = ref [] in
  ignore
    (with_db (fun db ->
         let intruder =
           E.initiate db (fun () ->
               let v = E.read_exn db (oid 1) in
               order := Printf.sprintf "intruder-saw-%d" (Value.to_int v) :: !order)
         in
         let chain_done = ref false in
         E.spawn db ~label:"chain" (fun () ->
             let r =
               Chained.run db
                 ~carry:(fun _ -> [ oid 1 ])
                 [
                   (fun () ->
                     E.write db (oid 1) (vi 5);
                     Sched.yield ());
                   (fun () ->
                     Sched.yield ();
                     E.write db (oid 1) (vi 6));
                 ]
             in
             assert (Chained.committed r);
             chain_done := true;
             order := "chain-done" :: !order);
         Sched.yield ();
         ignore (E.begin_ db intruder);
         ignore (E.commit db intruder);
         Asset_sched.Scheduler.wait_until (fun () -> !chain_done)));
  Alcotest.(check (list string)) "intruder waited for the whole chain"
    [ "chain-done"; "intruder-saw-6" ] (List.rev !order)

let test_chained_broken_link_rolls_back_carry_only () =
  let db =
    with_db (fun db ->
        let r =
          Chained.run db
            ~carry:(fun _ -> [ oid 1 ])
            [
              (fun () ->
                E.write db (oid 1) (vi 10);
                E.write db (oid 2) (vi 2));
              (fun () ->
                E.write db (oid 1) (vi 20);
                failwith "link 2 dies");
              (fun () -> E.write db (oid 3) (vi 3));
            ]
        in
        match r with
        | Chained.Broken { failed_link } -> Alcotest.(check int) "broke at link 1" 1 failed_link
        | Chained.Committed -> Alcotest.fail "expected broken chain")
  in
  Alcotest.(check int) "carried state fully rolled back" 0 (geti db 1);
  Alcotest.(check int) "link 1's committed side effect kept" 2 (geti db 2);
  Alcotest.(check int) "later links never ran" 0 (geti db 3)

let test_chained_empty_and_singleton () =
  ignore
    (with_db (fun db ->
         Alcotest.(check bool) "empty chain" true
           (Chained.committed (Chained.run db ~carry:(fun _ -> []) []));
         let r =
           Chained.run db ~carry:(fun _ -> []) [ (fun () -> E.write db (oid 1) (vi 1)) ]
         in
         Alcotest.(check bool) "single link" true (Chained.committed r)))

(* ------------------------------------------------------------------ *)
(* Cooperating transactions (3.2.1)                                    *)

let test_coop_interleaved_edits () =
  let db =
    with_db (fun db ->
        let ti =
          E.initiate db (fun () ->
              E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 1);
              Sched.yield ();
              E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 1))
        in
        let tj =
          E.initiate db (fun () ->
              E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 10);
              Sched.yield ();
              E.modify db (oid 1) (fun v -> Value.incr_int (Option.get v) 10))
        in
        Coop.pair db ~ti ~tj ~objs:[ oid 1 ] ~coupling:`Group;
        ignore (E.begin_ db ti);
        ignore (E.begin_ db tj);
        Alcotest.(check bool) "group commits" true (E.commit db ti))
  in
  Alcotest.(check int) "all four increments" 22 (geti db 1)

let test_coop_commit_ordered () =
  let order = ref [] in
  ignore
    (with_db (fun db ->
         let ti = E.initiate db (fun () -> Sched.yield ()) in
         let tj = E.initiate db (fun () -> ()) in
         Coop.allow db ~ti ~tj ~objs:[ oid 1 ] ~coupling:`Commit_ordered;
         ignore (E.begin_ db ti);
         ignore (E.begin_ db tj);
         E.spawn db ~label:"commit-tj" (fun () ->
             ignore (E.commit db tj);
             order := "tj" :: !order);
         ignore (E.commit db ti);
         order := "ti" :: !order;
         E.await_terminated db [ ti; tj ]));
  Alcotest.(check (list string)) "CD ordering respected" [ "ti"; "tj" ] (List.rev !order)

let test_coop_group_abort_discards_both () =
  let db =
    with_db (fun db ->
        let ti = E.initiate db (fun () -> E.write db (oid 1) (vi 5)) in
        let tj = E.initiate db (fun () -> E.write db (oid 1) (vi 6)) in
        Coop.pair db ~ti ~tj ~objs:[ oid 1 ] ~coupling:`Group;
        ignore (E.begin_ db ti);
        ignore (E.begin_ db tj);
        ignore (E.wait db ti);
        ignore (E.wait db tj);
        ignore (E.abort db tj);
        Alcotest.(check bool) "neither commits" false (E.commit db ti))
  in
  Alcotest.(check int) "both discarded" 0 (geti db 1)

(* ------------------------------------------------------------------ *)
(* Cursor stability (3.2.2)                                            *)

let test_cursor_stability_writer_proceeds_behind_cursor () =
  let writer_done_before_scan_ended = ref false in
  ignore
    (with_db (fun db ->
         let records = [ oid 1; oid 2; oid 3; oid 4 ] in
         let scanner =
           E.initiate db (fun () ->
               Cursor_stability.scan db records ~f:(fun _ _ -> Sched.yield ()))
         in
         let writer =
           E.initiate db (fun () ->
               (* Writes the first record — legal as soon as the cursor
                  has moved past it, long before the scanner commits. *)
               E.write db (oid 1) (vi 99);
               writer_done_before_scan_ended := not (E.is_terminated db scanner))
         in
         ignore (E.begin_ db scanner);
         Sched.yield ();
         ignore (E.begin_ db writer);
         Alcotest.(check bool) "writer commits" true (E.commit db writer);
         Alcotest.(check bool) "scanner commits" true (E.commit db scanner)));
  Alcotest.(check bool) "writer finished while scan was active" true
    !writer_done_before_scan_ended

let test_repeatable_read_blocks_writer_until_commit () =
  let order = ref [] in
  ignore
    (with_db (fun db ->
         let records = [ oid 1; oid 2 ] in
         let scanner =
           E.initiate db (fun () ->
               Cursor_stability.scan_repeatable db records ~f:(fun _ _ -> Sched.yield ());
               order := "scan-done" :: !order)
         in
         let writer =
           E.initiate db (fun () ->
               E.write db (oid 1) (vi 99);
               order := "write-done" :: !order)
         in
         ignore (E.begin_ db scanner);
         Sched.yield ();
         ignore (E.begin_ db writer);
         ignore (E.commit db scanner);
         ignore (E.commit db writer)));
  Alcotest.(check (list string)) "writer waited for scanner" [ "scan-done"; "write-done" ]
    (List.rev !order)

let test_cursor_stability_non_repeatable_read () =
  (* The price of cursor stability: re-reading a record behind the
     cursor can observe another transaction's committed write. *)
  ignore
    (with_db (fun db ->
         let first = ref (-1) and second = ref (-1) in
         let scanner =
           E.initiate db (fun () ->
               Cursor_stability.scan db [ oid 1 ] ~f:(fun _ v -> first := Value.to_int v);
               Sched.yield ();
               Sched.yield ();
               (* Re-read after the writer committed. *)
               second := Value.to_int (E.read_exn db (oid 1)))
         in
         let writer = E.initiate db (fun () -> E.write db (oid 1) (vi 99)) in
         ignore (E.begin_ db scanner);
         Sched.yield ();
         ignore (E.begin_ db writer);
         ignore (E.commit db writer);
         ignore (E.commit db scanner);
         Alcotest.(check int) "first read" 0 !first;
         Alcotest.(check int) "non-repeatable second read" 99 !second))

(* ------------------------------------------------------------------ *)
(* Workflow (3.2.3 + appendix)                                         *)

let wf_task db ~n ?(fails = false) label =
  Workflow.task label
    ~compensate:(fun () -> E.write db (oid n) (vi 0))
    (fun () ->
      if fails then failwith (label ^ " fails");
      E.write db (oid n) (vi 1))

let test_workflow_seq_success () =
  let db =
    with_db (fun db ->
        let o = Workflow.run db (Workflow.Seq [ Workflow.Task (wf_task db ~n:1 "a"); Workflow.Task (wf_task db ~n:2 "b") ]) in
        Alcotest.(check bool) "success" true o.Workflow.success;
        Alcotest.(check (list string)) "labels" [ "a"; "b" ] (Workflow.committed_labels o))
  in
  Alcotest.(check int) "both effects" 2 (geti db 1 + geti db 2)

let test_workflow_seq_failure_compensates_prefix () =
  let db =
    with_db (fun db ->
        let o =
          Workflow.run db
            (Workflow.Seq
               [
                 Workflow.Task (wf_task db ~n:1 "a");
                 Workflow.Task (wf_task db ~n:2 "b");
                 Workflow.Task (wf_task db ~n:3 ~fails:true "c");
               ])
        in
        Alcotest.(check bool) "failed" false o.Workflow.success;
        Alcotest.(check (list string)) "compensated newest-first" [ "b"; "a" ]
          (Workflow.compensated_labels o))
  in
  Alcotest.(check (list int)) "clean" [ 0; 0; 0 ] [ geti db 1; geti db 2; geti db 3 ]

let test_workflow_alternatives_fallback () =
  ignore
    (with_db (fun db ->
         let o =
           Workflow.run db
             (Workflow.Alternatives
                [
                  Workflow.Task (wf_task db ~n:1 ~fails:true "first");
                  Workflow.Task (wf_task db ~n:2 "second");
                ])
         in
         Alcotest.(check bool) "success" true o.Workflow.success;
         Alcotest.(check (list string)) "second won" [ "second" ] (Workflow.committed_labels o)))

let test_workflow_alternatives_rollback_partial_branch () =
  (* A composite alternative that half-succeeds is rolled back before
     the next alternative runs. *)
  let db =
    with_db (fun db ->
        let branch1 =
          Workflow.Seq
            [ Workflow.Task (wf_task db ~n:1 "b1-step1"); Workflow.Task (wf_task db ~n:2 ~fails:true "b1-step2") ]
        in
        let branch2 = Workflow.Task (wf_task db ~n:3 "b2") in
        let o = Workflow.run db (Workflow.Alternatives [ branch1; branch2 ]) in
        Alcotest.(check bool) "success via branch2" true o.Workflow.success)
  in
  Alcotest.(check int) "branch1 partial work compensated" 0 (geti db 1);
  Alcotest.(check int) "branch2 committed" 1 (geti db 3)

let test_workflow_optional_failure_skipped () =
  ignore
    (with_db (fun db ->
         let o =
           Workflow.run db
             (Workflow.Seq
                [
                  Workflow.Task (wf_task db ~n:1 "main");
                  Workflow.Optional (Workflow.Task (wf_task db ~n:2 ~fails:true "extra"));
                  Workflow.Task (wf_task db ~n:3 "after");
                ])
         in
         Alcotest.(check bool) "workflow survives optional failure" true o.Workflow.success;
         Alcotest.(check bool) "skip recorded" true
           (List.exists (function Workflow.Skipped _ -> true | _ -> false) o.Workflow.events)))

let test_workflow_race_first_completer_wins () =
  let db =
    with_db (fun db ->
        (* The first contestant completes immediately; the second
           yields first, so under FIFO the first always wins. *)
        let quick = Workflow.task "quick" (fun () -> E.write db (oid 1) (vi 1)) in
        let slow =
          Workflow.task "slow" (fun () ->
              Sched.yield ();
              Sched.yield ();
              E.write db (oid 2) (vi 1))
        in
        let o = Workflow.run db (Workflow.Race [ slow; quick ]) in
        Alcotest.(check bool) "success" true o.Workflow.success;
        Alcotest.(check bool) "quick chosen" true
          (List.exists (function Workflow.Chose "quick" -> true | _ -> false) o.Workflow.events))
  in
  Alcotest.(check int) "winner's effect" 1 (geti db 1);
  Alcotest.(check int) "loser aborted" 0 (geti db 2)

let test_workflow_race_all_fail () =
  ignore
    (with_db (fun db ->
         let o =
           Workflow.run db
             (Workflow.Race [ wf_task db ~n:1 ~fails:true "a"; wf_task db ~n:2 ~fails:true "b" ])
         in
         Alcotest.(check bool) "race failed" false o.Workflow.success))

let test_workflow_group () =
  let db =
    with_db (fun db ->
        let o =
          Workflow.run db
            (Workflow.Group [ wf_task db ~n:1 "g1"; wf_task db ~n:2 "g2" ])
        in
        Alcotest.(check bool) "group success" true o.Workflow.success)
  in
  Alcotest.(check int) "both committed atomically" 2 (geti db 1 + geti db 2)

let test_workflow_group_failure_atomic () =
  let db =
    with_db (fun db ->
        let o =
          Workflow.run db
            (Workflow.Group [ wf_task db ~n:1 "g1"; wf_task db ~n:2 ~fails:true "g2" ])
        in
        Alcotest.(check bool) "group failed" false o.Workflow.success)
  in
  Alcotest.(check int) "neither committed" 0 (geti db 1 + geti db 2)

(* Property: the appendix workflow under arbitrary availability — if
   the activity succeeds, exactly one flight and the hotel are booked;
   if it fails, nothing is booked.  The car never decides the outcome. *)
let prop_trip_invariant =
  QCheck2.Test.make ~name:"appendix trip invariant" ~count:150
    QCheck2.Gen.(array_size (return 6) bool)
    (fun avail ->
      (* indices: 0 Delta, 1 United, 2 American, 3 Equator, 4 National,
         5 Avis *)
      let db =
        with_db ~objects:8 (fun db ->
            let mk i label =
              Workflow.task label
                ~compensate:(fun () -> E.write db (oid (i + 1)) (vi 0))
                (fun () ->
                  if not avail.(i) then failwith "unavailable";
                  E.write db (oid (i + 1)) (vi 1))
            in
            let wf =
              Workflow.(
                Seq
                  [
                    Alternatives [ Task (mk 0 "Delta"); Task (mk 1 "United"); Task (mk 2 "American") ];
                    Task (mk 3 "Equator");
                    Optional (Race [ mk 4 "National"; mk 5 "Avis" ]);
                  ])
            in
            ignore (Workflow.run db wf))
      in
      let booked i = geti db (i + 1) = 1 in
      let flights = List.length (List.filter booked [ 0; 1; 2 ]) in
      let success_expected = (avail.(0) || avail.(1) || avail.(2)) && avail.(3) in
      if success_expected then flights = 1 && booked 3
      else flights = 0 && not (booked 3))

let () =
  Alcotest.run "asset_models"
    [
      ( "atomic",
        [
          Alcotest.test_case "commit" `Quick test_atomic_commit;
          Alcotest.test_case "abort on exception" `Quick test_atomic_abort_on_exception;
          Alcotest.test_case "retries" `Quick test_atomic_retries;
          Alcotest.test_case "retries exhausted" `Quick test_atomic_retries_exhausted;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "commit all" `Quick test_distributed_commit_all;
          Alcotest.test_case "abort all" `Quick test_distributed_abort_all;
          Alcotest.test_case "empty and singleton" `Quick test_distributed_empty_and_singleton;
        ] );
      ( "contingent",
        [
          Alcotest.test_case "first wins" `Quick test_contingent_first_wins;
          Alcotest.test_case "fallback order" `Quick test_contingent_fallback_order;
          Alcotest.test_case "all fail" `Quick test_contingent_all_fail;
          Alcotest.test_case "declarative exclusion" `Quick test_contingent_declarative_exclusion;
        ] );
      ( "nested",
        [
          Alcotest.test_case "success delegates up" `Quick test_nested_success_delegates_up;
          Alcotest.test_case "child failure aborts parent" `Quick
            test_nested_child_failure_aborts_parent;
          Alcotest.test_case "report policy" `Quick test_nested_report_policy_parent_survives;
          Alcotest.test_case "child sees parent objects" `Quick test_nested_child_sees_parent_objects;
          Alcotest.test_case "three levels" `Quick test_nested_three_levels;
          Alcotest.test_case "abort containment" `Quick
            test_nested_abort_containment_leaves_prior_siblings;
          Alcotest.test_case "sub outside txn rejected" `Quick
            test_nested_sub_outside_transaction_rejected;
        ] );
      ( "split_join",
        [
          Alcotest.test_case "independent outcomes" `Quick test_split_independent_outcomes;
          Alcotest.test_case "split runs new work" `Quick test_split_runs_new_work;
          Alcotest.test_case "join merges" `Quick test_join_merges_into_target;
        ] );
      ( "saga",
        [
          Alcotest.test_case "commit in order" `Quick test_saga_commit_in_order;
          Alcotest.test_case "compensates in reverse" `Quick test_saga_compensates_in_reverse;
          Alcotest.test_case "partial results visible" `Quick
            test_saga_component_commits_are_visible_early;
          Alcotest.test_case "first step fails" `Quick test_saga_first_step_fails_no_compensation;
          Alcotest.test_case "rejects missing compensation" `Quick
            test_saga_rejects_missing_compensation;
          Alcotest.test_case "compensation retried" `Quick test_saga_compensation_retried;
          QCheck_alcotest.to_alcotest prop_saga_failure_leaves_clean_state;
        ] );
      ( "chained",
        [
          Alcotest.test_case "commits and carries" `Quick test_chained_commits_links_and_carries;
          Alcotest.test_case "carried state invisible" `Quick
            test_chained_carried_state_invisible_between_links;
          Alcotest.test_case "broken link" `Quick test_chained_broken_link_rolls_back_carry_only;
          Alcotest.test_case "empty and singleton" `Quick test_chained_empty_and_singleton;
        ] );
      ( "coop",
        [
          Alcotest.test_case "interleaved edits" `Quick test_coop_interleaved_edits;
          Alcotest.test_case "commit ordered" `Quick test_coop_commit_ordered;
          Alcotest.test_case "group abort discards both" `Quick test_coop_group_abort_discards_both;
        ] );
      ( "cursor_stability",
        [
          Alcotest.test_case "writer proceeds behind cursor" `Quick
            test_cursor_stability_writer_proceeds_behind_cursor;
          Alcotest.test_case "repeatable read blocks writer" `Quick
            test_repeatable_read_blocks_writer_until_commit;
          Alcotest.test_case "non-repeatable read" `Quick test_cursor_stability_non_repeatable_read;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "seq success" `Quick test_workflow_seq_success;
          Alcotest.test_case "seq failure compensates" `Quick
            test_workflow_seq_failure_compensates_prefix;
          Alcotest.test_case "alternatives fallback" `Quick test_workflow_alternatives_fallback;
          Alcotest.test_case "alternatives rollback partial branch" `Quick
            test_workflow_alternatives_rollback_partial_branch;
          Alcotest.test_case "optional failure skipped" `Quick test_workflow_optional_failure_skipped;
          Alcotest.test_case "race first completer wins" `Quick
            test_workflow_race_first_completer_wins;
          Alcotest.test_case "race all fail" `Quick test_workflow_race_all_fail;
          Alcotest.test_case "group" `Quick test_workflow_group;
          Alcotest.test_case "group failure atomic" `Quick test_workflow_group_failure_atomic;
          QCheck_alcotest.to_alcotest prop_trip_invariant;
        ] );
    ]
