(* Tests for the section-4.1 latch: S/X modes, the S-counter, and the
   X-bit that blocks new readers while a writer waits. *)

module Latch = Asset_latch.Latch

let test_s_sharing () =
  let l = Latch.create () in
  Alcotest.(check bool) "first S" true (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "second S" true (Latch.try_acquire l Latch.S);
  Alcotest.(check int) "s_count" 2 (Latch.s_count l);
  Latch.release l Latch.S;
  Latch.release l Latch.S;
  Alcotest.(check int) "released" 0 (Latch.s_count l)

let test_x_exclusive () =
  let l = Latch.create () in
  Alcotest.(check bool) "X" true (Latch.try_acquire l Latch.X);
  Alcotest.(check bool) "second X refused" false (Latch.try_acquire l Latch.X);
  Alcotest.(check bool) "S refused under X" false (Latch.try_acquire l Latch.S);
  Latch.release l Latch.X;
  Alcotest.(check bool) "X after release" true (Latch.try_acquire l Latch.X)

let test_x_blocked_by_s () =
  let l = Latch.create () in
  Alcotest.(check bool) "S" true (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "X refused under S" false (Latch.try_acquire l Latch.X);
  Latch.release l Latch.S;
  Alcotest.(check bool) "X after S released" true (Latch.try_acquire l Latch.X)

(* "The X-bit blocks new readers from setting the latch, thus
   preventing starvation of update transactions."  A spinning writer
   must starve out *new* readers even while current readers hold the
   latch. *)
let test_x_bit_blocks_new_readers () =
  let l = Latch.create () in
  assert (Latch.try_acquire l Latch.S);
  (* A writer arrives and spins; after one spin round the reader
     releases, letting the writer in.  New readers are refused while
     the writer waits. *)
  let reader_refused = ref false in
  let rounds = ref 0 in
  Latch.acquire l Latch.X ~spin:(fun () ->
      incr rounds;
      if Latch.x_waiting l && not (Latch.try_acquire l Latch.S) then reader_refused := true;
      if !rounds >= 1 then Latch.release l Latch.S);
  Alcotest.(check bool) "reader refused while X waits" true !reader_refused;
  Alcotest.(check bool) "writer finally holds" true (Latch.x_held l);
  Alcotest.(check bool) "x_waiting cleared" false (Latch.x_waiting l)

let test_acquire_spins_until_granted () =
  let l = Latch.create () in
  assert (Latch.try_acquire l Latch.X);
  let spins = ref 0 in
  Latch.acquire l Latch.S ~spin:(fun () ->
      incr spins;
      if !spins = 3 then Latch.release l Latch.X);
  Alcotest.(check int) "spun three times" 3 !spins;
  Alcotest.(check int) "S held" 1 (Latch.s_count l);
  Alcotest.(check bool) "spin counter" true (Latch.spin_count l >= 3)

let test_with_latch_releases_on_exception () =
  let l = Latch.create () in
  (try Latch.with_latch l Latch.X (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released after exception" false (Latch.x_held l);
  Latch.with_latch l Latch.S (fun () ->
      Alcotest.(check int) "reacquirable" 1 (Latch.s_count l));
  Alcotest.(check int) "released after return" 0 (Latch.s_count l)

let test_release_underflow_rejected () =
  let l = Latch.create () in
  Alcotest.check_raises "S underflow" (Invalid_argument "Latch.release: no S holder") (fun () ->
      Latch.release l Latch.S);
  Alcotest.check_raises "X underflow" (Invalid_argument "Latch.release: no X holder") (fun () ->
      Latch.release l Latch.X)

let test_stats_and_pp () =
  let l = Latch.create ~name:"obj1" () in
  ignore (Latch.try_acquire l Latch.S);
  Alcotest.(check int) "acquisitions" 1 (Latch.acquisitions l);
  Alcotest.(check string) "name" "obj1" (Latch.name l);
  let s = Format.asprintf "%a" Latch.pp l in
  Alcotest.(check bool) "pp shows S count" true (String.length s > 0)

let prop_try_acquire_never_coexists =
  (* Random interleavings of try-acquire/release never leave the latch
     with both an X holder and S holders. *)
  QCheck2.Test.make ~name:"no S+X coexistence" ~count:500
    QCheck2.Gen.(list (int_range 0 3))
    (fun ops ->
      let l = Latch.create () in
      List.iter
        (fun op ->
          match op with
          | 0 -> ignore (Latch.try_acquire l Latch.S)
          | 1 -> ignore (Latch.try_acquire l Latch.X)
          | 2 -> if Latch.s_count l > 0 then Latch.release l Latch.S
          | _ -> if Latch.x_held l then Latch.release l Latch.X)
        ops;
      not (Latch.x_held l && Latch.s_count l > 0))

let () =
  Alcotest.run "asset_latch"
    [
      ( "latch",
        [
          Alcotest.test_case "S sharing" `Quick test_s_sharing;
          Alcotest.test_case "X exclusive" `Quick test_x_exclusive;
          Alcotest.test_case "X blocked by S" `Quick test_x_blocked_by_s;
          Alcotest.test_case "X-bit blocks new readers" `Quick test_x_bit_blocks_new_readers;
          Alcotest.test_case "acquire spins until granted" `Quick test_acquire_spins_until_granted;
          Alcotest.test_case "with_latch exception safety" `Quick test_with_latch_releases_on_exception;
          Alcotest.test_case "release underflow" `Quick test_release_underflow_rejected;
          Alcotest.test_case "stats and pp" `Quick test_stats_and_pp;
          QCheck_alcotest.to_alcotest prop_try_acquire_never_coexists;
        ] );
    ]
