(* Tests for the private-workspace operating mode. *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module W = Asset_core.Workspace
module Sched = Asset_sched.Scheduler
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Log = Asset_wal.Log
module Record = Asset_wal.Record

let oid = Oid.of_int
let vi = Value.of_int
let with_db ?(objects = 8) program = R.with_fresh_db ~objects program
let geti db o = Value.to_int (Store.read_exn (E.store db) (oid o))

let count_update_records db =
  let n = ref 0 in
  Log.iter (E.log db) (fun _ r -> match r with Record.Update _ -> incr n | _ -> ());
  !n

let test_checkout_modify_checkin () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               W.with_workspace db (fun w ->
                   W.set w (oid 1) (vi 10);
                   W.update w (oid 2) (fun _ -> vi 20)))))
  in
  Alcotest.(check int) "ob1 checked in" 10 (geti db 1);
  Alcotest.(check int) "ob2 checked in" 20 (geti db 2)

let test_private_updates_one_log_record_each () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               W.with_workspace db (fun w ->
                   (* 100 private modifications of the same object... *)
                   for i = 1 to 100 do
                     W.update w (oid 1) (fun _ -> vi i)
                   done))))
  in
  (* ...but exactly one logged update. *)
  Alcotest.(check int) "single update record" 1 (count_update_records db);
  Alcotest.(check int) "final value" 100 (geti db 1)

let test_shared_mode_logs_every_write () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               for i = 1 to 100 do
                 E.write db (oid 1) (vi i)
               done)))
  in
  Alcotest.(check int) "100 update records" 100 (count_update_records db)

let test_clean_copies_not_written_back () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               W.with_workspace db (fun w ->
                   W.check_out w (oid 1);
                   (* read-only: no write-back *)
                   Alcotest.(check int) "copy readable" 0 (Value.to_int (W.get_exn w (oid 1)));
                   W.set w (oid 2) (vi 2);
                   Alcotest.(check int) "one dirty" 1 (W.dirty_count w)))))
  in
  Alcotest.(check int) "only the dirty object logged" 1 (count_update_records db)

let test_abort_discards_private_work () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               W.with_workspace db (fun w ->
                   W.set w (oid 1) (vi 99);
                   failwith "abort before check-in"))))
  in
  Alcotest.(check int) "private work vanished" 0 (geti db 1);
  (* Nothing was logged: nothing to undo. *)
  Alcotest.(check int) "no update records" 0 (count_update_records db)

let test_checkin_then_abort_undoes () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               let w = W.create db in
               W.set w (oid 1) (vi 99);
               ignore (W.check_in w);
               failwith "abort after check-in")))
  in
  Alcotest.(check int) "checked-in work undone by abort" 0 (geti db 1)

let test_update_intent_takes_write_lock () =
  (* With `Update intent, the lock is exclusive from check-out: a
     concurrent reader must wait even before any write-back. *)
  let order = ref [] in
  ignore
    (with_db (fun db ->
         let owner =
           E.initiate db (fun () ->
               let w = W.create db in
               W.check_out ~intent:`Update w (oid 1);
               Sched.yield ();
               W.set w (oid 1) (vi 5);
               ignore (W.check_in w);
               order := "owner-done" :: !order)
         in
         let reader =
           E.initiate db (fun () ->
               let v = E.read_exn db (oid 1) in
               order := Printf.sprintf "reader-%d" (Value.to_int v) :: !order)
         in
         ignore (E.begin_ db owner);
         ignore (E.begin_ db reader);
         ignore (E.commit db owner);
         ignore (E.commit db reader)));
  Alcotest.(check (list string)) "reader waited for checkout owner"
    [ "owner-done"; "reader-5" ] (List.rev !order)

let test_foreign_transaction_rejected () =
  ignore
    (with_db (fun db ->
         let ws = ref None in
         let t1 = E.initiate db (fun () -> ws := Some (W.create db)) in
         ignore (E.begin_ db t1);
         ignore (E.wait db t1);
         let t2 =
           E.initiate db (fun () ->
               match W.set (Option.get !ws) (oid 1) (vi 1) with
               | exception Invalid_argument _ -> ()
               | () -> Alcotest.fail "expected ownership check")
         in
         ignore (E.begin_ db t2);
         ignore (E.commit db t2);
         ignore (E.commit db t1)))

let test_discard () =
  let db =
    with_db (fun db ->
        ignore
          (Asset_models.Atomic.run db (fun () ->
               let w = W.create db in
               W.set w (oid 1) (vi 1);
               W.discard w;
               Alcotest.(check int) "nothing dirty" 0 (W.dirty_count w);
               ignore (W.check_in w))))
  in
  Alcotest.(check int) "discarded work not written" 0 (geti db 1)

let test_workspace_outside_transaction_rejected () =
  ignore
    (with_db (fun db ->
         match W.create db with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "expected rejection"))

let prop_workspace_equals_shared_mode =
  (* The same random update program produces the same final state in
     workspace mode and in shared-cache mode. *)
  QCheck2.Test.make ~name:"workspace mode equivalent to shared mode" ~count:100
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 1 5) (int_range 0 100)))
    (fun updates ->
      let run_shared () =
        with_db (fun db ->
            ignore
              (Asset_models.Atomic.run db (fun () ->
                   List.iter (fun (o, v) -> E.write db (oid o) (vi v)) updates)))
      in
      let run_workspace () =
        with_db (fun db ->
            ignore
              (Asset_models.Atomic.run db (fun () ->
                   W.with_workspace db (fun w ->
                       List.iter (fun (o, v) -> W.set w (oid o) (vi v)) updates))))
      in
      Store.equal_content (E.store (run_shared ())) (E.store (run_workspace ())))

let () =
  Alcotest.run "asset_workspace"
    [
      ( "workspace",
        [
          Alcotest.test_case "checkout/modify/checkin" `Quick test_checkout_modify_checkin;
          Alcotest.test_case "one log record per dirty object" `Quick
            test_private_updates_one_log_record_each;
          Alcotest.test_case "shared mode logs every write" `Quick
            test_shared_mode_logs_every_write;
          Alcotest.test_case "clean copies skipped" `Quick test_clean_copies_not_written_back;
          Alcotest.test_case "abort discards private work" `Quick test_abort_discards_private_work;
          Alcotest.test_case "check-in then abort undoes" `Quick test_checkin_then_abort_undoes;
          Alcotest.test_case "update intent locks" `Quick test_update_intent_takes_write_lock;
          Alcotest.test_case "foreign transaction rejected" `Quick
            test_foreign_transaction_rejected;
          Alcotest.test_case "discard" `Quick test_discard;
          Alcotest.test_case "outside transaction rejected" `Quick
            test_workspace_outside_transaction_rejected;
          QCheck_alcotest.to_alcotest prop_workspace_equals_shared_mode;
        ] );
    ]
