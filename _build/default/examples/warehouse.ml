(* Warehouse counters: semantic concurrency (the paper's section-5
   plan) over transactional collections.

   "We believe that many operations in an object-oriented database may
   commute.  For example, operations to increase an existing employee's
   salary and to add a new employee to a department commute."

   A warehouse keeps one counter object per product, organized in a
   `products` collection.  Receiving clerks increment stock levels
   concurrently; because increments commute, their transactions hold
   compatible Increment locks and never block one another — where the
   equivalent read-modify-write transactions would serialize (and
   deadlock on upgrades).  A failed delivery aborts with a *logical*
   undo, so concurrent clerks' increments survive.  Finally an
   inventory report scans the collection with cursor stability, letting
   deliveries continue behind the cursor.

   Run with:  dune exec examples/warehouse.exe *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module Collection = Asset_core.Collection
module Sched = Asset_sched.Scheduler
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store

let n_products = 8
let product i = Oid.of_int i

let () =
  let store = Asset_storage.Heap_store.store () in
  let db = E.create store in

  (* Set up the product catalog inside a transaction. *)
  R.run_exn db (fun () ->
      ignore
        (Asset_models.Atomic.run db (fun () ->
             let products = Collection.create db ~name:"products" () in
             for i = 1 to n_products do
               E.write db (product i) (Value.of_int 100);
               ignore (Collection.add db products (product i))
             done)));

  (* Concurrent deliveries: every clerk increments several product
     counters.  One clerk's truck is turned away (abort). *)
  R.run_exn db (fun () ->
      let clerk ~fails deltas () =
        List.iter
          (fun (p, qty) ->
            E.increment db (product p) qty;
            Sched.yield ())
          deltas;
        if fails then failwith "delivery rejected at the dock"
      in
      let tids =
        [
          E.initiate db (clerk ~fails:false [ (1, 10); (2, 10); (3, 10) ]);
          E.initiate db (clerk ~fails:false [ (1, 5); (4, 5) ]);
          (* This one aborts: its increments must vanish without
             disturbing the others', even on the shared products. *)
          E.initiate db (clerk ~fails:true [ (1, 1000); (2, 1000) ]);
          E.initiate db (clerk ~fails:false [ (2, 7); (5, 7) ]);
        ]
      in
      List.iter (fun t -> ignore (E.begin_ db t)) tids;
      List.iter (fun t -> E.spawn db ~label:"commit" (fun () -> ignore (E.commit db t))) tids;
      E.await_terminated db tids;
      Format.printf "deliveries: %d committed, %d aborted, %d lock waits@."
        (List.assoc "commits" (E.stats db) - 1) (* minus the setup txn *)
        (List.assoc "aborts" (E.stats db))
        (List.assoc "lock_waits" (E.stats db)));

  (* Check stock levels: the aborted clerk's 1000s are gone, everything
     else arrived. *)
  let stock i = Value.to_int (Store.read_exn store (product i)) in
  Format.printf "stock: p1=%d p2=%d p3=%d p4=%d p5=%d@." (stock 1) (stock 2) (stock 3)
    (stock 4) (stock 5);
  assert (stock 1 = 115);
  assert (stock 2 = 117);
  assert (stock 3 = 110);
  assert (stock 4 = 105);
  assert (stock 5 = 107);

  (* Inventory report with cursor stability: a delivery lands on a
     product the cursor has already passed, while the scan is live. *)
  R.run_exn db (fun () ->
      let total = ref 0 in
      let scanner =
        E.initiate db (fun () ->
            let products = Option.get (Collection.find db ~name:"products" ()) in
            Collection.scan ~stability:`Cursor db products ~f:(fun _ v ->
                total := !total + Value.to_int v;
                Sched.yield ()))
      in
      let late_delivery = E.initiate db (fun () -> E.increment db (product 1) 50) in
      ignore (E.begin_ db scanner);
      Sched.yield ();
      ignore (E.begin_ db late_delivery);
      (* Commit each from its own fiber: the delivery may have to wait
         for the cursor to pass its product. *)
      E.spawn db ~label:"commit-delivery" (fun () -> ignore (E.commit db late_delivery));
      assert (E.commit db scanner);
      E.await_terminated db [ scanner; late_delivery ];
      assert (E.is_committed db late_delivery);
      Format.printf "inventory report total: %d (late delivery landed during the scan)@." !total);
  assert (stock 1 = 165);
  Format.printf "warehouse: OK@."
