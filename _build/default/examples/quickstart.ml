(* Quickstart: atomic transactions over the ASSET primitives.

   Mirrors section 3.1.1 of the paper — the O++ `trans { ... }` block
   and its translation into initiate / begin / commit — then shows the
   same thing through the [Atomic] combinator, and finishes with a
   contended bank workload demonstrating that strict two-phase locking
   preserves invariants under interleaving.

   Run with:  dune exec examples/quickstart.exe *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Bank = Asset_workload.Bank

let checking = Oid.of_int 1
let savings = Oid.of_int 2

let () =
  let store = Asset_storage.Heap_store.store () in
  Store.write store checking (Value.of_int 1_000);
  Store.write store savings (Value.of_int 5_000);
  let db = E.create store in

  Runtime.run_exn db (fun () ->
      (* The paper's translation of an atomic transaction, primitive by
         primitive:

             tid t;
             if ((t = initiate(f)) != NULL) {
               if (begin(t)) {
                 commit(t);
               }
             }                                                        *)
      let transfer_100 () =
        let c = Value.to_int (E.read_exn db checking) in
        let s = Value.to_int (E.read_exn db savings) in
        E.write db checking (Value.of_int (c - 100));
        E.write db savings (Value.of_int (s + 100))
      in
      let t = E.initiate db transfer_100 in
      assert (not (Asset_util.Id.Tid.is_null t));
      assert (E.begin_ db t);
      let ok = E.commit db t in
      Format.printf "primitive-level transfer: %s@." (if ok then "committed" else "aborted");

      (* The same transaction through the Atomic combinator (what the
         O++ compiler would emit for you). *)
      (match Asset_models.Atomic.run db transfer_100 with
      | `Committed -> Format.printf "combinator transfer: committed@."
      | `Aborted -> Format.printf "combinator transfer: aborted@."
      | `Initiate_failed -> Format.printf "combinator transfer: initiate failed@.");

      (* Failure atomicity: a body that raises is aborted and all its
         writes are undone from the before-image log. *)
      let r =
        Asset_models.Atomic.run db (fun () ->
            E.write db checking (Value.of_int 0);
            failwith "card declined")
      in
      assert (r = `Aborted));

  let balance oid = Value.to_int (Store.read_exn store oid) in
  Format.printf "checking=%d savings=%d (total %d)@." (balance checking) (balance savings)
    (balance checking + balance savings);
  assert (balance checking + balance savings = 6_000);

  (* A contended workload: 200 concurrent random transfers across 32
     accounts.  Deadlock victims are aborted and rolled back; the total
     balance is preserved regardless. *)
  let store2 = Asset_storage.Heap_store.store () in
  Bank.setup store2 ~accounts:32 ~balance:1_000;
  let db2 = E.create store2 in
  Runtime.run_exn db2 (fun () ->
      let committed, aborted = Bank.run_transfers db2 ~accounts:32 ~n_txns:200 in
      Format.printf "bank workload: %d committed, %d deadlock victims@." committed aborted);
  let total = Bank.total db2 ~accounts:32 in
  Format.printf "bank total after workload: %d (expected 32000)@." total;
  assert (total = 32_000);
  Format.printf "quickstart: OK@."
