(* The trip-arrangement nested transaction of section 3.1.4, translated
   primitive-by-primitive as the paper does it:

       void trip() {
         tid t1 = initiate(make_airline_reservation);
         permit(self(), t1);  begin(t1);
         if (!wait(t1)) abort(self());
         delegate(t1, self());  commit(t1);
         ... same for the hotel ...
       }

   and then the same trip through the [Nested] combinators.  Both the
   success path and the hotel-failure path (airline effects undone with
   the whole trip) are exercised.

   Run with:  dune exec examples/nested_trip.exe *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Nested = Asset_models.Nested

let airline_seats = Oid.of_int 1
let hotel_rooms = Oid.of_int 2

let get db oid = Value.to_int (E.read_exn db oid)
let take db oid what =
  let n = get db oid in
  if n <= 0 then failwith (what ^ " unavailable");
  E.write db oid (Value.of_int (n - 1))

let make_airline_reservation db () = take db airline_seats "airline seat"
let make_hotel_reservation db () = take db hotel_rooms "hotel room"

(* The paper's trip() function, literally. *)
let trip db () =
  let t1 = E.initiate db (make_airline_reservation db) in
  E.permit db ~from_:(E.self db) ~to_:t1;
  ignore (E.begin_ db t1);
  if not (E.wait db t1) then ignore (E.abort db (E.self db));
  E.delegate db ~from_:t1 ~to_:(E.self db);
  ignore (E.commit db t1);

  let t2 = E.initiate db (make_hotel_reservation db) in
  E.permit db ~from_:(E.self db) ~to_:t2;
  ignore (E.begin_ db t2);
  if not (E.wait db t2) then ignore (E.abort db (E.self db));
  E.delegate db ~from_:t2 ~to_:(E.self db);
  ignore (E.commit db t2)

let fresh ~seats ~rooms =
  let store = Asset_storage.Heap_store.store () in
  Store.write store airline_seats (Value.of_int seats);
  Store.write store hotel_rooms (Value.of_int rooms);
  (store, E.create store)

let () =
  (* Success: one seat and one room are taken, atomically. *)
  let store, db = fresh ~seats:3 ~rooms:3 in
  Runtime.run_exn db (fun () ->
      let t = E.initiate db (trip db) in
      ignore (E.begin_ db t);
      assert (E.commit db t));
  assert (Value.to_int (Store.read_exn store airline_seats) = 2);
  assert (Value.to_int (Store.read_exn store hotel_rooms) = 2);
  Format.printf "trip 1: committed (2 seats, 2 rooms left)@.";

  (* Hotel full: the airline reservation made by the subtransaction
     (already delegated to the trip) is undone when the trip aborts —
     "The effects of the airline reservation transaction must be undone
     in that case." *)
  let store, db = fresh ~seats:3 ~rooms:0 in
  Runtime.run_exn db (fun () ->
      let t = E.initiate db (trip db) in
      ignore (E.begin_ db t);
      assert (not (E.commit db t)));
  assert (Value.to_int (Store.read_exn store airline_seats) = 3);
  assert (Value.to_int (Store.read_exn store hotel_rooms) = 0);
  Format.printf "trip 2: aborted, airline reservation undone@.";

  (* The same trip via the Nested combinators, three levels deep:
     trip -> (airline, hotel -> (room, breakfast)). *)
  let store, db = fresh ~seats:1 ~rooms:1 in
  let breakfast = Oid.of_int 3 in
  Store.write store breakfast (Value.of_int 0);
  let r =
    ref (`Aborted : Asset_models.Atomic.result)
  in
  Runtime.run_exn db (fun () ->
      r :=
        Nested.root db (fun () ->
            Nested.sub_exn db (make_airline_reservation db);
            Nested.sub_exn db (fun () ->
                take db hotel_rooms "hotel room";
                Nested.sub_exn db (fun () -> E.write db breakfast (Value.of_int 1)))));
  assert (!r = `Committed);
  assert (Value.to_int (Store.read_exn store airline_seats) = 0);
  assert (Value.to_int (Store.read_exn store breakfast) = 1);
  Format.printf "trip 3: nested combinators committed three levels@.";

  (* A failed sibling subtransaction with the [`Report] policy: the
     parent survives and books a fallback instead. *)
  let store, db = fresh ~seats:1 ~rooms:0 in
  let fallback = Oid.of_int 4 in
  Store.write store fallback (Value.of_int 0);
  Runtime.run_exn db (fun () ->
      let r =
        Nested.root db (fun () ->
            Nested.sub_exn db (make_airline_reservation db);
            if not (Nested.sub db (make_hotel_reservation db)) then
              Nested.sub_exn db (fun () -> E.write db fallback (Value.of_int 1)))
      in
      assert (r = `Committed));
  assert (Value.to_int (Store.read_exn store airline_seats) = 0);
  assert (Value.to_int (Store.read_exn store fallback) = 1);
  Format.printf "trip 4: hotel failed, fallback booked, trip committed@.";
  Format.printf "nested_trip: OK@."
