examples/travel_workflow.ml: Asset_core Asset_models Asset_storage Asset_util Format Hashtbl List Option String
