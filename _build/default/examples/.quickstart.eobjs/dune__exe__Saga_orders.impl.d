examples/saga_orders.ml: Asset_core Asset_models Asset_storage Asset_util Format Option
