examples/warehouse.mli:
