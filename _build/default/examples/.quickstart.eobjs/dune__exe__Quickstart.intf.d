examples/quickstart.mli:
