examples/quickstart.ml: Asset_core Asset_models Asset_storage Asset_util Asset_workload Format
