examples/warehouse.ml: Asset_core Asset_models Asset_sched Asset_storage Asset_util Format List Option
