examples/travel_workflow.mli:
