examples/cad_cooperative.ml: Asset_core Asset_models Asset_sched Asset_storage Asset_util Format Option Printf String
