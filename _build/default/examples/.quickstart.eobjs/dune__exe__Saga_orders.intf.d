examples/saga_orders.mli:
