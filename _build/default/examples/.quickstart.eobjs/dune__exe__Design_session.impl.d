examples/design_session.ml: Asset_core Asset_models Asset_sched Asset_storage Asset_util Chained Format Split_join
