examples/cad_cooperative.mli:
