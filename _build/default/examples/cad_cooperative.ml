(* Cooperating transactions (section 3.2.1): two designers working on a
   shared design object.

   "Such interactions would occur, for example, in cooperative design
   environments wherein changes to the (design) object being shared
   will be committed only if the final state of the object is
   considered to be acceptable in the eyes of the cooperating
   designers."

   Two designer transactions alternately refine the same design object.
   Without permits, the second designer would block until the first
   commits; with the permit ping-pong plus a group-commit dependency,
   they interleave edits and commit (or abort) as one.

   Run with:  dune exec examples/cad_cooperative.exe *)

module E = Asset_core.Engine
module Runtime = Asset_core.Runtime
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Coop = Asset_models.Coop
module Sched = Asset_sched.Scheduler

let design = Oid.of_int 1

let current db = Value.to_string (Option.value (E.read db design) ~default:(Value.of_string ""))

(* A designer appends its tagged refinements to the design, yielding
   between rounds so the two interleave. *)
let designer db name rounds () =
  for i = 1 to rounds do
    let v = current db in
    E.write db design (Value.of_string (v ^ Printf.sprintf "[%s%d]" name i));
    Sched.yield ()
  done

let run_session ~cooperative =
  let store = Asset_storage.Heap_store.store () in
  Store.write store design (Value.of_string "");
  let db = E.create store in
  Runtime.run_exn db (fun () ->
      let alice = E.initiate db (designer db "A" 3) in
      let bob = E.initiate db (designer db "B" 3) in
      if cooperative then Coop.pair db ~ti:alice ~tj:bob ~objs:[ design ] ~coupling:`Group;
      ignore (E.begin_ db alice);
      ignore (E.begin_ db bob);
      (* Committing one side of the group commits both. *)
      assert (E.commit db alice);
      assert (E.commit db bob));
  Store.read_exn store design |> Value.to_string

let () =
  (* Cooperative session: edits interleave. *)
  let shared = run_session ~cooperative:true in
  Format.printf "cooperative session result: %s@." shared;
  (* Both designers contributed before either committed. *)
  assert (String.length shared = String.length "[A1][B1][A2][B2][A3][B3]");
  let contains s sub =
    let n = String.length sub in
    let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
    loop 0
  in
  assert (contains shared "[A1]" && contains shared "[B1]");

  (* Control: without permits the same two designers serialize — Bob
     blocks on Alice's write lock until she commits, so the result is
     all of Alice then all of Bob (or vice versa). *)
  let store = Asset_storage.Heap_store.store () in
  Store.write store design (Value.of_string "");
  let db = E.create store in
  Runtime.run_exn db (fun () ->
      let alice = E.initiate db (designer db "A" 3) in
      let bob = E.initiate db (designer db "B" 3) in
      ignore (E.begin_ db alice);
      ignore (E.begin_ db bob);
      assert (E.commit db alice);
      assert (E.commit db bob));
  let serialized = Store.read_exn store design |> Value.to_string in
  Format.printf "serialized session result: %s@." serialized;
  assert (serialized = "[A1][A2][A3][B1][B2][B3]");

  (* Group abort: if one designer walks away (aborts), the whole
     cooperative session is discarded — both or neither. *)
  let store = Asset_storage.Heap_store.store () in
  Store.write store design (Value.of_string "baseline");
  let db = E.create store in
  Runtime.run_exn db (fun () ->
      let alice = E.initiate db (designer db "A" 2) in
      let bob = E.initiate db (designer db "B" 2) in
      Coop.pair db ~ti:alice ~tj:bob ~objs:[ design ] ~coupling:`Group;
      ignore (E.begin_ db alice);
      ignore (E.begin_ db bob);
      ignore (E.wait db alice);
      ignore (E.wait db bob);
      assert (E.abort db bob);
      assert (not (E.commit db alice)) (* GC: neither commits *));
  let after = Store.read_exn store design |> Value.to_string in
  Format.printf "after group abort: %s@." after;
  assert (after = "baseline");
  Format.printf "cad_cooperative: OK@."
