(* A long-running design session: split/join, savepoints, and chained
   transactions on one open-ended activity.

   Split transactions were proposed for exactly this setting
   ("Split-Transactions for Open-Ended activities", the paper's
   reference [19]): a designer works for hours, and wants to release
   finished parts of the work without ending the session.

   The session below:
     1. works on two components of a design;
     2. *splits off* the finished component so it can commit
        immediately (reviewers can see it) while the session continues;
     3. uses a *savepoint* to explore a risky variant and roll it back
        without losing the session;
     4. finishes as a *chain*, carrying the in-progress component
        across a commit boundary so the intermediate state never
        becomes visible.

   Run with:  dune exec examples/design_session.exe *)

module E = Asset_core.Engine
module R = Asset_core.Runtime
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Store = Asset_storage.Store
module Sched = Asset_sched.Scheduler
open Asset_models

let chassis = Oid.of_int 1
let engine_part = Oid.of_int 2

let set db oid s = E.write db oid (Value.of_string s)
let show store oid =
  match Store.read store oid with Some v -> Value.to_string v | None -> "<none>"

let () =
  let store = Asset_storage.Heap_store.store () in
  Store.write store chassis (Value.of_string "chassis-v0");
  Store.write store engine_part (Value.of_string "engine-v0");
  let db = E.create store in

  R.run_exn db (fun () ->
      (* Part 1: the session starts, edits both components, and splits
         the finished chassis off for early release. *)
      let split_tid = ref Tid.null in
      let session =
        E.initiate db (fun () ->
            set db chassis "chassis-v1-final";
            set db engine_part "engine-v1-draft";
            (* Release the chassis without ending the session. *)
            (match Split_join.split_idle ~objs:[ chassis ] db with
            | Some s -> split_tid := s
            | None -> failwith "split failed");
            (* Part 2: explore a risky engine variant under a
               savepoint. *)
            let sp = E.savepoint db in
            set db engine_part "engine-v2-experimental-turbo";
            (* ... analysis says no. Roll the variant back; the session
               (and its locks) survive. *)
            E.rollback_to db sp)
      in
      ignore (E.begin_ db session);
      ignore (E.wait db session);
      (* The finished chassis commits now, mid-session. *)
      assert (E.commit db !split_tid);
      Format.printf "released early:  chassis = %s@." (show store chassis);
      assert (show store chassis = "chassis-v1-final");

      (* A reviewer reads the chassis immediately — but would block on
         the engine, which the session still holds. *)
      let reviewer =
        E.initiate db (fun () ->
            let v = E.read_exn db chassis in
            assert (Value.to_string v = "chassis-v1-final"))
      in
      ignore (E.begin_ db reviewer);
      assert (E.commit db reviewer);
      Format.printf "reviewer saw the released chassis while the session continued@.";

      (* The session commits; its engine draft (savepoint rolled the
         turbo variant back) becomes durable. *)
      assert (E.commit db session);
      Format.printf "session committed: engine = %s@." (show store engine_part);
      assert (show store engine_part = "engine-v1-draft"));

  (* Part 3: finishing touches as a chained transaction — validate,
     then sign off, carrying the engine part across the boundary so the
     not-yet-signed state is never visible. *)
  R.run_exn db (fun () ->
      let r =
        Chained.run db
          ~carry:(fun _ -> [ engine_part ])
          [
            (fun () -> set db engine_part "engine-v2-validated");
            (fun () ->
              let v = Value.to_string (E.read_exn db engine_part) in
              assert (v = "engine-v2-validated");
              set db engine_part "engine-v2-signed-off");
          ]
      in
      assert (Chained.committed r));
  Format.printf "chain finished:   engine = %s@." (show store engine_part);
  assert (show store engine_part = "engine-v2-signed-off");
  Format.printf "design_session: OK@."
