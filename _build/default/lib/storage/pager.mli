(** The pager: a file of fixed-size pages.

    Page 0 holds the store header (magic, page size, page count); data
    pages are numbered from 1.  Durability comes from {!sync}
    (fsync). *)

type t

val default_page_size : int

val create : ?page_size:int -> string -> t
(** Create (truncating) a page file. *)

val open_existing : string -> t
(** Raises [Invalid_argument] when the file is not an ASSET page
    file. *)

val page_size : t -> int
val npages : t -> int
val path : t -> string

val alloc_page : t -> int
(** Append a zeroed page; returns its id. *)

val read_page : t -> int -> Bytes.t
val write_page : t -> int -> Bytes.t -> unit
val sync : t -> unit
val close : t -> unit

val read_count : t -> int
val write_count : t -> int
