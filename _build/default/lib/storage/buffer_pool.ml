(* Buffer pool: a bounded cache of pages over the pager, with pinning,
   dirty tracking and LRU eviction among unpinned frames.

   The shared-cache operating mode described in the paper ("the
   application operates directly on the objects in a shared cache
   without first copying the object to its private address space") maps
   to handing out the frame's bytes directly; callers mutate them in
   place and mark the frame dirty. *)

type frame = {
  page_id : int;
  bytes : Bytes.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable last_use : int;
}

type t = {
  pager : Pager.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  hits : Asset_util.Stats.Counter.t;
  misses : Asset_util.Stats.Counter.t;
  evictions : Asset_util.Stats.Counter.t;
}

let create ?(capacity = 64) pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    pager;
    capacity;
    frames = Hashtbl.create capacity;
    clock = 0;
    hits = Asset_util.Stats.Counter.create "pool.hits";
    misses = Asset_util.Stats.Counter.create "pool.misses";
    evictions = Asset_util.Stats.Counter.create "pool.evictions";
  }

let flush_frame t frame =
  if frame.dirty then begin
    Pager.write_page t.pager frame.page_id frame.bytes;
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame.  Raises if every frame
   is pinned — a genuine resource-exhaustion condition the caller must
   avoid by unpinning. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some b when b.last_use <= frame.last_use -> best
          | _ -> Some frame)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some frame ->
      flush_frame t frame;
      Hashtbl.remove t.frames frame.page_id;
      Asset_util.Stats.Counter.incr t.evictions

let touch t frame =
  t.clock <- t.clock + 1;
  frame.last_use <- t.clock

(* Pin a page and return its frame bytes.  The caller must [unpin]. *)
let pin t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
      Asset_util.Stats.Counter.incr t.hits;
      frame.pins <- frame.pins + 1;
      touch t frame;
      frame
  | None ->
      Asset_util.Stats.Counter.incr t.misses;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      let bytes = Pager.read_page t.pager page_id in
      let frame = { page_id; bytes; pins = 1; dirty = false; last_use = 0 } in
      touch t frame;
      Hashtbl.replace t.frames page_id frame;
      frame

let unpin _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_pool.unpin: frame not pinned";
  frame.pins <- frame.pins - 1

let mark_dirty frame = frame.dirty <- true

let with_page t page_id f =
  let frame = pin t page_id in
  match f frame with
  | result ->
      unpin t frame;
      result
  | exception e ->
      unpin t frame;
      raise e

let flush_all t =
  Hashtbl.iter (fun _ frame -> flush_frame t frame) t.frames;
  Pager.sync t.pager

(* Drop all cached frames without writing them back: used by the
   recovery tests to simulate a crash that loses the volatile cache. *)
let crash t = Hashtbl.reset t.frames

let hit_count t = Asset_util.Stats.Counter.get t.hits
let miss_count t = Asset_util.Stats.Counter.get t.misses
let eviction_count t = Asset_util.Stats.Counter.get t.evictions
let cached_pages t = Hashtbl.length t.frames
