lib/storage/buffer_pool.ml: Asset_util Bytes Hashtbl Pager
