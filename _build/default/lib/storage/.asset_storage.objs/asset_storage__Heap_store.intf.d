lib/storage/heap_store.mli: Asset_util Store Value
