lib/storage/slotted_page.ml: Asset_util Bytes Int64 List String
