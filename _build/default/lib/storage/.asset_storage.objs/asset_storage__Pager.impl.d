lib/storage/pager.ml: Asset_util Bytes Fmt Int32 String Unix
