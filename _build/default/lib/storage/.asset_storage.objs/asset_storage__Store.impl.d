lib/storage/store.ml: Asset_util Fmt List Value
