lib/storage/persistent_store.mli: Asset_util Store Value
