lib/storage/slotted_page.mli: Asset_util Bytes
