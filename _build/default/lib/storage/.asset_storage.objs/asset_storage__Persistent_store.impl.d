lib/storage/persistent_store.ml: Asset_util Buffer_pool Hashtbl List Pager Slotted_page Store String Value
