lib/storage/heap_store.ml: Asset_util Hashtbl Store Value
