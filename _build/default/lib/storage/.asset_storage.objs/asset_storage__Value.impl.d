lib/storage/value.ml: Bytes Format Int64 List String
