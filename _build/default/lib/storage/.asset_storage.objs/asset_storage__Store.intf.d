lib/storage/store.mli: Asset_util Value
