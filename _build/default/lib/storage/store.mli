(** The object-store interface the transaction engine runs against.

    Implementations: {!Heap_store} (in-memory) and {!Persistent_store}
    (paged, buffer-pooled, durable via [flush]). *)

module Oid = Asset_util.Id.Oid

type t = {
  name : string;
  read : Oid.t -> Value.t option;
  write : Oid.t -> Value.t -> unit;
  delete : Oid.t -> unit;
  exists : Oid.t -> bool;
  iter : (Oid.t -> Value.t -> unit) -> unit;
  size : unit -> int;
  flush : unit -> unit;
}

val name : t -> string
val read : t -> Oid.t -> Value.t option

val read_exn : t -> Oid.t -> Value.t
(** Raises [Invalid_argument] when the object does not exist. *)

val write : t -> Oid.t -> Value.t -> unit
val delete : t -> Oid.t -> unit
val exists : t -> Oid.t -> bool
val iter : t -> (Oid.t -> Value.t -> unit) -> unit
val size : t -> int

val flush : t -> unit
(** Make the current contents durable (no-op for the heap store). *)

val snapshot : t -> (Oid.t * Value.t) list
(** Contents as an oid-sorted association list; used by tests to
    compare outcomes. *)

val equal_content : t -> t -> bool
