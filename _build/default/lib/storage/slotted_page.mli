(** Slotted pages: the on-page record organization of the persistent
    store.

    A slot directory grows forward from the header while record bodies
    grow backward from the page end; every record carries its oid so
    the object table can be rebuilt by scanning pages at open time.
    Slot numbers are stable across compaction (they are external
    references).  Records must fit in one page — EOS's large-object
    forest is out of scope (see DESIGN.md). *)

module Oid = Asset_util.Id.Oid

type t

exception Page_full

val header_size : int
val slot_size : int

val record_header : int
(** Bytes of per-record overhead (the embedded oid). *)

val init : Bytes.t -> t
(** Format a buffer as an empty page. *)

val of_bytes : Bytes.t -> t
(** View an already-formatted page. *)

val bytes : t -> Bytes.t
val page_size : t -> int
val nslots : t -> int
val slot_in_use : t -> int -> bool

val insert : t -> Oid.t -> string -> int
(** Insert a record, reusing a free slot if any; returns the slot.
    Raises {!Page_full} when the contiguous free region is too small
    (try {!insert_with_compaction}). *)

val insert_with_compaction : t -> Oid.t -> string -> int
(** Like {!insert}, but compacts the page first when fragmentation is
    the only obstacle. *)

val read : t -> int -> (Oid.t * string) option
val read_exn : t -> int -> Oid.t * string
val delete : t -> int -> unit

val update_in_place : t -> int -> string -> bool
(** Overwrite a record body without moving it; false when the new body
    is larger than the old one (caller must delete and reinsert). *)

val compact : t -> unit
(** Slide live records together, merging free space; slots keep their
    numbers. *)

val contiguous_free : t -> int
val total_free : t -> int
val max_body : t -> int
val iter : t -> (int -> Oid.t -> string -> unit) -> unit
