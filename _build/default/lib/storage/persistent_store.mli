(** Persistent object store: slotted pages behind a buffer pool.

    The object table (oid to page/slot) and free-space hints are
    volatile and rebuilt by scanning pages at open; crash consistency
    of object {e contents} is the write-ahead log's job
    ([Asset_wal]). *)

module Oid = Asset_util.Id.Oid

type t

val create : ?page_size:int -> ?pool_capacity:int -> string -> t
val open_existing : ?pool_capacity:int -> string -> t

val read : t -> Oid.t -> Value.t option
val write : t -> Oid.t -> Value.t -> unit
(** In place when the new value fits; otherwise the record moves
    (possibly to another page).  Raises [Invalid_argument] for objects
    over 64 KiB (large objects unsupported; see DESIGN.md). *)

val delete : t -> Oid.t -> unit
val exists : t -> Oid.t -> bool
val iter : t -> (Oid.t -> Value.t -> unit) -> unit
val size : t -> int

val flush : t -> unit
(** Write back the cache and sync. *)

val close : t -> unit

val crash_and_reopen : t -> unit
(** Simulate a crash: drop the volatile cache and object table, then
    rebuild from what reached the disk.  Used by recovery tests. *)

val to_store : ?name:string -> t -> Store.t
