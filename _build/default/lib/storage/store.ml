(* The object-store interface the transaction engine runs against.

   Two implementations exist: [Heap_store] (in-memory, used by benchmarks
   and most tests) and [Persistent_store] (paged, buffer-pooled, used by
   the recovery experiments).  The engine only needs this small surface;
   recovery-time concerns (flush, close) are handled by whoever owns the
   store. *)

module Oid = Asset_util.Id.Oid

type t = {
  name : string;
  read : Oid.t -> Value.t option;
  write : Oid.t -> Value.t -> unit;
  delete : Oid.t -> unit;
  exists : Oid.t -> bool;
  iter : (Oid.t -> Value.t -> unit) -> unit;
  size : unit -> int;
  flush : unit -> unit;
}

let name t = t.name
let read t oid = t.read oid

let read_exn t oid =
  match t.read oid with
  | Some v -> v
  | None -> Fmt.invalid_arg "Store.read_exn: %a not found" Oid.pp oid

let write t oid v = t.write oid v
let delete t oid = t.delete oid
let exists t oid = t.exists oid
let iter t f = t.iter f
let size t = t.size ()
let flush t = t.flush ()

(* Snapshot as a sorted association list; used by tests to compare the
   outcome of a concurrent schedule against a serial reference run. *)
let snapshot t =
  let acc = ref [] in
  t.iter (fun oid v -> acc := (oid, v) :: !acc);
  List.sort (fun (a, _) (b, _) -> Oid.compare a b) !acc

let equal_content a b =
  let sa = snapshot a and sb = snapshot b in
  List.length sa = List.length sb
  && List.for_all2 (fun (o1, v1) (o2, v2) -> Oid.equal o1 o2 && Value.equal v1 v2) sa sb
