(* Object values.

   EOS stores untyped byte sequences; objects acquire structure only
   through the operations invoked on them.  We keep the same stance: a
   value is an immutable byte string, with a few codecs for the payloads
   the tests, examples and benchmarks use (integers, counters, small
   records). *)

type t = string

let of_string s = s
let to_string v = v
let length = String.length
let equal = String.equal
let empty = ""

let pp ppf v =
  if String.length v <= 32 && String.for_all (fun c -> c >= ' ' && c <= '~') v then
    Format.fprintf ppf "%S" v
  else Format.fprintf ppf "<%d bytes>" (String.length v)

(* Fixed-width integer codec, used heavily by tests (counter objects)
   and by the workload generator (account balances). *)

let of_int i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Bytes.unsafe_to_string b

let to_int v =
  if String.length v <> 8 then invalid_arg "Value.to_int: not an 8-byte integer value";
  Int64.to_int (String.get_int64_le v 0)

let incr_int v delta = of_int (to_int v + delta)

(* Association-list codec for small record-like objects, e.g. the
   reservation objects in the travel-workflow example:
   "field=value;field=value".  Fields and values must not contain '=' or
   ';'. *)

let of_fields fields =
  List.iter
    (fun (k, v) ->
      if String.exists (fun c -> c = '=' || c = ';') (k ^ v) then
        invalid_arg "Value.of_fields: field contains reserved character")
    fields;
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let to_fields v =
  if String.length v = 0 then []
  else
    String.split_on_char ';' v
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> (kv, ""))

let field v key = List.assoc_opt key (to_fields v)

let set_field v key value =
  let fields = to_fields v in
  let fields =
    if List.mem_assoc key fields then
      List.map (fun (k, old) -> if String.equal k key then (k, value) else (k, old)) fields
    else fields @ [ (key, value) ]
  in
  of_fields fields
