(* Slotted pages.

   Classic slotted-page organization as used by EOS-style storage
   managers: a slot directory grows forward from the page header while
   record bodies grow backward from the end of the page.  Each record
   carries the oid of the object it stores so that the object table can
   be rebuilt by scanning pages at open time.

   Layout (little-endian):
     offset 0   : u16  number of slots (including deleted ones)
     offset 2   : u16  free_end — offset one past the usable free space,
                       i.e. the lowest record start so far
     offset 4.. : slot directory, 4 bytes per slot:
                    u16 record offset (0 when the slot is free)
                    u16 record length (body bytes, excluding oid header)
     ...
     records    : each record is an 8-byte oid followed by the body,
                  allocated downward from the page end.

   Records must fit in a single page; EOS's large-object forest is out of
   scope for this reproduction (documented in DESIGN.md). *)

module Oid = Asset_util.Id.Oid

let header_size = 4
let slot_size = 4
let record_header = 8 (* oid *)

type t = { page : Bytes.t }

exception Page_full

let page_size t = Bytes.length t.page

let nslots t = Bytes.get_uint16_le t.page 0
let set_nslots t n = Bytes.set_uint16_le t.page 0 n
let free_end t = Bytes.get_uint16_le t.page 2
let set_free_end t v = Bytes.set_uint16_le t.page 2 v

let slot_offset t i = Bytes.get_uint16_le t.page (header_size + (i * slot_size))
let slot_length t i = Bytes.get_uint16_le t.page (header_size + (i * slot_size) + 2)

let set_slot t i ~offset ~length =
  Bytes.set_uint16_le t.page (header_size + (i * slot_size)) offset;
  Bytes.set_uint16_le t.page (header_size + (i * slot_size) + 2) length

let init page =
  let t = { page } in
  set_nslots t 0;
  set_free_end t (Bytes.length page);
  t

let of_bytes page = { page }
let bytes t = t.page

let slot_in_use t i = i >= 0 && i < nslots t && slot_offset t i <> 0

(* Contiguous free space between the end of the slot directory and the
   lowest record. *)
let contiguous_free t = free_end t - (header_size + (nslots t * slot_size))

let max_body t = page_size t - header_size - slot_size - record_header

(* Find a free (deleted) slot to reuse, if any. *)
let find_free_slot t =
  let n = nslots t in
  let rec loop i = if i >= n then None else if slot_offset t i = 0 then Some i else loop (i + 1) in
  loop 0

let insert t oid body =
  let body_len = String.length body in
  let record_len = record_header + body_len in
  let need_new_slot = find_free_slot t = None in
  let need = record_len + if need_new_slot then slot_size else 0 in
  if contiguous_free t < need then raise Page_full;
  let slot =
    match find_free_slot t with
    | Some i -> i
    | None ->
        let i = nslots t in
        set_nslots t (i + 1);
        i
  in
  let offset = free_end t - record_len in
  set_free_end t offset;
  Bytes.set_int64_le t.page offset (Int64.of_int (Oid.to_int oid));
  Bytes.blit_string body 0 t.page (offset + record_header) body_len;
  set_slot t slot ~offset ~length:body_len;
  slot

let read t slot =
  if not (slot_in_use t slot) then None
  else
    let offset = slot_offset t slot in
    let length = slot_length t slot in
    let oid = Oid.of_int (Int64.to_int (Bytes.get_int64_le t.page offset)) in
    Some (oid, Bytes.sub_string t.page (offset + record_header) length)

let read_exn t slot =
  match read t slot with
  | Some r -> r
  | None -> invalid_arg "Slotted_page.read_exn: slot not in use"

let delete t slot =
  if slot_in_use t slot then set_slot t slot ~offset:0 ~length:0

(* In-place update when the new body is no larger than the old one;
   returns false when the caller must delete + reinsert. *)
let update_in_place t slot body =
  if not (slot_in_use t slot) then invalid_arg "Slotted_page.update_in_place: free slot";
  let old_len = slot_length t slot in
  let new_len = String.length body in
  if new_len > old_len then false
  else begin
    let offset = slot_offset t slot in
    Bytes.blit_string body 0 t.page (offset + record_header) new_len;
    set_slot t slot ~offset ~length:new_len;
    true
  end

(* Compaction: slide all live records to the end of the page to merge
   fragmentation into one contiguous free region.  Slot numbers are
   stable (they are external references). *)
let compact t =
  let n = nslots t in
  let live = ref [] in
  for i = 0 to n - 1 do
    if slot_in_use t i then begin
      let offset = slot_offset t i in
      let total = record_header + slot_length t i in
      live := (i, Bytes.sub t.page offset total) :: !live
    end
  done;
  (* Rewrite records from the page end downward, in descending original
     offset order so content is only moved, never clobbered mid-copy
     (we copied to fresh buffers above, so order is actually free). *)
  let free = ref (page_size t) in
  List.iter
    (fun (i, record) ->
      let total = Bytes.length record in
      free := !free - total;
      Bytes.blit record 0 t.page !free total;
      set_slot t i ~offset:!free ~length:(total - record_header))
    !live;
  set_free_end t !free

(* Total reclaimable space: contiguous free plus dead-record bytes. *)
let total_free t =
  let n = nslots t in
  let live = ref 0 in
  for i = 0 to n - 1 do
    if slot_in_use t i then live := !live + record_header + slot_length t i
  done;
  page_size t - header_size - (n * slot_size) - !live

let insert_with_compaction t oid body =
  match insert t oid body with
  | slot -> slot
  | exception Page_full ->
      let record_len = record_header + String.length body in
      let slot_cost = if find_free_slot t = None then slot_size else 0 in
      if total_free t < record_len + slot_cost then raise Page_full
      else begin
        compact t;
        insert t oid body
      end

let iter t f =
  for i = 0 to nslots t - 1 do
    match read t i with Some (oid, body) -> f i oid body | None -> ()
  done
