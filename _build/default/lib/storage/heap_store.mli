(** In-memory object store: the EOS shared object cache without the
    disk behind it.  Used by concurrency tests and all benchmarks that
    are not about recovery. *)

module Oid = Asset_util.Id.Oid

type t

val create : ?initial_size:int -> unit -> t
val to_store : ?name:string -> t -> Store.t

val store : ?name:string -> ?initial_size:int -> unit -> Store.t
(** A fresh store in one step. *)

val populate : Store.t -> n:int -> value:(int -> Value.t) -> unit
(** Write objects with oids 1..n, each holding [value i]. *)
