(** Lightweight counters and summary statistics for the engine, lock
    manager and benchmark harness. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
  val name : t -> string
  val pp : Format.formatter -> t -> unit
end

module Summary : sig
  (** Streaming summary: count, mean, min, max and standard deviation
      without retaining samples. *)

  type t

  val create : string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  (** Fixed-bucket histogram for integer observations; the last bucket
      collects overflow. *)

  type t

  val create : string -> bounds:int array -> t
  (** [bounds] are inclusive upper bucket bounds; they are sorted
      internally. *)

  val observe : t -> int -> unit
  val buckets : t -> int array
  val total : t -> int
  val pp : Format.formatter -> t -> unit
end
