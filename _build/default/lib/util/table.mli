(** Plain-text table rendering for the benchmark harness and CLI. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the row width does not match the
    header. *)

val pp : Format.formatter -> t -> unit
(** Renders title, header, a rule, and rows in insertion order, with
    columns padded to their widest cell. *)

val print : t -> unit
(** [pp] to standard output. *)

val fmt_f : ?digits:int -> float -> string
(** Fixed-point formatting helper (default 2 digits). *)

val fmt_i : int -> string
