lib/util/id.ml: Format Hashtbl Int
