lib/util/rng.mli:
