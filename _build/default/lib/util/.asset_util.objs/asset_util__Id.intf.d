lib/util/id.mli: Format
