(* SplitMix64: a small, fast, deterministic PRNG.

   All randomized components in the repository (scheduling policies,
   workload generators, property tests that need their own stream) draw
   from this generator so that every run is reproducible from a seed.
   Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
(* 62 non-negative bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t =
  (* Uniform in [0, 1): use the top 53 bits. *)
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  u /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
