(* Plain-text table rendering for the benchmark harness and the demo CLI.
   Columns are sized to their widest cell; numbers are expected to arrive
   preformatted as strings so the caller controls precision. *)

type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width does not match header";
  t.rows <- row :: t.rows

let widths t =
  let all = t.header :: List.rev t.rows in
  let ncols = List.length t.header in
  let w = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> w.(i) <- Stdlib.max w.(i) (String.length cell)) row)
    all;
  w

let pp ppf t =
  let w = widths t in
  let pad i cell = cell ^ String.make (w.(i) - String.length cell) ' ' in
  let rule =
    String.concat "-+-" (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  Format.fprintf ppf "%s@." (String.concat " | " (List.mapi pad t.header));
  Format.fprintf ppf "%s@." rule;
  List.iter
    (fun row -> Format.fprintf ppf "%s@." (String.concat " | " (List.mapi pad row)))
    (List.rev t.rows)

let print t = Format.printf "%a@." pp t

let fmt_f ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let fmt_i = string_of_int
