(** Zipfian sampler over [\[0, n)] with skew exponent [theta].

    [theta = 0] is uniform; values around 1 produce the hot-spot access
    patterns of the lock-manager benchmarks.  Construction is O(n),
    sampling O(log n). *)

type t

val create : n:int -> theta:float -> rng:Rng.t -> t
(** Raises [Invalid_argument] when [n <= 0] or [theta < 0]. *)

val sample : t -> int
(** The next sampled rank, in [\[0, n)]; rank 0 is the hottest. *)

val n : t -> int
