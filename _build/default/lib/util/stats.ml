(* Lightweight counters and summary statistics used by the engine, the
   lock manager and the benchmark harness.  Everything is in-memory and
   allocation-light so that enabling statistics does not distort the
   benchmarks that read them. *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let get t = t.value
  let reset t = t.value <- 0
  let name t = t.name
  let pp ppf t = Format.fprintf ppf "%s=%d" t.name t.value
end

module Summary = struct
  (* Streaming summary: count, sum, min, max and sum of squares, enough
     for mean and standard deviation without retaining samples. *)
  type t = {
    name : string;
    mutable count : int;
    mutable sum : float;
    mutable sum_sq : float;
    mutable min : float;
    mutable max : float;
  }

  let create name =
    { name; count = 0; sum = 0.0; sum_sq = 0.0; min = infinity; max = neg_infinity }

  let observe t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let stddev t =
    if t.count < 2 then 0.0
    else
      let n = float_of_int t.count in
      let variance = (t.sum_sq /. n) -. ((t.sum /. n) ** 2.0) in
      sqrt (Float.max 0.0 variance)

  let reset t =
    t.count <- 0;
    t.sum <- 0.0;
    t.sum_sq <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity

  let pp ppf t =
    Format.fprintf ppf "%s: n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f" t.name t.count
      (mean t) (min t) (max t) (stddev t)
end

module Histogram = struct
  (* Fixed-bucket histogram for integer observations (e.g. retry counts,
     lock-queue lengths).  The last bucket is an overflow bucket. *)
  type t = { name : string; bounds : int array; buckets : int array }

  let create name ~bounds =
    let sorted = Array.copy bounds in
    Array.sort Int.compare sorted;
    { name; bounds = sorted; buckets = Array.make (Array.length sorted + 1) 0 }

  let observe t x =
    let n = Array.length t.bounds in
    let rec find i = if i >= n then n else if x <= t.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    t.buckets.(i) <- t.buckets.(i) + 1

  let buckets t = Array.copy t.buckets

  let total t = Array.fold_left ( + ) 0 t.buckets

  let pp ppf t =
    Format.fprintf ppf "%s:" t.name;
    Array.iteri
      (fun i count ->
        if i < Array.length t.bounds then
          Format.fprintf ppf " <=%d:%d" t.bounds.(i) count
        else Format.fprintf ppf " >:%d" count)
      t.buckets
end
