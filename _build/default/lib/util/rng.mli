(** SplitMix64: a small, fast, deterministic PRNG.

    Every randomized component in the repository (scheduling policies,
    workload generators) draws from this generator so that runs are
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal
    streams. *)

val copy : t -> t
(** A generator that continues identically to the original. *)

val next_int64 : t -> int64
(** The next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] when [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** A child generator statistically independent of the parent's
    subsequent output. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** A uniformly random element.  Raises [Invalid_argument] on an empty
    array. *)
