(* Zipfian sampler over [0, n), parameterized by the skew exponent theta.

   theta = 0 degenerates to uniform; theta around 0.9-1.2 produces the
   hot-spot access patterns used in the lock-manager benchmarks (E2).  We
   precompute the harmonic normalization and sample by inverting the CDF
   with a binary search over the cumulative weights; construction is
   O(n), sampling O(log n). *)

type t = { cumulative : float array; rng : Rng.t }

let create ~n ~theta ~rng =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cumulative.(i) <- !total)
    weights;
  let total = !total in
  Array.iteri (fun i c -> cumulative.(i) <- c /. total) cumulative;
  { cumulative; rng }

let sample t =
  let u = Rng.float t.rng in
  let cumulative = t.cumulative in
  let n = Array.length cumulative in
  (* Smallest index whose cumulative weight is >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let n t = Array.length t.cumulative
