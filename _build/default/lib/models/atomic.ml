(* Atomic transactions (section 3.1.1).

   The O++ compiler wraps a `trans { ... }` block into a function and
   emits

       if ((t = initiate(f)) != NULL)
         if (begin(t))
           commit(t);

   [run] is that translation as a combinator.  The body aborts the
   transaction either by raising or by calling [Engine.abort] on
   itself; both surface as [`Aborted]. *)

module E = Asset_core.Engine

type result = [ `Committed | `Aborted | `Initiate_failed ]

let run db body : result =
  let t = E.initiate db body in
  if Asset_util.Id.Tid.is_null t then `Initiate_failed
  else if not (E.begin_ db t) then `Initiate_failed
  else if E.commit db t then `Committed
  else `Aborted

let committed db body = run db body = `Committed

(* Retry an atomic transaction until it commits (e.g. when it may be
   chosen as a deadlock victim); bounded by [attempts]. *)
let run_with_retries ?(attempts = 10) db body : result =
  let rec loop n =
    match run db body with
    | `Committed -> `Committed
    | (`Aborted | `Initiate_failed) as r -> if n + 1 >= attempts then r else loop (n + 1)
  in
  loop 0
