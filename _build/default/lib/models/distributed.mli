(** Distributed transactions (section 3.1.2): components execute in
    parallel and commit only as a group, via pairwise group-commit
    dependencies formed before any component begins. *)

module E = Asset_core.Engine

type result = [ `Committed | `Aborted | `Initiate_failed ]

val run : E.t -> (unit -> unit) list -> result
(** Run the component bodies as one distributed transaction: all commit
    or all abort. *)
