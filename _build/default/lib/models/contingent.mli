(** Contingent transactions (section 3.1.3): alternatives tried in
    order, at most one commits. *)

module E = Asset_core.Engine

type result = [ `Committed of int | `All_aborted | `Initiate_failed ]
(** [`Committed i]: the 0-based alternative that won. *)

val run : E.t -> (unit -> unit) list -> result
(** The paper's translation: run each alternative as an atomic
    transaction, stopping at the first commit. *)

val run_declarative : E.t -> (unit -> unit) list -> result
(** Extension variant: pairwise EXC (exclusion) dependencies make the
    at-most-one property a declared invariant rather than control
    flow — the committing alternative force-aborts the others.  Used by
    the E11 ablation. *)
