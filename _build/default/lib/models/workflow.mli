(** Workflows (section 3.2.3 and the appendix): long-lived activities
    with transaction-like components, as a combinator DSL.

    The paper's X_conference trip is [Seq [Alternatives [...flights];
    Task hotel; Optional (Race [...cars])]] — see
    [examples/travel_workflow.ml].  When a mandatory step fails, every
    previously committed compensable task is compensated in reverse
    order, each compensation retried until it commits. *)

module E = Asset_core.Engine

type task

val task : ?compensate:(unit -> unit) -> string -> (unit -> unit) -> task
(** A transactional step with a label and optional semantic undo. *)

type t =
  | Task of task
  | Seq of t list
  | Alternatives of t list
      (** Ordered fallback; a failed alternative is locally rolled back
          before the next is tried. *)
  | Optional of t  (** Failure does not fail the workflow. *)
  | Race of task list
      (** Parallel alternatives; the first to {e complete} wins and the
          others are aborted ("Whichever of t5, t6 completes first
          wins"). *)
  | Group of task list  (** Components committing as one (GC). *)

type event =
  | Committed of string
  | Aborted of string
  | Compensated of string
  | Chose of string
  | Skipped of string

val pp_event : Format.formatter -> event -> unit

type outcome = { success : bool; events : event list (** in execution order *) }

exception Compensation_failed of string

val run : E.t -> t -> outcome

val committed_labels : outcome -> string list
val compensated_labels : outcome -> string list
