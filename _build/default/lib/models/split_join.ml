(* Split and join transactions (section 3.1.5).

   split: a running transaction t_a splits off t_b, delegating to it
   the responsibility for the operations performed so far on a set of
   objects; afterwards the two "can commit or abort independently".

       s = initiate(f);  delegate(parent(s), s, X);  begin(s);

   join: s merges back into t by delegating everything it is
   responsible for:

       wait(s);  delegate(s, t);

   The splitter calls [split] from inside its own body; [join] can be
   invoked by whoever coordinates the two transactions. *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid

let split ?objs db body =
  let splitter = E.self db in
  if Tid.is_null splitter then invalid_arg "Split_join.split: must be called inside a transaction";
  let s = E.initiate db body in
  if Tid.is_null s then None
  else begin
    (* parent(s) is the splitting transaction: initiate records the
       invoker as the parent. *)
    E.delegate ?oids:objs db ~from_:(E.parent_of db s) ~to_:s;
    ignore (E.begin_ db s);
    Some s
  end

(* Split without running any new work: the split transaction exists
   only to carry the delegated objects to an independent commit/abort
   decision. *)
let split_idle ?objs db = split ?objs db (fun () -> ())

let join db s t =
  ignore (E.wait db s);
  E.delegate db ~from_:s ~to_:t;
  (* After delegation s holds nothing; terminate it. *)
  ignore (E.commit db s)
