(** Atomic transactions (section 3.1.1): the O++ [trans { ... }] block
    as a combinator — initiate, begin, commit, with failures surfacing
    as [`Aborted]. *)

module E = Asset_core.Engine

type result = [ `Committed | `Aborted | `Initiate_failed ]

val run : E.t -> (unit -> unit) -> result
(** Run the body as one atomic transaction.  The body aborts by
    raising, or by [Engine.abort] on itself. *)

val committed : E.t -> (unit -> unit) -> bool
(** [run] returning whether it committed. *)

val run_with_retries : ?attempts:int -> E.t -> (unit -> unit) -> result
(** Retry (fresh transaction each time, default 10 attempts) until a
    commit — e.g. when the body may be chosen as a deadlock victim. *)
