(** Cursor stability (section 3.2.2): as the cursor leaves a record,
    the scanner grants an open write permit on it, trading repeatable
    reads for writer latency. *)

module E = Asset_core.Engine

val scan :
  E.t -> Asset_util.Id.Oid.t list -> f:(Asset_util.Id.Oid.t -> Asset_storage.Value.t -> unit) -> unit
(** Read each record under the invoking transaction; after processing
    a record, any transaction may write it without waiting. *)

val scan_repeatable :
  E.t -> Asset_util.Id.Oid.t list -> f:(Asset_util.Id.Oid.t -> Asset_storage.Value.t -> unit) -> unit
(** The strict-2PL control: same scan, no permits. *)
