(* Workflows (section 3.2.3 and the appendix).

   "Workflows are long-lived activities with transaction-like
   components having inter-related dependencies."  The paper sketches a
   future workflow *language* compiled to the primitives and hand-codes
   one activity (the X_conference trip) in the appendix.  This module
   is that language, as a combinator DSL:

     - [Task]          one transactional step, optionally compensable;
     - [Seq]           sequential composition;
     - [Alternatives]  ordered fallback (the Delta/United/American
                       flight preference): first alternative to commit
                       wins, a failed alternative is locally rolled
                       back before the next is tried;
     - [Optional]      a step whose failure does not fail the workflow
                       (the rental car: "If a car cannot be rented, the
                       trip can still proceed");
     - [Race]          parallel alternatives, first to complete wins
                       and the others are aborted (the National/Avis
                       pattern: "Whichever of t5, t6 completes first
                       wins");
     - [Group]         components that commit or abort as one
                       (distributed transaction embedded in a flow).

   When a mandatory step fails, every previously committed compensable
   task is compensated in reverse order, each compensation retried
   until it commits — saga semantics at workflow scope. *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid

type task = { label : string; run : unit -> unit; compensate : (unit -> unit) option }

let task ?compensate label run = { label; run; compensate }

type t =
  | Task of task
  | Seq of t list
  | Alternatives of t list
  | Optional of t
  | Race of task list
  | Group of task list

type event =
  | Committed of string
  | Aborted of string
  | Compensated of string
  | Chose of string
  | Skipped of string

let pp_event ppf = function
  | Committed l -> Format.fprintf ppf "committed %s" l
  | Aborted l -> Format.fprintf ppf "aborted %s" l
  | Compensated l -> Format.fprintf ppf "compensated %s" l
  | Chose l -> Format.fprintf ppf "chose %s" l
  | Skipped l -> Format.fprintf ppf "skipped %s" l

type outcome = { success : bool; events : event list }

exception Compensation_failed of string

let max_compensation_attempts = 1000

(* Compensate committed tasks, newest first, retrying each until it
   commits (the saga rule). *)
let compensate_all db events undo =
  List.iter
    (fun (label, cf) ->
      let rec retry n =
        if n >= max_compensation_attempts then raise (Compensation_failed label)
        else if not (Atomic.committed db cf) then retry (n + 1)
      in
      retry 0;
      events := Compensated label :: !events)
    undo

(* Run one task as an atomic transaction; push its compensation on
   success. *)
let run_task db events undo (t : task) =
  if Atomic.committed db t.run then begin
    events := Committed t.label :: !events;
    (match t.compensate with Some cf -> undo := (t.label, cf) :: !undo | None -> ());
    true
  end
  else begin
    events := Aborted t.label :: !events;
    false
  end

(* Race: begin every contestant, wait until one *completes* (finishes
   executing), abort the rest, commit the winner.  If the first
   completer fails to commit, the next completer is tried. *)
let run_race db events undo (tasks : task list) =
  match tasks with
  | [] -> true
  | _ ->
      let entries = List.map (fun t -> (t, E.initiate db t.run)) tasks in
      if List.exists (fun (_, tid) -> Tid.is_null tid) entries then false
      else begin
        List.iter (fun (_, tid) -> ignore (E.begin_ db tid)) entries;
        let rec arbitrate remaining =
          (* Find a completed contestant; park until one shows up. *)
          let completed, others =
            List.partition
              (fun (_, tid) ->
                match E.status db tid with
                | Asset_core.Status.Completed | Asset_core.Status.Committing -> true
                | _ -> false)
              remaining
          in
          match completed with
          | (winner_task, winner_tid) :: rest -> (
              (* "Whichever completes first wins": abort everyone else. *)
              List.iter (fun (t, tid) ->
                  if not (E.is_terminated db tid) then begin
                    ignore (E.abort db tid);
                    events := Aborted t.label :: !events
                  end)
                (rest @ others);
              if E.commit db winner_tid then begin
                events := Chose winner_task.label :: Committed winner_task.label :: !events;
                (match winner_task.compensate with
                | Some cf -> undo := (winner_task.label, cf) :: !undo
                | None -> ());
                true
              end
              else begin
                events := Aborted winner_task.label :: !events;
                false
              end)
          | [] -> (
              let live =
                List.filter (fun (_, tid) -> not (E.is_terminated db tid)) remaining
              in
              match live with
              | [] -> false (* every contestant aborted *)
              | _ ->
                  let v = E.version db in
                  Asset_sched.Scheduler.wait_until ~reason:"race: awaiting a completer" (fun () ->
                      E.version db > v);
                  arbitrate live)
        in
        arbitrate entries
      end

let run_group db events undo (tasks : task list) =
  match Distributed.run db (List.map (fun t -> t.run) tasks) with
  | `Committed ->
      List.iter
        (fun t ->
          events := Committed t.label :: !events;
          match t.compensate with Some cf -> undo := (t.label, cf) :: !undo | None -> ())
        tasks;
      true
  | `Aborted | `Initiate_failed ->
      List.iter (fun t -> events := Aborted t.label :: !events) tasks;
      false

(* Evaluate a workflow node.  [undo] accumulates compensations of
   committed tasks; a failing node is responsible for rolling back its
   *own* partial work before reporting failure (so Alternatives can try
   the next branch from a clean slate). *)
let rec eval db events undo node =
  match node with
  | Task t -> run_task db events undo t
  | Race tasks -> run_race db events undo tasks
  | Group tasks -> run_group db events undo tasks
  | Seq nodes ->
      let local = ref [] in
      let rec go = function
        | [] ->
            undo := !local @ !undo;
            true
        | n :: rest ->
            if eval db events local n then go rest
            else begin
              compensate_all db events !local;
              false
            end
      in
      go nodes
  | Alternatives nodes ->
      let rec try_next = function
        | [] -> false
        | n :: rest ->
            let local = ref [] in
            if eval db events local n then begin
              undo := !local @ !undo;
              true
            end
            else begin
              (* eval already rolled back its own partial work. *)
              try_next rest
            end
      in
      try_next nodes
  | Optional node ->
      let local = ref [] in
      if eval db events local node then begin
        undo := !local @ !undo;
        true
      end
      else begin
        events := Skipped "optional step" :: !events;
        true
      end

let run db workflow : outcome =
  let events = ref [] in
  let undo = ref [] in
  let success = eval db events undo workflow in
  if not success then compensate_all db events !undo;
  { success; events = List.rev !events }

let committed_labels outcome =
  List.filter_map (function Committed l -> Some l | _ -> None) outcome.events

let compensated_labels outcome =
  List.filter_map (function Compensated l -> Some l | _ -> None) outcome.events
