(* Sagas (section 3.1.6).

   A saga is a sequence of component transactions t_1 .. t_n, each
   (except the last) paired with a compensating transaction ct_i.
   Components commit independently — isolation is per component, so
   other sagas can see partial results.  If component t_{k+1} fails,
   the committed prefix is compensated in reverse order:

       t_1 t_2 ... t_k  ct_k ... ct_1

   and, per the paper, "a compensating transaction must be retried
   until it finally commits".  The translation is a straight-line
   version of this control flow; [run] is the combinator form.

   A saga step whose [compensate] is [None] is only legal as the last
   step (the paper: "t_n is not associated with a compensating
   transaction"); anywhere else [run] rejects the saga up front. *)

module E = Asset_core.Engine

type step = { label : string; action : unit -> unit; compensate : (unit -> unit) option }

let step ?compensate ?(label = "") action = { label; action; compensate }

type result =
  | Committed
  | Rolled_back of { failed_step : int; compensated : int }
      (** The saga aborted at [failed_step] (0-based); [compensated]
          components were compensated, in reverse order. *)

exception Compensation_failed of string

let run ?(max_compensation_attempts = 1000) db steps : result =
  let n = List.length steps in
  List.iteri
    (fun i s ->
      if i < n - 1 && s.compensate = None then
        invalid_arg "Saga.run: only the last step may lack a compensating transaction")
    steps;
  (* Forward phase: commit components in order; stop at first failure. *)
  let arr = Array.of_list steps in
  let rec forward i = if i >= n then n else if Atomic.committed db arr.(i).action then forward (i + 1) else i in
  let failed = forward 0 in
  if failed >= n then Committed
  else begin
    (* Backward phase: compensate committed prefix in reverse
       commitment order, retrying each compensation until it commits. *)
    let compensated = ref 0 in
    for i = failed - 1 downto 0 do
      match arr.(i).compensate with
      | None -> assert false (* checked above: only step n-1 may lack one, and it cannot precede [failed] *)
      | Some cf ->
          let rec retry attempts =
            if attempts >= max_compensation_attempts then
              raise (Compensation_failed arr.(i).label)
            else if not (Atomic.committed db cf) then retry (attempts + 1)
          in
          retry 0;
          incr compensated
    done;
    Rolled_back { failed_step = failed; compensated = !compensated }
  end

let committed = function Committed -> true | Rolled_back _ -> false
