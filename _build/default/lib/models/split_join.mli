(** Split and join transactions (section 3.1.5): a running transaction
    splits off responsibility for part of its work to a new
    transaction, which commits or aborts independently — or later joins
    back. *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid

val split : ?objs:Asset_util.Id.Oid.t list -> E.t -> (unit -> unit) -> Tid.t option
(** From inside a transaction: initiate a new transaction running
    [body], delegate the operations on [objs] (default: all) to it, and
    begin it.  [None] on resource exhaustion. *)

val split_idle : ?objs:Asset_util.Id.Oid.t list -> E.t -> Tid.t option
(** A split carrying only the delegated objects (no new work) to an
    independent commit/abort decision. *)

val join : E.t -> Tid.t -> Tid.t -> unit
(** [join s t]: wait for [s] to complete, delegate everything it is
    responsible for to [t], and terminate [s]. *)
