(* Cooperating transactions (section 3.2.1).

   Two transactions work on the same object(s) concurrently by
   "ping-ponging" permits, with commit/abort coupling chosen by the
   application:

       form_dependency(CD, t_i, t_j);   // t_j waits for t_i
       permit(t_i, t_j, ob, op);        // t_j may conflict with t_i
       ...
       permit(t_j, t_i, ob, op);        // and vice versa

   "once t_i permits t_j to perform conflicting operations, another CD
   could be established ... if we desire that the two cooperating
   transactions must both commit or neither" — that is the [`Group]
   coupling below. *)

module E = Asset_core.Engine
module Dep_type = Asset_deps.Dep_type
module Ops = Asset_lock.Mode.Ops

type coupling =
  [ `None  (** permits only; commits are independent *)
  | `Commit_ordered  (** CD: t_j cannot commit before t_i terminates *)
  | `Group  (** GC: both commit or neither *) ]

(* Allow [tj] to perform [ops] on [objs] concurrently with [ti], with
   the chosen commit coupling. *)
let allow ?(ops = Ops.all) ?(coupling = `Commit_ordered) db ~ti ~tj ~objs =
  (match (coupling : coupling) with
  | `None -> ()
  | `Commit_ordered -> ignore (E.form_dependency db Dep_type.CD ti tj)
  | `Group -> ignore (E.form_dependency db Dep_type.GC ti tj));
  E.permit db ~from_:ti ~to_:tj ~oids:objs ~ops

(* Symmetric cooperation on a shared object set: both directions
   permitted, coupling applied both ways (for [`Commit_ordered] this
   would create a CD cycle, so group coupling is the useful symmetric
   choice). *)
let pair ?(ops = Ops.all) ?(coupling = `Group) db ~ti ~tj ~objs =
  E.permit db ~from_:ti ~to_:tj ~oids:objs ~ops;
  E.permit db ~from_:tj ~to_:ti ~oids:objs ~ops;
  match (coupling : coupling) with
  | `None -> ()
  | `Commit_ordered -> ignore (E.form_dependency db Dep_type.CD ti tj)
  | `Group -> ignore (E.form_dependency db Dep_type.GC ti tj)
