(** Cooperating transactions (section 3.2.1): concurrent work on shared
    objects through permits, with commit/abort coupling chosen by the
    application. *)

module E = Asset_core.Engine
module Ops = Asset_lock.Mode.Ops

type coupling =
  [ `None  (** permits only; commits are independent *)
  | `Commit_ordered  (** CD: [tj] cannot commit before [ti] terminates *)
  | `Group  (** GC: both commit or neither *) ]

val allow :
  ?ops:Ops.t ->
  ?coupling:coupling ->
  E.t ->
  ti:Asset_util.Id.Tid.t ->
  tj:Asset_util.Id.Tid.t ->
  objs:Asset_util.Id.Oid.t list ->
  unit
(** One-directional: [tj] may perform [ops] on [objs] concurrently with
    [ti] (default coupling [`Commit_ordered]). *)

val pair :
  ?ops:Ops.t ->
  ?coupling:coupling ->
  E.t ->
  ti:Asset_util.Id.Tid.t ->
  tj:Asset_util.Id.Tid.t ->
  objs:Asset_util.Id.Oid.t list ->
  unit
(** Symmetric cooperation: permits in both directions (the "ping-pong")
    with the chosen coupling (default [`Group], the both-or-neither
    design-environment behaviour). *)
