(** Sagas (section 3.1.6): a chain of independently-committing
    component transactions; on failure the committed prefix is
    compensated in reverse order, each compensation retried until it
    commits. *)

module E = Asset_core.Engine

type step

val step : ?compensate:(unit -> unit) -> ?label:string -> (unit -> unit) -> step
(** A component transaction with its compensating transaction.  Only
    the last step of a saga may lack a compensation (the paper: "t_n is
    not associated with a compensating transaction"). *)

type result =
  | Committed
  | Rolled_back of { failed_step : int; compensated : int }
      (** Failed at the 0-based [failed_step]; [compensated] components
          were compensated in reverse commitment order. *)

exception Compensation_failed of string
(** A compensation did not commit within the retry budget. *)

val run : ?max_compensation_attempts:int -> E.t -> step list -> result
(** Raises [Invalid_argument] when a non-final step lacks a
    compensation. *)

val committed : result -> bool
