(** Chained transactions (from the survey the paper builds on): a long
    activity cut into links, each committing — releasing what it no
    longer needs — while a designated working set is handed to the
    successor through delegation, never becoming visible between
    links. *)

module E = Asset_core.Engine

type result =
  | Committed
  | Broken of { failed_link : int }
      (** Earlier links' non-carried effects remain committed; the
          carried state died with the failing link. *)

val run :
  E.t -> carry:(E.t -> Asset_util.Id.Oid.t list) -> (unit -> unit) list -> result
(** Run the links in order.  [carry db] is evaluated at each link
    boundary and names the objects whose locks and undo responsibility
    are handed to the next link. *)

val committed : result -> bool
