lib/models/cursor_stability.ml: Asset_core Asset_lock List
