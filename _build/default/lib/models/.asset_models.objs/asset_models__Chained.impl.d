lib/models/chained.ml: Asset_core Asset_util
