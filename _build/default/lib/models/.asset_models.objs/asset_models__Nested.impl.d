lib/models/nested.ml: Asset_core Asset_util Atomic
