lib/models/split_join.ml: Asset_core Asset_util
