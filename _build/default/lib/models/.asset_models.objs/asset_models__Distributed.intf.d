lib/models/distributed.mli: Asset_core
