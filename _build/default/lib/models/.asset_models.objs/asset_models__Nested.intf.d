lib/models/nested.mli: Asset_core Atomic
