lib/models/workflow.ml: Asset_core Asset_sched Asset_util Atomic Distributed Format List
