lib/models/saga.mli: Asset_core
