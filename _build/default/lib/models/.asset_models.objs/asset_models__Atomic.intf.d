lib/models/atomic.mli: Asset_core
