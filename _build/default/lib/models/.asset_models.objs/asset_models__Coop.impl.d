lib/models/coop.ml: Asset_core Asset_deps Asset_lock
