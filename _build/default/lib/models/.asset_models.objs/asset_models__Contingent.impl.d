lib/models/contingent.ml: Asset_core Asset_deps Asset_util Atomic List
