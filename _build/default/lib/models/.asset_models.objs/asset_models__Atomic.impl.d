lib/models/atomic.ml: Asset_core Asset_util
