lib/models/distributed.ml: Asset_core Asset_deps Asset_util List
