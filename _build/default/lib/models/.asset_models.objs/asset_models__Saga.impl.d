lib/models/saga.ml: Array Asset_core Atomic List
