lib/models/workflow.mli: Asset_core Format
