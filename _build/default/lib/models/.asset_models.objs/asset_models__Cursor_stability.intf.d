lib/models/cursor_stability.mli: Asset_core Asset_storage Asset_util
