lib/models/chained.mli: Asset_core Asset_util
