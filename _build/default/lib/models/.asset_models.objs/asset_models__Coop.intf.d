lib/models/coop.mli: Asset_core Asset_lock Asset_util
