lib/models/contingent.mli: Asset_core
