lib/models/split_join.mli: Asset_core Asset_util
