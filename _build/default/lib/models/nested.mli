(** Nested transactions (section 3.1.4).

    A subtransaction may access objects its parent currently holds
    (the parent's permit), aborts without necessarily aborting the
    parent, and on success delegates its effects to the parent — they
    become permanent only when the top-level transaction commits. *)

module E = Asset_core.Engine

val sub : ?on_failure:[ `Report | `Abort_parent ] -> E.t -> (unit -> unit) -> bool
(** Run [body] as a subtransaction of the invoking transaction: the
    paper's permit/begin/wait/delegate/commit sequence.  On child
    failure, [`Report] (default) returns false and the parent
    continues; [`Abort_parent] reproduces the trip() translation
    exactly (the parent unwinds with [Engine.Txn_aborted]).  Must be
    called inside a transaction body. *)

val sub_exn : E.t -> (unit -> unit) -> unit
(** [sub ~on_failure:`Abort_parent], ignoring the result. *)

val root : E.t -> (unit -> unit) -> Atomic.result
(** A top-level nested transaction (its body uses {!sub} for
    children). *)
