(* Nested transactions (section 3.1.4).

   A subtransaction may access any object currently accessed by an
   ancestor without forming a conflict (permit from the parent), runs
   failure-atomically with respect to the parent (it can abort without
   aborting the parent), and on success its effects are delegated to
   the parent, becoming permanent only when the top-level transaction
   commits.

   The paper's trip() translation, for each subtransaction:

       t1 = initiate(f);  permit(self(), t1);  begin(t1);
       if (!wait(t1)) abort(self());
       delegate(t1, self());  commit(t1);

   [sub] is that sequence with the abort-the-parent policy made a
   parameter: [`Abort_parent] reproduces trip() exactly, [`Report]
   returns false and lets the parent continue with its siblings — the
   standard nested-transaction reading ("they can abort without causing
   the whole transaction to abort"). *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid

let sub ?(on_failure = `Report) db body =
  let parent = E.self db in
  if Tid.is_null parent then invalid_arg "Nested.sub: must be called inside a transaction";
  let t = E.initiate db body in
  if Tid.is_null t then false
  else begin
    (* The child may see everything the parent currently holds. *)
    E.permit db ~from_:parent ~to_:t;
    ignore (E.begin_ db t);
    if not (E.wait db t) then begin
      match on_failure with
      | `Abort_parent -> ignore (E.abort db parent); false
      | `Report -> false
    end
    else begin
      E.delegate db ~from_:t ~to_:parent;
      (* "it does not actually matter whether this transaction is
         committed or aborted subsequent to the delegation" — we commit,
         as the paper's translation does. *)
      ignore (E.commit db t);
      true
    end
  end

let sub_exn db body = ignore (sub ~on_failure:`Abort_parent db body)

(* A top-level nested transaction: run [body] (which uses [sub] for its
   children) as the root.  Effects become permanent only here. *)
let root db body = Atomic.run db body
