(* Cursor stability (section 3.2.2).

   "Before moving the cursor from one record to the next within a
   relation, the reading transaction t_i executes

       permit(t_i, record, write)

   This permission allows any transaction to write the specified record
   without waiting for t_i to commit.  No dependencies are formed, so
   that t_i and t_j may commit in any order."

   [scan] reads each record in turn under the caller's transaction and
   releases writers behind the cursor with exactly that open permit —
   trading repeatable reads for writer latency (experiment E8 measures
   the trade). *)

module E = Asset_core.Engine
module Ops = Asset_lock.Mode.Ops

(* Scan [oids] under the current transaction, applying [f] to each
   record; after processing a record, any transaction may write it. *)
let scan db oids ~f =
  List.iter
    (fun oid ->
      (match E.read db oid with Some v -> f oid v | None -> ());
      (* Move the cursor: open write permission on the record just
         read, to every transaction. *)
      E.permit db ~from_:(E.self db) ~oids:[ oid ] ~ops:Ops.write_only)
    oids

(* The strict-2PL control for the experiment: same scan, no permits. *)
let scan_repeatable db oids ~f =
  List.iter (fun oid -> match E.read db oid with Some v -> f oid v | None -> ()) oids
