(* Contingent transactions (section 3.1.3).

   "At most one of the component transactions of a contingent
   transaction commits; the component transactions are executed in the
   order specified."  The paper's translation tries each alternative in
   turn and stops at the first commit; [run] reproduces it and reports
   which alternative (0-based) won.

   [run_declarative] is the extension variant: it forms pairwise EXC
   (exclusion) dependencies between the alternatives before running
   them, so that the at-most-one property is enforced by the dependency
   graph rather than by control flow — the committing alternative
   force-aborts the others.  Used by the E11 ablation. *)

module E = Asset_core.Engine
module Dep_type = Asset_deps.Dep_type

type result = [ `Committed of int | `All_aborted | `Initiate_failed ]

let run db bodies : result =
  let rec try_next i = function
    | [] -> `All_aborted
    | body :: rest -> (
        match Atomic.run db body with
        | `Committed -> `Committed i
        | `Aborted -> try_next (i + 1) rest
        | `Initiate_failed -> `Initiate_failed)
  in
  try_next 0 bodies

let run_declarative db bodies : result =
  let tids = List.map (fun body -> E.initiate db body) bodies in
  if List.exists Asset_util.Id.Tid.is_null tids then `Initiate_failed
  else begin
    (* Pairwise exclusion between all alternatives. *)
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter (fun b -> ignore (E.form_dependency db Dep_type.EXC a b)) rest;
          pairs rest
    in
    pairs tids;
    let rec try_next i = function
      | [] -> `All_aborted
      | t :: rest ->
          if E.begin_ db t && E.commit db t then `Committed i else try_next (i + 1) rest
    in
    try_next 0 tids
  end
