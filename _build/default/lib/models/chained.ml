(* Chained transactions.

   One of the classical extended models surveyed in the paper's
   reference [12] (Elmagarmid, "Database Transaction Models for
   Advanced Applications"): a long activity is cut into a chain of
   transactions where each link commits — releasing the locks it no
   longer needs — but passes a designated working set to its successor
   *without* exposing it to other transactions in between.

   The ASSET primitives express this directly, which is exactly the
   paper's thesis.  For each link:

     1. the successor is initiated (but not begun);
     2. the link delegates the carried objects to the successor —
        delegation to an initiated transaction is legal ("this
        separation allows us to delegate to or permit sharing with an
        initiated transaction before this transaction begins");
     3. the link commits: everything *except* the carried objects
        becomes permanent and visible, while the carried objects'
        locks (and undo responsibility) now belong to the successor,
        so no other transaction can slip in between links;
     4. the successor begins.

   If a link aborts, only the work since the last commit boundary is
   lost — plus the carried state, which has been handed forward from
   link to link and dies with the aborting link. *)

module E = Asset_core.Engine
module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type result =
  | Committed
  | Broken of { failed_link : int }
      (** The chain stopped at the 0-based [failed_link]; earlier
          links' non-carried effects remain committed, the carried
          state was rolled back with the failing link. *)

(* Run [links] as a chain; [carry db] names the objects handed from
   each link to the next (evaluated at each boundary, so it can track
   objects created along the way). *)
let run db ~carry links : result =
  let rec go i current_tid = function
    | [] ->
        (* No more links: commit the last one outright. *)
        if E.commit db current_tid then Committed else Broken { failed_link = i }
    | next_body :: rest ->
        if not (E.wait db current_tid) then Broken { failed_link = i }
        else begin
          let succ = E.initiate db next_body in
          if Tid.is_null succ then begin
            ignore (E.abort db current_tid);
            Broken { failed_link = i }
          end
          else begin
            let carried = carry db in
            if carried <> [] then E.delegate db ~oids:carried ~from_:current_tid ~to_:succ;
            if not (E.commit db current_tid) then begin
              (* The link failed after delegation: the successor holds
                 the carried objects and must be put down too. *)
              ignore (E.abort db succ);
              Broken { failed_link = i }
            end
            else begin
              ignore (E.begin_ db succ);
              go (i + 1) succ rest
            end
          end
        end
  in
  match links with
  | [] -> Committed
  | first :: rest ->
      let t = E.initiate db first in
      if Tid.is_null t then Broken { failed_link = 0 }
      else begin
        ignore (E.begin_ db t);
        go 0 t rest
      end

let committed = function Committed -> true | Broken _ -> false
