(* Distributed transactions (section 3.1.2).

   Component transactions execute in parallel and "can only commit as a
   group".  The translation forms pairwise group-commit dependencies
   before any component begins, begins them all, and commits the first
   — which, through the GC resolution of the commit algorithm, commits
   the whole group (or aborts it).  The remaining commit calls merely
   report the outcome, as in the paper. *)

module E = Asset_core.Engine
module Dep_type = Asset_deps.Dep_type

type result = [ `Committed | `Aborted | `Initiate_failed ]

let run db bodies : result =
  let tids = List.map (fun body -> E.initiate db body) bodies in
  if List.exists Asset_util.Id.Tid.is_null tids then `Initiate_failed
  else begin
    (* form_dependency(GC, t1, t2), ..., pairwise along the chain is
       enough: GC group membership is the transitive closure. *)
    let rec chain = function
      | a :: (b :: _ as rest) ->
          ignore (E.form_dependency db Dep_type.GC a b);
          chain rest
      | [ _ ] | [] -> ()
    in
    chain tids;
    if not (E.begin_many db tids) then `Initiate_failed
    else begin
      match tids with
      | [] -> `Committed
      | first :: rest ->
          let ok = E.commit db first in
          (* "the remaining commit invocations simply return 1 ... /
             later commit invocations simply return 0" — verify. *)
          List.iter (fun t -> assert (E.commit db t = ok)) rest;
          if ok then `Committed else `Aborted
    end
  end
