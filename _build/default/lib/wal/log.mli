(** The log: an append-only record sequence addressed by LSN.

    Records always stay in memory (the engine's abort path walks them
    without I/O); with a backing file every append is also written in a
    framed binary format and {!force} makes the file durable.  Commit
    records are forced automatically — the WAL rule. *)

type t

val in_memory : unit -> t
val create_file : string -> t

val load : string -> t
(** Read a file-backed log back for recovery, stopping cleanly at a
    torn tail (partial final record). *)

val append : t -> Record.t -> int
(** Append and return the record's LSN.  Appending a [Commit] record
    forces the log. *)

val force : t -> unit
(** Make everything appended so far durable. *)

val forced_lsn : t -> int
(** Highest LSN known durable; -1 when nothing is. *)

val length : t -> int

val get : t -> int -> Record.t
(** Raises [Invalid_argument] on an out-of-range LSN. *)

val iter : ?from:int -> t -> (int -> Record.t -> unit) -> unit
val iter_rev : ?until:int -> t -> (int -> Record.t -> unit) -> unit
val fold : ?from:int -> t -> init:'a -> f:('a -> int -> Record.t -> 'a) -> 'a
val to_list : t -> Record.t list
val close : t -> unit
val pp : Format.formatter -> t -> unit
