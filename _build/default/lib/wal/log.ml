(* The log: an append-only sequence of records, addressed by LSN.

   Records always live in memory (a growable array) so that the engine's
   abort path can walk them without I/O; when the log is opened with a
   backing file, every append is also written to the file in a framed
   binary format (u32 length + body) and [force] makes the file durable.
   Commit records are forced automatically — the WAL rule. *)

type sink = { channel : out_channel; path : string }

type t = {
  mutable records : Record.t array;
  mutable len : int;
  sink : sink option;
  mutable forced_lsn : int; (* highest LSN known durable *)
}

let in_memory () = { records = Array.make 64 Record.Checkpoint; len = 0; sink = None; forced_lsn = -1 }

let create_file path =
  let channel = open_out_bin path in
  {
    records = Array.make 64 Record.Checkpoint;
    len = 0;
    sink = Some { channel; path };
    forced_lsn = -1;
  }

let grow t =
  let bigger = Array.make (2 * Array.length t.records) Record.Checkpoint in
  Array.blit t.records 0 bigger 0 t.len;
  t.records <- bigger

let write_framed channel body =
  let len = String.length body in
  let frame = Bytes.create 4 in
  Bytes.set_int32_le frame 0 (Int32.of_int len);
  output_bytes channel frame;
  output_string channel body

let force t =
  match t.sink with
  | None -> t.forced_lsn <- t.len - 1
  | Some { channel; _ } ->
      flush channel;
      t.forced_lsn <- t.len - 1

let append t record =
  if t.len = Array.length t.records then grow t;
  t.records.(t.len) <- record;
  let lsn = t.len in
  t.len <- t.len + 1;
  (match t.sink with
  | None -> ()
  | Some { channel; _ } -> write_framed channel (Record.encode record));
  (* The WAL rule: a commit record must be durable before the commit is
     acknowledged. *)
  (match record with Record.Commit _ -> force t | _ -> ());
  lsn

let length t = t.len
let get t lsn = if lsn < 0 || lsn >= t.len then invalid_arg "Log.get: bad LSN" else t.records.(lsn)
let forced_lsn t = t.forced_lsn

let iter ?(from = 0) t f =
  for lsn = from to t.len - 1 do
    f lsn t.records.(lsn)
  done

let iter_rev ?until t f =
  let until = match until with None -> 0 | Some u -> u in
  for lsn = t.len - 1 downto until do
    f lsn t.records.(lsn)
  done

let fold ?(from = 0) t ~init ~f =
  let acc = ref init in
  iter ~from t (fun lsn r -> acc := f !acc lsn r);
  !acc

let to_list t = List.init t.len (fun i -> t.records.(i))

let close t = match t.sink with None -> () | Some { channel; _ } -> close_out channel

(* Load a file-backed log for recovery.  Stops cleanly at a torn tail
   (partial final record), mirroring what a real recovery scan does. *)
let load path =
  let ic = open_in_bin path in
  let t = in_memory () in
  let frame = Bytes.create 4 in
  let rec loop () =
    match really_input ic frame 0 4 with
    | () ->
        let len = Int32.to_int (Bytes.get_int32_le frame 0) in
        let body = Bytes.create len in
        (match really_input ic body 0 len with
        | () ->
            ignore (append t (Record.decode (Bytes.unsafe_to_string body)));
            loop ()
        | exception End_of_file -> ())
    | exception End_of_file -> ()
  in
  loop ();
  close_in ic;
  t.forced_lsn <- t.len - 1;
  t

let pp ppf t =
  iter t (fun lsn r -> Format.fprintf ppf "%4d %a@." lsn Record.pp r)
