lib/wal/log.ml: Array Bytes Format Int32 List Record String
