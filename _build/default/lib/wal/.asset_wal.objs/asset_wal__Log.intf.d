lib/wal/log.mli: Format Record
