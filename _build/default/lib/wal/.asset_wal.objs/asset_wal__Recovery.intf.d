lib/wal/recovery.mli: Asset_storage Asset_util Format Log
