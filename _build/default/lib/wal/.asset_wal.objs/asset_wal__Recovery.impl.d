lib/wal/recovery.ml: Asset_storage Asset_util Format Hashtbl List Log Record
