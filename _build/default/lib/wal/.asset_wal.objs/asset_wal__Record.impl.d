lib/wal/record.ml: Asset_storage Asset_util Buffer Bytes Char Format Int64 List Printf String
