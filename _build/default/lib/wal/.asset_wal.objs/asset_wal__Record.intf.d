lib/wal/record.mli: Asset_storage Asset_util Format
