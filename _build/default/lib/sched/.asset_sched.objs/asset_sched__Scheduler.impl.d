lib/sched/scheduler.ml: Asset_util Effect List Printf
