lib/sched/scheduler.mli:
