(* Deterministic cooperative scheduler over OCaml 5 effect handlers.

   EOS runs transactions as OS processes that block by spinning; the
   section 4.2 algorithms are phrased as "t_i blocks and retries later
   starting at step 1".  Here every transaction (and the application's
   main program) is a *fiber*; a blocking primitive performs the
   [Wait_until] effect, which parks the fiber under a wake condition,
   and the engine re-evaluates conditions whenever its state changes.
   This preserves exactly the block-and-retry structure while making
   every schedule reproducible: given the same policy (FIFO, or seeded
   random) the interleaving is identical run to run.

   Deadlock becomes observable rather than a hang: when no fiber is
   runnable and no parked condition is true, the scheduler calls the
   [on_stall] hook (the engine uses it to pick and abort a deadlock
   victim); if the hook makes no progress, [Deadlock] is raised with the
   parked fibers' reasons. *)

type policy = Fifo | Random_seeded of int

type fiber = {
  fid : int;
  label : string;
  mutable resume : unit -> unit;
}

type parked = { fiber : fiber; cond : unit -> bool; reason : string }

exception Deadlock of string list
exception Fiber_failed of string * exn

type t = {
  mutable runnable : fiber list; (* newest first; FIFO takes from the tail *)
  mutable parked : parked list;
  mutable next_fid : int;
  mutable current : fiber option;
  mutable steps : int;
  max_steps : int;
  rng : Asset_util.Rng.t option;
  mutable on_stall : unit -> bool;
  mutable trace : (int * string) list; (* (fid, event), newest first *)
  record_trace : bool;
}

type _ Effect.t += Yield : unit Effect.t | Wait_until : ((unit -> bool) * string) -> unit Effect.t

let create ?(policy = Fifo) ?(max_steps = 10_000_000) ?(record_trace = false) () =
  {
    runnable = [];
    parked = [];
    next_fid = 0;
    current = None;
    steps = 0;
    max_steps;
    rng = (match policy with Fifo -> None | Random_seeded seed -> Some (Asset_util.Rng.create seed));
    on_stall = (fun () -> false);
    trace = [];
    record_trace;
  }

let set_on_stall t f = t.on_stall <- f

let log_event t fid event = if t.record_trace then t.trace <- (fid, event) :: t.trace
let trace t = List.rev t.trace

let enqueue t fiber = t.runnable <- fiber :: t.runnable

(* Pop the next fiber according to the policy.  FIFO takes the oldest
   (tail of the newest-first list); random takes a uniformly random
   element. *)
let pop_runnable t =
  match t.runnable with
  | [] -> None
  | fibers -> (
      match t.rng with
      | None ->
          let rec split acc = function
            | [ last ] -> (last, List.rev acc)
            | x :: rest -> split (x :: acc) rest
            | [] -> assert false
          in
          let fiber, rest = split [] fibers in
          t.runnable <- rest;
          Some fiber
      | Some rng ->
          let n = List.length fibers in
          let i = Asset_util.Rng.int rng n in
          let fiber = List.nth fibers i in
          t.runnable <- List.filteri (fun j _ -> j <> i) fibers;
          Some fiber)

let current_fid t = match t.current with Some f -> f.fid | None -> -1

let handler t fiber =
  {
    Effect.Deep.retc = (fun () -> log_event t fiber.fid "finished");
    exnc = (fun e -> raise (Fiber_failed (fiber.label, e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                fiber.resume <- (fun () -> Effect.Deep.continue k ());
                log_event t fiber.fid "yield";
                enqueue t fiber)
        | Wait_until (cond, reason) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                fiber.resume <- (fun () -> Effect.Deep.continue k ());
                log_event t fiber.fid ("park: " ^ reason);
                t.parked <- { fiber; cond; reason } :: t.parked)
        | _ -> None);
  }

let spawn t ~label body =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  let fiber = { fid; label; resume = (fun () -> ()) } in
  fiber.resume <- (fun () -> Effect.Deep.match_with body () (handler t fiber));
  log_event t fid ("spawn: " ^ label);
  enqueue t fiber;
  fid

(* Primitives available inside fibers. *)
let yield () = Effect.perform Yield
let wait_until ?(reason = "condition") cond = if not (cond ()) then Effect.perform (Wait_until (cond, reason))

(* Wake every parked fiber whose condition now holds.  Returns true if
   anything woke. *)
let wake_ready t =
  let ready, still = List.partition (fun p -> p.cond ()) t.parked in
  t.parked <- still;
  List.iter
    (fun p ->
      log_event t p.fiber.fid "wake";
      enqueue t p.fiber)
    (List.rev ready);
  ready <> []

let run t =
  let rec loop () =
    t.steps <- t.steps + 1;
    if t.steps > t.max_steps then failwith "Scheduler.run: step budget exhausted (livelock?)";
    match pop_runnable t with
    | Some fiber ->
        t.current <- Some fiber;
        log_event t fiber.fid "run";
        let resume = fiber.resume in
        fiber.resume <- (fun () -> invalid_arg "fiber resumed twice");
        resume ();
        t.current <- None;
        ignore (wake_ready t);
        loop ()
    | None ->
        if t.parked = [] then () (* all fibers done *)
        else if wake_ready t then loop ()
        else if t.on_stall () then begin
          ignore (wake_ready t);
          if t.runnable = [] && not (wake_ready t) then
            raise (Deadlock (List.map (fun p -> Printf.sprintf "%s: %s" p.fiber.label p.reason) t.parked))
          else loop ()
        end
        else raise (Deadlock (List.map (fun p -> Printf.sprintf "%s: %s" p.fiber.label p.reason) t.parked))
  in
  loop ()

(* Convenience: build a scheduler, spawn [main], run to completion. *)
let run_main ?policy ?max_steps ?record_trace main =
  let t = create ?policy ?max_steps ?record_trace () in
  ignore (spawn t ~label:"main" main);
  run t;
  t

let steps t = t.steps
let runnable_count t = List.length t.runnable
let parked_count t = List.length t.parked
let parked_reasons t = List.map (fun p -> p.reason) t.parked
