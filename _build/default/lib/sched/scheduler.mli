(** Deterministic cooperative scheduler over OCaml 5 effect handlers.

    Every transaction (and the application's main program) runs in a
    fiber; a blocking primitive parks its fiber under a wake condition
    and the engine re-evaluates conditions on every state change —
    preserving the section-4.2 "blocks and retries" structure while
    making every schedule reproducible (FIFO, or seeded random).

    Deadlock is observable rather than a hang: when no fiber is
    runnable and no parked condition holds, the [on_stall] hook runs
    (the engine uses it to abort a deadlock victim); if it makes no
    progress, {!Deadlock} is raised with the parked fibers' reasons. *)

type policy = Fifo | Random_seeded of int

type t

exception Deadlock of string list
exception Fiber_failed of string * exn

val create : ?policy:policy -> ?max_steps:int -> ?record_trace:bool -> unit -> t
(** [max_steps] (default 10M) bounds total scheduling steps, turning
    livelocks into failures. *)

val set_on_stall : t -> (unit -> bool) -> unit
(** The hook must return true iff it made progress (e.g. aborted a
    victim and bumped a version counter). *)

val spawn : t -> label:string -> (unit -> unit) -> int
(** Enqueue a fiber; returns its id.  Callable from inside or outside
    fibers. *)

val run : t -> unit
(** Drive all fibers to completion.  Raises {!Deadlock} or
    {!Fiber_failed} (an uncaught exception in a fiber, which indicates
    a bug — engine-level aborts never escape). *)

val run_main :
  ?policy:policy -> ?max_steps:int -> ?record_trace:bool -> (unit -> unit) -> t
(** Create, spawn [main], run. *)

(** {2 Inside fibers} *)

val yield : unit -> unit

val wait_until : ?reason:string -> (unit -> bool) -> unit
(** Park until the condition holds (checked immediately first). *)

(** {2 Introspection} *)

val current_fid : t -> int
(** The running fiber's id, or -1 outside any fiber. *)

val steps : t -> int
val runnable_count : t -> int
val parked_count : t -> int
val parked_reasons : t -> string list

val trace : t -> (int * string) list
(** The recorded event trace (oldest first) when [record_trace] was
    set. *)
