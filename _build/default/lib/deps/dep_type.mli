(** Dependency types for [form_dependency].

    The paper's three: CD (commit dependency), AD (abort dependency,
    which covers CD), GC (group commit).  Two ACTA-inspired extensions:
    BD (begin-on-commit) and EXC (exclusion — at most one of the pair
    commits; contingent transactions are exclusion groups with a
    preference order). *)

type t =
  | CD  (** If both commit, the dependent cannot commit before the
            master; a master abort does not doom the dependent. *)
  | AD  (** If the master aborts, the dependent must abort. *)
  | GC  (** Either both commit or neither does. *)
  | BD  (** Extension: the dependent cannot begin until the master
            commits; a master abort means it never begins. *)
  | EXC  (** Extension: committing either side force-aborts the
             other. *)

val equal : t -> t -> bool

val is_extension : t -> bool
(** True for the non-paper types (BD, EXC). *)

val blocks_commit : t -> bool
(** Whether resolution makes the dependent's commit wait for the master
    to terminate; these edges form the subgraph on which the
    form_dependency cycle check runs. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
