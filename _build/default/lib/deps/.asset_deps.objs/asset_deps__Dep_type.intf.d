lib/deps/dep_type.mli: Format
