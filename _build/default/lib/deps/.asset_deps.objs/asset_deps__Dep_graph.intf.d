lib/deps/dep_graph.mli: Asset_util Dep_type Format
