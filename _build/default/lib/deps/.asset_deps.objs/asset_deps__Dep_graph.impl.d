lib/deps/dep_graph.ml: Asset_util Dep_type Format Hashtbl List
