lib/deps/dep_type.ml: Format
