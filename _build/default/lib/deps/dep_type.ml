(* Dependency types.

   The paper's form_dependency supports "many types of dependency" from
   the ACTA framework and spells out the three most frequent ones:

   - CD (commit dependency): if both commit, t_j cannot commit before
     t_i commits; if t_i aborts, t_j may still commit.
   - AD (abort dependency): if t_i aborts, t_j must abort.  AD covers
     CD ("an abort dependency implies a commit dependency").
   - GC (group commit): either both commit or neither does.

   Two further ACTA-inspired types are provided as extensions (marked
   so in DESIGN.md; the model library uses them where they give a
   declarative formulation of a Section-3 construction):

   - BD (begin-on-commit dependency): t_j cannot begin executing until
     t_i commits; if t_i aborts, t_j cannot begin at all.
   - EXC (exclusion): at most one of t_i, t_j commits — committing one
     forces the other to abort.  Contingent transactions (section
     3.1.3) are exclusion groups with a preference order. *)

type t = CD | AD | GC | BD | EXC

let equal a b =
  match (a, b) with
  | CD, CD | AD, AD | GC, GC | BD, BD | EXC, EXC -> true
  | (CD | AD | GC | BD | EXC), _ -> false

let is_extension = function BD | EXC -> true | CD | AD | GC -> false

(* Dependency types whose resolution makes the dependent's commit wait
   for the depended-on transaction to terminate; these edges form the
   graph on which form_dependency's cycle check runs (a CD/AD cycle
   would block every participant forever, whereas a GC cycle just means
   group commit). *)
let blocks_commit = function CD | AD -> true | GC | BD | EXC -> false

let to_string = function CD -> "CD" | AD -> "AD" | GC -> "GC" | BD -> "BD" | EXC -> "EXC"
let pp ppf t = Format.pp_print_string ppf (to_string t)
