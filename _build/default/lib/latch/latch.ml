(* Latches, after ASSET paper section 4.1.

   "There are two modes in which an item may be latched: shared (S) and
   exclusive (X). [...] Each latch, in addition to the value that can be
   set or unset atomically, contains an S-counter indicating the number of
   processes holding the latch in S mode and an X-bit indicating whether a
   process is waiting to get the latch in X mode.  The X-bit blocks new
   readers from setting the latch, thus preventing starvation of update
   transactions."

   In EOS the holders are OS processes spinning on a test-and-set word; in
   this reproduction the holders are cooperative fibers, so a failed
   acquisition calls the caller-supplied [spin] callback (typically the
   scheduler's yield) instead of burning a CPU.  The state machine —
   S-counter, X ownership, and the reader-blocking X-bit — is exactly the
   paper's. *)

type mode = S | X

let pp_mode ppf = function S -> Format.pp_print_string ppf "S" | X -> Format.pp_print_string ppf "X"

type t = {
  name : string;
  mutable s_count : int;  (* number of S holders *)
  mutable x_held : bool;  (* an X holder is present *)
  mutable x_waiting : int;  (* the "X-bit", generalized to a count of waiting writers *)
  acquisitions : Asset_util.Stats.Counter.t;
  spins : Asset_util.Stats.Counter.t;
}

let create ?(name = "latch") () =
  {
    name;
    s_count = 0;
    x_held = false;
    x_waiting = 0;
    acquisitions = Asset_util.Stats.Counter.create (name ^ ".acquisitions");
    spins = Asset_util.Stats.Counter.create (name ^ ".spins");
  }

let name t = t.name

(* A single test-and-set attempt.  Returns true when the latch was taken. *)
let try_acquire t mode =
  match mode with
  | S ->
      (* New readers are blocked while a writer holds or waits (X-bit). *)
      if t.x_held || t.x_waiting > 0 then false
      else begin
        t.s_count <- t.s_count + 1;
        Asset_util.Stats.Counter.incr t.acquisitions;
        true
      end
  | X ->
      if t.x_held || t.s_count > 0 then false
      else begin
        t.x_held <- true;
        Asset_util.Stats.Counter.incr t.acquisitions;
        true
      end

(* Acquire, spinning via [spin] until the latch is granted.  An X
   requester registers in [x_waiting] while spinning so that the X-bit
   starves out new readers, per the paper. *)
let acquire ?(spin = fun () -> ()) t mode =
  if not (try_acquire t mode) then begin
    (match mode with X -> t.x_waiting <- t.x_waiting + 1 | S -> ());
    let rec loop () =
      Asset_util.Stats.Counter.incr t.spins;
      spin ();
      if not (try_acquire t mode) then loop ()
    in
    (* For a waiting writer, try_acquire must ignore its own registration:
       temporarily decrement while attempting. *)
    let rec x_loop () =
      Asset_util.Stats.Counter.incr t.spins;
      spin ();
      if t.x_held || t.s_count > 0 then x_loop ()
      else begin
        t.x_waiting <- t.x_waiting - 1;
        t.x_held <- true;
        Asset_util.Stats.Counter.incr t.acquisitions
      end
    in
    match mode with S -> loop () | X -> x_loop ()
  end

let release t mode =
  match mode with
  | S ->
      if t.s_count <= 0 then invalid_arg "Latch.release: no S holder";
      t.s_count <- t.s_count - 1
  | X ->
      if not t.x_held then invalid_arg "Latch.release: no X holder";
      t.x_held <- false

let with_latch ?spin t mode f =
  acquire ?spin t mode;
  match f () with
  | result ->
      release t mode;
      result
  | exception e ->
      release t mode;
      raise e

let s_count t = t.s_count
let x_held t = t.x_held
let x_waiting t = t.x_waiting > 0
let acquisitions t = Asset_util.Stats.Counter.get t.acquisitions
let spin_count t = Asset_util.Stats.Counter.get t.spins

let pp ppf t =
  Format.fprintf ppf "%s{S=%d%s%s}" t.name t.s_count
    (if t.x_held then " X" else "")
    (if t.x_waiting > 0 then Printf.sprintf " Xwait=%d" t.x_waiting else "")
