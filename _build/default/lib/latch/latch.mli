(** Latches, after section 4.1 of the paper.

    A latch protects one cached item against simultaneous access; it is
    held only for the duration of an elementary read or write.  Two
    modes exist: shared ([S], counted) and exclusive ([X]).  The X-bit
    blocks new readers while a writer waits, preventing starvation of
    update transactions.  In this reproduction the "processes spinning"
    of EOS become cooperative fibers: a failed acquisition invokes the
    caller-supplied [spin] callback (typically the scheduler's yield)
    between attempts. *)

type mode = S | X

val pp_mode : Format.formatter -> mode -> unit

type t

val create : ?name:string -> unit -> t
val name : t -> string

val try_acquire : t -> mode -> bool
(** One test-and-set attempt; true when the latch was taken.  An [S]
    attempt fails while a writer holds or waits (the X-bit). *)

val acquire : ?spin:(unit -> unit) -> t -> mode -> unit
(** Acquire, invoking [spin] between failed attempts until granted.  A
    waiting [X] requester raises the X-bit while it spins. *)

val release : t -> mode -> unit
(** Raises [Invalid_argument] when the latch is not held in [mode]. *)

val with_latch : ?spin:(unit -> unit) -> t -> mode -> (unit -> 'a) -> 'a
(** [acquire]/[release] bracket, exception-safe. *)

(** {2 Introspection} *)

val s_count : t -> int
val x_held : t -> bool
val x_waiting : t -> bool
val acquisitions : t -> int
val spin_count : t -> int
val pp : Format.formatter -> t -> unit
