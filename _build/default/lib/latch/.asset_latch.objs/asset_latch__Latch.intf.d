lib/latch/latch.mli: Format
