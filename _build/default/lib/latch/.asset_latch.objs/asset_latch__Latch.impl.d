lib/latch/latch.ml: Asset_util Format Printf
