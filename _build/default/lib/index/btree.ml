(* An in-memory B+tree: ordered int keys to ['a] values.

   EOS provides indexes over its object collections; this is the
   corresponding substrate here, used by [Asset_core.Collection] to
   give named collections ordered, range-scannable membership.  Keys
   live only in the leaves (classic B+tree); internal nodes hold
   separators, and leaves are chained for range scans.

   The tree is volatile — collections rebuild their index from the
   transactional membership objects at open — so no paging or logging
   is needed at this layer.  Invariants (checked by [validate], used in
   tests):

   - every node except the root has between [min_keys] and
     [2 * min_keys] keys; the root has between 1 and [2 * min_keys];
   - all leaves are at the same depth;
   - keys are strictly increasing left to right, and each internal
     separator is >= every key in its left subtree and < every key in
     its right subtree. *)

type 'a leaf = { mutable keys : int array; mutable values : 'a array; mutable next : 'a node option }
and 'a internal = { mutable seps : int array; mutable children : 'a node array }
and 'a node = Leaf of 'a leaf | Internal of 'a internal

type 'a t = { mutable root : 'a node; min_keys : int; mutable size : int }

let create ?(min_keys = 8) () =
  if min_keys < 2 then invalid_arg "Btree.create: min_keys must be >= 2";
  { root = Leaf { keys = [||]; values = [||]; next = None }; min_keys; size = 0 }

let size t = t.size
let max_keys t = 2 * t.min_keys

(* Index of the child to follow for [key] in an internal node: the
   first separator greater than [key]. *)
let child_index keys key =
  let n = Array.length keys in
  let rec loop i = if i >= n || key < keys.(i) then i else loop (i + 1) in
  loop 0

(* Position of [key] in a sorted array, or the insertion point. *)
let search keys key =
  let n = Array.length keys in
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) < key then loop (mid + 1) hi else loop lo mid
  in
  loop 0 n

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

let find t key =
  let rec go node =
    match node with
    | Leaf l ->
        let i = search l.keys key in
        if i < Array.length l.keys && l.keys.(i) = key then Some l.values.(i) else None
    | Internal n -> go n.children.(child_index n.seps key)
  in
  go t.root

let mem t key = find t key <> None

(* Insertion: returns [Some (separator, right_sibling)] when the child
   split and the parent must add a new entry. *)
let rec insert_node t node key value =
  match node with
  | Leaf l ->
      let i = search l.keys key in
      if i < Array.length l.keys && l.keys.(i) = key then begin
        l.values.(i) <- value;
        None
      end
      else begin
        l.keys <- array_insert l.keys i key;
        l.values <- array_insert l.values i value;
        t.size <- t.size + 1;
        if Array.length l.keys <= max_keys t then None
        else begin
          (* Split the leaf in half; the separator is the first key of
             the right half (which stays in the leaf — B+tree). *)
          let n = Array.length l.keys in
          let mid = n / 2 in
          let right =
            Leaf
              {
                keys = Array.sub l.keys mid (n - mid);
                values = Array.sub l.values mid (n - mid);
                next = l.next;
              }
          in
          let sep = l.keys.(mid) in
          l.keys <- Array.sub l.keys 0 mid;
          l.values <- Array.sub l.values 0 mid;
          l.next <- Some right;
          Some (sep, right)
        end
      end
  | Internal n -> (
      let ci = child_index n.seps key in
      match insert_node t n.children.(ci) key value with
      | None -> None
      | Some (sep, right) ->
          n.seps <- array_insert n.seps ci sep;
          n.children <- array_insert n.children (ci + 1) right;
          if Array.length n.seps <= max_keys t then None
          else begin
            (* Split the internal node; the middle separator moves up. *)
            let k = Array.length n.seps in
            let mid = k / 2 in
            let up = n.seps.(mid) in
            let right =
              Internal
                {
                  seps = Array.sub n.seps (mid + 1) (k - mid - 1);
                  children = Array.sub n.children (mid + 1) (k - mid);
                }
            in
            n.seps <- Array.sub n.seps 0 mid;
            n.children <- Array.sub n.children 0 (mid + 1);
            Some (up, right)
          end)

let insert t key value =
  match insert_node t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

(* Deletion with rebalancing (borrow from a sibling, else merge). *)
let node_keys = function Leaf l -> l.keys | Internal n -> n.seps
let underflowing t node = Array.length (node_keys node) < t.min_keys

let rec delete_node t node key =
  match node with
  | Leaf l ->
      let i = search l.keys key in
      if i < Array.length l.keys && l.keys.(i) = key then begin
        l.keys <- array_remove l.keys i;
        l.values <- array_remove l.values i;
        t.size <- t.size - 1;
        true
      end
      else false
  | Internal n ->
      let ci = child_index n.seps key in
      let removed = delete_node t n.children.(ci) key in
      if removed && underflowing t n.children.(ci) then rebalance t n ci;
      removed

and rebalance t parent ci =
  let child = parent.children.(ci) in
  let left_sibling = if ci > 0 then Some (ci - 1) else None in
  let right_sibling = if ci + 1 < Array.length parent.children then Some (ci + 1) else None in
  let can_lend i =
    Array.length (node_keys parent.children.(i)) > t.min_keys
  in
  match (left_sibling, right_sibling) with
  | Some li, _ when can_lend li -> borrow_from_left parent li ci child
  | _, Some ri when can_lend ri -> borrow_from_right parent ci ri child
  | Some li, _ -> merge parent li ci
  | _, Some ri -> merge parent ci ri
  | None, None -> () (* root child: handled by the caller of delete *)

and borrow_from_left parent li _ci child =
  match (parent.children.(li), child) with
  | Leaf left, Leaf right ->
      let n = Array.length left.keys in
      let k = left.keys.(n - 1) and v = left.values.(n - 1) in
      left.keys <- Array.sub left.keys 0 (n - 1);
      left.values <- Array.sub left.values 0 (n - 1);
      right.keys <- array_insert right.keys 0 k;
      right.values <- array_insert right.values 0 v;
      parent.seps.(li) <- k
  | Internal left, Internal right ->
      let n = Array.length left.seps in
      let sep = parent.seps.(li) in
      parent.seps.(li) <- left.seps.(n - 1);
      right.seps <- array_insert right.seps 0 sep;
      right.children <- array_insert right.children 0 left.children.(n);
      left.seps <- Array.sub left.seps 0 (n - 1);
      left.children <- Array.sub left.children 0 n
  | _ -> assert false (* siblings are at the same level *)

and borrow_from_right parent ci ri child =
  match (child, parent.children.(ri)) with
  | Leaf left, Leaf right ->
      let k = right.keys.(0) and v = right.values.(0) in
      right.keys <- array_remove right.keys 0;
      right.values <- array_remove right.values 0;
      left.keys <- array_insert left.keys (Array.length left.keys) k;
      left.values <- array_insert left.values (Array.length left.values) v;
      parent.seps.(ci) <- right.keys.(0)
  | Internal left, Internal right ->
      let sep = parent.seps.(ci) in
      parent.seps.(ci) <- right.seps.(0);
      left.seps <- array_insert left.seps (Array.length left.seps) sep;
      left.children <- array_insert left.children (Array.length left.children) right.children.(0);
      right.seps <- array_remove right.seps 0;
      right.children <- array_remove right.children 0
  | _ -> assert false

and merge parent li ri =
  (* Merge children li and ri (adjacent, li < ri) into li. *)
  (match (parent.children.(li), parent.children.(ri)) with
  | Leaf left, Leaf right ->
      left.keys <- Array.append left.keys right.keys;
      left.values <- Array.append left.values right.values;
      left.next <- right.next
  | Internal left, Internal right ->
      left.seps <- Array.concat [ left.seps; [| parent.seps.(li) |]; right.seps ];
      left.children <- Array.append left.children right.children
  | _ -> assert false);
  parent.seps <- array_remove parent.seps li;
  parent.children <- array_remove parent.children ri

let delete t key =
  let removed = delete_node t t.root key in
  (* Collapse a root that lost all separators. *)
  (match t.root with
  | Internal n when Array.length n.seps = 0 -> t.root <- n.children.(0)
  | _ -> ());
  removed

(* Leftmost leaf, for scans. *)
let rec leftmost = function
  | Leaf _ as l -> l
  | Internal n -> leftmost n.children.(0)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some (Leaf l) ->
        Array.iteri (fun i k -> f k l.values.(i)) l.keys;
        walk (match l.next with None -> None | Some next -> Some next)
    | Some (Internal _) -> assert false
  in
  walk (Some (leftmost t.root))

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* Range scan over [lo, hi] inclusive. *)
let range t ~lo ~hi f =
  let rec find_leaf node =
    match node with Leaf _ as l -> l | Internal n -> find_leaf n.children.(child_index n.seps lo)
  in
  let rec walk = function
    | None -> ()
    | Some (Leaf l) ->
        let stop = ref false in
        Array.iteri
          (fun i k -> if k >= lo && k <= hi then f k l.values.(i) else if k > hi then stop := true)
          l.keys;
        if not !stop then walk (Option.map (fun n -> n) l.next)
    | Some (Internal _) -> assert false
  in
  walk (Some (find_leaf t.root))

let min_binding t =
  match leftmost t.root with
  | Leaf l when Array.length l.keys > 0 -> Some (l.keys.(0), l.values.(0))
  | _ -> None

(* Structural invariant check; returns an error description or None. *)
let validate t =
  let exception Bad of string in
  let rec depth = function Leaf _ -> 0 | Internal n -> 1 + depth n.children.(0) in
  let d = depth t.root in
  let check_sorted keys =
    Array.iteri (fun i k -> if i > 0 && keys.(i - 1) >= k then raise (Bad "keys not sorted")) keys
  in
  let rec go node ~is_root ~level ~lo ~hi =
    let keys = node_keys node in
    check_sorted keys;
    Array.iter
      (fun k ->
        (match lo with Some l when k < l -> raise (Bad "key below bound") | _ -> ());
        match hi with Some h when k >= h -> raise (Bad "key above bound") | _ -> ())
      keys;
    let nk = Array.length keys in
    if (not is_root) && nk < t.min_keys then raise (Bad "underfull node");
    if nk > max_keys t then raise (Bad "overfull node");
    match node with
    | Leaf _ -> if level <> d then raise (Bad "leaves at different depths")
    | Internal n ->
        if Array.length n.children <> nk + 1 then raise (Bad "children/keys mismatch");
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some keys.(i - 1) in
            let hi' = if i = nk then hi else Some keys.(i) in
            go child ~is_root:false ~level:(level + 1) ~lo:lo' ~hi:hi')
          n.children
  in
  match go t.root ~is_root:true ~level:0 ~lo:None ~hi:None with
  | () ->
      (* Size consistency. *)
      let n = ref 0 in
      iter t (fun _ _ -> incr n);
      if !n <> t.size then Some "size mismatch" else None
  | exception Bad msg -> Some msg
