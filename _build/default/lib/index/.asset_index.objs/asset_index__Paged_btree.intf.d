lib/index/paged_btree.mli:
