lib/index/paged_btree.ml: Asset_storage Bytes Char Int32 Int64 List
