lib/index/btree.mli:
