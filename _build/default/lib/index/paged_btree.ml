(* A persistent B+tree: fixed-size pages behind the buffer pool,
   int keys to int values.

   This is the durable counterpart of [Btree] — the index structure an
   EOS-style storage manager keeps on disk.  Layout (little-endian):

   page 1 (meta):   magic "ABTREE1\000", u32 root page id, u64 entry count
   node pages:
     offset 0       u8   node kind (1 = leaf, 2 = internal)
     offset 1       u16  number of keys
     leaf:
       offset 3     u32  next-leaf page id (0 = none)
       offset 8     entries: key u64, value u64        (16 bytes each)
     internal:
       offset 8     u32  child0
       offset 12    entries: key u64, child u32        (12 bytes each)

   Splits propagate upward as in the in-memory tree.  Deletion removes
   the key from its leaf and *defers rebalancing*: underfull (even
   empty) nodes are tolerated and reclaimed only by [compact]-style
   rebuilds — a common production trade-off, documented here and
   honoured by the tests.  All access goes through the buffer pool, so
   a [flush] makes the tree durable and [open_existing] recovers it by
   reading the meta page. *)

let magic = "ABTREE1\000"

type t = {
  pager : Asset_storage.Pager.t;
  pool : Asset_storage.Buffer_pool.t;
  mutable root : int; (* page id *)
  mutable count : int;
  meta_page : int;
}

module Pool = Asset_storage.Buffer_pool
module Pager = Asset_storage.Pager

let leaf_kind = 1
let internal_kind = 2

(* Capacities reserve one slack entry: the insert path lets a node go
   one entry over capacity before splitting it, and that transient
   state must still fit in the page. *)
let leaf_capacity t = ((Pager.page_size t.pager - 8) / 16) - 1
let internal_capacity t = ((Pager.page_size t.pager - 12) / 12) - 1

(* ------------------------------------------------------------------ *)
(* Raw node accessors (operate on pinned frame bytes)                  *)

let kind b = Char.code (Bytes.get b 0)
let set_kind b k = Bytes.set b 0 (Char.chr k)
let nkeys b = Bytes.get_uint16_le b 1
let set_nkeys b n = Bytes.set_uint16_le b 1 n

(* Leaf accessors *)
let leaf_next b = Int32.to_int (Bytes.get_int32_le b 3)
let set_leaf_next b p = Bytes.set_int32_le b 3 (Int32.of_int p)
let leaf_key b i = Int64.to_int (Bytes.get_int64_le b (8 + (i * 16)))
let leaf_value b i = Int64.to_int (Bytes.get_int64_le b (8 + (i * 16) + 8))

let set_leaf_entry b i ~key ~value =
  Bytes.set_int64_le b (8 + (i * 16)) (Int64.of_int key);
  Bytes.set_int64_le b (8 + (i * 16) + 8) (Int64.of_int value)

(* Internal accessors: child i is left of key i; child nkeys is the
   rightmost. *)
let internal_child b i =
  if i = 0 then Int32.to_int (Bytes.get_int32_le b 8)
  else Int32.to_int (Bytes.get_int32_le b (12 + ((i - 1) * 12) + 8))

let set_internal_child b i p =
  if i = 0 then Bytes.set_int32_le b 8 (Int32.of_int p)
  else Bytes.set_int32_le b (12 + ((i - 1) * 12) + 8) (Int32.of_int p)

let internal_key b i = Int64.to_int (Bytes.get_int64_le b (12 + (i * 12)))
let set_internal_key b i k = Bytes.set_int64_le b (12 + (i * 12)) (Int64.of_int k)

(* ------------------------------------------------------------------ *)
(* Meta page                                                           *)

let write_meta t =
  Pool.with_page t.pool t.meta_page (fun f ->
      let b = f.Pool.bytes in
      Bytes.blit_string magic 0 b 0 8;
      Bytes.set_int32_le b 8 (Int32.of_int t.root);
      Bytes.set_int64_le b 12 (Int64.of_int t.count);
      Pool.mark_dirty f)

let init_leaf t page_id ~next =
  Pool.with_page t.pool page_id (fun f ->
      let b = f.Pool.bytes in
      Bytes.fill b 0 (Bytes.length b) '\000';
      set_kind b leaf_kind;
      set_nkeys b 0;
      set_leaf_next b next;
      Pool.mark_dirty f)

let create ?page_size ?pool_capacity path =
  let pager = Pager.create ?page_size path in
  let pool = Pool.create ?capacity:pool_capacity pager in
  let meta_page = Pager.alloc_page pager in
  let root = Pager.alloc_page pager in
  let t = { pager; pool; root; count = 0; meta_page } in
  init_leaf t root ~next:0;
  write_meta t;
  t

let open_existing ?pool_capacity path =
  let pager = Pager.open_existing path in
  let pool = Pool.create ?capacity:pool_capacity pager in
  let meta_page = 1 in
  let root, count =
    Pool.with_page pool meta_page (fun f ->
        let b = f.Pool.bytes in
        if Bytes.sub_string b 0 8 <> magic then
          invalid_arg "Paged_btree.open_existing: not a btree file";
        (Int32.to_int (Bytes.get_int32_le b 8), Int64.to_int (Bytes.get_int64_le b 12)))
  in
  { pager; pool; root; count; meta_page }

let size t = t.count
let flush t = write_meta t; Pool.flush_all t.pool
let close t = flush t; Pager.close t.pager

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

(* First index whose key is >= [key] (leaf) / child to follow
   (internal). *)
let leaf_position b key =
  let n = nkeys b in
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if leaf_key b mid < key then loop (mid + 1) hi else loop lo mid
  in
  loop 0 n

let internal_position b key =
  let n = nkeys b in
  let rec loop i = if i >= n || key < internal_key b i then i else loop (i + 1) in
  loop 0

let rec find_in t page_id key =
  Pool.with_page t.pool page_id (fun f ->
      let b = f.Pool.bytes in
      if kind b = leaf_kind then begin
        let i = leaf_position b key in
        if i < nkeys b && leaf_key b i = key then Some (leaf_value b i) else None
      end
      else find_in t (internal_child b (internal_position b key)) key)

let find t key = find_in t t.root key
let mem t key = find t key <> None

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)

(* Shift leaf entries right from [i] to open a slot. *)
let leaf_open_slot b i =
  let n = nkeys b in
  Bytes.blit b (8 + (i * 16)) b (8 + ((i + 1) * 16)) ((n - i) * 16);
  set_nkeys b (n + 1)

let internal_open_slot b i =
  (* Opens key slot i and child slot i+1. *)
  let n = nkeys b in
  Bytes.blit b (12 + (i * 12)) b (12 + ((i + 1) * 12)) ((n - i) * 12);
  set_nkeys b (n + 1)

(* Returns [Some (separator, new_right_page)] when the node split. *)
let rec insert_in t page_id key value =
  let result =
    Pool.with_page t.pool page_id (fun f ->
        let b = f.Pool.bytes in
        if kind b = leaf_kind then begin
          let i = leaf_position b key in
          if i < nkeys b && leaf_key b i = key then begin
            set_leaf_entry b i ~key ~value;
            Pool.mark_dirty f;
            `Done
          end
          else begin
            leaf_open_slot b i;
            set_leaf_entry b i ~key ~value;
            t.count <- t.count + 1;
            Pool.mark_dirty f;
            if nkeys b <= leaf_capacity t then `Done else `Split_leaf
          end
        end
        else `Descend (internal_child b (internal_position b key)))
  in
  match result with
  | `Done -> None
  | `Descend child -> (
      match insert_in t child key value with
      | None -> None
      | Some (sep, right_page) ->
          (* Insert (sep, right_page) into this internal node. *)
          let split =
            Pool.with_page t.pool page_id (fun f ->
                let b = f.Pool.bytes in
                let i = internal_position b sep in
                internal_open_slot b i;
                set_internal_key b i sep;
                set_internal_child b (i + 1) right_page;
                Pool.mark_dirty f;
                nkeys b > internal_capacity t)
          in
          if not split then None else Some (split_internal t page_id))
  | `Split_leaf -> Some (split_leaf t page_id)

and split_leaf t page_id =
  let right_page = Pager.alloc_page t.pager in
  init_leaf t right_page ~next:0;
  Pool.with_page t.pool page_id (fun lf ->
      Pool.with_page t.pool right_page (fun rf ->
          let lb = lf.Pool.bytes and rb = rf.Pool.bytes in
          let n = nkeys lb in
          let mid = n / 2 in
          Bytes.blit lb (8 + (mid * 16)) rb 8 ((n - mid) * 16);
          set_nkeys rb (n - mid);
          set_nkeys lb mid;
          set_leaf_next rb (leaf_next lb);
          set_leaf_next lb right_page;
          Pool.mark_dirty lf;
          Pool.mark_dirty rf;
          (leaf_key rb 0, right_page)))

and split_internal t page_id =
  let right_page = Pager.alloc_page t.pager in
  Pool.with_page t.pool page_id (fun lf ->
      Pool.with_page t.pool right_page (fun rf ->
          let lb = lf.Pool.bytes and rb = rf.Pool.bytes in
          Bytes.fill rb 0 (Bytes.length rb) '\000';
          set_kind rb internal_kind;
          let n = nkeys lb in
          let mid = n / 2 in
          let up = internal_key lb mid in
          (* Right gets keys mid+1 .. n-1 and children mid+1 .. n. *)
          set_internal_child rb 0 (internal_child lb (mid + 1));
          for j = mid + 1 to n - 1 do
            let i = j - mid - 1 in
            set_internal_key rb i (internal_key lb j);
            set_internal_child rb (i + 1) (internal_child lb (j + 1))
          done;
          set_nkeys rb (n - mid - 1);
          set_nkeys lb mid;
          Pool.mark_dirty lf;
          Pool.mark_dirty rf;
          (up, right_page)))

let insert t key value =
  match insert_in t t.root key value with
  | None -> ()
  | Some (sep, right_page) ->
      (* Grow a new root. *)
      let new_root = Pager.alloc_page t.pager in
      Pool.with_page t.pool new_root (fun f ->
          let b = f.Pool.bytes in
          Bytes.fill b 0 (Bytes.length b) '\000';
          set_kind b internal_kind;
          set_nkeys b 1;
          set_internal_child b 0 t.root;
          set_internal_key b 0 sep;
          set_internal_child b 1 right_page;
          Pool.mark_dirty f);
      t.root <- new_root

(* ------------------------------------------------------------------ *)
(* Delete (leaf removal; rebalancing deferred, see header)             *)

let rec delete_in t page_id key =
  let result =
    Pool.with_page t.pool page_id (fun f ->
        let b = f.Pool.bytes in
        if kind b = leaf_kind then begin
          let i = leaf_position b key in
          if i < nkeys b && leaf_key b i = key then begin
            let n = nkeys b in
            Bytes.blit b (8 + ((i + 1) * 16)) b (8 + (i * 16)) ((n - i - 1) * 16);
            set_nkeys b (n - 1);
            t.count <- t.count - 1;
            Pool.mark_dirty f;
            `Removed
          end
          else `Absent
        end
        else `Descend (internal_child b (internal_position b key)))
  in
  match result with
  | `Removed -> true
  | `Absent -> false
  | `Descend child -> delete_in t child key

let delete t key = delete_in t t.root key

(* ------------------------------------------------------------------ *)
(* Scans                                                               *)

let rec leftmost_leaf t page_id =
  Pool.with_page t.pool page_id (fun f ->
      let b = f.Pool.bytes in
      if kind b = leaf_kind then page_id else leftmost_leaf t (internal_child b 0))

let rec find_leaf_for t page_id key =
  Pool.with_page t.pool page_id (fun f ->
      let b = f.Pool.bytes in
      if kind b = leaf_kind then page_id
      else find_leaf_for t (internal_child b (internal_position b key)) key)

let iter t f =
  let rec walk page_id =
    if page_id <> 0 then begin
      let next =
        Pool.with_page t.pool page_id (fun fr ->
            let b = fr.Pool.bytes in
            for i = 0 to nkeys b - 1 do
              f (leaf_key b i) (leaf_value b i)
            done;
            leaf_next b)
      in
      walk next
    end
  in
  walk (leftmost_leaf t t.root)

let range t ~lo ~hi f =
  let rec walk page_id =
    if page_id <> 0 then begin
      let next, stop =
        Pool.with_page t.pool page_id (fun fr ->
            let b = fr.Pool.bytes in
            let stop = ref false in
            for i = 0 to nkeys b - 1 do
              let k = leaf_key b i in
              if k > hi then stop := true else if k >= lo then f k (leaf_value b i)
            done;
            (leaf_next b, !stop))
      in
      if not stop then walk next
    end
  in
  walk (find_leaf_for t t.root lo)

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Validation (tests)                                                  *)

let validate t =
  let exception Bad of string in
  (* Keys ascend globally along the leaf chain; count matches; every
     internal separator bounds its subtrees. *)
  let rec check page_id ~lo ~hi =
    Pool.with_page t.pool page_id (fun f ->
        let b = f.Pool.bytes in
        let n = nkeys b in
        if kind b = leaf_kind then
          for i = 0 to n - 1 do
            let k = leaf_key b i in
            if i > 0 && leaf_key b (i - 1) >= k then raise (Bad "leaf keys not sorted");
            (match lo with Some l when k < l -> raise (Bad "leaf key below bound") | _ -> ());
            match hi with Some h when k >= h -> raise (Bad "leaf key above bound") | _ -> ()
          done
        else begin
          if n = 0 then raise (Bad "empty internal node");
          for i = 0 to n - 1 do
            let k = internal_key b i in
            if i > 0 && internal_key b (i - 1) >= k then raise (Bad "separators not sorted")
          done;
          for i = 0 to n do
            let lo' = if i = 0 then lo else Some (internal_key b (i - 1)) in
            let hi' = if i = n then hi else Some (internal_key b i) in
            check (internal_child b i) ~lo:lo' ~hi:hi'
          done
        end)
  in
  match check t.root ~lo:None ~hi:None with
  | () ->
      let n = ref 0 in
      let last = ref min_int in
      let ordered = ref true in
      iter t (fun k _ ->
          if k <= !last then ordered := false;
          last := k;
          incr n);
      if not !ordered then Some "leaf chain out of order"
      else if !n <> t.count then Some "count mismatch"
      else None
  | exception Bad msg -> Some msg
