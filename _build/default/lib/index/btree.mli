(** An in-memory B+tree: ordered int keys to ['a] values.

    Keys live only in the leaves; internal nodes hold separators, and
    leaves are chained for range scans.  Used by
    [Asset_core.Collection] for ordered membership, and directly
    testable against a map model ([validate] checks the structural
    invariants). *)

type 'a t

val create : ?min_keys:int -> unit -> 'a t
(** Every node except the root keeps between [min_keys] (default 8, at
    least 2) and [2 * min_keys] keys. *)

val size : 'a t -> int
val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val insert : 'a t -> int -> 'a -> unit
(** Inserting an existing key overwrites its value. *)

val delete : 'a t -> int -> bool
(** False when the key was absent.  Rebalances by borrowing from or
    merging with siblings. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** In ascending key order, via the leaf chain. *)

val to_list : 'a t -> (int * 'a) list

val range : 'a t -> lo:int -> hi:int -> (int -> 'a -> unit) -> unit
(** Visit bindings with [lo <= key <= hi] in ascending order. *)

val min_binding : 'a t -> (int * 'a) option

val validate : 'a t -> string option
(** [None] when every invariant holds; otherwise a description of the
    violation.  Test support. *)
