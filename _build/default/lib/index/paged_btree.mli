(** A persistent B+tree over the pager/buffer-pool: int keys to int
    values — the durable index an EOS-style storage manager keeps on
    disk.

    Inserts split pages upward; deletion removes the key from its leaf
    and {e defers rebalancing} (underfull nodes are tolerated — a
    documented production trade-off).  All access goes through the
    buffer pool; {!flush} makes the tree durable, {!open_existing}
    recovers it from the meta page. *)

type t

val create : ?page_size:int -> ?pool_capacity:int -> string -> t
val open_existing : ?pool_capacity:int -> string -> t

val size : t -> int
val find : t -> int -> int option
val mem : t -> int -> bool

val insert : t -> int -> int -> unit
(** Inserting an existing key overwrites its value. *)

val delete : t -> int -> bool
(** False when the key was absent. *)

val iter : t -> (int -> int -> unit) -> unit
(** Ascending key order along the leaf chain. *)

val range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
val to_list : t -> (int * int) list

val flush : t -> unit
val close : t -> unit

val validate : t -> string option
(** [None] when ordering/bounds/count invariants hold.  Test support. *)
