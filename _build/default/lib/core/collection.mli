(** Transactional collections: named, ordered sets of objects — the
    "relation" the paper's cursor-stability discussion scans.

    A collection is stored in objects (a root listing chunk objects,
    each holding a bounded number of member oids), so membership
    changes are locked, logged and undone like any other update.
    Plumbing lives at negative oids; member oids must be positive.
    Ordered access materializes the membership into a query-time B+tree
    under the caller's read locks.

    All operations must run inside a transaction body. *)

module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

type t = { name : string; root : Oid.t; chunk_capacity : int }

val default_chunk_capacity : int

val create : Engine.t -> name:string -> ?chunk_capacity:int -> unit -> t
(** Raises [Invalid_argument] when the name is taken. *)

val find : Engine.t -> name:string -> ?chunk_capacity:int -> unit -> t option
val find_or_create : Engine.t -> name:string -> ?chunk_capacity:int -> unit -> t

val add : Engine.t -> t -> Oid.t -> bool
(** False when the member was already present.  Raises
    [Invalid_argument] on non-positive oids. *)

val remove : Engine.t -> t -> Oid.t -> bool
val mem : Engine.t -> t -> Oid.t -> bool
val cardinal : Engine.t -> t -> int

val members : Engine.t -> t -> Oid.t list
(** Sorted by oid. *)

val range : Engine.t -> t -> lo:Oid.t -> hi:Oid.t -> Oid.t list
(** Members in [\[lo, hi\]], sorted. *)

val scan :
  ?stability:[ `Repeatable_read | `Cursor ] -> Engine.t -> t -> f:(Oid.t -> Value.t -> unit) -> unit
(** Read each member object in oid order under the caller's
    transaction.  [`Cursor] implements section 3.2.2: after a record is
    processed, any transaction may write (or increment) it without
    waiting for the scanner to commit. *)
