(* Private workspaces: the paper's other EOS operating mode.

   Section 4 opens: "We focus our discussion here on one mode of
   operation in which the application operates directly on the objects
   in a shared cache without first copying the object to its private
   address space."  This module supplies the mode the paper set aside:
   a transaction checks objects *out* into a private buffer, works on
   the copies — no latches, no log records, no shared-cache traffic per
   update — and checks the modified ones back *in* through the normal
   write path (one logged update per dirty object, however many times
   it was modified privately).

   Locking is unchanged: check-out acquires the object's lock in the
   intended mode, so two-phase locking and the permit machinery apply
   exactly as in shared-cache mode; only the data movement differs.
   The workspace belongs to the transaction that created it — its
   private copies die with an abort (nothing was logged for them, so
   there is nothing to undo beyond what check-in wrote). *)

module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Tid = Asset_util.Id.Tid

type entry = { mutable value : Value.t option; mutable dirty : bool }

type t = {
  db : Engine.t;
  owner : Tid.t;
  copies : (Oid.t, entry) Hashtbl.t;
}

let create db =
  let owner = Engine.self db in
  if Tid.is_null owner then invalid_arg "Workspace.create: must be called inside a transaction";
  { db; owner; copies = Hashtbl.create 16 }

let owner t = t.owner

let check_owner t =
  if not (Tid.equal (Engine.self t.db) t.owner) then
    invalid_arg "Workspace: used by a transaction other than its owner"

(* Check an object out into the workspace, locking it in the intended
   mode ([`Update] takes the write lock up front, avoiding a later
   upgrade).  Re-checking-out an object is a no-op on the copy. *)
let check_out ?(intent = `Read) t oid =
  check_owner t;
  if not (Hashtbl.mem t.copies oid) then begin
    (match intent with
    | `Read -> ()
    | `Update -> Engine.lock t.db oid Asset_lock.Mode.Write);
    let value = Engine.read t.db oid in
    Hashtbl.replace t.copies oid { value; dirty = false }
  end

let checked_out t oid = Hashtbl.mem t.copies oid

let get t oid =
  check_owner t;
  check_out t oid;
  (Hashtbl.find t.copies oid).value

let get_exn t oid =
  match get t oid with
  | Some v -> v
  | None -> Fmt.invalid_arg "Workspace.get_exn: %a not found" Oid.pp oid

(* Update the private copy only: no lock traffic, no log record. *)
let set t oid value =
  check_owner t;
  check_out t oid;
  let entry = Hashtbl.find t.copies oid in
  entry.value <- Some value;
  entry.dirty <- true

let update t oid f =
  check_owner t;
  check_out t oid;
  let entry = Hashtbl.find t.copies oid in
  entry.value <- Some (f entry.value);
  entry.dirty <- true

let dirty_count t =
  Hashtbl.fold (fun _ e acc -> if e.dirty then acc + 1 else acc) t.copies 0

(* Write every dirty copy back through the engine (one logged update
   each) and mark the workspace clean.  Clean copies are untouched. *)
let check_in t =
  check_owner t;
  let written = ref 0 in
  Hashtbl.iter
    (fun oid entry ->
      if entry.dirty then begin
        (match entry.value with
        | Some v -> Engine.write t.db oid v
        | None -> ());
        entry.dirty <- false;
        incr written
      end)
    t.copies;
  !written

(* Drop the private copies without writing them back. *)
let discard t =
  check_owner t;
  Hashtbl.reset t.copies

(* Scoped form: create a workspace, run [f], check in on normal return
   (the copies are discarded when [f] raises — the transaction is
   presumably aborting anyway). *)
let with_workspace db f =
  let t = create db in
  let result = f t in
  ignore (check_in t);
  result
