(* Transactional collections: named, ordered sets of objects.

   Ode organizes objects into clusters/sets and EOS indexes them; the
   cursor-stability discussion in the paper (section 3.2.2) talks about
   "moving the cursor from one record to the next within a relation".
   This module provides that relation: a collection is itself stored in
   objects — a root (directory) object listing chunk objects, each
   chunk holding a bounded number of member oids — so membership
   changes are transactional like any other update (locked, logged,
   undone on abort).

   Oid namespace: user objects use positive oids; collection plumbing
   (catalog, allocator, roots, chunks) lives at negative oids so the
   two can never collide.  The catalog (oid -1) maps collection names
   to root oids; the allocator (oid -2) hands out fresh negative oids.

   Ordered iteration and range queries materialize the membership into
   a B+tree ([Asset_index.Btree]) under the caller's transaction —
   a query-time index, so there is no volatile structure to keep
   coherent with aborts. *)

module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Btree = Asset_index.Btree

let catalog_oid = Oid.of_int (-1)
let allocator_oid = Oid.of_int (-2)

type t = { name : string; root : Oid.t; chunk_capacity : int }

let default_chunk_capacity = 64

(* ------------------------------------------------------------------ *)
(* Encoding: lists of ints as space-separated decimal strings          *)

let encode_ints ints = Value.of_string (String.concat " " (List.map string_of_int ints))

let decode_ints v =
  match Value.to_string v with
  | "" -> []
  | s -> String.split_on_char ' ' s |> List.map int_of_string

(* ------------------------------------------------------------------ *)
(* Internal-oid allocation                                             *)

let alloc_oid db =
  let next =
    match Engine.read db allocator_oid with Some v -> Value.to_int v | None -> -10
  in
  Engine.write db allocator_oid (Value.of_int (next - 1));
  Oid.of_int next

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let catalog db = match Engine.read db catalog_oid with Some v -> v | None -> Value.empty

let find db ~name ?(chunk_capacity = default_chunk_capacity) () =
  match Value.field (catalog db) name with
  | Some root -> Some { name; root = Oid.of_int (int_of_string root); chunk_capacity }
  | None -> None

(* Create a collection (within the current transaction).  Fails if the
   name is taken. *)
let create db ~name ?(chunk_capacity = default_chunk_capacity) () =
  if chunk_capacity < 1 then invalid_arg "Collection.create: chunk capacity must be positive";
  let cat = catalog db in
  if Value.field cat name <> None then
    Fmt.invalid_arg "Collection.create: %s already exists" name;
  let root = alloc_oid db in
  Engine.write db root (encode_ints []);
  Engine.write db catalog_oid
    (Value.set_field cat name (string_of_int (Oid.to_int root)));
  { name; root; chunk_capacity }

let find_or_create db ~name ?chunk_capacity () =
  match find db ~name ?chunk_capacity () with
  | Some c -> c
  | None -> create db ~name ?chunk_capacity ()

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)

let chunks db t =
  match Engine.read db t.root with
  | Some v -> List.map Oid.of_int (decode_ints v)
  | None -> Fmt.invalid_arg "Collection %s: root object missing" t.name

let chunk_members db chunk =
  match Engine.read db chunk with Some v -> decode_ints v | None -> []

(* Sorted insertion preserving uniqueness; returns None when already
   present. *)
let sorted_insert x l =
  let rec go = function
    | [] -> Some [ x ]
    | y :: rest ->
        if x = y then None
        else if x < y then Some (x :: y :: rest)
        else Option.map (fun tail -> y :: tail) (go rest)
  in
  go l

let add db t member =
  let m = Oid.to_int member in
  if m <= 0 then invalid_arg "Collection.add: member oids must be positive";
  let all_chunks = chunks db t in
  (* Membership can live in any chunk (chunks are not range
     partitioned), so check them all before picking a target. *)
  if List.exists (fun chunk -> List.mem m (chunk_members db chunk)) all_chunks then false
  else begin
    let rec try_chunks = function
      | [] ->
          (* Every chunk full (or none): allocate a fresh one. *)
          let chunk = alloc_oid db in
          Engine.write db chunk (encode_ints [ m ]);
          Engine.write db t.root
            (encode_ints (List.map Oid.to_int all_chunks @ [ Oid.to_int chunk ]))
      | chunk :: rest -> (
          let members = chunk_members db chunk in
          if List.length members >= t.chunk_capacity then try_chunks rest
          else
            match sorted_insert m members with
            | Some members' -> Engine.write db chunk (encode_ints members')
            | None -> assert false (* membership was checked above *))
    in
    try_chunks all_chunks;
    true
  end

let remove db t member =
  let m = Oid.to_int member in
  let rec go = function
    | [] -> false
    | chunk :: rest ->
        let members = chunk_members db chunk in
        if List.mem m members then begin
          Engine.write db chunk (encode_ints (List.filter (fun x -> x <> m) members));
          true
        end
        else go rest
  in
  go (chunks db t)

let mem db t member =
  let m = Oid.to_int member in
  List.exists (fun chunk -> List.mem m (chunk_members db chunk)) (chunks db t)

let cardinal db t =
  List.fold_left (fun acc chunk -> acc + List.length (chunk_members db chunk)) 0 (chunks db t)

(* ------------------------------------------------------------------ *)
(* Ordered access via a query-time B+tree                              *)

(* Build the index under the current transaction's read locks. *)
let index db t =
  let tree = Btree.create () in
  List.iter
    (fun chunk -> List.iter (fun m -> Btree.insert tree m ()) (chunk_members db chunk))
    (chunks db t);
  tree

let members db t =
  let tree = index db t in
  List.map (fun (k, ()) -> Oid.of_int k) (Btree.to_list tree)

let range db t ~lo ~hi =
  let tree = index db t in
  let acc = ref [] in
  Btree.range tree ~lo:(Oid.to_int lo) ~hi:(Oid.to_int hi) (fun k () -> acc := Oid.of_int k :: !acc);
  List.rev !acc

(* Scan member objects in oid order, reading each under the caller's
   transaction.  [stability] selects between strict two-phase locking
   and the section-3.2.2 cursor-stability behaviour (write permission
   released behind the cursor). *)
let scan ?(stability = `Repeatable_read) db t ~f =
  let members = members db t in
  List.iter
    (fun member ->
      (match Engine.read db member with Some v -> f member v | None -> ());
      match stability with
      | `Cursor ->
          (* Updates of any kind may proceed behind the cursor. *)
          Engine.permit db ~from_:(Engine.self db) ~oids:[ member ]
            ~ops:Asset_lock.Mode.Ops.(of_list [ Asset_lock.Mode.Write; Asset_lock.Mode.Increment ])
      | `Repeatable_read -> ())
    members
