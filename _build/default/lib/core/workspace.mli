(** Private workspaces: the EOS operating mode the paper set aside
    ("without first copying the object to its private address space" —
    this module is the {e with}-copying mode).

    A transaction checks objects out into a private buffer, works on
    the copies (no latches or log records per update), and checks dirty
    copies back in through the normal write path — one logged update
    per object however many private modifications were made.  Locking
    is unchanged: check-out acquires the object's lock, so 2PL and
    permits apply exactly as in shared-cache mode.

    A workspace belongs to the transaction that created it; use by any
    other transaction raises [Invalid_argument]. *)

module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value

type t

val create : Engine.t -> t
(** Must be called inside a transaction body. *)

val owner : t -> Asset_util.Id.Tid.t

val check_out : ?intent:[ `Read | `Update ] -> t -> Oid.t -> unit
(** Copy the object into the workspace, locking it in the intended
    mode ([`Update] takes the write lock up front, avoiding a later
    upgrade).  Idempotent on the copy. *)

val checked_out : t -> Oid.t -> bool

val get : t -> Oid.t -> Value.t option
(** The private copy (checking out with read intent if needed). *)

val get_exn : t -> Oid.t -> Value.t

val set : t -> Oid.t -> Value.t -> unit
(** Update the private copy only; no lock traffic beyond check-out, no
    log record until check-in. *)

val update : t -> Oid.t -> (Value.t option -> Value.t) -> unit

val dirty_count : t -> int

val check_in : t -> int
(** Write every dirty copy back through the engine (one logged update
    each); returns how many. *)

val discard : t -> unit
(** Drop the private copies without writing them back. *)

val with_workspace : Engine.t -> (t -> 'a) -> 'a
(** Create, run, check in on normal return (copies are simply dropped
    when the function raises — the transaction is aborting anyway). *)
