lib/core/collection.ml: Asset_index Asset_lock Asset_storage Asset_util Engine Fmt List Option String
