lib/core/engine.mli: Asset_deps Asset_lock Asset_sched Asset_storage Asset_util Asset_wal Format Status
