lib/core/collection.mli: Asset_storage Asset_util Engine
