lib/core/workspace.ml: Asset_lock Asset_storage Asset_util Engine Fmt Hashtbl
