lib/core/workspace.mli: Asset_storage Asset_util Engine
