lib/core/runtime.ml: Asset_sched Asset_storage Engine
