lib/core/status.ml: Format
