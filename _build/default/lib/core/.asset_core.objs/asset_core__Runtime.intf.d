lib/core/runtime.mli: Asset_sched Asset_storage Engine
