lib/core/engine.ml: Asset_deps Asset_latch Asset_lock Asset_sched Asset_storage Asset_util Asset_wal Fmt Format Hashtbl Int List Logs Status
