(** Transaction statuses, in the paper's vocabulary (section 2.1).

    [Initiated] (registered, not begun) — [Running] — [Completed] (code
    finished, locks retained, changes not yet permanent) —
    [Committing]/[Aborting] (the transient states of the section-4.2
    algorithms) — [Committed]/[Aborted] (terminated). *)

type t = Initiated | Running | Completed | Committing | Committed | Aborting | Aborted

val equal : t -> t -> bool

val terminated : t -> bool
(** Committed or aborted. *)

val active : t -> bool
(** Has begun executing and has not terminated. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
