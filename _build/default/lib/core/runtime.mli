(** Runtime: wires an engine to a scheduler and runs an application
    program.

    Every ASSET primitive may block, so application code — including
    the main program that initiates and commits top-level transactions
    — must run inside a fiber. *)

module Sched = Asset_sched.Scheduler

type outcome = {
  result : (unit, exn) result;
  steps : int;  (** Scheduler steps taken. *)
  deadlocked : bool;  (** The run ended in [Scheduler.Deadlock]. *)
}

val run :
  ?policy:Sched.policy ->
  ?max_steps:int ->
  ?record_trace:bool ->
  Engine.t ->
  (unit -> unit) ->
  outcome
(** Attach a scheduler (with the engine's deadlock resolver as the
    stall hook), spawn [program] as the first fiber, drive everything
    to completion. *)

val run_exn :
  ?policy:Sched.policy -> ?max_steps:int -> ?record_trace:bool -> Engine.t -> (unit -> unit) -> unit
(** Like {!run} but re-raises any failure. *)

val with_fresh_db :
  ?config:Engine.config ->
  ?policy:Sched.policy ->
  ?max_steps:int ->
  ?objects:int ->
  ?init:(int -> Asset_storage.Value.t) ->
  (Engine.t -> unit) ->
  Engine.t
(** Build an in-memory database with [objects] pre-populated objects
    (oids 1..n, default value 0), run [program], return the engine for
    inspection. *)
