(* Transaction statuses, following the paper's vocabulary (section 2.1
   and the TD discussion in section 4):

   - a transaction that has been initiated but has not begun execution
     is [Initiated];
   - [Running] while executing its code;
   - [Completed] when its code has finished but commit has not been
     invoked (locks are retained, changes are not yet permanent);
   - [Committing] / [Aborting] are the transient states of the section
     4.2 commit and abort algorithms;
   - [Committed] / [Aborted] are terminal ("terminated").

   A transaction is *active* if it has begun executing and has not
   terminated. *)

type t = Initiated | Running | Completed | Committing | Committed | Aborting | Aborted

let equal a b =
  match (a, b) with
  | Initiated, Initiated
  | Running, Running
  | Completed, Completed
  | Committing, Committing
  | Committed, Committed
  | Aborting, Aborting
  | Aborted, Aborted ->
      true
  | (Initiated | Running | Completed | Committing | Committed | Aborting | Aborted), _ -> false

let terminated = function Committed | Aborted -> true | _ -> false
let active = function Running | Completed | Committing | Aborting -> true | _ -> false

let to_string = function
  | Initiated -> "initiated"
  | Running -> "running"
  | Completed -> "completed"
  | Committing -> "committing"
  | Committed -> "committed"
  | Aborting -> "aborting"
  | Aborted -> "aborted"

let pp ppf t = Format.pp_print_string ppf (to_string t)
