(* The lock manager: object descriptors (OD), lock request descriptors
   (LRD) and permit descriptors (PD), implementing the read-lock /
   write-lock algorithm of section 4.2 including permit-driven
   suspension of conflicting granted locks.

   Figure 1 of the paper shows the OD pointing at three lists — granted
   lock requests, pending lock requests, and permissions; this module
   maintains exactly those lists (see [pp_od], which renders the
   figure's structure).  LRDs are linked both from their OD and from a
   per-transaction list so that delegation and release can traverse by
   transaction; PDs are doubly indexed by grantor and grantee tid, as
   the paper prescribes ("doubly hashed on the tid of the two
   transactions involved"). *)

module Tid = Asset_util.Id.Tid
module Oid = Asset_util.Id.Oid

type lock_status = Granted | Suspended | Pending | Upgrading

let pp_status ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Suspended -> Format.pp_print_string ppf "suspended"
  | Pending -> Format.pp_print_string ppf "pending"
  | Upgrading -> Format.pp_print_string ppf "upgrading"

type lrd = {
  lrd_tid : Tid.t;
  lrd_oid : Oid.t;
  mutable lrd_mode : Mode.t;
  mutable lrd_status : lock_status;
}

type pd = {
  pd_oid : Oid.t;
  mutable pd_grantor : Tid.t; (* mutable: delegation rewrites the grantor *)
  pd_grantee : Tid.t option; (* None = any transaction *)
  pd_ops : Mode.Ops.t;
}

type od = {
  od_oid : Oid.t;
  mutable granted : lrd list; (* granted + suspended requests *)
  mutable pending : lrd list; (* blocked + upgrading requests *)
  mutable permits : pd list;
}

type t = {
  objects : (Oid.t, od) Hashtbl.t;
  by_txn : (Tid.t, lrd list ref) Hashtbl.t; (* LRD list pointed to by the TD *)
  permits_by_grantor : (Tid.t, pd list ref) Hashtbl.t;
  permits_by_grantee : (Tid.t, pd list ref) Hashtbl.t;
  acquires : Asset_util.Stats.Counter.t;
  blocks : Asset_util.Stats.Counter.t;
  suspensions : Asset_util.Stats.Counter.t;
  permit_grants : Asset_util.Stats.Counter.t;
}

let create () =
  {
    objects = Hashtbl.create 256;
    by_txn = Hashtbl.create 64;
    permits_by_grantor = Hashtbl.create 64;
    permits_by_grantee = Hashtbl.create 64;
    acquires = Asset_util.Stats.Counter.create "lock.acquires";
    blocks = Asset_util.Stats.Counter.create "lock.blocks";
    suspensions = Asset_util.Stats.Counter.create "lock.suspensions";
    permit_grants = Asset_util.Stats.Counter.create "lock.permit_grants";
  }

let od t oid =
  match Hashtbl.find_opt t.objects oid with
  | Some od -> od
  | None ->
      let od = { od_oid = oid; granted = []; pending = []; permits = [] } in
      Hashtbl.replace t.objects oid od;
      od

let txn_list t tid =
  match Hashtbl.find_opt t.by_txn tid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.by_txn tid l;
      l

let index_list table tid =
  match Hashtbl.find_opt table tid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace table tid l;
      l

(* ------------------------------------------------------------------ *)
(* Permits                                                             *)

(* Does [grantor] permit [grantee] to perform [op] on this object,
   directly or transitively?  Rule 3 of the permit semantics makes
   permission transitive with operation-set intersection:
   permit(ti,tj,ops) and permit(tj,tk,ops') act as permit(ti,tk,
   ops∩ops').  We search the object's PD list for a chain from grantor
   to grantee every link of which (and hence the intersection) includes
   [op].  A PD with [pd_grantee = None] reaches any transaction. *)
let permits_op od ~grantor ~grantee op =
  let rec reachable visited current =
    if Tid.equal current grantee then true
    else if List.exists (Tid.equal current) visited then false
    else
      List.exists
        (fun pd ->
          Tid.equal pd.pd_grantor current
          && Mode.Ops.mem op pd.pd_ops
          &&
          match pd.pd_grantee with
          | None -> true (* open permission reaches everyone, incl. grantee *)
          | Some next -> reachable (current :: visited) next)
        od.permits
  in
  (* An open permission from the grantor short-circuits. *)
  List.exists
    (fun pd ->
      Tid.equal pd.pd_grantor grantor && pd.pd_grantee = None && Mode.Ops.mem op pd.pd_ops)
    od.permits
  || reachable [] grantor

let add_permit t ~grantor ~grantee ~oid ~ops =
  if Mode.Ops.is_empty ops then ()
  else begin
    let obj = od t oid in
    let pd = { pd_oid = oid; pd_grantor = grantor; pd_grantee = grantee; pd_ops = ops } in
    obj.permits <- pd :: obj.permits;
    let gl = index_list t.permits_by_grantor grantor in
    gl := pd :: !gl;
    (match grantee with
    | Some g ->
        let el = index_list t.permits_by_grantee g in
        el := pd :: !el
    | None -> ());
    Asset_util.Stats.Counter.incr t.permit_grants
  end

(* Objects a transaction has accessed (holds an LRD on) or has been
   permitted to access — the traversal used by permit(ti, tj, op). *)
let accessible_objects t tid =
  let locked = List.map (fun lrd -> lrd.lrd_oid) !(txn_list t tid) in
  let permitted =
    match Hashtbl.find_opt t.permits_by_grantee tid with
    | None -> []
    | Some pds -> List.map (fun pd -> pd.pd_oid) !pds
  in
  List.sort_uniq Oid.compare (locked @ permitted)

(* ------------------------------------------------------------------ *)
(* Acquisition: the section 4.2 read-lock / write-lock algorithm        *)

type outcome = Acquired | Blocked_on of Tid.t list

let find_lrd od tid = List.find_opt (fun l -> Tid.equal l.lrd_tid tid) od.granted
let find_pending od tid = List.find_opt (fun l -> Tid.equal l.lrd_tid tid) od.pending

let remove_pending od tid =
  od.pending <- List.filter (fun l -> not (Tid.equal l.lrd_tid tid)) od.pending

(* Step 1b: for every conflicting lock gl in the granted list (granted
   or suspended — a suspended lock still guards its holder's
   uncommitted operations against third parties), check the permit
   list; permitted conflicts suspend gl, unpermitted ones block.
   Returns the blockers, or [] if the way is clear (after
   suspensions). *)
let check_conflicts t obj tid mode =
  let op = Mode.as_op mode in
  let blockers = ref [] in
  let to_suspend = ref [] in
  List.iter
    (fun gl ->
      if (not (Tid.equal gl.lrd_tid tid))
         && (gl.lrd_status = Granted || gl.lrd_status = Suspended)
         && Mode.conflicts gl.lrd_mode mode
      then
        if permits_op obj ~grantor:gl.lrd_tid ~grantee:tid op then begin
          if gl.lrd_status = Granted then to_suspend := gl :: !to_suspend
        end
        else blockers := gl.lrd_tid :: !blockers)
    obj.granted;
  if !blockers = [] then begin
    List.iter
      (fun gl ->
        gl.lrd_status <- Suspended;
        Asset_util.Stats.Counter.incr t.suspensions)
      !to_suspend;
    []
  end
  else List.sort_uniq Tid.compare !blockers

let acquire t tid oid mode =
  let obj = od t oid in
  match find_lrd obj tid with
  | Some gl when gl.lrd_status <> Suspended && Mode.covers ~held:gl.lrd_mode ~requested:mode ->
      (* Step 1a: an unsuspended covering lock of our own. *)
      Acquired
  | existing -> (
      match check_conflicts t obj tid mode with
      | [] -> (
          (* Step 2: t_i can now lock ob. *)
          remove_pending obj tid;
          match existing with
          | Some gl ->
              (* 2b: change the lock mode / remove suspension. *)
              if not (Mode.covers ~held:gl.lrd_mode ~requested:mode) then gl.lrd_mode <- mode;
              gl.lrd_status <- Granted;
              Asset_util.Stats.Counter.incr t.acquires;
              Acquired
          | None ->
              (* 2a: create an LRD and link it from the OD and the TD. *)
              let lrd = { lrd_tid = tid; lrd_oid = oid; lrd_mode = mode; lrd_status = Granted } in
              obj.granted <- lrd :: obj.granted;
              let l = txn_list t tid in
              l := lrd :: !l;
              Asset_util.Stats.Counter.incr t.acquires;
              Acquired)
      | blockers ->
          (* Register a pending request (status upgrading when we already
             hold a weaker lock), so the OD shows the Figure-1 pending
             list and waits-for extraction sees the edge. *)
          (match find_pending obj tid with
          | Some p -> p.lrd_mode <- mode
          | None ->
              let status = if existing <> None then Upgrading else Pending in
              let p = { lrd_tid = tid; lrd_oid = oid; lrd_mode = mode; lrd_status = status } in
              obj.pending <- p :: obj.pending);
          Asset_util.Stats.Counter.incr t.blocks;
          Blocked_on blockers)

(* Give up a pending request (e.g. the requester aborted while waiting). *)
let cancel_pending t tid oid =
  match Hashtbl.find_opt t.objects oid with None -> () | Some obj -> remove_pending obj tid

(* Drop every pending request of [tid]; used when a waiting transaction
   is aborted (e.g. as a deadlock victim). *)
let cancel_pending_all t tid = Hashtbl.iter (fun _ obj -> remove_pending obj tid) t.objects

(* A suspended lock resumes when no granted lock conflicts with it any
   more (section 4.2 step 2b "remove suspension status" happens through
   re-acquisition; release-time resumption keeps cooperating
   transactions live without forcing a retry loop). *)
let resume_suspended obj =
  List.iter
    (fun sl ->
      if sl.lrd_status = Suspended then begin
        let conflicting =
          List.exists
            (fun gl ->
              (not (Tid.equal gl.lrd_tid sl.lrd_tid))
              && gl.lrd_status = Granted
              && Mode.conflicts gl.lrd_mode sl.lrd_mode)
            obj.granted
        in
        if not conflicting then sl.lrd_status <- Granted
      end)
    obj.granted

(* ------------------------------------------------------------------ *)
(* Release, delegation, cleanup                                        *)

let drop_lrd t lrd =
  (match Hashtbl.find_opt t.objects lrd.lrd_oid with
  | Some obj ->
      obj.granted <- List.filter (fun l -> l != lrd) obj.granted;
      resume_suspended obj
  | None -> ());
  match Hashtbl.find_opt t.by_txn lrd.lrd_tid with
  | Some l -> l := List.filter (fun x -> x != lrd) !l
  | None -> ()

(* Release all locks held by a transaction; returns the object ids that
   were locked (the engine uses them to wake waiters). *)
let release_all t tid =
  let lrds = !(txn_list t tid) in
  List.iter (drop_lrd t) lrds;
  Hashtbl.remove t.by_txn tid;
  List.map (fun l -> l.lrd_oid) lrds

(* Remove permissions given by and given to [tid] (commit step 6 /
   abort cleanup). *)
let remove_permits t tid =
  let involves pd =
    Tid.equal pd.pd_grantor tid || match pd.pd_grantee with Some g -> Tid.equal g tid | None -> false
  in
  let affected =
    (match Hashtbl.find_opt t.permits_by_grantor tid with Some l -> !l | None -> [])
    @ (match Hashtbl.find_opt t.permits_by_grantee tid with Some l -> !l | None -> [])
  in
  let oids = List.sort_uniq Oid.compare (List.map (fun pd -> pd.pd_oid) affected) in
  List.iter
    (fun oid ->
      match Hashtbl.find_opt t.objects oid with
      | Some obj -> obj.permits <- List.filter (fun pd -> not (involves pd)) obj.permits
      | None -> ())
    oids;
  Hashtbl.remove t.permits_by_grantor tid;
  Hashtbl.remove t.permits_by_grantee tid;
  (* The grantee index may still hold entries granted *by* tid (and vice
     versa); purge them lazily. *)
  Hashtbl.iter (fun _ l -> l := List.filter (fun pd -> not (involves pd)) !l) t.permits_by_grantor;
  Hashtbl.iter (fun _ l -> l := List.filter (fun pd -> not (involves pd)) !l) t.permits_by_grantee

(* delegate(ti, tj, ob_set): move the LRDs on the named objects from ti
   to tj and rewrite PDs granted by ti on them to be granted by tj.
   When tj already holds a lock on the same object the two requests
   merge, keeping the stronger mode. *)
let delegate t ~from_ ~to_ oids =
  let from_list = txn_list t from_ in
  let covers oid = match oids with None -> true | Some l -> List.exists (Oid.equal oid) l in
  let moving, staying = List.partition (fun lrd -> covers lrd.lrd_oid) !from_list in
  from_list := staying;
  let to_list = txn_list t to_ in
  List.iter
    (fun lrd ->
      match List.find_opt (fun l -> Oid.equal l.lrd_oid lrd.lrd_oid) !to_list with
      | Some existing ->
          (* Merge into tj's existing request. *)
          if Mode.conflicts existing.lrd_mode lrd.lrd_mode || lrd.lrd_mode = Mode.Write then
            existing.lrd_mode <- Mode.Write;
          (match Hashtbl.find_opt t.objects lrd.lrd_oid with
          | Some obj ->
              obj.granted <- List.filter (fun l -> l != lrd) obj.granted;
              resume_suspended obj
          | None -> ())
      | None ->
          let lrd = { lrd with lrd_tid = to_ } in
          (* Replace the OD's entry with the re-owned LRD. *)
          (match Hashtbl.find_opt t.objects lrd.lrd_oid with
          | Some obj ->
              obj.granted <-
                lrd :: List.filter (fun l -> not (Tid.equal l.lrd_tid from_ && Oid.equal l.lrd_oid lrd.lrd_oid)) obj.granted
          | None -> ());
          to_list := lrd :: !to_list)
    moving;
  (* Rewrite PDs (ti, tk, op) to (tj, tk, op) for the delegated objects. *)
  (match Hashtbl.find_opt t.permits_by_grantor from_ with
  | Some l ->
      let moving_pds, staying_pds = List.partition (fun pd -> covers pd.pd_oid) !l in
      l := staying_pds;
      List.iter (fun pd -> pd.pd_grantor <- to_) moving_pds;
      if moving_pds <> [] then begin
        let tl = index_list t.permits_by_grantor to_ in
        tl := moving_pds @ !tl
      end
  | None -> ());
  List.map (fun lrd -> lrd.lrd_oid) moving

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let holds t tid oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> None
  | Some obj -> (
      match find_lrd obj tid with
      | Some lrd when lrd.lrd_status = Granted || lrd.lrd_status = Suspended ->
          Some (lrd.lrd_mode, lrd.lrd_status)
      | _ -> None)

let locked_objects t tid = List.map (fun l -> l.lrd_oid) !(txn_list t tid)

let lock_count t tid = List.length !(txn_list t tid)

(* Waits-for edges from the pending lists: requester -> each granted
   holder whose lock conflicts (and is not excused by a permit). *)
let waits_for t =
  Hashtbl.fold
    (fun _ obj acc ->
      List.fold_left
        (fun acc p ->
          let op = Mode.as_op p.lrd_mode in
          List.fold_left
            (fun acc gl ->
              if (not (Tid.equal gl.lrd_tid p.lrd_tid))
                 && (gl.lrd_status = Granted || gl.lrd_status = Suspended)
                 && Mode.conflicts gl.lrd_mode p.lrd_mode
                 && not (permits_op obj ~grantor:gl.lrd_tid ~grantee:p.lrd_tid op)
              then (p.lrd_tid, gl.lrd_tid) :: acc
              else acc)
            acc obj.granted)
        acc obj.pending)
    t.objects []

(* Find a cycle in the waits-for graph, if any; used for deadlock
   victim selection. *)
let find_cycle t =
  let edges = waits_for t in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let l = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: l))
    edges;
  let exception Found of Tid.t list in
  let visited = Hashtbl.create 16 in
  (* [path] holds the current DFS stack, most recent first; on revisiting
     a node already on the stack, the stack prefix down to that node is
     the cycle. *)
  let rec dfs path node =
    if List.exists (Tid.equal node) path then begin
      let rec take acc = function
        | [] -> acc
        | x :: rest -> if Tid.equal x node then x :: acc else take (x :: acc) rest
      in
      raise (Found (take [] path))
    end
    else if not (Hashtbl.mem visited node) then begin
      Hashtbl.replace visited node ();
      let succs = match Hashtbl.find_opt adj node with Some l -> l | None -> [] in
      List.iter (dfs (node :: path)) succs
    end
  in
  match Hashtbl.iter (fun node _ -> dfs [] node) adj with
  | () -> None
  | exception Found cycle -> Some cycle

let stats t =
  [
    ("acquires", Asset_util.Stats.Counter.get t.acquires);
    ("blocks", Asset_util.Stats.Counter.get t.blocks);
    ("suspensions", Asset_util.Stats.Counter.get t.suspensions);
    ("permit_grants", Asset_util.Stats.Counter.get t.permit_grants);
  ]

(* Render an object descriptor in the shape of the paper's Figure 1:
   the object id with its granted-lock list, pending-request list and
   permission list. *)
let pp_od t ppf oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> Format.fprintf ppf "OD(%a): <no descriptor>" Oid.pp oid
  | Some obj ->
      let pp_lrd ppf l =
        Format.fprintf ppf "(%a,%a,%a)" Tid.pp l.lrd_tid Mode.pp l.lrd_mode pp_status l.lrd_status
      in
      let pp_pd ppf pd =
        Format.fprintf ppf "(%a,%s,%a)" Tid.pp pd.pd_grantor
          (match pd.pd_grantee with Some g -> Format.asprintf "%a" Tid.pp g | None -> "*")
          Mode.Ops.pp pd.pd_ops
      in
      Format.fprintf ppf "OD(%a)@.  granted: %a@.  pending: %a@.  permits: %a" Oid.pp oid
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_lrd)
        obj.granted
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_lrd)
        obj.pending
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_pd)
        obj.permits

let granted_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun l -> (l.lrd_tid, l.lrd_mode, l.lrd_status)) obj.granted

let pending_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun l -> (l.lrd_tid, l.lrd_mode, l.lrd_status)) obj.pending

let permits_of t oid =
  match Hashtbl.find_opt t.objects oid with
  | None -> []
  | Some obj -> List.map (fun pd -> (pd.pd_grantor, pd.pd_grantee, pd.pd_ops)) obj.permits
