lib/lock/lock_manager.mli: Asset_util Format Mode
