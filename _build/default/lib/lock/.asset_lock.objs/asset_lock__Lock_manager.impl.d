lib/lock/lock_manager.ml: Asset_util Format Hashtbl List Mode
