(* A bank-transfer workload: the classic serializability check.

   N accounts, each seeded with the same balance; every transaction
   moves a random amount between two random accounts.  Whatever the
   interleaving, strict two-phase locking must preserve the total —
   tests and the quickstart example both rely on [total]. *)

module E = Asset_core.Engine
module Oid = Asset_util.Id.Oid
module Value = Asset_storage.Value
module Rng = Asset_util.Rng

let account i = Oid.of_int i

let setup store ~accounts ~balance =
  Asset_storage.Heap_store.populate store ~n:accounts ~value:(fun _ -> Value.of_int balance)

(* A transfer body: subtract from one account, add to the other.  The
   [yield] between the two writes exposes the window a non-atomic
   implementation would corrupt. *)
let transfer ?(yield = true) db ~from_ ~to_ ~amount () =
  let debit v = Value.incr_int (Option.value v ~default:(Value.of_int 0)) (-amount) in
  let credit v = Value.incr_int (Option.value v ~default:(Value.of_int 0)) amount in
  E.modify db (account from_) debit;
  if yield then Asset_sched.Scheduler.yield ();
  E.modify db (account to_) credit

let random_transfer ?yield db ~accounts ~rng () =
  let from_ = 1 + Rng.int rng accounts in
  let to_ = 1 + Rng.int rng accounts in
  let amount = 1 + Rng.int rng 100 in
  transfer ?yield db ~from_ ~to_ ~amount ()

let total db ~accounts =
  let store = E.store db in
  let sum = ref 0 in
  for i = 1 to accounts do
    match Asset_storage.Store.read store (account i) with
    | Some v -> sum := !sum + Value.to_int v
    | None -> ()
  done;
  !sum

(* Run [n_txns] concurrent random transfers; returns (committed,
   aborted).  Aborts come from deadlock-victim selection. *)
let run_transfers ?(seed = 7) db ~accounts ~n_txns =
  let rng = Rng.create seed in
  let bodies = List.init n_txns (fun _ -> random_transfer db ~accounts ~rng) in
  Workload.run_bodies db bodies
