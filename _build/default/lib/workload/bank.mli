(** The bank-transfer workload: the classic serializability check.
    Random transfers between accounts; whatever the interleaving,
    strict two-phase locking must preserve {!total}. *)

module E = Asset_core.Engine

val account : int -> Asset_util.Id.Oid.t

val setup : Asset_storage.Store.t -> accounts:int -> balance:int -> unit

val transfer : ?yield:bool -> E.t -> from_:int -> to_:int -> amount:int -> unit -> unit
(** A transfer body; the yield between the debit and the credit exposes
    the window a non-atomic implementation would corrupt. *)

val random_transfer : ?yield:bool -> E.t -> accounts:int -> rng:Asset_util.Rng.t -> unit -> unit

val run_transfers : ?seed:int -> E.t -> accounts:int -> n_txns:int -> int * int
(** Run concurrent random transfers; returns (committed,
    deadlock-victims).  Must run inside a runtime fiber. *)

val total : E.t -> accounts:int -> int
(** Sum of balances, read directly from the store. *)
